# Convenience targets; all assume the repo root as working directory.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-solver

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m repro.bench all

# Solver-throughput benchmark only; results land in
# benchmarks/results/BENCH_solver.json for trajectory tracking.
bench-solver:
	$(PYTHON) -m repro.bench solver_throughput
