# Convenience targets; all assume the repo root as working directory.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke bench-all bench-solver bench-e2e

test:
	$(PYTHON) -m pytest tests/ -q

# The unified artefact campaign: Fig. 4, Fig. 6, Table 1, Fig. 7 and
# Fig. 8 regenerated in one deduplicated sweep pass, with the
# persistent cache store (benchmarks/results/campaign_store/) keeping
# cost-model fits, tuner memos and plan caches warm across runs.
# Appends to benchmarks/results/BENCH_campaign.json.
bench:
	$(PYTHON) -m repro.bench --campaign unified

# Fast CI tier: the same artefact structure on one-node reduced grids,
# cache store disabled (cold, deterministic, seconds-scale).
bench-smoke:
	$(PYTHON) -m repro.bench --campaign smoke --no-store

# Every pytest benchmark suite (the pre-campaign `make bench`).
bench-all:
	$(PYTHON) -m repro.bench all

# Solver-throughput benchmark only; results land in
# benchmarks/results/BENCH_solver.json for trajectory tracking.
bench-solver:
	$(PYTHON) -m repro.bench solver_throughput

# End-to-end experiment-sweep benchmark (batched simulation + sweep
# runner vs. the sequential scalar reference); appends to
# benchmarks/results/BENCH_e2e.json for trajectory tracking.
bench-e2e:
	$(PYTHON) -m repro.bench e2e_sweep
