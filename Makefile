# Convenience targets; all assume the repo root as working directory.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-solver bench-e2e

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m repro.bench all

# Solver-throughput benchmark only; results land in
# benchmarks/results/BENCH_solver.json for trajectory tracking.
bench-solver:
	$(PYTHON) -m repro.bench solver_throughput

# End-to-end experiment-sweep benchmark (batched simulation + sweep
# runner vs. the sequential scalar reference); appends to
# benchmarks/results/BENCH_e2e.json for trajectory tracking.
bench-e2e:
	$(PYTHON) -m repro.bench e2e_sweep
