# Convenience targets; all assume the repo root as working directory.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench bench-smoke bench-all bench-solver bench-e2e \
	bench-prune bench-scaleout bench-calibrate bench-chaos \
	bench-chaos-smoke bench-kernels bench-service bench-service-smoke \
	bench-service-net bench-service-net-smoke

test:
	$(PYTHON) -m pytest tests/ -q

# Quick inner-loop tier: tests/ minus the slow and hypothesis-heavy
# suites (property tests and the store round-trip/eviction property
# classes all match "property").  The full `make test` (and the tier-1
# `pytest -x -q` from the repo root) remains the merge gate.
test-fast:
	$(PYTHON) -m pytest tests/ -q -m "not slow" -k "not property"

# The unified artefact campaign: Fig. 4, Fig. 6, Table 1, Fig. 7 and
# Fig. 8 regenerated in one deduplicated sweep pass, with the
# persistent cache store (benchmarks/results/campaign_store/) keeping
# cost-model fits, tuner memos and plan caches warm across runs.
# Appends to benchmarks/results/BENCH_campaign.json.
bench:
	$(PYTHON) -m repro.bench --campaign unified

# Fast CI tier: the same artefact structure on one-node reduced grids,
# cache store disabled (cold, deterministic, seconds-scale).
bench-smoke:
	$(PYTHON) -m repro.bench --campaign smoke --no-store

# Every pytest benchmark suite (the pre-campaign `make bench`).
bench-all:
	$(PYTHON) -m repro.bench all

# Cache-store lifecycle: evict campaign-store workload files last used
# more than PRUNE_MAX_AGE_DAYS days ago, then least-recently-used files
# until the store fits PRUNE_MAX_STORE_BYTES (default 256 MiB).  Evicted
# workloads load cold on the next `make bench`; never fatal.
PRUNE_MAX_AGE_DAYS ?= 30
PRUNE_MAX_STORE_BYTES ?= 268435456
bench-prune:
	$(PYTHON) -m repro.bench --prune \
		--max-age-days $(PRUNE_MAX_AGE_DAYS) \
		--max-store-bytes $(PRUNE_MAX_STORE_BYTES)

# Scale-out benchmark: worker-scaling of the unified campaign (serial
# vs workers=2/4, bit-identity asserted) plus two concurrent campaigns
# sharing one store (write amplification and lock contention at
# fan-out).  Appends to benchmarks/results/BENCH_scaleout.json.
bench-scaleout:
	$(PYTHON) -m repro.bench scaleout

# Chaos benchmark: the unified campaign under deterministic fault
# injection (worker kills, torn spill writes, stale store locks, hung
# cells, repeated pool death down to serial degradation), every
# schedule asserted bit-identical to the fault-free serial pass.
# Appends to benchmarks/results/BENCH_chaos.json.
bench-chaos:
	$(PYTHON) -m repro.bench chaos

# Fast CI tier of the chaos matrix: one worker killed mid-cell, full
# graduated recovery asserted (the `-k smoke` slice).
bench-chaos-smoke:
	$(PYTHON) -m repro.bench chaos -k smoke

# Sweep the sweep-workers x solver-workers product on this box and
# recommend the fastest combination (appends the calibration grid to
# benchmarks/results/BENCH_scaleout.json).
bench-calibrate:
	$(PYTHON) -m repro.bench --calibrate-workers

# Hot-kernel micro-benchmark: per-kernel plans/sec on the native
# (numba) tier vs the numpy/scalar fallback, JIT warmup reported
# separately from steady state, bit-identity asserted between tiers.
# Appends to benchmarks/results/BENCH_kernels.json.
bench-kernels:
	$(PYTHON) -m repro.bench kernels

# Planning-as-a-service trace benchmark: a resident PlanService replays
# a seeded Gamma-arrival trace over three heterogeneous tenants twice
# (burst-cold, then warm churn), with in-flight coalescing, per-tenant
# admission shedding and every unique served plan verified bit-identical
# to a cold solve.  Appends to benchmarks/results/BENCH_service.json.
bench-service:
	$(PYTHON) -m repro.bench --service --duration 20 --rate 1.5 \
		--step-window 4 --max-context 32768 --batch-size 16

# Fast CI tier of the service trace: 16K contexts, batch 8, seconds of
# simulated arrivals at the duplicate-heavy step window.
bench-service-smoke:
	$(PYTHON) -m repro.bench --service

# Network chaos tier: the same seeded trace replayed through the TCP
# transport (PlanServer/PlanClient over loopback) while deterministic
# network faults fire at the accept/handshake/recv/send sites —
# connection resets, torn frames, slow peers, dropped responses, plus
# a server crash mid-trace degrading to in-process planning.  Every
# served plan asserted bit-identical to a cold solve, retries never
# double-solve, accounting deterministic, sockets/threads/pools
# released.  Appends to benchmarks/results/BENCH_service.json.
bench-service-net:
	$(PYTHON) -m repro.bench service_net

# Fast CI tier of the network chaos matrix: one injected conn_reset
# recovered over loopback (the `-k smoke` slice).
bench-service-net-smoke:
	$(PYTHON) -m repro.bench service_net -k smoke

# Solver-throughput benchmark only; results land in
# benchmarks/results/BENCH_solver.json for trajectory tracking.
bench-solver:
	$(PYTHON) -m repro.bench solver_throughput

# End-to-end experiment-sweep benchmark (batched simulation + sweep
# runner vs. the sequential scalar reference); appends to
# benchmarks/results/BENCH_e2e.json for trajectory tracking.
bench-e2e:
	$(PYTHON) -m repro.bench e2e_sweep
