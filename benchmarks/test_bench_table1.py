"""Table 1: homogeneous-SP iteration time and All-to-All share.

Paper protocol: GPT-7B on 64 A100s; for each (sequence length, batch
size) pair totalling 4M tokens, train with SP degrees 4..64 and report
iteration seconds with the All-to-All percentage, marking OOM cells.

Expected shape (paper): every sequence length has a *minimum feasible*
SP degree that doubles as length doubles (32K needs 8, 64K needs 16,
128K needs 32, 256K needs 64); among feasible degrees the smallest is
fastest; the All-to-All share collapses once the group fits inside a
node (SP <= 8).
"""

import pytest

from repro.baselines.homogeneous import homogeneous_plan
from repro.cost.profiler import fit_cost_model
from repro.cluster.topology import standard_cluster
from repro.experiments.reporting import format_table
from repro.model.config import GPT_7B
from repro.simulator.executor import IterationExecutor

#: (sequence length, batch size) rows of Table 1: 4M tokens per row,
#: exactly the paper's protocol (the simulator is analytic, so the
#: full scale costs nothing).
ROWS = [
    (4 * 1024, 1024),
    (8 * 1024, 512),
    (16 * 1024, 256),
    (32 * 1024, 128),
    (64 * 1024, 64),
    (128 * 1024, 32),
    (256 * 1024, 16),
]
DEGREES = [64, 32, 16, 8, 4]


@pytest.fixture(scope="module")
def setup():
    cluster = standard_cluster(64)
    config = GPT_7B.with_max_context(384 * 1024)
    model = fit_cost_model(config, cluster)
    executor = IterationExecutor(config=config, cluster=cluster)
    return cluster, config, model, executor


def _cell(model, executor, seq, bs, degree):
    if not model.fits([seq], degree):
        return "OOM"
    plan = homogeneous_plan((seq,) * bs, model, degree)
    result = executor.run(plan)
    return f"{result.iteration_seconds:.1f}s/{100 * result.alltoall_fraction:.0f}%"


def test_table1_iteration_time_and_alltoall_share(benchmark, emit, setup):
    cluster, config, model, executor = setup

    def run():
        rows = []
        for seq, bs in ROWS:
            row = [f"{seq // 1024}K x {bs}"]
            for degree in DEGREES:
                row.append(_cell(model, executor, seq, bs, degree))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["seq x bs"] + [f"SP={d}" for d in DEGREES],
            rows,
            title="Table 1: GPT-7B iteration time / All-to-All share, "
            "64 GPUs, 4M tokens per row (paper protocol)",
        )
    )

    cells = {
        (seq, d): _cell(model, executor, seq, bs, d)
        for (seq, bs) in ROWS
        for d in DEGREES
    }
    # OOM frontier matches the paper exactly.
    assert cells[(32 * 1024, 4)] == "OOM"
    assert cells[(64 * 1024, 8)] == "OOM"
    assert cells[(128 * 1024, 16)] == "OOM"
    assert cells[(256 * 1024, 32)] == "OOM"
    assert cells[(256 * 1024, 64)] != "OOM"

    def seconds(cell):
        return float(cell.split("s/")[0])

    # Smaller feasible degrees are faster for short sequences.
    assert seconds(cells[(8 * 1024, 8)]) < seconds(cells[(8 * 1024, 32)])
    assert seconds(cells[(8 * 1024, 4)]) < seconds(cells[(8 * 1024, 64)])

    def share(cell):
        return float(cell.split("/")[1].rstrip("%"))

    # All-to-All share collapses inside a node.
    assert share(cells[(8 * 1024, 8)]) < 15
    assert share(cells[(8 * 1024, 64)]) > 30
