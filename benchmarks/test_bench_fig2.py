"""Fig. 2: sequence-length distributions of the three corpora.

Paper shape: all three corpora are uni-modal long-tail; the majority
of sequences fall below 8K; only a small fraction exceeds 32K; GitHub
has the heaviest tail, then CommonCrawl, then Wikipedia (over 96%
below 8K).
"""

import numpy as np

from repro.data.distributions import (
    COMMONCRAWL,
    GITHUB,
    WIKIPEDIA,
    length_histogram,
)
from repro.experiments.reporting import format_histogram

SAMPLES = 100_000


def test_fig2_length_distributions(benchmark, emit):
    def run():
        rng = np.random.default_rng(0)
        return {
            dist.name: length_histogram(dist.sample(SAMPLES, rng))
            for dist in (GITHUB, COMMONCRAWL, WIKIPEDIA)
        }

    histograms = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for name, hist in histograms.items():
        sections.append(f"--- {name} ---\n{format_histogram(hist)}")
    emit("Fig. 2: sequence-length distributions (100k samples each)\n\n"
         + "\n\n".join(sections))

    def below_8k(hist):
        return sum(v for k, v in hist.items()
                   if k in ("<=1K", "1K-2K", "2K-4K", "4K-8K"))

    def above_32k(hist):
        return sum(v for k, v in hist.items()
                   if k in ("32K-64K", "64K-128K", "128K-256K", ">256K"))

    # Majority below 8K everywhere; Wikipedia over 96%.
    for name, hist in histograms.items():
        assert below_8k(hist) > 0.75, name
    assert below_8k(histograms["wikipedia"]) > 0.96

    # Tail ordering: GitHub > CommonCrawl > Wikipedia.
    assert (
        above_32k(histograms["github"])
        > above_32k(histograms["commoncrawl"])
        > above_32k(histograms["wikipedia"])
    )

    # Only a small fraction exceeds 32K anywhere.
    for name, hist in histograms.items():
        assert above_32k(hist) < 0.05, name
