"""End-to-end experiment-sweep benchmark: batched simulation + sweep
runner vs. the pre-PR sequential scalar pipeline.

The campaign is a Fig. 4-style grid (GPT-7B x three corpora at 192K on
64 GPUs) plus an overlapping Fig. 6-style context slice — the shape of
a real figure-regeneration run, where grids share workloads — measured
over several epochs, because that is the trajectory use case: the
suite is regenerated after every code change, and the sweep runner is
a persistent service whose per-workload state (fitted cost models,
corpus batches, tuned baselines, FlexSP's plan cache) stays warm
across regenerations.

The *reference* path is the faithful pre-PR pipeline: a strictly
sequential (system, workload) loop that rebuilds every system from
scratch for every cell of every epoch — per-system cost-model fits,
scalar tuner loops (``vectorized=False``), per-system corpus
resampling, and the scalar per-micro-batch timing kernels in the
executor.  Both paths use the same greedy solver backend, so plan
*solving* is identical work where it cannot be reused; the measured
difference is this PR's surface (simulation, tuning, corpus and
cross-cell/cross-epoch reuse).

Contract (the PR's acceptance bar):

* >= 4x wall-clock for the multi-epoch campaign;
* per-cell metrics (mean iteration seconds, comm fractions,
  tokens/s/GPU) bit-identical between the two paths, every epoch;
* results appended to ``results/BENCH_e2e.json``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import FULL
from repro.core.solver import SolverConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_system
from repro.experiments.sweep import SweepRunner, grid_cells
from repro.experiments.systems import (
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
    MegatronLMSystem,
)
from repro.experiments.workloads import Workload
from repro.cluster.topology import standard_cluster
from repro.data.distributions import COMMONCRAWL, GITHUB, WIKIPEDIA
from repro.model.config import GPT_7B

#: Epochs of the campaign: one cold regeneration plus warm reruns.
EPOCHS = 5
NUM_ITERATIONS = 2
SYSTEMS = ("flexsp", "deepspeed", "batchada", "megatron")

#: Both paths share the greedy backend so FlexSP planning is identical
#: work wherever it cannot be reused from the sweep's plan cache.
SWEEP_SOLVER = SolverConfig(backend="greedy", num_trials=2)


def _campaign(global_batch_size: int):
    """Fig. 4-style grid plus the overlapping Fig. 6 context slice."""
    cluster = standard_cluster(64)
    fig4_style = [
        Workload(
            model=GPT_7B,
            distribution=dist,
            max_context=192 * 1024,
            cluster=cluster,
            global_batch_size=global_batch_size,
        )
        for dist in (GITHUB, COMMONCRAWL, WIKIPEDIA)
    ]
    fig6_style = [
        Workload(
            model=GPT_7B,
            distribution=COMMONCRAWL,
            max_context=k * 1024,
            cluster=cluster,
            global_batch_size=global_batch_size,
        )
        for k in (128, 192)  # the 192K point is a Fig. 4 cell
    ]
    return grid_cells(SYSTEMS, fig4_style, NUM_ITERATIONS) + grid_cells(
        SYSTEMS, fig6_style, NUM_ITERATIONS
    )


def _reference_cell(cell):
    """Pre-PR behaviour for one cell: build the system from scratch on
    the scalar paths and measure it over freshly sampled batches."""
    workload = cell.workload
    if cell.system == "flexsp":
        system = FlexSPSystem(workload, SWEEP_SOLVER, vectorized=False)
    elif cell.system == "deepspeed":
        system = DeepSpeedUlyssesSystem(workload, vectorized=False)
    elif cell.system == "batchada":
        system = FlexSPBatchAdaSystem(workload, vectorized=False)
    else:
        system = MegatronLMSystem(workload, vectorized=False)
    return run_system(
        system, workload, cell.num_iterations, start_step=cell.start_step
    )


def _reference_epoch(cells):
    """One sequential scalar pass over every cell (no reuse at all)."""
    metrics = []
    for cell in cells:
        result = _reference_cell(cell)
        metrics.append(
            (
                result.mean_iteration_seconds,
                result.mean_comm_fraction,
                result.mean_alltoall_fraction,
                result.tokens_per_second_per_gpu(cell.workload.cluster.num_gpus),
            )
        )
    return metrics


def test_e2e_sweep_speedup(emit, bench_json_history, bench_batch_size):
    batch_size = bench_batch_size if FULL else 96
    cells = _campaign(batch_size)

    # Reference: pre-PR sequential scalar regeneration, cold each epoch.
    start = time.perf_counter()
    reference_epochs = [_reference_epoch(cells) for __ in range(EPOCHS)]
    ref_seconds = time.perf_counter() - start

    # Sweep service: one persistent runner across the epochs.
    runner = SweepRunner(cells, solver_config=SWEEP_SOLVER, workers=1)
    start = time.perf_counter()
    sweep_epochs = [runner.run() for __ in range(EPOCHS)]
    sweep_seconds = time.perf_counter() - start

    # Bit-identical per-cell metrics, every epoch: the batched kernels,
    # vectorized tuners, memoised state and plan-cache reuse must not
    # change a single bit of the simulated measurements.
    for reference, sweep in zip(reference_epochs, sweep_epochs):
        for ref_metrics, cell_metrics in zip(reference, sweep.metrics):
            assert cell_metrics.deterministic() == ref_metrics

    # The warm epochs serve FlexSP plans entirely from the cache.
    for sweep in sweep_epochs[1:]:
        for cell, metrics in zip(sweep.cells, sweep.metrics):
            if cell.system == "flexsp":
                assert metrics.plan_cache_hit_rate == 1.0

    speedup = ref_seconds / max(sweep_seconds, 1e-9)
    unique = sweep_epochs[0].unique_cells
    rows = [
        (
            "reference (sequential scalar)",
            f"{ref_seconds:.2f}",
            f"{ref_seconds / EPOCHS:.2f}",
            "-",
        ),
        (
            "sweep runner (batched + memoised)",
            f"{sweep_seconds:.2f}",
            f"{sweep_seconds / EPOCHS:.2f}",
            f"{speedup:.2f}x",
        ),
    ]
    emit(
        f"End-to-end sweep: {EPOCHS} epochs x {len(cells)} cells "
        f"({unique} unique), batch {batch_size}, "
        f"{NUM_ITERATIONS} iterations/cell\n"
        + format_table(["path", "total (s)", "per epoch (s)", "speedup"], rows)
    )
    bench_json_history(
        "e2e",
        {
            "epochs": EPOCHS,
            "cells": len(cells),
            "unique_cells": unique,
            "global_batch_size": batch_size,
            "iterations_per_cell": NUM_ITERATIONS,
            "reference_seconds": round(ref_seconds, 3),
            "sweep_seconds": round(sweep_seconds, 3),
            "speedup": round(speedup, 2),
        },
    )

    assert speedup >= 4.0, f"sweep speedup {speedup:.2f}x < 4x"


@pytest.mark.slow
@pytest.mark.skipif(not FULL, reason="full 18-cell grid only with REPRO_BENCH_FULL=1")
def test_e2e_sweep_full_grid(emit, bench_json_history, bench_batch_size):
    """The complete Fig. 4 grid through the sweep runner (full protocol)."""
    from repro.experiments.workloads import fig4_workloads

    cells = grid_cells(
        SYSTEMS, fig4_workloads(global_batch_size=bench_batch_size), NUM_ITERATIONS
    )
    runner = SweepRunner(cells, solver_config=SWEEP_SOLVER, workers=1)
    result = runner.run()
    flexsp_wins = 0
    for workload_name in {c.workload.name for c in cells}:
        flexsp = result.metric("flexsp", workload_name)
        deepspeed = result.metric("deepspeed", workload_name)
        if flexsp.mean_iteration_seconds <= deepspeed.mean_iteration_seconds * 1.02:
            flexsp_wins += 1
    emit(
        f"Full Fig. 4 grid via sweep runner: {result.unique_cells} cells "
        f"in {result.wall_seconds:.1f}s; FlexSP <= DeepSpeed on "
        f"{flexsp_wins} workloads"
    )
    bench_json_history(
        "e2e",
        {
            "grid": "fig4-full",
            "cells": len(cells),
            "wall_seconds": round(result.wall_seconds, 2),
        },
    )
    assert flexsp_wins == len({c.workload.name for c in cells})
