"""Network chaos benchmark: the plan transport under injected faults.

The hardened-transport PR's acceptance bar.  A seeded trace is
replayed through a loopback :class:`~repro.service.transport.PlanServer`
/ :class:`~repro.service.transport.PlanClient` pair while the
deterministic fault plane (:mod:`repro.core.faults`) fires network
faults at the transport's injection sites, and for every survivable
schedule in the matrix — connections reset at accept, torn response
frames, slow peers, responses solved but never sent — the replay must

* complete, every request answered or deterministically shed, with
  the client's deadline/retry/backoff ladder absorbing the faults;
* serve **every** plan bit-identical to a cold ``FlexSPSolver`` solve
  (the wire adds serialisation, never drift);
* never double-solve: a retry after a lost response re-attaches via
  the server's idempotency window or the service's coalescing map, so
  the engine solves each unique shape exactly once;
* keep shed/coalesce accounting deterministic (same trace + same
  schedule + same seeds = same counters);
* leave nothing behind (``live_pool_count`` back to baseline, no
  server sockets or handler threads).

A server crash mid-trace (no drain) must degrade gracefully: the
client falls back to an in-process service and the remaining requests
are still answered bit-identically, with the degradation counted.

Latency/retry records append to ``results/BENCH_service.json`` as
``mode: "service-transport"`` blocks.  ``make bench-service-net`` runs
the matrix; ``make bench-service-net-smoke`` runs the CI slice
(``-k smoke``: one injected ``conn_reset``, recovered in seconds).
"""

from __future__ import annotations

from benchmarks.conftest import FULL
from repro.core.pools import live_pool_count
from repro.experiments.reporting import format_table
from repro.service.benchmark import run_transport_benchmark
from repro.service.traffic import service_jobs

MAX_CONTEXT = (32 if FULL else 16) * 1024
GLOBAL_BATCH = 16 if FULL else 8
DURATION = 3.0 if FULL else 2.0
RATE = 0.8
STEP_WINDOW = 2

#: The survivable schedules the matrix sweeps — every fault kind at
#: every site the transport realises it, one occurrence each (the
#: ``:*`` repeated-fault shape is covered by the unit suite's
#: degradation tests; here each schedule must be absorbed *without*
#: falling back to in-process planning).
MATRIX_SCHEDULES = (
    "conn_reset@accept",
    "conn_reset@send",
    "torn_frame@handshake",
    "torn_frame@send",
    "delay@accept",
    "delay@recv",
    "delay@send",
    "drop_response@send",
)

#: Schedules whose fault loses a request or response mid-exchange, so
#: recovery must show up as at least one client retry.
RETRYING = {
    "conn_reset@send",
    "torn_frame@send",
    "drop_response@send",
}


def _jobs(count: int = 3) -> dict:
    jobs = service_jobs(
        max_context=MAX_CONTEXT, global_batch_size=GLOBAL_BATCH
    )
    names = sorted(jobs)[:count]
    return {name: jobs[name] for name in names}


def _run(jobs, **kwargs) -> dict:
    return run_transport_benchmark(
        jobs=jobs,
        duration=DURATION,
        rate=RATE,
        cv=2.0,
        seed=23,
        step_window=STEP_WINDOW,
        verify=True,
        **kwargs,
    )


def _assert_survived(record: dict, *, schedule: str | None) -> None:
    transport = record["transport"]
    # Conservation: every request answered or deterministically shed.
    assert transport["served"] + transport["shed"] == transport["requests"]
    # Bit-identity survived the wire and the fault.
    assert record["bit_identical_verified"] == record["unique_shapes"]
    # Never a double-solve: sequential closed-loop replay means each
    # unique (tenant, shape) is solved exactly once — retries re-attach
    # through the idempotency window instead of re-entering the engine.
    stats = record["service_stats"]
    assert stats["solved"] == record["unique_shapes"]
    assert stats["submitted"] == record["trace"]["requests"]
    if schedule is not None:
        label = schedule.split(":")[0]
        injections = record["faults"]["injections"]
        assert injections.get(label, 0) >= 1, f"{schedule} never fired"


def test_smoke_conn_reset_recovered(emit, bench_json_history):
    """The CI smoke slice: one injected ``conn_reset``, recovered.

    Selected by ``make bench-service-net-smoke`` (``-k smoke``) so
    every CI run proves the retry/reconnect rung of the client ladder
    over a real socket in seconds, without paying for the matrix.
    """
    baseline_pools = live_pool_count()
    jobs = _jobs(count=1)
    record = _run(jobs, fault_specs="conn_reset@accept")
    _assert_survived(record, schedule="conn_reset@accept")
    transport = record["transport"]
    assert transport["retries"] >= 1, "the reset was never retried"
    assert transport["degraded"] == 0, "smoke fault must not degrade"
    assert live_pool_count() == baseline_pools
    emit(
        f"Transport smoke: conn_reset@accept over loopback — "
        f"{transport['served']} served of {transport['requests']} "
        f"requests, {transport['retries']} retries, "
        f"{transport['reconnects']} reconnects, p50 "
        f"{transport['p50_ms']} ms, p99 {transport['p99_ms']} ms, "
        f"{record['bit_identical_verified']}/{record['unique_shapes']} "
        "bit-identical to cold solves"
    )
    bench_json_history("service", record)


def test_network_chaos_matrix(emit, bench_json_history):
    """Every survivable network fault, absorbed without degradation."""
    baseline_pools = live_pool_count()
    jobs = _jobs()
    rows = []
    for schedule in MATRIX_SCHEDULES:
        record = _run(jobs, fault_specs=schedule)
        _assert_survived(record, schedule=schedule)
        transport = record["transport"]
        assert transport["degraded"] == 0, f"{schedule}: degraded"
        if schedule in RETRYING:
            assert transport["retries"] >= 1, f"{schedule}: no retry"
        assert live_pool_count() == baseline_pools, f"{schedule}: leak"
        rows.append(
            (
                schedule,
                str(transport["requests"]),
                str(transport["retries"]),
                str(transport["reconnects"]),
                str(transport["server"]["replayed"]),
                f"{transport['p50_ms']:.2f}",
                f"{transport['p99_ms']:.2f}",
            )
        )
        bench_json_history("service", record)
    emit(
        f"Transport chaos matrix: {len(MATRIX_SCHEDULES)} schedules over "
        f"{len(jobs)} tenants ({MAX_CONTEXT // 1024}K, batch "
        f"{GLOBAL_BATCH}), all bit-identical, zero degradations\n"
        + format_table(
            [
                "schedule",
                "requests",
                "retries",
                "reconnects",
                "replayed",
                "p50 (ms)",
                "p99 (ms)",
            ],
            rows,
        )
    )


def test_chaos_accounting_is_deterministic():
    """Same trace + same schedule + same seeds = same counters."""
    jobs = _jobs(count=1)

    def accounting(record: dict) -> tuple:
        transport = record["transport"]
        stats = record["service_stats"]
        return (
            transport["requests"],
            transport["served"],
            transport["shed"],
            transport["retries"],
            transport["degraded"],
            transport["server"]["replayed"],
            transport["server"]["dropped_responses"],
            stats["submitted"],
            stats["solved"],
            stats["shed"],
            stats["coalesced"],
        )

    first = _run(jobs, fault_specs="drop_response@send")
    second = _run(jobs, fault_specs="drop_response@send")
    assert accounting(first) == accounting(second)
    assert first["transport"]["server"]["replayed"] >= 1


def test_crash_mid_flight_degrades_to_in_process(emit, bench_json_history):
    """Server aborted (no drain) mid-trace: the client's last rung."""
    baseline_pools = live_pool_count()
    jobs = _jobs(count=2)
    record = _run(
        jobs, crash_after=3, client_io_timeout=1.0, client_retries=2
    )
    transport = record["transport"]
    # Every request is still answered (or shed) — the ones after the
    # crash by the client's private in-process service.
    assert transport["served"] + transport["shed"] == transport["requests"]
    assert transport["degraded"] >= 1, "the crash never degraded"
    assert record["bit_identical_verified"] == record["unique_shapes"]
    assert live_pool_count() == baseline_pools
    emit(
        f"Transport crash: server aborted after request 3 — "
        f"{transport['degraded']} of {transport['requests']} requests "
        f"degraded to in-process planning, all "
        f"{record['bit_identical_verified']} unique plans bit-identical "
        "to cold solves"
    )
    bench_json_history("service", record)
