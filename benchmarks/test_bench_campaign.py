"""Unified-campaign benchmark: one sweep pass for every artefact grid,
with the persistent cache store proven warm across processes.

The campaign engine's acceptance bar (the multi-layer refactor PR):

* all five paper artefact grids (Fig. 4, Fig. 6, Table 1, Fig. 7,
  Fig. 8) execute through **one** ``SweepRunner`` pass with
  overlapping cells measured exactly once;
* a **second process** started against the populated
  :class:`~repro.core.cache_store.CacheStore` reaches >= 90 % plan-cache
  hit rate on the repeated campaign, with per-cell metrics
  bit-identical to the cold run;
* the record is appended to ``results/BENCH_campaign.json``.

The second process is real: the restored pass runs in a forked child
(via a single-worker process pool), so the only warmth it can possibly
have is what :class:`CacheStore` spilled to disk.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

from benchmarks.conftest import FULL
from repro.core.solver import SolverConfig
from repro.experiments.campaign import unified_campaign
from repro.experiments.reporting import format_table
from repro.experiments.sweep import SweepRunner

#: Both passes share the greedy backend so planning is deterministic
#: work wherever the store cannot serve it.
CAMPAIGN_SOLVER = SolverConfig(backend="greedy", num_trials=2)

GLOBAL_BATCH = 512 if FULL else 128


def _run_campaign(store_root: str | None, spill_batch: int = 0):
    """One full campaign pass; returns (metrics, hit_rate, wall, summary)."""
    campaign = unified_campaign(global_batch_size=GLOBAL_BATCH)
    runner = SweepRunner(
        solver_config=CAMPAIGN_SOLVER,
        workers=1,
        store=store_root,
        spill_batch=spill_batch,
    )
    with runner:
        started = time.perf_counter()
        result = campaign.run(runner)
        wall = time.perf_counter() - started
    return (
        list(result.sweep.metrics),
        result.plan_cache_hit_rate,
        wall,
        result.summary(),
    )


def test_campaign_store_warm_across_processes(
    emit, bench_json_history, tmp_path
):
    store_root = str(tmp_path / "campaign_store")

    # Cold pass: this process populates the store from scratch.
    cold_metrics, cold_hit_rate, cold_wall, summary = _run_campaign(store_root)

    # Restored pass: a genuine second process (forked, fresh runner)
    # whose only warmth is the on-disk store.
    with ProcessPoolExecutor(
        max_workers=1, mp_context=get_context("fork")
    ) as pool:
        warm_metrics, warm_hit_rate, warm_wall, __ = pool.submit(
            _run_campaign, store_root
        ).result()

    # Bit-identical metrics contract: restoring spilled cost-model
    # fits, tuner memos and plan caches must not change a single bit
    # of any artefact cell.
    assert len(warm_metrics) == len(cold_metrics)
    for cold, warm in zip(cold_metrics, warm_metrics):
        assert warm.deterministic() == cold.deterministic()
        assert warm.status == cold.status
        assert warm.checkpointing == cold.checkpointing

    cells = summary["cells"]
    unique = summary["unique_cells"]
    rows = [
        ("cold (this process)", f"{cold_wall:.2f}", f"{cold_hit_rate:.0%}"),
        (
            "store-restored (second process)",
            f"{warm_wall:.2f}",
            f"{warm_hit_rate:.0%}",
        ),
    ]
    emit(
        f"Unified campaign: {cells} cells ({unique} unique), "
        f"batch {GLOBAL_BATCH}, artefacts "
        f"{', '.join(summary['artefacts'])}\n"
        + format_table(["pass", "wall (s)", "plan-cache hit rate"], rows)
    )
    bench_json_history(
        "campaign",
        {
            "mode": "benchmark",
            "cells": cells,
            "unique_cells": unique,
            "global_batch_size": GLOBAL_BATCH,
            "cold_wall_seconds": round(cold_wall, 3),
            "restored_wall_seconds": round(warm_wall, 3),
            "cold_hit_rate": round(cold_hit_rate, 4),
            "restored_hit_rate": round(warm_hit_rate, 4),
        },
    )

    # One pass covers every artefact; the grids genuinely overlap.
    assert set(summary["artefacts"]) == {
        "fig4",
        "fig6",
        "table1",
        "fig7",
        "fig8",
    }
    assert unique < cells

    # The acceptance bar: a second process against a populated store
    # serves >= 90% of FlexSP micro-batch planning from the cache.
    assert warm_hit_rate >= 0.9, f"restored hit rate {warm_hit_rate:.2%} < 90%"


def test_store_write_amplification_below_per_cell_baseline(
    emit, bench_json_history, tmp_path
):
    """The store lifecycle acceptance bar: batched per-worker spills
    push write amplification (store data-file writes per measured
    cell) strictly below the historical spill-after-every-cell
    baseline on the unified campaign, and a store that has been
    *pruned* still restores — warm where files survived, cold where
    they did not, bit-identical metrics either way."""
    from repro.core.cache_store import CacheStore

    per_cell_root = str(tmp_path / "per_cell_store")
    batched_root = str(tmp_path / "batched_store")

    per_cell_metrics, __, ___, per_cell_summary = _run_campaign(
        per_cell_root, spill_batch=1
    )
    batched_metrics, ____, _____, batched_summary = _run_campaign(batched_root)

    for a, b in zip(per_cell_metrics, batched_metrics):
        assert a.deterministic() == b.deterministic()
    per_cell_wa = per_cell_summary["store"]["write_amplification"]
    batched_wa = batched_summary["store"]["write_amplification"]
    assert batched_wa < per_cell_wa, (
        f"batched spills must beat the per-cell baseline: "
        f"{batched_wa} >= {per_cell_wa}"
    )

    # Restored pass in a genuine second process: still >= 90% warm and
    # bit-identical under the batched cadence.
    with ProcessPoolExecutor(
        max_workers=1, mp_context=get_context("fork")
    ) as pool:
        warm_metrics, warm_hit_rate, ______, warm_summary = pool.submit(
            _run_campaign, batched_root
        ).result()
    for a, b in zip(batched_metrics, warm_metrics):
        assert a.deterministic() == b.deterministic()
    assert warm_hit_rate >= 0.9
    # The fully warm pass learned nothing, so it spilled (almost)
    # nothing — the restored-run half of the write-amplification fix.
    assert warm_summary["store"]["writes"] <= warm_summary["store"]["files"]

    # Prune half the store (LRU), then run again: never fatal, still
    # bit-identical, cold exactly where eviction hit.
    store = CacheStore(batched_root)
    half_bytes = store.stats().bytes // 2
    pruned = store.prune(max_store_bytes=half_bytes, protect_touched=False)
    assert pruned.evicted, "the byte cap should evict something"
    pruned_metrics, pruned_hit_rate, _______, ________ = _run_campaign(
        batched_root
    )
    for a, b in zip(batched_metrics, pruned_metrics):
        assert a.deterministic() == b.deterministic()

    emit(
        "Unified campaign store lifecycle: write amplification "
        f"{per_cell_wa:.3f} writes/cell (spill-per-cell baseline) -> "
        f"{batched_wa:.3f} (batched drains), restored-pass hit rate "
        f"{warm_hit_rate:.0%}, after pruning {len(pruned.evicted)} of "
        f"{len(pruned.evicted) + pruned.files_kept} files: hit rate "
        f"{pruned_hit_rate:.0%}, metrics bit-identical"
    )
    bench_json_history(
        "campaign",
        {
            "mode": "benchmark-store-lifecycle",
            "global_batch_size": GLOBAL_BATCH,
            "write_amplification_per_cell_spills": per_cell_wa,
            "write_amplification_batched": batched_wa,
            "restored_hit_rate": round(warm_hit_rate, 4),
            "restored_store_writes": warm_summary["store"]["writes"],
            "pruned_files": len(pruned.evicted),
            "pruned_hit_rate": round(pruned_hit_rate, 4),
        },
    )


def test_campaign_artefact_shapes(emit):
    """The unified campaign's declarative grids keep the paper shapes:
    Table 1's frontier rows, Fig. 7's four ablation columns, Fig. 8's
    weak-scaling points all present in one definition."""
    campaign = unified_campaign(global_batch_size=GLOBAL_BATCH)
    by_key = {a.key: a for a in campaign.artefacts}
    assert len(by_key["table1"].cells) == 7 * 5  # rows x degrees
    assert len(by_key["fig7"].cells) == 4  # ablation columns
    assert len(by_key["fig8"].cells) == 3  # cluster sizes
    assert len(by_key["fig4"].cells) == 12  # reduced: 4 systems x 3 corpora
    emit(
        f"unified campaign: {len(campaign.cells)} declared cells, "
        f"{len(set(campaign.cells))} unique across "
        f"{len(campaign.artefacts)} artefacts"
    )
