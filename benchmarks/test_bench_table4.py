"""Table 4: token estimation bias of bucketing methods.

Paper: DP bucketing keeps the token error ratio (error tokens / total
tokens) at or below 2.3% across corpora, while the naive fixed-2K-
interval method reaches 8.8-22.1%, worst on the most skewed corpus
(Wikipedia).

Measured as the planner measures it: per sorted micro-batch of a
512-sequence global batch with Q=16 buckets.
"""

import numpy as np
import pytest

from repro.core.blaster import blast
from repro.core.bucketing import (
    bucketing_error,
    fixed_interval_buckets,
    optimal_buckets,
)
from repro.core.types import SequenceBatch
from repro.data.distributions import COMMONCRAWL, GITHUB, WIKIPEDIA
from repro.experiments.reporting import format_table

NUM_BATCHES = 4
NUM_MICROBATCHES = 5
NUM_BUCKETS = 16


def _error_ratios(dist):
    """Max token error ratio over several batches, per method."""
    worst_dp = 0.0
    worst_naive = 0.0
    for seed in range(NUM_BATCHES):
        lengths = dist.sample(512, np.random.default_rng(seed))
        batch = SequenceBatch(lengths=tuple(int(s) for s in lengths))
        dp_error = 0
        naive_error = 0
        for mb in blast(batch, NUM_MICROBATCHES):
            dp_error += bucketing_error(optimal_buckets(mb.lengths, NUM_BUCKETS))
            naive_error += bucketing_error(fixed_interval_buckets(mb.lengths))
        worst_dp = max(worst_dp, dp_error / batch.total_tokens)
        worst_naive = max(worst_naive, naive_error / batch.total_tokens)
    return worst_dp, worst_naive


def test_table4_bucketing_token_error(benchmark, emit):
    def run():
        return {
            dist.name: _error_ratios(dist)
            for dist in (GITHUB, COMMONCRAWL, WIKIPEDIA)
        }

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["method", "github", "commoncrawl", "wikipedia"],
            [
                ["DP bucketing"]
                + [f"{100 * ratios[d][0]:.1f}%" for d in
                   ("github", "commoncrawl", "wikipedia")],
                ["Naive (fixed 2K)"]
                + [f"{100 * ratios[d][1]:.1f}%" for d in
                   ("github", "commoncrawl", "wikipedia")],
            ],
            title="Table 4: max token estimation bias of bucketing methods",
        )
    )

    for name, (dp, naive) in ratios.items():
        # DP stays small (paper: <= 2.3%).
        assert dp < 0.03, f"{name}: DP error {dp:.1%}"
        # Naive is several times worse (paper: 8.8-22.1%).
        assert naive > 3 * dp, f"{name}: naive {naive:.1%} vs DP {dp:.1%}"
    # Wikipedia (most skew, shortest sequences) is the naive method's
    # worst corpus, as in the paper.
    assert ratios["wikipedia"][1] == max(r[1] for r in ratios.values())
