"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures and
prints it in a paper-comparable text format (see EXPERIMENTS.md for
the side-by-side record).  Output is emitted outside pytest's capture
so that ``pytest benchmarks/ --benchmark-only`` shows the tables, and
each table is also appended to ``benchmarks/results/``.

Scale: benchmarks default to a reduced protocol — the paper's cluster
shapes and context limits, but smaller global batches and 1-2 measured
iterations — so the whole suite runs in minutes on a laptop.  Set
``REPRO_BENCH_FULL=1`` for the paper's batch size of 512.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.core.planner import PlannerConfig
from repro.core.solver import SolverConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Reduced-protocol knobs (full protocol with REPRO_BENCH_FULL=1).
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Per-stage SolveStats profiling — set by ``python -m repro.bench
#: <suite> --profile``; suites that support it print their cold-path
#: stage breakdowns (the numbers land in the bench records even when
#: off).
PROFILE = bool(int(os.environ.get("REPRO_BENCH_PROFILE", "0")))
GLOBAL_BATCH = 512 if FULL else 128
NUM_ITERATIONS = 3 if FULL else 1

#: Solver configuration used by benchmark FlexSP runs: the paper's
#: trial count is kept small and the per-solve MILP budget tight so
#: the greedy incumbent carries most of the weight.
BENCH_SOLVER = SolverConfig(
    num_trials=5 if FULL else 2,
    planner=PlannerConfig(time_limit=5.0 if FULL else 1.0, mip_rel_gap=0.05),
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: full-protocol benchmark cells skipped unless REPRO_BENCH_FULL=1 "
        "(keeps tier-1 pytest fast)",
    )


def pytest_collection_modifyitems(config, items):
    """Marker guard: ``slow`` alone is enough to keep a benchmark out
    of CI.

    A bare ``pytest -q benchmarks`` (no ``-m`` selection, no
    ``REPRO_BENCH_FULL=1``) must never silently run full-protocol
    grids — a ``@pytest.mark.slow`` benchmark that forgot its
    ``skipif(not FULL)`` companion would otherwise turn the tier-1
    pass into a minutes-to-hours run.  An explicit ``-m`` expression
    (e.g. ``-m slow``) is a deliberate selection and wins.
    """
    if FULL or config.getoption("-m"):
        return
    guard = pytest.mark.skip(
        reason="slow benchmark: run with REPRO_BENCH_FULL=1 or -m slow"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(guard)


#: Wall-clock of each benchmark's call phase, written at session end so
#: future PRs can diff the perf trajectory (see BENCH_wallclock.json).
_WALLCLOCK: dict[str, float] = {}


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _WALLCLOCK[report.nodeid] = round(report.duration, 4)


def pytest_sessionfinish(session, exitstatus):
    if _WALLCLOCK:
        RESULTS_DIR.mkdir(exist_ok=True)
        # Reduced and REPRO_BENCH_FULL runs use workloads of different
        # size, so each mode keeps its own trajectory file.
        suffix = "_full" if FULL else ""
        path = RESULTS_DIR / f"BENCH_wallclock{suffix}.json"
        merged: dict[str, float] = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except (OSError, ValueError):
                merged = {}
        merged.update(_WALLCLOCK)
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


@pytest.fixture()
def bench_json(request):
    """Write a benchmark's structured metrics to results/BENCH_<name>.json.

    Benchmarks push whatever numbers define their perf contract
    (plans/sec, hit rates, speedups); each file is overwritten per run
    so the checked-in trajectory always reflects the latest code.
    """

    def _write(name: str, payload: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        record = {"benchmark": request.node.nodeid, "full_protocol": FULL, **payload}
        with open(RESULTS_DIR / f"BENCH_{name}.json", "w") as f:
            json.dump(record, f, indent=2, sort_keys=True)
            f.write("\n")

    return _write


@pytest.fixture()
def bench_json_history(request):
    """Append a benchmark's metrics to results/BENCH_<name>.json.

    Unlike :func:`bench_json` (which overwrites), this keeps a
    ``history`` list so the file accumulates a trajectory across runs
    and PRs (the ``BENCH_e2e.json`` / ``BENCH_campaign.json``
    contract).  The file format lives in one place —
    :func:`repro.bench.append_history` — shared with the campaign CLI.
    """
    from repro.bench import append_history

    def _append(name: str, payload: dict) -> None:
        append_history(
            RESULTS_DIR / f"BENCH_{name}.json",
            [
                {
                    "benchmark": request.node.nodeid,
                    "full_protocol": FULL,
                    **payload,
                }
            ],
        )

    return _append


@pytest.fixture()
def emit(capsys, request):
    """Print a report table bypassing capture, and archive it."""

    def _emit(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        with open(RESULTS_DIR / f"{name}.txt", "w") as f:
            f.write(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit


@pytest.fixture(scope="session")
def bench_batch_size() -> int:
    return GLOBAL_BATCH


@pytest.fixture(scope="session")
def bench_iterations() -> int:
    return NUM_ITERATIONS


@pytest.fixture(scope="session")
def bench_solver_config() -> SolverConfig:
    return BENCH_SOLVER


_SYSTEM_CACHE: dict = {}


@pytest.fixture(scope="session")
def system_cache():
    """Memoises constructed systems across benchmarks (profiling and
    baseline tuning are deterministic per workload)."""
    return _SYSTEM_CACHE
