"""Fig. 8: solver complexity and scalability.

Paper: as the cluster grows from 64 to 1024 GPUs (with the batch
scaled proportionally), estimated per-iteration *training* time stays
roughly level, per-iteration *solving* time grows, but the amortized
solving time — the solver service runs on every node's CPUs, so
divide by N/8 nodes — stays far below the training time, i.e. solving
remains fully overlappable.

We sweep 64..256 GPUs by default (512 with REPRO_BENCH_FULL=1); the
wall-clock budget per MILP is capped exactly as in the deployed
solver, so solve times here are what a deployment would see.
"""

import time

import pytest

from benchmarks.conftest import FULL
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.core.planner import PlannerConfig
from repro.cluster.topology import standard_cluster
from repro.cost.estimator import estimate_iteration_time
from repro.cost.profiler import fit_cost_model
from repro.data.dataset import SyntheticCorpus
from repro.data.distributions import COMMONCRAWL
from repro.experiments.reporting import format_table
from repro.model.config import GPT_7B

GPU_COUNTS = [64, 128, 256] + ([512] if FULL else [])
MAX_CONTEXT = 192 * 1024
#: Batch scales proportionally with the cluster (the paper's protocol).
SEQUENCES_PER_GPU = 2


def test_fig8_solver_scalability(benchmark, emit):
    def run():
        rows = []
        checks = []
        for num_gpus in GPU_COUNTS:
            cluster = standard_cluster(num_gpus)
            config = GPT_7B.with_max_context(MAX_CONTEXT)
            model = fit_cost_model(config, cluster)
            corpus = SyntheticCorpus(
                COMMONCRAWL,
                max_context=MAX_CONTEXT,
                global_batch_size=SEQUENCES_PER_GPU * num_gpus,
            )
            solver = FlexSPSolver(
                model,
                SolverConfig(
                    num_trials=2,
                    planner=PlannerConfig(time_limit=1.0, mip_rel_gap=0.05),
                ),
            )
            batch = corpus.batch(0).lengths
            start = time.perf_counter()
            plan = solver.solve(batch)
            solve_seconds = time.perf_counter() - start
            training_seconds = estimate_iteration_time(model, plan)
            amortized = solve_seconds / (num_gpus // 8)
            rows.append(
                [
                    num_gpus,
                    f"{training_seconds:.1f}",
                    f"{solve_seconds:.1f}",
                    f"{amortized:.2f}",
                ]
            )
            checks.append((num_gpus, training_seconds, solve_seconds, amortized))
        return rows, checks

    rows, checks = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["# GPUs", "est. training (s)", "solving (s)", "amortized (s)"],
            rows,
            title="Fig. 8: per-iteration training vs solver time "
            "(batch scales with cluster)",
        )
    )

    trainings = [c[1] for c in checks]
    # Estimated training time stays at a similar level as the cluster
    # and batch scale together (weak scaling).
    assert max(trainings) < 3 * min(trainings)
    # Amortized solving is always overlappable: well under the
    # training time of one iteration.
    for num_gpus, training, __, amortized in checks:
        assert amortized < training, f"{num_gpus} GPUs"
