"""Chaos benchmark: the campaign executor under deterministic faults.

The fault-tolerance PR's acceptance bar: for every schedule in the
chaos matrix — a worker killed mid-cell, a torn spill write, a stale
store lock, a hung cell, repeated pool death all the way down to
serial degradation — the unified campaign must

* complete, with every realised injection recovered by the graduated
  escalation ladder (resubmit → pool restart → shard reassignment →
  serial execution);
* produce metrics **bit-identical** to the fault-free serial pass
  (faults move where and when cells run, never what they measure);
* leave no worker pool behind (``live_pool_count`` back to baseline);
* append its recovery accounting and wall-clock overhead to
  ``results/BENCH_chaos.json``.

Wall-clock overhead is recorded, never gated: recovery cost depends on
the box (pool restart latency, the deterministic retry backoff), and
the trajectory file is where regressions are judged.  ``make
bench-chaos`` runs the matrix; ``make bench-chaos-smoke`` runs only
the CI smoke slice (``-k smoke``).
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from benchmarks.conftest import FULL
from repro.core.faults import FaultSchedule
from repro.core.pools import live_pool_count
from repro.core.solver import SolverConfig
from repro.experiments.campaign import unified_campaign
from repro.experiments.reporting import format_table
from repro.experiments.sweep import SweepRunner

#: Greedy backend: deterministic planning, so every chaotic pass is
#: bit-comparable to the fault-free reference.
CAMPAIGN_SOLVER = SolverConfig(backend="greedy", num_trials=2)

GLOBAL_BATCH = 512 if FULL else 128

#: Hang faults nap this long — survivable only because the watchdog
#: kills the sleeper first.
HANG_SECONDS = 30.0
WATCHDOG_SECONDS = 2.0


def _run_campaign(
    schedule: FaultSchedule | None = None,
    workers: int = 1,
    store_root: str | None = None,
    **runner_kwargs,
):
    """One unified-campaign pass; returns (metrics, wall, result)."""
    campaign = unified_campaign(global_batch_size=GLOBAL_BATCH)
    with SweepRunner(
        solver_config=CAMPAIGN_SOLVER,
        workers=workers,
        store=store_root,
        fault_schedule=schedule,
        **runner_kwargs,
    ) as runner:
        started = time.perf_counter()
        result = campaign.run(runner)
        wall = time.perf_counter() - started
    return list(result.sweep.metrics), wall, result


@pytest.fixture(scope="module")
def reference():
    """The fault-free serial pass every chaotic run must reproduce."""
    metrics, wall, _ = _run_campaign()
    return [m.deterministic() for m in metrics], wall


def _assert_recovered(reference_metrics, metrics, result):
    assert len(metrics) == len(reference_metrics)
    for want, metric in zip(reference_metrics, metrics):
        assert metric.deterministic() == want
    stats = result.sweep.fault_stats
    assert stats is not None
    assert stats.total_injections >= 1, "schedule never fired"
    return stats


def test_smoke_worker_kill_mid_cell(reference, emit, bench_json_history):
    """The CI smoke slice: one worker killed mid-cell, full recovery.

    Selected by ``make bench-chaos-smoke`` (``-k smoke``) so every CI
    run proves the first escalation rung — per-cell resubmit after a
    pool restart — without paying for the whole matrix.
    """
    reference_metrics, reference_wall = reference
    baseline_pools = live_pool_count()
    schedule = FaultSchedule.parse("worker_kill@cell:0")
    metrics, wall, result = _run_campaign(schedule, workers=2)
    stats = _assert_recovered(reference_metrics, metrics, result)
    assert dict(stats.injections) == {"worker_kill@cell": 1}
    assert stats.cell_retries >= 1
    assert stats.pool_restarts >= 1
    assert live_pool_count() == baseline_pools

    emit(
        f"Chaos smoke: worker_kill@cell:0 at workers=2 — "
        f"{stats.cell_retries} cell retries, {stats.pool_restarts} pool "
        f"restarts, bit-identical in {wall:.2f}s "
        f"(fault-free serial {reference_wall:.2f}s)"
    )
    bench_json_history(
        "chaos",
        {
            "mode": "smoke",
            "schedule": str(schedule),
            "workers": 2,
            "global_batch_size": GLOBAL_BATCH,
            "cpu_count": os.cpu_count(),
            "wall_seconds": round(wall, 3),
            "faultfree_wall_seconds": round(reference_wall, 3),
            "bit_identical": True,
            "faults": stats.to_dict(),
        },
    )


def test_chaos_matrix_recovers_bit_identical(
    reference, emit, bench_json_history
):
    """The full matrix: every fault kind, every escalation rung."""
    reference_metrics, reference_wall = reference
    baseline_pools = live_pool_count()
    rows = []
    records = []

    def _case(name, schedule, metrics, wall, result, **extra_checks):
        stats = _assert_recovered(reference_metrics, metrics, result)
        for attribute, floor in extra_checks.items():
            assert getattr(stats, attribute) >= floor, (
                f"{name}: expected {attribute} >= {floor}, "
                f"got {getattr(stats, attribute)}"
            )
        assert live_pool_count() == baseline_pools, f"{name}: leaked a pool"
        rows.append(
            (
                name,
                f"{wall:.2f}",
                str(stats.total_injections),
                str(stats.cell_retries),
                str(stats.pool_restarts),
                str(stats.degraded_cells),
                str(stats.watchdog_kills),
                str(stats.lock_breaks),
            )
        )
        records.append(
            {
                "mode": "matrix",
                "schedule": str(schedule),
                "case": name,
                "global_batch_size": GLOBAL_BATCH,
                "cpu_count": os.cpu_count(),
                "wall_seconds": round(wall, 3),
                "faultfree_wall_seconds": round(reference_wall, 3),
                "bit_identical": True,
                "faults": stats.to_dict(),
            }
        )
        return stats

    # 1. Worker killed mid-cell: resubmit + pool restart.
    schedule = FaultSchedule.parse("worker_kill@cell:0")
    metrics, wall, result = _run_campaign(schedule, workers=2)
    _case(
        "worker_kill@cell:0", schedule, metrics, wall, result,
        cell_retries=1, pool_restarts=1,
    )

    # 2. Torn spill write: the store reads the torn file as cold, and
    #    a second pass over the same (healed) store restores warm
    #    state that is still bit-identical.
    with tempfile.TemporaryDirectory() as store_root:
        schedule = FaultSchedule.parse("torn_write@spill:0")
        metrics, wall, result = _run_campaign(
            schedule, workers=2, store_root=store_root
        )
        _case("torn_write@spill:0", schedule, metrics, wall, result)
        restored_metrics, _, _ = _run_campaign(store_root=store_root)
        for want, metric in zip(reference_metrics, restored_metrics):
            assert metric.deterministic() == want

    # 3. Stale store lock (dead recorded holder): broken, counted,
    #    never waited out.
    with tempfile.TemporaryDirectory() as store_root:
        schedule = FaultSchedule.parse("stale_lock@lock:0")
        metrics, wall, result = _run_campaign(
            schedule, store_root=store_root
        )
        _case(
            "stale_lock@lock:0", schedule, metrics, wall, result,
            lock_breaks=1,
        )

    # 4. Hung cell: the watchdog kills the sleeper long before the nap
    #    ends and the cell takes the normal escalation path.
    schedule = FaultSchedule.parse(
        "hang@cell:0", hang_seconds=HANG_SECONDS
    )
    metrics, wall, result = _run_campaign(
        schedule, workers=2, watchdog_seconds=WATCHDOG_SECONDS
    )
    _case(
        "hang@cell:0", schedule, metrics, wall, result, watchdog_kills=1
    )
    assert wall < HANG_SECONDS / 2, "watchdog did not cut the hang short"

    # 5. Repeated pool death: every slot retires and the pass degrades
    #    to serial in-process execution — the ladder's last rung.
    schedule = FaultSchedule.parse("worker_kill@cell:*")
    metrics, wall, result = _run_campaign(
        schedule, workers=2, max_slot_restarts=0
    )
    _case(
        "worker_kill@cell:*", schedule, metrics, wall, result,
        degraded_cells=1,
    )

    emit(
        f"Chaos matrix: unified campaign, batch {GLOBAL_BATCH}, "
        f"fault-free serial {reference_wall:.2f}s, "
        f"{os.cpu_count()} CPU(s)\n"
        + format_table(
            [
                "schedule",
                "wall (s)",
                "injected",
                "retries",
                "restarts",
                "degraded",
                "watchdog",
                "lock breaks",
            ],
            rows,
        )
    )
    for record in records:
        bench_json_history("chaos", record)
