"""Table 3 + Fig. 5: the S6.3 case study.

GPT-7B on CommonCrawl, 384K maximum context, 64 GPUs, two consecutive
data batches ("Case 1" and "Case 2").

Table 3 shape: DeepSpeed uses <64> for every micro-batch;
FlexSP-BatchAda picks one homogeneous layout per batch (e.g. <16 x 4>
or <32 x 2>); FlexSP mixes degrees within batches, with small-degree
layouts (e.g. <8 x 8>, <1 x 64>) for the short-sequence micro-batches
and large groups only where long sequences force them.

Fig. 5a shape: DeepSpeed's All-to-All share is far larger than
FlexSP's (paper: ~31-39% vs ~10-14%), BatchAda in between; FlexSP's
All-to-All time is several times smaller than DeepSpeed's.

Fig. 5b shape: sequences assigned to low SP degrees are short; median
assigned length grows with degree.
"""

import statistics

import pytest

from repro.experiments.reporting import (
    format_table,
    format_violin_summary,
)
from repro.experiments.systems import (
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
)
from repro.experiments.workloads import case_study_workload


#: The case study always uses the paper's full batch size: Table 3's
#: layouts depend on each batch containing the corpus's long tail.
CASE_STUDY_BATCH = 512


@pytest.fixture(scope="module")
def case_study(bench_solver_config, system_cache):
    key = ("case-study", CASE_STUDY_BATCH)
    if key not in system_cache:
        workload = case_study_workload(global_batch_size=CASE_STUDY_BATCH)
        flexsp = FlexSPSystem(workload, bench_solver_config)
        deepspeed = DeepSpeedUlyssesSystem(workload)
        batchada = FlexSPBatchAdaSystem(workload)
        cases = {}
        for case, step in (("Case 1", 0), ("Case 2", 1)):
            batch = workload.corpus().batch(step).lengths
            cases[case] = {
                "FlexSP": flexsp.run_iteration(batch),
                "DeepSpeed": deepspeed.run_iteration(batch),
                "FlexSP-BatchAda": batchada.run_iteration(batch),
            }
        system_cache[key] = cases
    return system_cache[key]


def test_table3_heterogeneous_group_layouts(benchmark, emit, case_study):
    def run():
        rows = []
        for case, outcomes in case_study.items():
            for system in ("DeepSpeed", "FlexSP-BatchAda", "FlexSP"):
                layouts = outcomes[system].plan.layouts()
                rows.append([case, system, "  ".join(layouts)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["case", "system", "SP-group layout per micro-batch"],
            rows,
            title="Table 3: heterogeneous SP groups per micro-batch "
            "(GPT-7B / CommonCrawl / 384K)",
        )
    )

    for case, outcomes in case_study.items():
        # DeepSpeed: single static degree everywhere (SP=64 at 384K).
        ds_degrees = {
            g.degree
            for mb in outcomes["DeepSpeed"].plan.microbatches
            for g in mb.groups
        }
        assert ds_degrees == {64}, case
        # BatchAda: one degree per batch.
        ba_degrees = {
            g.degree
            for mb in outcomes["FlexSP-BatchAda"].plan.microbatches
            for g in mb.groups
        }
        assert len(ba_degrees) == 1, case
        # FlexSP: more than one degree across the batch, including
        # small intra-node groups.
        flex_degrees = {
            g.degree
            for mb in outcomes["FlexSP"].plan.microbatches
            for g in mb.groups
        }
        assert len(flex_degrees) >= 2, case
        assert min(flex_degrees) <= 8, case


def test_fig5a_alltoall_breakdown(benchmark, emit, case_study):
    def run():
        rows = []
        for case, outcomes in case_study.items():
            for system in ("DeepSpeed", "FlexSP-BatchAda", "FlexSP"):
                o = outcomes[system]
                rows.append(
                    [
                        case,
                        system,
                        f"{o.iteration_seconds:.1f}",
                        f"{o.alltoall_seconds:.1f}",
                        f"{100 * o.alltoall_fraction:.1f}%",
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["case", "system", "total (s)", "All-to-All (s)", "share"],
            rows,
            title="Fig. 5a: end-to-end breakdown, All-to-All vs Others",
        )
    )

    for case, outcomes in case_study.items():
        flexsp = outcomes["FlexSP"]
        deepspeed = outcomes["DeepSpeed"]
        batchada = outcomes["FlexSP-BatchAda"]
        # FlexSP slashes absolute All-to-All time (paper: up to 5.86x).
        assert flexsp.alltoall_seconds < deepspeed.alltoall_seconds / 2, case
        # Share ordering: FlexSP < BatchAda <= DeepSpeed.
        assert flexsp.alltoall_fraction < deepspeed.alltoall_fraction, case
        assert batchada.alltoall_fraction <= deepspeed.alltoall_fraction * 1.05, case
        # And end-to-end wins (paper: 1.54x over DeepSpeed here).
        assert flexsp.iteration_seconds < deepspeed.iteration_seconds, case


def test_fig5b_lengths_by_assigned_degree(benchmark, emit, case_study):
    def run():
        return case_study["Case 2"]["FlexSP"].plan.assignment_by_degree()

    by_degree = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_violin_summary(by_degree))

    degrees = sorted(by_degree)
    assert len(degrees) >= 2
    medians = [statistics.median(by_degree[d]) for d in degrees]
    # Median assigned length grows from the smallest to the largest
    # degree (the paper's violin plot trend).
    assert medians[0] < medians[-1]
    # The longest sequences live in the biggest groups.
    longest = max(s for ls in by_degree.values() for s in ls)
    assert longest in by_degree[degrees[-1]]
