"""Fig. 7: ablation study of the FlexSP solver's components.

Paper: on CommonCrawl at 192K and 384K, disabling the blaster's length
sorting (w/o Sort), replacing DP bucketing with the naive method
(w/ naive BKT), or removing bucketing entirely (w/o BKT) each hurts;
removing bucketing "increases the complexity of the MILP problem,
causing the solver to fail in producing a satisfactory solution within
limited time".

In this reproduction the deployed solver pairs the MILP with a greedy
LPT incumbent (standing in for SCIP's primal heuristics), which keeps
plan *quality* from collapsing when bucketing is ablated — so the
bucketing ablations surface exactly where the paper says they bite:
in solver cost.  The sorting ablation degrades the executed iteration
time directly.
"""

import time
from dataclasses import replace

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.runner import run_system
from repro.experiments.systems import FlexSPSystem
from repro.experiments.workloads import Workload
from repro.cluster.topology import standard_cluster
from repro.data.distributions import COMMONCRAWL
from repro.model.config import GPT_7B

ABLATIONS = ["FlexSP", "w/o Sort", "w/ naive BKT", "w/o BKT"]


def _ablated_system(workload, solver_config, ablation):
    system = FlexSPSystem(workload, solver_config)
    if ablation == "w/o Sort":
        system.solver = system.solver.ablated(sort_sequences=False)
    elif ablation == "w/ naive BKT":
        system.solver = system.solver.ablated(
            planner=replace(solver_config.planner, bucketing="naive")
        )
    elif ablation == "w/o BKT":
        system.solver = system.solver.ablated(
            planner=replace(solver_config.planner, bucketing="none")
        )
    return system


@pytest.fixture(scope="module")
def workloads(bench_batch_size):
    return {
        "192K": Workload(
            model=GPT_7B,
            distribution=COMMONCRAWL,
            max_context=192 * 1024,
            cluster=standard_cluster(64),
            global_batch_size=bench_batch_size,
        ),
        "384K": Workload(
            model=GPT_7B,
            distribution=COMMONCRAWL,
            max_context=384 * 1024,
            cluster=standard_cluster(64),
            global_batch_size=bench_batch_size,
        ),
    }


def test_fig7_solver_ablations(
    benchmark, emit, workloads, bench_solver_config, bench_iterations
):
    def run():
        results = {}
        for ctx, workload in workloads.items():
            cells = {}
            for ablation in ABLATIONS:
                system = _ablated_system(workload, bench_solver_config, ablation)
                start = time.perf_counter()
                result = run_system(system, workload, bench_iterations)
                wall = time.perf_counter() - start
                cells[ablation] = (
                    result.mean_iteration_seconds,
                    result.mean_solve_seconds,
                    wall,
                )
            results[ctx] = cells
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for ctx, cells in results.items():
        base = cells["FlexSP"][0]
        for ablation in ABLATIONS:
            iteration, solve, __ = cells[ablation]
            rows.append(
                [
                    ctx,
                    ablation,
                    f"{iteration:.1f}",
                    f"{iteration / base:.2f}x",
                    f"{solve:.1f}",
                ]
            )
    emit(
        format_table(
            ["max seq", "variant", "iteration (s)", "relative", "solve (s)"],
            rows,
            title="Fig. 7: FlexSP solver ablations (CommonCrawl, 64 GPUs)",
        )
    )

    for ctx, cells in results.items():
        base_iter, base_solve, __ = cells["FlexSP"]
        # No ablation beats the full system (beyond noise).
        for ablation in ABLATIONS[1:]:
            assert cells[ablation][0] >= base_iter * 0.98, f"{ctx}/{ablation}"
        # Sorting ablation degrades executed iteration time.
        assert cells["w/o Sort"][0] > base_iter * 1.02, ctx
        # Removing bucketing blows up solver cost (the paper's failure
        # mode for this ablation).
        assert cells["w/o BKT"][1] > base_solve * 1.3, ctx
