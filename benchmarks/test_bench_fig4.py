"""Fig. 4: end-to-end iteration time across the evaluation grid.

Paper protocol: {GPT-7B, 13B, 30B} x {GitHub, CommonCrawl, Wikipedia}
x {192K, 384K} on 64 GPUs, global batch 512 sequences, average
iteration seconds per system.

Expected shape: FlexSP fastest everywhere (paper: up to 1.72x over
DeepSpeed, 1.98x over Megatron-LM); FlexSP-BatchAda lands between
DeepSpeed and FlexSP; the FlexSP speedup is largest on Wikipedia (the
most skewed corpus) and smallest on GitHub; Megatron-LM generally
trails DeepSpeed (Appendix D).

Benchmark protocol here: reduced global batch (128) and one measured
iteration per cell unless REPRO_BENCH_FULL=1 — see conftest.
"""

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.runner import run_system
from repro.experiments.systems import (
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
    MegatronLMSystem,
)
from repro.experiments.workloads import fig4_workloads


def _run_cell(workload, solver_config, iterations, cache):
    key = ("fig4", workload.name)
    if key not in cache:
        systems = [
            FlexSPSystem(workload, solver_config),
            DeepSpeedUlyssesSystem(workload),
            FlexSPBatchAdaSystem(workload),
            MegatronLMSystem(workload),
        ]
        cache[key] = {
            s.name: run_system(s, workload, iterations) for s in systems
        }
    return cache[key]


@pytest.fixture(scope="module")
def grid(bench_batch_size):
    return fig4_workloads(global_batch_size=bench_batch_size)


def test_fig4_end_to_end_grid(
    benchmark, emit, grid, bench_solver_config, bench_iterations, system_cache
):
    def run():
        rows = []
        results = {}
        for workload in grid:
            cell = _run_cell(
                workload, bench_solver_config, bench_iterations, system_cache
            )
            results[workload.name] = cell
            flexsp = cell["FlexSP"].mean_iteration_seconds
            deepspeed = cell["DeepSpeed"].mean_iteration_seconds
            batchada = cell["FlexSP-BatchAda"].mean_iteration_seconds
            megatron = cell["Megatron-LM"].mean_iteration_seconds
            rows.append(
                [
                    workload.name,
                    f"{flexsp:.1f}",
                    f"{batchada:.1f}",
                    f"{deepspeed:.1f}",
                    f"{megatron:.1f}",
                    f"{deepspeed / flexsp:.2f}x",
                    f"{megatron / flexsp:.2f}x",
                ]
            )
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            [
                "workload",
                "FlexSP (s)",
                "BatchAda (s)",
                "DeepSpeed (s)",
                "Megatron (s)",
                "vs DS",
                "vs MLM",
            ],
            rows,
            title="Fig. 4: end-to-end iteration time, 64 GPUs "
            "(reduced batch; see EXPERIMENTS.md)",
        )
    )

    speedups_vs_ds = {}
    for name, cell in results.items():
        flexsp = cell["FlexSP"].mean_iteration_seconds
        # FlexSP never loses to any baseline.
        assert flexsp <= cell["DeepSpeed"].mean_iteration_seconds * 1.02, name
        assert flexsp <= cell["FlexSP-BatchAda"].mean_iteration_seconds * 1.02, name
        assert flexsp <= cell["Megatron-LM"].mean_iteration_seconds * 1.02, name
        # BatchAda sits between FlexSP and DeepSpeed.
        assert (
            cell["FlexSP-BatchAda"].mean_iteration_seconds
            <= cell["DeepSpeed"].mean_iteration_seconds * 1.02
        ), name
        speedups_vs_ds[name] = (
            cell["DeepSpeed"].mean_iteration_seconds / flexsp
        )

    # A real speedup exists somewhere in the grid (paper: up to 1.72x).
    assert max(speedups_vs_ds.values()) > 1.15

    # Skew ordering at 384K on GPT-7B: Wikipedia >= GitHub.
    wiki = speedups_vs_ds["gpt-7b/wikipedia/384K/64gpu"]
    github = speedups_vs_ds["gpt-7b/github/384K/64gpu"]
    assert wiki >= github * 0.95
