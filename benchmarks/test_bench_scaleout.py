"""Scale-out campaign benchmark: worker scaling and store sharing.

The sharded work-stealing executor's acceptance bar (the scale-out PR):

* the unified campaign at ``workers in (2, 4)`` is **bit-identical**
  to the serial pass — scheduling affects only *where* a cell runs;
* context builds stay bounded by unique workloads plus steals (the
  affinity dispatch actually deduplicates context construction);
* the cold-batching prewarm runs at ``workers > 1`` (the old serial
  restriction is gone): ``prewarm_planned > 0`` on a cold pass;
* two **concurrent** campaigns sharing one :class:`CacheStore` stay
  bit-identical, with write amplification and lock contention
  recorded;
* the record is appended to ``results/BENCH_scaleout.json``.

Wall-clock figures are recorded, never gated: this benchmark must run
on any box, and on a single-core CI runner fan-out is legitimately
slower than serial (pool startup + pickling with no parallelism to
pay for it) — the trajectory file is where scaling is judged, against
the machine that produced each record.
"""

from __future__ import annotations

import os
import threading
import time

from benchmarks.conftest import FULL
from repro.core.cache_store import CacheStore
from repro.core.solver import SolverConfig
from repro.experiments.campaign import unified_campaign
from repro.experiments.reporting import format_table
from repro.experiments.sweep import SweepRunner, workload_signature

#: Greedy backend: planning is deterministic work, so every pass is
#: bit-comparable wherever it lands.
CAMPAIGN_SOLVER = SolverConfig(backend="greedy", num_trials=2)

GLOBAL_BATCH = 512 if FULL else 128
WORKER_GRID = (2, 4)


def _run_campaign(workers: int, store_root: str | None = None):
    """One unified-campaign pass; returns (metrics, wall, result)."""
    campaign = unified_campaign(global_batch_size=GLOBAL_BATCH)
    with SweepRunner(
        solver_config=CAMPAIGN_SOLVER, workers=workers, store=store_root
    ) as runner:
        started = time.perf_counter()
        result = campaign.run(runner)
        wall = time.perf_counter() - started
    return list(result.sweep.metrics), wall, result


def test_worker_scaling_bit_identical(emit, bench_json_history):
    campaign = unified_campaign(global_batch_size=GLOBAL_BATCH)
    unique_workloads = len(
        {workload_signature(c.workload) for c in campaign.cells}
    )

    serial_metrics, serial_wall, serial_result = _run_campaign(workers=1)
    rows = [("serial", f"{serial_wall:.2f}", "-", "-", "-")]
    record = {
        "mode": "worker-scaling",
        "cells": len(campaign.cells),
        "unique_workloads": unique_workloads,
        "global_batch_size": GLOBAL_BATCH,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial_wall, 3),
        "fanout": [],
    }
    for workers in WORKER_GRID:
        metrics, wall, result = _run_campaign(workers=workers)

        # The contract under test: fan-out changes where a cell runs,
        # never what it measures.
        assert len(metrics) == len(serial_metrics)
        for a, b in zip(serial_metrics, metrics):
            assert a.deterministic() == b.deterministic()

        telemetry = result.sweep.worker_telemetry
        steals = sum(t.steals for t in telemetry)
        builds = sum(t.context_builds for t in telemetry)
        # Affinity dispatch: each workload's context is built in one
        # worker; every extra build was paid for by a steal.
        assert builds <= unique_workloads + steals, (
            f"{builds} context builds > {unique_workloads} workloads "
            f"+ {steals} steals at workers={workers}"
        )
        assert sum(t.cells for t in telemetry) == result.sweep.unique_cells
        # The prewarm restriction is lifted: the cold fan-out pass
        # batch-planned FlexSP shapes up front.
        assert result.sweep.prewarm_planned > 0

        rows.append(
            (
                f"workers={workers}",
                f"{wall:.2f}",
                str(steals),
                str(builds),
                str(result.sweep.prewarm_planned),
            )
        )
        record["fanout"].append(
            {
                "workers": workers,
                "wall_seconds": round(wall, 3),
                "steals": steals,
                "context_builds": builds,
                "prewarm_planned": result.sweep.prewarm_planned,
            }
        )

    emit(
        f"Scale-out worker scaling: unified campaign, "
        f"{len(campaign.cells)} cells ({unique_workloads} workloads), "
        f"batch {GLOBAL_BATCH}, {os.cpu_count()} CPU(s)\n"
        + format_table(
            ["pass", "wall (s)", "steals", "ctx builds", "prewarmed"], rows
        )
    )
    bench_json_history("scaleout", record)


def test_concurrent_campaigns_share_one_store(
    emit, bench_json_history, tmp_path
):
    """Two campaigns racing one store: both bit-identical, contention
    counted.  Each thread owns its runner (and its own ``CacheStore``
    handle on the shared root), so every save goes through the
    advisory-lock path — ``lock_waits`` counts the collisions."""
    reference_metrics, __, ___ = _run_campaign(workers=1)

    store_root = str(tmp_path / "shared_store")
    outcomes: dict[str, tuple] = {}

    def _campaign(label: str) -> None:
        outcomes[label] = _run_campaign(workers=1, store_root=store_root)

    threads = [
        threading.Thread(target=_campaign, args=(label,))
        for label in ("first", "second")
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    total_writes = 0
    lock_waits = 0
    for label in ("first", "second"):
        metrics, __, result = outcomes[label]
        for a, b in zip(reference_metrics, metrics):
            assert a.deterministic() == b.deterministic(), label
        stats = result.sweep.store_stats
        total_writes += stats.writes
        lock_waits += stats.lock_waits

    cells = len(reference_metrics)
    amplification = total_writes / cells
    store = CacheStore(store_root)
    files = store.stats().files

    emit(
        f"Concurrent campaigns, one store: 2 x {cells} cells in "
        f"{wall:.2f}s, {total_writes} writes across both "
        f"({amplification:.3f}/cell), {files} store files, "
        f"{lock_waits} lock waits, metrics bit-identical to serial"
    )
    bench_json_history(
        "scaleout",
        {
            "mode": "concurrent-store-sharing",
            "campaigns": 2,
            "cells_per_campaign": cells,
            "global_batch_size": GLOBAL_BATCH,
            "cpu_count": os.cpu_count(),
            "wall_seconds": round(wall, 3),
            "total_writes": total_writes,
            "write_amplification": round(amplification, 4),
            "store_files": files,
            "lock_waits": lock_waits,
        },
    )
