"""Hot-kernel tier micro-benchmark: native vs fallback, per kernel.

Times each registered kernel (``repro.core.kernels.KERNEL_NAMES``)
through the *production dispatch path* on both tiers — the numba
``@njit`` twins when the optional dependency is importable, the
numpy/scalar fallbacks always — and appends the per-kernel ops/sec,
the native-vs-fallback speedup and the one-off JIT warmup cost (kept
separate from steady state) to ``results/BENCH_kernels.json``.

Bit-identity is asserted before anything is timed: every kernel's
output under ``force("native")`` must equal its output under
``force("fallback")``.  On hosts without numba the native leg is
recorded as ``null`` (dispatch degrades to the fallback, so timing it
again would just duplicate the fallback figure).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import FULL
from repro.cluster.topology import standard_cluster
from repro.core import kernels
from repro.core.blaster import balanced_cut_points_multi
from repro.core.bucketing import optimal_buckets
from repro.core.planner_greedy import (
    _assign_lpt_scalar,
    _assign_lpt_scalar_native,
    _assign_lpt_stacked,
    _assign_lpt_stacked_native,
    _layout_stack,
)
from repro.cost.model import cost_table
from repro.cost.profiler import fit_cost_model
from repro.experiments.reporting import format_table
from repro.model.config import GPT_7B

REPEATS = 30 if FULL else 8


def _fit(num_gpus: int):
    return fit_cost_model(
        GPT_7B.with_max_context(64 * 1024), standard_cluster(num_gpus)
    )


def _lpt_instance(num_gpus: int, count: int, seed: int):
    model = _fit(num_gpus)
    rng = np.random.default_rng(seed)
    lengths = tuple(
        int(s) for s in rng.integers(256, 300 * num_gpus, size=count)
    )
    ordered = sorted(lengths, reverse=True)
    table = cost_table(model)
    stack = _layout_stack(model, max(lengths))
    rows = stack.surviving(float(sum(lengths)), float(max(lengths)))
    assert rows.size > 0
    return ordered, table, stack, rows


def _make_ops():
    """One ``name -> zero-arg callable`` per kernel; each callable runs
    the production dispatch (tier chosen by the ambient force) and
    returns a comparable result."""
    scalar_ordered, scalar_table, scalar_stack, scalar_rows = _lpt_instance(
        8, 24, seed=23
    )
    stacked_ordered, stacked_table, stacked_stack, stacked_rows = (
        _lpt_instance(64, 32, seed=29)
    )
    rng = np.random.default_rng(31)
    bucket_lengths = [int(s) for s in rng.integers(1, 50_000, size=2_000)]
    blast_lengths = sorted(
        int(s) for s in rng.integers(64, 20_000, size=2_000)
    )

    def lpt_scalar():
        use_native = kernels.use_native("lpt_scalar")
        ordered_arr = np.asarray(scalar_ordered, dtype=np.float64)
        out = []
        for row in (int(r) for r in scalar_rows):
            if use_native:
                assigned = _assign_lpt_scalar_native(
                    scalar_ordered, ordered_arr, scalar_stack, row,
                    scalar_table,
                )
            else:
                assigned = _assign_lpt_scalar(
                    scalar_ordered,
                    scalar_stack.lane_constants[row],
                    scalar_table,
                )
            out.append(assigned)
        return out

    def lpt_stacked():
        if kernels.use_native("lpt_stacked"):
            got = _assign_lpt_stacked_native(
                stacked_ordered, stacked_stack, stacked_rows, stacked_table
            )
        else:
            got = _assign_lpt_stacked(
                stacked_ordered, stacked_stack, stacked_rows, stacked_table
            )
        choices, makespans, winner = got
        return choices.tolist(), makespans.tolist(), int(winner)

    def bucketing_dp():
        return optimal_buckets(bucket_lengths, 16)

    def blaster_dp():
        return balanced_cut_points_multi(blast_lengths, (6, 7, 8))

    return {
        "lpt_scalar": lpt_scalar,
        "lpt_stacked": lpt_stacked,
        "bucketing_dp": bucketing_dp,
        "blaster_dp": blaster_dp,
    }


def _steady_ops_per_sec(op) -> float:
    op()  # one unmeasured pass (cache warm, JIT already compiled)
    started = time.perf_counter()
    for __ in range(REPEATS):
        op()
    return REPEATS / (time.perf_counter() - started)


def test_kernel_tier_throughput(emit, bench_json_history):
    ops = _make_ops()
    assert set(ops) == set(kernels.KERNEL_NAMES)
    native_available = kernels.native_available()

    # JIT warmup: the one-off compilation cost the steady-state
    # figures below must not include.
    with kernels.force("native"):
        warmup_seconds = kernels.warmup()

    records = {}
    for name, op in ops.items():
        with kernels.force("fallback"):
            reference = op()
            fallback_ops = _steady_ops_per_sec(op)
        native_ops = None
        with kernels.force("native"):
            assert op() == reference  # bit-identity across tiers
            if native_available:
                native_ops = _steady_ops_per_sec(op)
        records[name] = {
            "fallback_ops_per_sec": round(fallback_ops, 2),
            "native_ops_per_sec": (
                round(native_ops, 2) if native_ops is not None else None
            ),
            "native_speedup": (
                round(native_ops / fallback_ops, 3)
                if native_ops is not None
                else None
            ),
        }

    rows = [
        [
            name,
            f"{rec['fallback_ops_per_sec']:.1f}",
            (
                f"{rec['native_ops_per_sec']:.1f}"
                if rec["native_ops_per_sec"] is not None
                else "n/a"
            ),
            (
                f"{rec['native_speedup']:.2f}x"
                if rec["native_speedup"] is not None
                else "n/a"
            ),
        ]
        for name, rec in records.items()
    ]
    emit(
        format_table(
            ["kernel", "fallback/s", "native/s", "speedup"],
            rows,
            title=(
                "Hot-kernel tier: steady-state ops/sec "
                f"(native={'numba' if native_available else 'unavailable'}, "
                f"JIT warmup {warmup_seconds:.2f}s)"
            ),
        )
    )
    bench_json_history(
        "kernels",
        {
            "native_available": native_available,
            "jit_warmup_seconds": round(warmup_seconds, 4),
            "repeats": REPEATS,
            "kernels": records,
            "tier": kernels.describe_dict(),
        },
    )
