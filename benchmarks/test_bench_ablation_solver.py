"""Extension ablations beyond the paper's own (DESIGN.md).

1. MILP backend (HiGHS, with greedy incumbent) vs pure greedy LPT —
   plan quality and solve wall-time.
2. Bucket count Q sweep around the paper's default of 16.
3. Micro-batch trial count M' sweep around the paper's default of 5.
"""

import time
from dataclasses import replace

import pytest

from repro.cluster.topology import standard_cluster
from repro.core.planner import PlannerConfig
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.cost.profiler import fit_cost_model
from repro.data.dataset import SyntheticCorpus
from repro.data.distributions import COMMONCRAWL
from repro.experiments.reporting import format_table
from repro.model.config import GPT_7B

MAX_CONTEXT = 192 * 1024


@pytest.fixture(scope="module")
def setup(bench_batch_size):
    cluster = standard_cluster(64)
    config = GPT_7B.with_max_context(MAX_CONTEXT)
    model = fit_cost_model(config, cluster)
    corpus = SyntheticCorpus(
        COMMONCRAWL, max_context=MAX_CONTEXT, global_batch_size=bench_batch_size
    )
    return model, corpus.batch(0).lengths


def _solve(model, batch, config):
    solver = FlexSPSolver(model, config)
    start = time.perf_counter()
    plan = solver.solve(batch)
    return plan.predicted_time, time.perf_counter() - start


def test_ablation_milp_vs_greedy_backend(benchmark, emit, setup):
    model, batch = setup
    planner = PlannerConfig(time_limit=1.0, mip_rel_gap=0.05)

    def run():
        milp = _solve(model, batch, SolverConfig(
            num_trials=2, backend="milp", planner=planner))
        greedy = _solve(model, batch, SolverConfig(
            num_trials=2, backend="greedy", planner=planner))
        return {"milp": milp, "greedy": greedy}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["backend", "predicted iteration (s)", "solve wall (s)"],
            [
                [k, f"{pred:.2f}", f"{wall:.2f}"]
                for k, (pred, wall) in results.items()
            ],
            title="Ablation: MILP backend vs greedy LPT fallback",
        )
    )
    # MILP (primed with the greedy incumbent) never predicts worse.
    assert results["milp"][0] <= results["greedy"][0] * 1.001
    # Greedy is at least 3x faster to solve.
    assert results["greedy"][1] < results["milp"][1] / 3


def test_ablation_bucket_count_sweep(benchmark, emit, setup):
    model, batch = setup
    base = SolverConfig(
        num_trials=2, planner=PlannerConfig(time_limit=1.0, mip_rel_gap=0.05)
    )

    def run():
        results = {}
        for q in (4, 8, 16, 32):
            cfg = replace(base, planner=replace(base.planner, num_buckets=q))
            results[q] = _solve(model, batch, cfg)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["Q", "predicted iteration (s)", "solve wall (s)"],
            [
                [str(q), f"{pred:.2f}", f"{wall:.2f}"]
                for q, (pred, wall) in results.items()
            ],
            title="Ablation: bucket count Q (paper default 16)",
        )
    )
    predictions = [pred for pred, __ in results.values()]
    # Bucket count is a robustness knob, not a cliff: predictions stay
    # within a modest band across Q.
    assert max(predictions) < 1.5 * min(predictions)


def test_ablation_trial_count_sweep(benchmark, emit, setup):
    model, batch = setup
    planner = PlannerConfig(time_limit=1.0, mip_rel_gap=0.05)

    def run():
        results = {}
        for trials in (1, 2, 5):
            cfg = SolverConfig(num_trials=trials, planner=planner)
            results[trials] = _solve(model, batch, cfg)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["M'", "predicted iteration (s)", "solve wall (s)"],
            [
                [str(t), f"{pred:.2f}", f"{wall:.2f}"]
                for t, (pred, wall) in results.items()
            ],
            title="Ablation: micro-batch trial count M' (paper default 5)",
        )
    )
    # More trials never hurt the chosen plan.
    assert results[5][0] <= results[1][0] * 1.001
    assert results[2][0] <= results[1][0] * 1.001
