"""Planning-as-a-service latency benchmark (the service-tentpole bar).

A seeded Gamma-arrival trace over three heterogeneous tenants is
replayed against a resident :class:`~repro.service.PlanService` twice
(burst-cold, then warm churn — see :mod:`repro.service.benchmark`).
The acceptance bar:

* in-flight coalescing observed (``coalesced > 0``) on the
  duplicate-heavy trace, and per-tenant admission shedding engaged
  (``shed > 0``) under the tight pending bound;
* **every** unique served plan bit-identical to a cold
  ``FlexSPSolver`` solve of the same batch on a fresh engine;
* p50/p99 plan latency, sustained plans/sec, plan-cache hit rate and
  shed rate appended to ``results/BENCH_service.json``.

The default tier runs in seconds (16K contexts, batch 8);
``REPRO_BENCH_FULL=1`` replays a longer trace at the paper's
32K/batch-16 service scale.
"""

from __future__ import annotations

from benchmarks.conftest import FULL
from repro.experiments.reporting import format_table
from repro.service.benchmark import run_service_benchmark
from repro.service.traffic import service_jobs

MAX_CONTEXT = (32 if FULL else 16) * 1024
GLOBAL_BATCH = 16 if FULL else 8
DURATION = 20.0 if FULL else 5.0
RATE = 1.5 if FULL else 0.8
STEP_WINDOW = 4 if FULL else 2


def test_service_trace_latency_under_churn(emit, bench_json_history):
    jobs = service_jobs(
        max_context=MAX_CONTEXT, global_batch_size=GLOBAL_BATCH
    )
    record = run_service_benchmark(
        jobs=jobs,
        duration=DURATION,
        rate=RATE,
        cv=2.0,
        seed=23,
        step_window=STEP_WINDOW,
        max_pending_per_tenant=1,
        worker_threads=2,
        verify=True,
    )

    # The duplicate-heavy trace must exercise both control paths.
    assert record["coalesced"] > 0, "no in-flight coalescing observed"
    assert record["shed"] > 0, "admission control never engaged"
    assert record["warm_hits"] > 0, "the churn replay never hit warm"
    # Every unique served plan re-solved cold and matched bit-for-bit.
    assert record["bit_identical_verified"] == record["unique_shapes"]
    # Conservation: every submission was answered or deterministically
    # shed, none dropped on the floor.
    assert record["served"] + record["shed"] == record["submitted"]

    rows = [
        (
            phase,
            str(record[key]["served"]),
            f"{record[key]['plans_per_second']:.1f}",
            f"{record[key]['p50_ms']:.2f}",
            f"{record[key]['p99_ms']:.2f}",
        )
        for phase, key in (
            ("burst (cold)", "cold_phase"),
            ("churn (warm)", "warm_phase"),
        )
    ]
    emit(
        f"PlanService trace: {record['trace']['requests']} requests/replay "
        f"x2 over {len(record['jobs'])} tenants "
        f"({MAX_CONTEXT // 1024}K, batch {GLOBAL_BATCH}), "
        f"{record['unique_shapes']} unique shapes, "
        f"{record['coalesced']} coalesced, shed rate "
        f"{record['shed_rate']:.0%}, plan-cache hit rate "
        f"{record['plan_cache_hit_rate']:.0%}, "
        f"{record['bit_identical_verified']}/{record['unique_shapes']} "
        "bit-identical to cold solves\n"
        + format_table(
            ["phase", "served", "plans/s", "p50 (ms)", "p99 (ms)"], rows
        )
    )
    bench_json_history("service", record)
