"""Fig. 9 (Appendix C): cost-model estimation accuracy.

Paper: across SP degrees 4..64 and diverse (sequence length, batch
size) workloads, the planner's Eq. 14 estimate deviates from measured
end-to-end time by less than ~5-6%.

We compare the fitted cost model against the simulator's ground truth
on the same probe grid the profiler never saw scaled combinations of.
"""

import statistics

import pytest

from repro.cluster.topology import standard_cluster
from repro.cost.profiler import estimation_errors, fit_cost_model
from repro.experiments.reporting import format_table
from repro.model.config import GPT_7B

#: Held-out probe grid: lengths offset from the fitting grid.
HOLDOUT_LENGTHS = (3072, 6144, 12288, 24576, 49152)
HOLDOUT_COUNTS = (2, 8)


def test_fig9_estimation_accuracy(benchmark, emit):
    cluster = standard_cluster(64)
    config = GPT_7B.with_max_context(384 * 1024)

    def run():
        model = fit_cost_model(config, cluster)
        return estimation_errors(
            model,
            config,
            cluster,
            probe_lengths=HOLDOUT_LENGTHS,
            probe_counts=HOLDOUT_COUNTS,
        )

    errors = benchmark.pedantic(run, rounds=1, iterations=1)

    by_degree: dict[int, list[float]] = {}
    for degree, __, err in errors:
        by_degree.setdefault(degree, []).append(err)
    rows = []
    for degree in sorted(by_degree):
        errs = by_degree[degree]
        rows.append(
            [
                f"SP={degree}",
                f"{100 * statistics.fmean(errs):+.1f}%",
                f"{100 * max(errs, key=abs):+.1f}%",
            ]
        )
    emit(
        format_table(
            ["degree", "mean error", "worst error"],
            rows,
            title="Fig. 9: cost-model estimation error vs simulator "
            "(held-out workloads)",
        )
    )

    all_errors = [e for ____, ____, e in errors]
    worst = max(abs(e) for e in all_errors)
    mean_abs = statistics.fmean(abs(e) for e in all_errors)
    # Paper: deviations consistently below ~5-6%.
    assert worst < 0.10, f"worst {worst:.1%}"
    assert mean_abs < 0.04, f"mean {mean_abs:.1%}"
    # The model is not degenerate (fitting itself): some residual exists.
    assert any(abs(e) > 1e-5 for e in all_errors)
