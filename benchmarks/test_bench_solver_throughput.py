"""Solver-throughput benchmark: plans/sec before vs. after the
vectorized-kernel + plan-cache + persistent-service overhaul.

The *reference* path is a faithful re-implementation of the pre-PR
solver loop — per-trial planning of every micro-batch from scratch
with the scalar ``CostModel`` evaluated per (group, sequence) step —
kept here so the speedup stays measurable after the optimized code
replaced it in-tree (both paths produce bit-identical plans, which
this benchmark asserts).

Contract (tightened by the cold-path planning engine PR: memoised
dominance-pruned layout enumeration, the stacked/incremental LPT
passes, and the one-DP-per-solve blaster), on a 4-trial
~8-micro-batch workload:

* cold (empty plan cache): >= 4x reference plans/sec — comfortably
  past 3x the pre-engine cold figure, which sat at ~1.6x reference
  (see the ``BENCH_solver.json`` history; measured ~8-9x on the
  reference container, so the gate keeps a ~2x noise margin for
  shared CI runners while the recorded figure tracks the real value);
* warm (recurring batches): >= 3x reference plans/sec;
* plans and predicted iteration times bit-for-bit equal to the
  reference.

Results are *appended* to ``results/BENCH_solver.json`` so the
cold-path trajectory stays diffable across PRs; the per-stage
SolveStats breakdown (enumerate / lpt / milp_build / milp_solve)
rides each record and is printed under
``python -m repro.bench solver_throughput --profile``.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import FULL, PROFILE
from repro.cluster.topology import standard_cluster
from repro.core.blaster import blast, min_microbatch_count
from repro.core.planner import PlanInfeasibleError, PlannerConfig
from repro.core.planner_greedy import candidate_layouts
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.core.types import GroupAssignment, MicroBatchPlan, SequenceBatch
from repro.cost.profiler import fit_cost_model
from repro.experiments.reporting import format_table
from repro.model.config import GPT_7B

NUM_TRIALS = 4
NUM_BATCHES = 8 if FULL else 4
TARGET_MICROBATCHES = 8


def _workload(model, dense: bool):
    """Batches sized for ~8 micro-batches; 256-quantized lengths (a
    packed corpus), so shapes recur across trials within one solve."""
    rng = random.Random(3)
    top = 2_500 if dense else 16_000
    target = (TARGET_MICROBATCHES - 0.5) * model.cluster_token_capacity()
    batches = []
    for __ in range(NUM_BATCHES):
        lengths: list[int] = []
        while sum(lengths) < target:
            lengths.append(max(1, rng.randint(256, top) // 256) * 256)
        batches.append(tuple(lengths))
    return batches


# ---------------------------------------------------------------------------
# Pre-PR reference: scalar LPT greedy, per-trial loop, no reuse.
# ---------------------------------------------------------------------------


def _reference_assign_lpt(lengths, degrees, model):
    group_lengths = [[] for __ in degrees]
    group_tokens = [0.0] * len(degrees)
    activation_budget = model.memory_budget - model.coeffs.model_state_bytes
    caps = [activation_budget / model.coeffs.memory_per_token * d for d in degrees]
    for s in sorted(lengths, reverse=True):
        best_index = None
        best_time = None
        for i, d in enumerate(degrees):
            if group_tokens[i] + s > caps[i]:
                continue
            t = model.time_with_overheads(group_lengths[i] + [s], d)
            if best_time is None or t < best_time:
                best_time = t
                best_index = i
        if best_index is None:
            return None
        group_lengths[best_index].append(s)
        group_tokens[best_index] += s
    makespan = max(
        model.time_with_overheads(gl, d)
        for gl, d in zip(group_lengths, degrees)
        if gl
    )
    return group_lengths, makespan


def _reference_plan_microbatch(lengths, model):
    lengths = tuple(int(s) for s in lengths)
    total = sum(lengths)
    if total > model.cluster_token_capacity():
        raise PlanInfeasibleError("micro-batch exceeds cluster capacity")
    best = None
    for layout in candidate_layouts(model, max(lengths)):
        assigned = _reference_assign_lpt(lengths, layout, model)
        if assigned is None:
            continue
        group_lengths, makespan = assigned
        if best is not None and makespan >= best[1]:
            continue
        assignments = []
        offset = 0
        order = sorted(range(len(layout)), key=lambda i: (-layout[i], i))
        for i in order:
            if not group_lengths[i]:
                continue
            degree = layout[i]
            ranks = tuple(range(offset, offset + degree))
            offset += degree
            assignments.append(
                GroupAssignment(
                    degree=degree,
                    device_ranks=ranks,
                    lengths=tuple(sorted(group_lengths[i], reverse=True)),
                )
            )
        best = (MicroBatchPlan(groups=tuple(assignments)), makespan)
    if best is None:
        raise PlanInfeasibleError("no layout could host the micro-batch")
    return best


def _reference_solve(batch, model, num_trials=NUM_TRIALS):
    """The pre-PR Alg. 1 loop: every trial plans every micro-batch."""
    batch = SequenceBatch(lengths=tuple(batch))
    m_min = min_microbatch_count(
        batch.total_tokens, model.cluster_token_capacity()
    )
    trials = [
        m for m in range(m_min, m_min + num_trials) if m <= len(batch.lengths)
    ] or [len(batch.lengths)]
    best = None
    for m in trials:
        try:
            microbatches = blast(batch, m)
        except ValueError:
            continue
        total = 0.0
        plans = []
        try:
            for mb in microbatches:
                plan, predicted = _reference_plan_microbatch(mb.lengths, model)
                plans.append(plan)
                total += predicted
        except PlanInfeasibleError:
            continue
        if best is None or total < best[0]:
            best = (total, plans)
    assert best is not None
    return best


def _throughput(plans_produced: int, seconds: float) -> float:
    return plans_produced / max(seconds, 1e-9)


def _stage_breakdown(plans) -> dict[str, float]:
    """Summed per-stage SolveStats seconds across iteration plans."""
    totals: dict[str, float] = {}
    for plan in plans:
        if plan.stats is None:
            continue
        for stage, seconds in plan.stats.stage_seconds().items():
            totals[stage] = totals.get(stage, 0.0) + seconds
    return totals


def test_solver_throughput(emit, bench_json_history):
    model = fit_cost_model(GPT_7B.with_max_context(64 * 1024), standard_cluster(8))
    batches = _workload(model, dense=True)

    # Reference: pre-PR scalar greedy, no cache, no reuse.
    start = time.perf_counter()
    reference = [_reference_solve(batch, model) for batch in batches]
    ref_seconds = time.perf_counter() - start
    ref_plans = sum(len(plans) for __, plans in reference)

    # Optimized, cold: fresh solver, empty cache.
    solver = FlexSPSolver(
        model, SolverConfig(num_trials=NUM_TRIALS, backend="greedy")
    )
    start = time.perf_counter()
    cold = [solver.solve(batch) for batch in batches]
    cold_seconds = time.perf_counter() - start
    cold_plans = sum(p.num_microbatches for p in cold)

    # Optimized, warm: recurring batches hit the cross-iteration cache.
    start = time.perf_counter()
    warm = [solver.solve(batch) for batch in batches]
    warm_seconds = time.perf_counter() - start

    # Identical outputs: the fast paths must reproduce the pre-PR
    # plans and predicted iteration times bit-for-bit.
    for (ref_total, ref_plans_list), cold_plan, warm_plan in zip(
        reference, cold, warm
    ):
        assert cold_plan.predicted_time == ref_total
        assert warm_plan.predicted_time == ref_total
        assert tuple(ref_plans_list) == cold_plan.microbatches
        assert warm_plan.microbatches == cold_plan.microbatches

    ref_rate = _throughput(ref_plans, ref_seconds)
    cold_rate = _throughput(cold_plans, cold_seconds)
    warm_rate = _throughput(cold_plans, warm_seconds)
    cold_speedup = cold_rate / ref_rate
    warm_speedup = warm_rate / ref_rate
    # "Reuse" counts both cross-solve cache hits and intra-solve
    # duplicate-shape dedup — every micro-batch that skipped a planner
    # call (SolveStats.hit_rate semantics).
    cold_hits = sum(p.stats.cache_hits + p.stats.dedup_hits for p in cold)
    cold_lookups = sum(p.stats.microbatches for p in cold)
    warm_hits = sum(p.stats.cache_hits + p.stats.dedup_hits for p in warm)
    warm_lookups = sum(p.stats.microbatches for p in warm)

    rows = [
        ("reference (pre-PR scalar)", f"{ref_rate:.1f}", "-", "-"),
        (
            "optimized cold",
            f"{cold_rate:.1f}",
            f"{cold_speedup:.2f}x",
            f"{cold_hits / cold_lookups:.0%}",
        ),
        (
            "optimized warm",
            f"{warm_rate:.1f}",
            f"{warm_speedup:.2f}x",
            f"{warm_hits / warm_lookups:.0%}",
        ),
    ]
    stages = _stage_breakdown(cold)
    emit(
        "Solver throughput (greedy backend, plans/sec; "
        f"{NUM_BATCHES} batches x {NUM_TRIALS} trials, "
        f"~{TARGET_MICROBATCHES} micro-batches/solve)\n"
        + format_table(
            ["path", "plans/sec", "speedup", "reuse rate"], rows
        )
    )
    if PROFILE:
        emit(
            "Cold-path stage breakdown (seconds across the cold pass)\n"
            + format_table(
                ["stage", "seconds"],
                [(stage, f"{s:.4f}") for stage, s in stages.items()],
            )
        )
    bench_json_history(
        "solver",
        {
            "reference_plans_per_sec": round(ref_rate, 2),
            "cold_plans_per_sec": round(cold_rate, 2),
            "warm_plans_per_sec": round(warm_rate, 2),
            "cold_speedup": round(cold_speedup, 3),
            "warm_speedup": round(warm_speedup, 3),
            "cold_reuse_rate": round(cold_hits / cold_lookups, 4),
            "warm_reuse_rate": round(warm_hits / warm_lookups, 4),
            "cold_stage_seconds": {
                stage: round(s, 5) for stage, s in stages.items()
            },
        },
    )

    assert cold_speedup >= 4.0, f"cold speedup {cold_speedup:.2f}x < 4x"
    assert warm_speedup >= 3.0, f"warm speedup {warm_speedup:.2f}x < 3x"
    assert warm_hits == warm_lookups  # fully cached second pass


def test_milp_cache_skips_solves(emit, bench_json_history):
    """MILP backend: a warm cache skips the HiGHS solves entirely and
    reproduces the cold plans exactly."""
    model = fit_cost_model(GPT_7B.with_max_context(64 * 1024), standard_cluster(8))
    batches = _workload(model, dense=False)
    planner = PlannerConfig(time_limit=10.0, mip_rel_gap=0.05)

    uncached = FlexSPSolver(
        model,
        SolverConfig(num_trials=NUM_TRIALS, planner=planner, plan_cache=False),
    )
    start = time.perf_counter()
    baseline = [uncached.solve(batch) for batch in batches]
    base_seconds = time.perf_counter() - start

    solver = FlexSPSolver(
        model, SolverConfig(num_trials=NUM_TRIALS, planner=planner)
    )
    start = time.perf_counter()
    cold = [solver.solve(batch) for batch in batches]
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = [solver.solve(batch) for batch in batches]
    warm_seconds = time.perf_counter() - start

    for base_plan, cold_plan, warm_plan in zip(baseline, cold, warm):
        assert cold_plan.predicted_time == base_plan.predicted_time
        assert warm_plan.predicted_time == base_plan.predicted_time
        assert cold_plan.microbatches == base_plan.microbatches
        assert warm_plan.microbatches == cold_plan.microbatches

    warm_speedup = base_seconds / max(warm_seconds, 1e-9)
    planner_calls_cold = sum(p.stats.planner_calls for p in cold)
    planner_calls_warm = sum(p.stats.planner_calls for p in warm)
    emit(
        "MILP plan-cache effect (seconds for "
        f"{NUM_BATCHES} batches)\n"
        + format_table(
            ["path", "seconds", "planner calls"],
            [
                (
                    "no cache",
                    f"{base_seconds:.2f}",
                    f"{sum(p.stats.planner_calls for p in baseline)}",
                ),
                ("cold cache", f"{cold_seconds:.2f}", f"{planner_calls_cold}"),
                ("warm cache", f"{warm_seconds:.3f}", f"{planner_calls_warm}"),
            ],
        )
    )
    stages = _stage_breakdown(cold)
    if PROFILE:
        emit(
            "MILP cold-path stage breakdown (seconds)\n"
            + format_table(
                ["stage", "seconds"],
                [(stage, f"{s:.4f}") for stage, s in stages.items()],
            )
        )
    bench_json_history(
        "solver_milp",
        {
            "uncached_seconds": round(base_seconds, 3),
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 4),
            "warm_speedup_vs_uncached": round(warm_speedup, 2),
            "cold_stage_seconds": {
                stage: round(s, 5) for stage, s in stages.items()
            },
        },
    )
    assert planner_calls_warm == 0
    assert warm_speedup >= 3.0


@pytest.mark.skipif(FULL, reason="service timing covered by reduced run")
def test_persistent_service_reuses_pool(emit):
    """The parallel path must keep its worker pool across solves and
    match the serial path's plans exactly."""
    model = fit_cost_model(GPT_7B.with_max_context(64 * 1024), standard_cluster(8))
    batches = _workload(model, dense=True)[:2]
    serial = FlexSPSolver(
        model, SolverConfig(num_trials=NUM_TRIALS, backend="greedy")
    )
    with FlexSPSolver(
        model,
        SolverConfig(num_trials=NUM_TRIALS, backend="greedy", workers=2),
    ) as parallel:
        a = serial.solve(batches[0])
        b = parallel.solve(batches[0])  # cold: spawns the pool
        assert a.predicted_time == b.predicted_time
        assert a.microbatches == b.microbatches
        assert parallel._service is not None
        first_pool = parallel._service._pool
        assert first_pool is not None
        a = serial.solve(batches[1])
        b = parallel.solve(batches[1])  # cold again: must reuse the pool
        assert a.predicted_time == b.predicted_time
        assert a.microbatches == b.microbatches
        assert parallel._service._pool is first_pool
    emit("Persistent service: parallel == serial plans; pool reused across solves")
