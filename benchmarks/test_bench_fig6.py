"""Fig. 6: scalability — token throughput per GPU.

Left panel: 16/32/64 GPUs at 128K maximum context (CommonCrawl,
GPT-7B).  Right panel: 64K..384K maximum context on 64 GPUs.

Expected shape: FlexSP has the highest per-GPU throughput everywhere;
per-GPU throughput *drops* as the cluster grows (inter-node bandwidth
degradation) but FlexSP degrades less than the static baselines; under
growing context limits throughput decreases for everyone (quadratic
attention) while FlexSP keeps a consistent lead.
"""

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.runner import run_system
from repro.experiments.systems import (
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
    MegatronLMSystem,
)
from repro.experiments.workloads import (
    fig6_context_scaling_workloads,
    fig6_gpu_scaling_workloads,
)


def _throughputs(workload, solver_config, iterations, cache):
    key = ("fig6", workload.name)
    if key not in cache:
        systems = [
            FlexSPSystem(workload, solver_config),
            DeepSpeedUlyssesSystem(workload),
            FlexSPBatchAdaSystem(workload),
            MegatronLMSystem(workload),
        ]
        n = workload.cluster.num_gpus
        cache[key] = {
            s.name: run_system(s, workload, iterations).tokens_per_second_per_gpu(n)
            for s in systems
        }
    return cache[key]


SYSTEMS = ["FlexSP", "FlexSP-BatchAda", "DeepSpeed", "Megatron-LM"]


def _table(workloads, label, solver_config, iterations, cache):
    rows = []
    cells = {}
    for w in workloads:
        tp = _throughputs(w, solver_config, iterations, cache)
        cells[w.name] = tp
        rows.append(
            [w.name]
            + [f"{tp[s] / 1000:.1f}K" for s in SYSTEMS]
            + [f"{tp['FlexSP'] / tp['DeepSpeed']:.2f}x"]
        )
    return rows, cells


def test_fig6_gpu_scaling(
    benchmark, emit, bench_solver_config, bench_iterations, system_cache,
    bench_batch_size,
):
    workloads = fig6_gpu_scaling_workloads(global_batch_size=bench_batch_size)

    def run():
        return _table(
            workloads, "gpus", bench_solver_config, bench_iterations, system_cache
        )

    rows, cells = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["workload"] + [f"{s} (tok/s/GPU)" for s in SYSTEMS] + ["FlexSP vs DS"],
            rows,
            title="Fig. 6 (left): throughput per GPU vs cluster size, 128K",
        )
    )

    by_gpus = {w.cluster.num_gpus: cells[w.name] for w in workloads}
    for n, cell in by_gpus.items():
        assert cell["FlexSP"] >= max(
            cell["DeepSpeed"], cell["Megatron-LM"]
        ) * 0.98, n
    # Per-GPU throughput decays with cluster growth for the static
    # baseline; FlexSP retains more of its 16-GPU throughput at 64.
    assert by_gpus[64]["DeepSpeed"] < by_gpus[16]["DeepSpeed"]
    flexsp_retention = by_gpus[64]["FlexSP"] / by_gpus[16]["FlexSP"]
    ds_retention = by_gpus[64]["DeepSpeed"] / by_gpus[16]["DeepSpeed"]
    assert flexsp_retention >= ds_retention * 0.95


def test_fig6_context_scaling(
    benchmark, emit, bench_solver_config, bench_iterations, system_cache,
    bench_batch_size,
):
    workloads = fig6_context_scaling_workloads(global_batch_size=bench_batch_size)

    def run():
        return _table(
            workloads, "ctx", bench_solver_config, bench_iterations, system_cache
        )

    rows, cells = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["workload"] + [f"{s} (tok/s/GPU)" for s in SYSTEMS] + ["FlexSP vs DS"],
            rows,
            title="Fig. 6 (right): throughput per GPU vs max context, 64 GPUs",
        )
    )

    by_ctx = {w.max_context: cells[w.name] for w in workloads}
    contexts = sorted(by_ctx)
    # FlexSP leads at every context limit.
    for ctx in contexts:
        assert by_ctx[ctx]["FlexSP"] >= by_ctx[ctx]["DeepSpeed"] * 0.98, ctx
    # FlexSP's throughput does not collapse at the longest contexts:
    # it retains a consistent edge (paper: 1.42x..1.51x).
    edge_384 = by_ctx[384 * 1024]["FlexSP"] / by_ctx[384 * 1024]["DeepSpeed"]
    assert edge_384 > 1.0
