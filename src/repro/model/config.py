"""Model architecture configuration.

The paper evaluates GPT-series models of three sizes (Appendix B.1):

======== ======== ============ ==========
Model    # Layers Hidden dim   # Params
======== ======== ============ ==========
GPT-7B   32       4096         7.85 B
GPT-13B  40       5120         14.03 B
GPT-30B  60       6656         32.72 B
======== ======== ============ ==========

Parameter counts in the paper are quoted at a 384K maximum context
length, where the learned positional embedding alone contributes 1-2
billion parameters.  :func:`ModelConfig.parameter_count` reproduces
that accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Default vocabulary size (GPT-2 BPE family).
DEFAULT_VOCAB_SIZE = 50_257

#: Default maximum context length used for parameter accounting, tokens.
DEFAULT_MAX_CONTEXT = 384 * 1024


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a decoder-only transformer.

    Attributes:
        name: Human-readable identifier, e.g. ``"gpt-7b"``.
        num_layers: Number of transformer blocks.
        hidden_size: Model (embedding) dimension.
        num_heads: Attention heads; must divide ``hidden_size``.
        vocab_size: Token vocabulary size.
        max_context: Maximum supported sequence length in tokens.  Sets
            the size of the learned positional embedding.
        ffn_multiplier: MLP inner dimension as a multiple of
            ``hidden_size`` (4 for the classic GPT MLP).
        bytes_per_element: Width of an activation/parameter element in
            bytes (2 for bf16/fp16 mixed-precision training).
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    vocab_size: int = DEFAULT_VOCAB_SIZE
    max_context: int = DEFAULT_MAX_CONTEXT
    ffn_multiplier: int = 4
    bytes_per_element: int = 2

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if self.hidden_size <= 0:
            raise ValueError(f"hidden_size must be positive, got {self.hidden_size}")
        if self.num_heads <= 0 or self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"num_heads ({self.num_heads}) must be positive and divide "
                f"hidden_size ({self.hidden_size})"
            )
        if self.max_context <= 0:
            raise ValueError(f"max_context must be positive, got {self.max_context}")

    @property
    def head_dim(self) -> int:
        """Dimension of one attention head."""
        return self.hidden_size // self.num_heads

    @property
    def ffn_hidden_size(self) -> int:
        """Inner dimension of the feed-forward block."""
        return self.ffn_multiplier * self.hidden_size

    def layer_parameter_count(self) -> int:
        """Parameters of one transformer block.

        Attention projections contribute ``4 h^2`` and the MLP
        ``2 * ffn_multiplier * h^2``; biases and the two LayerNorms add
        a further ``(9 + 2 * ffn_multiplier) h`` which we include for
        completeness.
        """
        h = self.hidden_size
        attn = 4 * h * h + 4 * h
        mlp = 2 * self.ffn_multiplier * h * h + (self.ffn_multiplier + 1) * h
        norms = 4 * h
        return attn + mlp + norms

    def embedding_parameter_count(self) -> int:
        """Token + learned positional embedding parameters."""
        return (self.vocab_size + self.max_context) * self.hidden_size

    def parameter_count(self) -> int:
        """Total parameters, matching the paper's Appendix B.1 accounting.

        Includes the token embedding (weight-tied with the output head),
        a learned positional embedding of ``max_context`` rows — the
        component the paper notes reaches 1-2 B parameters at 384K —
        all transformer blocks, and the final LayerNorm.
        """
        final_norm = 2 * self.hidden_size
        return (
            self.embedding_parameter_count()
            + self.num_layers * self.layer_parameter_count()
            + final_norm
        )

    def with_max_context(self, max_context: int) -> "ModelConfig":
        """Copy of this config with a different maximum context length."""
        return replace(self, max_context=max_context)


GPT_7B = ModelConfig(name="gpt-7b", num_layers=32, hidden_size=4096, num_heads=32)
GPT_13B = ModelConfig(name="gpt-13b", num_layers=40, hidden_size=5120, num_heads=40)
GPT_30B = ModelConfig(name="gpt-30b", num_layers=60, hidden_size=6656, num_heads=52)

#: Small configs for tests and examples; not part of the paper.
GPT_TINY = ModelConfig(
    name="gpt-tiny", num_layers=4, hidden_size=512, num_heads=8, max_context=32 * 1024
)
GPT_SMALL = ModelConfig(
    name="gpt-small", num_layers=12, hidden_size=1024, num_heads=16, max_context=64 * 1024
)


def model_registry() -> dict[str, ModelConfig]:
    """All named model configurations, keyed by ``name``."""
    return {
        cfg.name: cfg
        for cfg in (GPT_7B, GPT_13B, GPT_30B, GPT_TINY, GPT_SMALL)
    }
