"""FLOP accounting for packed varied-length transformer batches.

The cost model in the paper (Eq. 12) splits computation into a term
quadratic in sequence length (attention scores) and a term linear in
sequence length (projections, MLP, embeddings).  This module provides
the exact per-sequence accounting that the simulator uses as ground
truth; the planner's alpha-beta coefficients are *fit* against it by
:mod:`repro.cost.profiler`, mirroring the paper's profiling workflow.

All counts are forward-pass FLOPs; multiply by
:func:`training_flops_multiplier` for a full training step (backward
costs twice the forward, and activation checkpointing adds forward
recomputation).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.model.config import ModelConfig
from repro.model.memory import ActivationCheckpointing


def dense_flops_per_token(config: ModelConfig) -> float:
    """Forward FLOPs per token for all sequence-length-linear modules.

    Counts the four attention projections (``8 h^2`` multiply-adds per
    token) and the two MLP matmuls (``2 * 2 * ffn_mult * h^2``), i.e.
    ``24 h^2`` per layer for the classic ``ffn_mult = 4`` GPT block,
    plus the output-head projection onto the vocabulary.
    """
    h = config.hidden_size
    per_layer = 8 * h * h + 4 * config.ffn_multiplier * h * h
    head = 2 * h * config.vocab_size
    return config.num_layers * per_layer + head


def attention_flops(config: ModelConfig, seq_len: int, causal: bool = True) -> float:
    """Forward FLOPs of the attention-score computation for one sequence.

    The two batched matmuls (``Q K^T`` and ``P V``) each cost
    ``2 s^2 h`` FLOPs per layer; causal masking halves the useful work
    (flash-attn skips masked blocks).
    """
    if seq_len < 0:
        raise ValueError(f"seq_len must be non-negative, got {seq_len}")
    per_layer = 4.0 * seq_len * seq_len * config.hidden_size
    if causal:
        per_layer /= 2.0
    return config.num_layers * per_layer


def sequence_flops(config: ModelConfig, seq_len: int, causal: bool = True) -> float:
    """Total forward FLOPs for one sequence of ``seq_len`` tokens."""
    return seq_len * dense_flops_per_token(config) + attention_flops(
        config, seq_len, causal=causal
    )


def batch_flops(
    config: ModelConfig, seq_lens: Iterable[int], causal: bool = True
) -> float:
    """Total forward FLOPs for a packed varied-length batch.

    With varlen flash-attention, attention cost is the *sum of
    per-sequence quadratics*, not the quadratic of the packed length —
    this is exactly why sequence packing avoids cross-contamination
    compute as well as accuracy problems.
    """
    dense = dense_flops_per_token(config)
    total = 0.0
    for s in seq_lens:
        total += s * dense + attention_flops(config, s, causal=causal)
    return total


def training_flops_multiplier(
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
) -> float:
    """Ratio of training-step FLOPs to forward FLOPs.

    Backward costs 2x the forward.  Full activation checkpointing
    re-runs the forward during backward (+1x); selective (MLP-only)
    checkpointing re-runs roughly the MLP half of the block (+0.5x).
    """
    base = 3.0
    if checkpointing is ActivationCheckpointing.FULL:
        return base + 1.0
    if checkpointing is ActivationCheckpointing.SELECTIVE:
        return base + 0.5
    return base
