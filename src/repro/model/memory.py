"""Memory accounting for model states and activations.

Two components matter for the planner's memory constraint (Eq. 11):

* **Model states** — parameters, gradients and Adam optimizer states.
  With bf16 mixed precision these cost 16 bytes per parameter (2 param
  + 2 grad + 4 fp32 master + 4 momentum + 4 variance).  Under ZeRO-3
  they are sharded evenly across *all* devices, so the per-device share
  ``M_ms`` is independent of the SP-group layout — exactly the property
  the paper relies on to keep the MILP linear.

* **Activations** — proportional to the number of tokens resident on a
  device.  The per-token coefficient ``M_token`` follows the standard
  accounting of Korthikanti et al. ("Reducing Activation Recomputation
  in Large Transformer Models"): roughly ``34 * h`` bytes per layer per
  token for bf16 without checkpointing, shrinking to the block inputs
  only (``2 * h`` bytes plus attention softmax stats) under full
  checkpointing.

With these coefficients the OOM frontier of Table 1 (a 32K sequence
fits at SP=8 but not SP=4 on A100-40GB; 64K needs SP>=16; 128K needs
SP>=32; 256K needs SP=64) falls out of the numbers rather than being
hard-coded.
"""

from __future__ import annotations

import enum

from repro.model.config import ModelConfig

#: Bytes of model state per parameter under bf16 mixed-precision Adam.
MIXED_PRECISION_STATE_BYTES = 16

#: Per-layer activation bytes per token, in units of ``hidden_size``,
#: for bf16 training with flash attention and no checkpointing.
FULL_ACTIVATION_FACTOR = 34.0

#: Same, when only the MLP half of each block is checkpointed
#: (Appendix B.2: the GPT-13B protocol).
SELECTIVE_ACTIVATION_FACTOR = 14.0

#: Same, under full activation checkpointing: only block inputs and
#: flash-attn softmax statistics persist (GPT-30B protocol).
CHECKPOINT_ACTIVATION_FACTOR = 4.0


class ActivationCheckpointing(enum.Enum):
    """Activation checkpointing policy applied to each transformer block."""

    NONE = "none"
    SELECTIVE = "selective"
    FULL = "full"

    @property
    def activation_factor(self) -> float:
        """Per-layer per-token activation bytes in units of hidden size."""
        if self is ActivationCheckpointing.NONE:
            return FULL_ACTIVATION_FACTOR
        if self is ActivationCheckpointing.SELECTIVE:
            return SELECTIVE_ACTIVATION_FACTOR
        return CHECKPOINT_ACTIVATION_FACTOR


def model_state_bytes(config: ModelConfig) -> int:
    """Total bytes of parameters + gradients + optimizer states."""
    return config.parameter_count() * MIXED_PRECISION_STATE_BYTES


def model_state_bytes_per_device(
    config: ModelConfig, num_devices: int, zero_stage: int = 3
) -> float:
    """Per-device model-state bytes ``M_ms`` under a given ZeRO stage.

    ZeRO-1 shards only the 12-byte optimizer states; ZeRO-2 also shards
    the 2-byte gradients; ZeRO-3 shards everything.

    Args:
        config: Model architecture.
        num_devices: Number of devices the states are sharded across
            (the full cluster for FlexSP's default ZeRO-3 setup).
        zero_stage: 0, 1, 2 or 3.
    """
    if num_devices <= 0:
        raise ValueError(f"num_devices must be positive, got {num_devices}")
    if zero_stage not in (0, 1, 2, 3):
        raise ValueError(f"zero_stage must be in 0..3, got {zero_stage}")
    params = config.parameter_count()
    param_bytes = 2 * params
    grad_bytes = 2 * params
    optim_bytes = 12 * params
    if zero_stage >= 1:
        optim_bytes /= num_devices
    if zero_stage >= 2:
        grad_bytes /= num_devices
    if zero_stage >= 3:
        param_bytes /= num_devices
    return param_bytes + grad_bytes + optim_bytes


def activation_bytes_per_token(
    config: ModelConfig,
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
) -> float:
    """Activation bytes ``M_token`` held per resident token during training."""
    return (
        checkpointing.activation_factor
        * config.hidden_size
        * config.num_layers
        * (config.bytes_per_element / 2.0)
    )


def feasible_checkpointing(
    config: ModelConfig,
    max_context: int,
    num_devices: int,
    usable_memory_bytes: float,
    base: "ActivationCheckpointing | None" = None,
) -> ActivationCheckpointing:
    """Lightest checkpointing policy that can host a worst-case sequence.

    A task is only trainable if one ``max_context``-token sequence fits
    when scattered over the whole cluster.  Starting from ``base`` (the
    model's default policy), escalate NONE -> SELECTIVE -> FULL until
    the worst case fits; returns FULL if even that does not (callers
    will then hit explicit OOM errors downstream).
    """
    if base is None:
        base = default_checkpointing(config, max_context)
    ladder = [
        ActivationCheckpointing.NONE,
        ActivationCheckpointing.SELECTIVE,
        ActivationCheckpointing.FULL,
    ]
    tokens_per_device = max_context / num_devices
    for policy in ladder[ladder.index(base):]:
        budget = usable_memory_bytes - model_state_bytes_per_device(
            config, num_devices, zero_stage=3
        )
        needed = tokens_per_device * activation_bytes_per_token(config, policy)
        if needed <= budget:
            return policy
    return ActivationCheckpointing.FULL


def default_checkpointing(config: ModelConfig, max_context: int) -> ActivationCheckpointing:
    """The checkpointing policy the paper's protocol uses (Appendix B.2).

    GPT-7B trains 384K contexts without checkpointing; GPT-13B
    checkpoints only MLP layers; GPT-30B checkpoints almost everything.
    We apply the policy by model scale, and relax it for short-context
    runs where it is unnecessary.
    """
    if config.num_layers >= 60:
        return ActivationCheckpointing.FULL
    if config.num_layers >= 40 and max_context > 128 * 1024:
        return ActivationCheckpointing.SELECTIVE
    return ActivationCheckpointing.NONE
