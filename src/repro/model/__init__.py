"""Transformer model substrate.

Provides the model specifications used throughout the reproduction:
architecture configuration (:mod:`repro.model.config`), FLOP accounting
for packed varied-length batches (:mod:`repro.model.flops`) and memory
accounting for model states and activations
(:mod:`repro.model.memory`).
"""

from repro.model.config import (
    GPT_13B,
    GPT_30B,
    GPT_7B,
    ModelConfig,
    model_registry,
)
from repro.model.flops import (
    attention_flops,
    batch_flops,
    dense_flops_per_token,
    sequence_flops,
    training_flops_multiplier,
)
from repro.model.memory import (
    ActivationCheckpointing,
    activation_bytes_per_token,
    model_state_bytes,
    model_state_bytes_per_device,
)

__all__ = [
    "GPT_7B",
    "GPT_13B",
    "GPT_30B",
    "ModelConfig",
    "model_registry",
    "attention_flops",
    "batch_flops",
    "dense_flops_per_token",
    "sequence_flops",
    "training_flops_multiplier",
    "ActivationCheckpointing",
    "activation_bytes_per_token",
    "model_state_bytes",
    "model_state_bytes_per_device",
]
