"""Synthetic corpus and global-batch sampling.

The paper fixes the global batch size at 512 sequences per training
step (S6.1) and eliminates sequences longer than the task's maximum
context length.  :class:`SyntheticCorpus` reproduces that protocol over
the parametric length distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.distributions import LengthDistribution

#: Global batch size used throughout the paper's evaluation.
DEFAULT_GLOBAL_BATCH_SIZE = 512


@dataclass(frozen=True)
class GlobalBatch:
    """One training step's worth of raw (unpacked) sequences.

    Attributes:
        lengths: Sequence lengths in tokens; order is sampling order.
        step: Training-step index this batch belongs to.
    """

    lengths: tuple[int, ...]
    step: int = 0

    def __post_init__(self) -> None:
        if not self.lengths:
            raise ValueError("a global batch must contain at least one sequence")
        if any(s <= 0 for s in self.lengths):
            raise ValueError("all sequence lengths must be positive")

    @property
    def num_sequences(self) -> int:
        return len(self.lengths)

    @property
    def total_tokens(self) -> int:
        return int(sum(self.lengths))

    @property
    def max_length(self) -> int:
        return int(max(self.lengths))


class SyntheticCorpus:
    """A stream of global batches drawn from a length distribution.

    Args:
        distribution: Length sampler (e.g. :data:`repro.data.GITHUB`).
        max_context: Task context-length limit; longer sequences are
            eliminated, as in the paper's protocol.
        global_batch_size: Sequences per training step.
        seed: RNG seed; batches are deterministic given (seed, step).
    """

    def __init__(
        self,
        distribution: LengthDistribution,
        max_context: int,
        global_batch_size: int = DEFAULT_GLOBAL_BATCH_SIZE,
        seed: int = 0,
    ) -> None:
        if max_context <= 0:
            raise ValueError(f"max_context must be positive, got {max_context}")
        if global_batch_size <= 0:
            raise ValueError(
                f"global_batch_size must be positive, got {global_batch_size}"
            )
        self.distribution = distribution
        self.max_context = max_context
        self.global_batch_size = global_batch_size
        self.seed = seed

    def batch(self, step: int) -> GlobalBatch:
        """The global batch for training step ``step``.

        Over-length sequences are dropped and replaced so that every
        batch holds exactly ``global_batch_size`` sequences.
        """
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        rng = np.random.default_rng((self.seed, step))
        kept: list[int] = []
        # Oversample in chunks until the batch is full; the tail beyond
        # max_context is thin, so one or two rounds usually suffice.
        while len(kept) < self.global_batch_size:
            need = self.global_batch_size - len(kept)
            draw = self.distribution.sample(max(need * 2, 64), rng)
            kept.extend(int(s) for s in draw if s <= self.max_context)
        return GlobalBatch(lengths=tuple(kept[: self.global_batch_size]), step=step)

    def batches(self, num_steps: int, start_step: int = 0):
        """Yield ``num_steps`` consecutive global batches."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        for step in range(start_step, start_step + num_steps):
            yield self.batch(step)

    def sample_lengths(self, n: int, seed_offset: int = 0) -> np.ndarray:
        """Draw ``n`` raw lengths (no context-limit filtering).

        Used by the Fig. 2 histogram reproduction, which plots the
        corpus marginal rather than the filtered training stream.
        """
        # A distinct stream from the batch RNGs: third component tags
        # "raw marginal" draws.
        rng = np.random.default_rng((self.seed, seed_offset, 0x5EED))
        return self.distribution.sample(n, rng)
