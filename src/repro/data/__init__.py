"""Training-corpus substrate.

The experiments consume only the *sequence-length marginal* of the
training corpora (GitHub, CommonCrawl, Wikipedia), never token content,
so this package replaces the proprietary corpora with parametric
long-tail samplers fit to the histogram shapes of the paper's Fig. 2.
"""

from repro.data.dataset import GlobalBatch, SyntheticCorpus
from repro.data.distributions import (
    COMMONCRAWL,
    GITHUB,
    WIKIPEDIA,
    FixedLength,
    LengthDistribution,
    LogNormalMixture,
    dataset_registry,
)
from repro.data.packing import (
    Pack,
    best_fit_decreasing,
    first_fit_decreasing,
    pack_efficiency,
)

__all__ = [
    "LengthDistribution",
    "LogNormalMixture",
    "FixedLength",
    "GITHUB",
    "COMMONCRAWL",
    "WIKIPEDIA",
    "dataset_registry",
    "SyntheticCorpus",
    "GlobalBatch",
    "Pack",
    "best_fit_decreasing",
    "first_fit_decreasing",
    "pack_efficiency",
]
