"""Long-tail sequence-length distributions.

Fig. 2 of the paper shows that GitHub, CommonCrawl and Wikipedia all
follow pronounced uni-modal long-tail distributions: the majority of
sequences fall below 8K tokens while only a small fraction exceed 32K.
GitHub has the heaviest tail, CommonCrawl the middle, Wikipedia the
lightest (over 96% of its sequences are below 8K).

We model each corpus as a two-component log-normal mixture — a body
component for the bulk of documents and a heavy component for the long
tail — with parameters chosen to reproduce those qualitative marks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

#: Sequences shorter than this are discarded (tokenisation artefacts).
MIN_SEQUENCE_LENGTH = 16


class LengthDistribution(Protocol):
    """Anything that can sample sequence lengths."""

    name: str

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` integer sequence lengths."""
        ...

    def tail_fraction(self, threshold: int) -> float:
        """Analytic P(length > threshold)."""
        ...


def _lognormal_sf(x: float, median: float, sigma: float) -> float:
    """Survival function of a log-normal given its median and log-sigma."""
    if x <= 0:
        return 1.0
    z = (math.log(x) - math.log(median)) / sigma
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class LogNormalMixture:
    """Two-component log-normal mixture over sequence lengths.

    Attributes:
        name: Corpus name.
        body_median: Median length of the body component, tokens.
        body_sigma: Log-space standard deviation of the body.
        tail_median: Median length of the heavy tail component.
        tail_sigma: Log-space standard deviation of the tail.
        tail_weight: Mixture weight of the tail component in [0, 1).
    """

    name: str
    body_median: float
    body_sigma: float
    tail_median: float
    tail_sigma: float
    tail_weight: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.tail_weight < 1.0:
            raise ValueError(f"tail_weight must be in [0, 1), got {self.tail_weight}")
        for field_name in ("body_median", "body_sigma", "tail_median", "tail_sigma"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` integer lengths, floored at MIN_SEQUENCE_LENGTH."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        from_tail = rng.random(n) < self.tail_weight
        body = rng.lognormal(math.log(self.body_median), self.body_sigma, n)
        tail = rng.lognormal(math.log(self.tail_median), self.tail_sigma, n)
        lengths = np.where(from_tail, tail, body)
        return np.maximum(lengths.astype(np.int64), MIN_SEQUENCE_LENGTH)

    def tail_fraction(self, threshold: int) -> float:
        """Analytic P(length > threshold)."""
        body = _lognormal_sf(threshold, self.body_median, self.body_sigma)
        tail = _lognormal_sf(threshold, self.tail_median, self.tail_sigma)
        return (1.0 - self.tail_weight) * body + self.tail_weight * tail


@dataclass(frozen=True)
class FixedLength:
    """Degenerate distribution: every sequence has the same length.

    Table 1's protocol trains uniform ``(seq, bs)`` batches — no
    length heterogeneity at all — so its capacity-frontier cells can
    ride the same :class:`~repro.experiments.workloads.Workload` /
    sweep machinery as the long-tail corpora by plugging this in as
    the workload's distribution.

    Attributes:
        length: The constant sequence length in tokens.
    """

    length: int

    def __post_init__(self) -> None:
        if self.length < MIN_SEQUENCE_LENGTH:
            raise ValueError(
                f"length must be at least {MIN_SEQUENCE_LENGTH}, got "
                f"{self.length}"
            )

    @property
    def name(self) -> str:
        return f"fixed{self.length // 1024}K" if self.length % 1024 == 0 else (
            f"fixed{self.length}"
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return np.full(n, self.length, dtype=np.int64)

    def tail_fraction(self, threshold: int) -> float:
        return 1.0 if threshold < self.length else 0.0


#: Heaviest tail of the three: source files and concatenated repos run
#: long; a visible fraction exceeds 32K and some exceed 256K.
GITHUB = LogNormalMixture(
    name="github",
    body_median=1_400.0,
    body_sigma=1.35,
    tail_median=28_000.0,
    tail_sigma=1.25,
    tail_weight=0.055,
)

#: Web crawl: bulk of pages are short, moderate long tail.
COMMONCRAWL = LogNormalMixture(
    name="commoncrawl",
    body_median=1_100.0,
    body_sigma=1.25,
    tail_median=18_000.0,
    tail_sigma=1.15,
    tail_weight=0.030,
)

#: Encyclopedia articles: over 96% below 8K, very few beyond 32K.
WIKIPEDIA = LogNormalMixture(
    name="wikipedia",
    body_median=750.0,
    body_sigma=1.10,
    tail_median=10_000.0,
    tail_sigma=0.95,
    tail_weight=0.012,
)


def dataset_registry() -> dict[str, LogNormalMixture]:
    """The three paper corpora, keyed by name."""
    return {d.name: d for d in (GITHUB, COMMONCRAWL, WIKIPEDIA)}


def histogram_buckets() -> list[tuple[int, int]]:
    """The length bands Fig. 2 plots, as (low, high] token ranges."""
    edges = [0, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144]
    bands = list(zip(edges[:-1], edges[1:]))
    bands.append((edges[-1], 1 << 62))
    return bands


def length_histogram(lengths: np.ndarray) -> dict[str, float]:
    """Fraction of sequences in each Fig. 2 band.

    Returns a mapping from a human-readable band label (``"<=1K"``,
    ``"1K-2K"``, ..., ``">256K"``) to the fraction of ``lengths`` in it.
    """
    if len(lengths) == 0:
        raise ValueError("lengths must be non-empty")
    total = float(len(lengths))
    result: dict[str, float] = {}
    for low, high in histogram_buckets():
        count = int(np.sum((lengths > low) & (lengths <= high)))
        if low == 0:
            label = f"<={high // 1024}K"
        elif high >= (1 << 62):
            label = f">{low // 1024}K"
        else:
            label = f"{low // 1024}K-{high // 1024}K"
        result[label] = count / total
    return result
