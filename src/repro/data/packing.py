"""Sequence packing.

Baseline systems assume homogeneous input lengths, so they concatenate
varied-length sequences into packed inputs no longer than the model
replica's token capacity ``c`` (S2.2.2).  The paper's baselines use
Best-Fit Packing (Ding et al., "Fewer Truncations Improve Language
Modeling"), i.e. Best-Fit-Decreasing bin packing; we also provide
First-Fit-Decreasing for comparison.

FlexSP itself does not pre-pack: its solver assigns raw sequences to
heterogeneous SP groups directly, which subsumes packing.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field


@dataclass
class Pack:
    """One packed training input.

    Attributes:
        capacity: Maximum tokens this pack may hold.
        lengths: Lengths of the member sequences, in packing order.
            Mutate only through :meth:`add`, which keeps the O(1)
            ``used``/``remaining`` accounting in sync.
    """

    capacity: int
    lengths: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._used = sum(self.lengths)

    @property
    def used(self) -> int:
        return self._used

    @property
    def remaining(self) -> int:
        return self.capacity - self._used

    def add(self, length: int) -> None:
        if length > self.remaining:
            raise ValueError(
                f"sequence of {length} tokens does not fit in pack with "
                f"{self.remaining} remaining"
            )
        self.lengths.append(length)
        self._used += length


def _check_inputs(lengths: SequenceABC[int], capacity: int) -> None:
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    for s in lengths:
        if s <= 0:
            raise ValueError(f"sequence lengths must be positive, got {s}")
        if s > capacity:
            raise ValueError(
                f"sequence of {s} tokens exceeds pack capacity {capacity}; "
                "filter over-length sequences before packing"
            )


def best_fit_decreasing(lengths: SequenceABC[int], capacity: int) -> list[Pack]:
    """Best-Fit-Decreasing packing (the paper's baseline protocol).

    Sequences are sorted in decreasing length and each is placed into
    the open pack with the *smallest* remaining space that still fits
    it, opening a new pack when none fits.

    Runs in O(K log K) using a sorted list of remaining capacities.
    """
    _check_inputs(lengths, capacity)
    packs: list[Pack] = []
    # Parallel sorted structure: remaining sizes with pack indices.
    remaining: list[tuple[int, int]] = []  # (remaining, pack_index), sorted
    for s in sorted(lengths, reverse=True):
        pos = bisect.bisect_left(remaining, (s, -1))
        if pos < len(remaining):
            rem, idx = remaining.pop(pos)
            packs[idx].add(s)
            new_rem = rem - s
            bisect.insort(remaining, (new_rem, idx))
        else:
            pack = Pack(capacity=capacity, lengths=[s])
            packs.append(pack)
            bisect.insort(remaining, (pack.remaining, len(packs) - 1))
    return packs


def first_fit_decreasing(lengths: SequenceABC[int], capacity: int) -> list[Pack]:
    """First-Fit-Decreasing packing: place into the first pack that fits.

    Runs in O(K log K) with a tournament (max-segment) tree over pack
    remainders: internal nodes hold the maximum remainder in their
    subtree, so the *lowest-index* pack that can host a sequence is
    found by descending left-first — exactly the pack the naive
    first-pack-that-fits scan would pick, so assignments are identical
    to the O(K²) loop this replaces.
    """
    _check_inputs(lengths, capacity)
    packs: list[Pack] = []
    size = 1  # leaf slots; doubled (with a rebuild) as packs open
    tree = [0] * (2 * size)  # 1-indexed heap layout; leaves at [size:]

    def _update(leaf: int, remaining: int) -> None:
        node = size + leaf
        tree[node] = remaining
        node //= 2
        while node:
            tree[node] = max(tree[2 * node], tree[2 * node + 1])
            node //= 2

    for s in sorted(lengths, reverse=True):
        if tree[1] >= s:
            node = 1
            while node < size:
                node = 2 * node if tree[2 * node] >= s else 2 * node + 1
            pack = packs[node - size]
            pack.add(s)
            _update(node - size, pack.remaining)
        else:
            if len(packs) == size:
                size *= 2
                tree = [0] * (2 * size)
                for i, pack in enumerate(packs):
                    tree[size + i] = pack.remaining
                for node in range(size - 1, 0, -1):
                    tree[node] = max(tree[2 * node], tree[2 * node + 1])
            pack = Pack(capacity=capacity, lengths=[s])
            packs.append(pack)
            _update(len(packs) - 1, pack.remaining)
    return packs


def pack_efficiency(packs: SequenceABC[Pack]) -> float:
    """Fraction of pack capacity actually occupied by tokens."""
    if not packs:
        raise ValueError("pack_efficiency of an empty packing is undefined")
    used = sum(p.used for p in packs)
    total = sum(p.capacity for p in packs)
    return used / total
