"""Sequence packing.

Baseline systems assume homogeneous input lengths, so they concatenate
varied-length sequences into packed inputs no longer than the model
replica's token capacity ``c`` (S2.2.2).  The paper's baselines use
Best-Fit Packing (Ding et al., "Fewer Truncations Improve Language
Modeling"), i.e. Best-Fit-Decreasing bin packing; we also provide
First-Fit-Decreasing for comparison.

FlexSP itself does not pre-pack: its solver assigns raw sequences to
heterogeneous SP groups directly, which subsumes packing.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field


@dataclass
class Pack:
    """One packed training input.

    Attributes:
        capacity: Maximum tokens this pack may hold.
        lengths: Lengths of the member sequences, in packing order.
    """

    capacity: int
    lengths: list[int] = field(default_factory=list)

    @property
    def used(self) -> int:
        return sum(self.lengths)

    @property
    def remaining(self) -> int:
        return self.capacity - self.used

    def add(self, length: int) -> None:
        if length > self.remaining:
            raise ValueError(
                f"sequence of {length} tokens does not fit in pack with "
                f"{self.remaining} remaining"
            )
        self.lengths.append(length)


def _check_inputs(lengths: SequenceABC[int], capacity: int) -> None:
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    for s in lengths:
        if s <= 0:
            raise ValueError(f"sequence lengths must be positive, got {s}")
        if s > capacity:
            raise ValueError(
                f"sequence of {s} tokens exceeds pack capacity {capacity}; "
                "filter over-length sequences before packing"
            )


def best_fit_decreasing(lengths: SequenceABC[int], capacity: int) -> list[Pack]:
    """Best-Fit-Decreasing packing (the paper's baseline protocol).

    Sequences are sorted in decreasing length and each is placed into
    the open pack with the *smallest* remaining space that still fits
    it, opening a new pack when none fits.

    Runs in O(K log K) using a sorted list of remaining capacities.
    """
    _check_inputs(lengths, capacity)
    packs: list[Pack] = []
    # Parallel sorted structure: remaining sizes with pack indices.
    remaining: list[tuple[int, int]] = []  # (remaining, pack_index), sorted
    for s in sorted(lengths, reverse=True):
        pos = bisect.bisect_left(remaining, (s, -1))
        if pos < len(remaining):
            rem, idx = remaining.pop(pos)
            packs[idx].add(s)
            new_rem = rem - s
            bisect.insort(remaining, (new_rem, idx))
        else:
            pack = Pack(capacity=capacity, lengths=[s])
            packs.append(pack)
            bisect.insort(remaining, (pack.remaining, len(packs) - 1))
    return packs


def first_fit_decreasing(lengths: SequenceABC[int], capacity: int) -> list[Pack]:
    """First-Fit-Decreasing packing: place into the first pack that fits."""
    _check_inputs(lengths, capacity)
    packs: list[Pack] = []
    for s in sorted(lengths, reverse=True):
        for pack in packs:
            if pack.remaining >= s:
                pack.add(s)
                break
        else:
            packs.append(Pack(capacity=capacity, lengths=[s]))
    return packs


def pack_efficiency(packs: SequenceABC[Pack]) -> float:
    """Fraction of pack capacity actually occupied by tokens."""
    if not packs:
        raise ValueError("pack_efficiency of an empty packing is undefined")
    used = sum(p.used for p in packs)
    total = sum(p.capacity for p in packs)
    return used / total
