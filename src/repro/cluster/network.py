"""Hierarchical interconnect model.

FlexSP's gains come from the *bandwidth cliff* between the intra-node
fabric (NVLink) and the inter-node fabric (InfiniBand): an SP group
that fits inside one node communicates an order of magnitude faster
per GPU than one that spans nodes.  Each fabric is an alpha-beta link:
``time = latency + bytes / bandwidth``.

The paper's cluster (S6.1) is 8 nodes x 8 A100s, NVLink intra-node,
400 Gbps InfiniBand inter-node.  Its scalability study (S6.4) observes
that effective per-node inter-node bandwidth *degrades* as the cluster
grows (16 -> 32 -> 64 GPUs); :class:`NetworkSpec` models this with an
optional degradation exponent.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """An alpha-beta point-to-point link.

    Attributes:
        name: Fabric name.
        bandwidth: Effective algorithmic bandwidth per GPU in bytes/s
            (already discounted for protocol overhead).
        latency: Fixed per-operation startup latency in seconds.
    """

    name: str
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency + nbytes / self.bandwidth


#: NVLink 3.0 on A100: 600 GB/s bidirectional per GPU; effective
#: algorithmic bandwidth for collectives lands well below peak.
NVLINK_A100 = LinkSpec(name="nvlink-a100", bandwidth=85e9, latency=12e-6)

#: Effective aggregate InfiniBand bandwidth per node (the paper's
#: testbed quotes "400 Gbps InfiniBand"; A100 nodes typically carry
#: more than one rail).  Calibrated against Table 1's measured
#: All-to-All shares: ~20 s of All-to-All for 4M tokens at SP=64 vs
#: ~1.6 s at SP=8 on GPT-7B.
INFINIBAND_400G = LinkSpec(name="infiniband-400g", bandwidth=62e9, latency=22e-6)


@dataclass(frozen=True)
class NetworkSpec:
    """Two-level fabric: intra-node plus inter-node.

    Attributes:
        intra_node: Link seen by GPUs inside one node.
        inter_node: Per-*node* uplink; shared by all of the node's GPUs
            that participate in a cross-node group.
        degradation_exponent: Per-node inter-node bandwidth scales as
            ``(nodes / reference_nodes) ** -degradation_exponent`` —
            captures the fat-tree oversubscription the paper observes
            when growing from 16 to 64 GPUs.
        reference_nodes: Node count at which ``inter_node`` bandwidth
            is quoted.
    """

    intra_node: LinkSpec = NVLINK_A100
    inter_node: LinkSpec = INFINIBAND_400G
    degradation_exponent: float = 0.12
    reference_nodes: int = 2

    def inter_node_bandwidth(self, num_nodes: int) -> float:
        """Effective per-node uplink bandwidth for a cluster of ``num_nodes``."""
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if num_nodes <= self.reference_nodes:
            return self.inter_node.bandwidth
        scale = (num_nodes / self.reference_nodes) ** (-self.degradation_exponent)
        return self.inter_node.bandwidth * scale

    def group_link(
        self, group_gpus_per_node: int, spans_nodes: int, total_nodes: int
    ) -> LinkSpec:
        """Effective per-GPU link for a communication group.

        A group confined to one node uses the intra-node fabric at full
        per-GPU bandwidth.  A group spanning ``spans_nodes`` nodes is
        bottlenecked by the node uplink, which the group's
        ``group_gpus_per_node`` resident GPUs share.

        Args:
            group_gpus_per_node: Group members per participating node.
            spans_nodes: Number of nodes the group touches.
            total_nodes: Total nodes in the cluster (for degradation).
        """
        if group_gpus_per_node <= 0:
            raise ValueError(
                f"group_gpus_per_node must be positive, got {group_gpus_per_node}"
            )
        if spans_nodes <= 0:
            raise ValueError(f"spans_nodes must be positive, got {spans_nodes}")
        if spans_nodes == 1:
            return self.intra_node
        per_gpu = self.inter_node_bandwidth(total_nodes) / group_gpus_per_node
        return LinkSpec(
            name=f"{self.inter_node.name}/x{group_gpus_per_node}",
            bandwidth=per_gpu,
            latency=self.inter_node.latency,
        )
