"""GPU device specifications.

A device is modelled by its peak matmul throughput, an achievable
efficiency (model FLOPs utilisation, MFU), and its memory capacity.
The evaluation cluster in the paper uses NVIDIA A100-40GB parts.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes reserved per device for the CUDA context, NCCL buffers,
#: fragmentation and framework workspace; unavailable to training.
#: Calibrated so that the Table 1 OOM frontier (32K fits at SP=8 but
#: not SP=4 on A100-40GB, etc.) emerges from the memory model.
DEFAULT_RESERVED_BYTES = 5 * 1024**3


@dataclass(frozen=True)
class GPUSpec:
    """A GPU model.

    Attributes:
        name: Marketing name, e.g. ``"a100-40gb"``.
        peak_flops: Peak dense bf16 tensor-core FLOP/s.
        memory_bytes: HBM capacity in bytes.
        mfu: Achievable model-FLOPs utilisation for large matmuls; the
            simulator derates further for small workloads.
        reserved_bytes: Memory unavailable to tensors (context, NCCL
            buffers, fragmentation).
    """

    name: str
    peak_flops: float
    memory_bytes: float
    mfu: float = 0.45
    reserved_bytes: float = DEFAULT_RESERVED_BYTES

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError(f"peak_flops must be positive, got {self.peak_flops}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive, got {self.memory_bytes}")
        if not 0.0 < self.mfu <= 1.0:
            raise ValueError(f"mfu must be in (0, 1], got {self.mfu}")
        if not 0 <= self.reserved_bytes < self.memory_bytes:
            raise ValueError(
                f"reserved_bytes ({self.reserved_bytes}) must be in "
                f"[0, memory_bytes)"
            )

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s for saturated transformer workloads."""
        return self.peak_flops * self.mfu

    @property
    def usable_memory_bytes(self) -> float:
        """Memory budget available for model states and activations."""
        return self.memory_bytes - self.reserved_bytes


A100_40GB = GPUSpec(
    name="a100-40gb",
    peak_flops=312e12,
    memory_bytes=40 * 1024**3,
)

A100_80GB = GPUSpec(
    name="a100-80gb",
    peak_flops=312e12,
    memory_bytes=80 * 1024**3,
)

H100_80GB = GPUSpec(
    name="h100-80gb",
    peak_flops=989e12,
    memory_bytes=80 * 1024**3,
    mfu=0.40,
)
