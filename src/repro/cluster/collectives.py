"""Analytic timing of collective communication operations.

Each collective on a group of ``p`` devices moves a per-GPU payload
over the group's effective link (chosen by the topology: NVLink inside
a node, a shared InfiniBand uplink across nodes).  Standard
ring/pairwise algorithm volumes are used:

* All-to-All: each GPU sends ``(p-1)/p`` of its buffer.
* All-Gather / Reduce-Scatter (ring): ``(p-1)/p`` of the full buffer.
* All-Reduce (ring): ``2 (p-1)/p`` of the buffer.
* Ring P2P (context parallelism): one neighbour transfer per step.

These functions are the ground truth the simulator charges; the
planner's Eq. 13 coefficient ``alpha_3`` is fit against them.
"""

from __future__ import annotations

from repro.cluster.network import LinkSpec


def _validate(nbytes: float, group_size: int) -> None:
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")


def all_to_all_time(nbytes_per_gpu: float, group_size: int, link: LinkSpec) -> float:
    """Seconds for an All-to-All where each GPU holds ``nbytes_per_gpu``.

    Each GPU keeps its own ``1/p`` shard and exchanges the remaining
    ``(p-1)/p`` pairwise.  A single-member group is a no-op.
    """
    _validate(nbytes_per_gpu, group_size)
    if group_size == 1:
        return 0.0
    wire = nbytes_per_gpu * (group_size - 1) / group_size
    return link.transfer_time(wire)


def all_gather_time(nbytes_total: float, group_size: int, link: LinkSpec) -> float:
    """Seconds for a ring All-Gather of a ``nbytes_total`` result buffer."""
    _validate(nbytes_total, group_size)
    if group_size == 1:
        return 0.0
    wire = nbytes_total * (group_size - 1) / group_size
    return link.latency * (group_size - 1) + wire / link.bandwidth


def reduce_scatter_time(nbytes_total: float, group_size: int, link: LinkSpec) -> float:
    """Seconds for a ring Reduce-Scatter over a ``nbytes_total`` buffer."""
    return all_gather_time(nbytes_total, group_size, link)


def all_reduce_time(nbytes_total: float, group_size: int, link: LinkSpec) -> float:
    """Seconds for a ring All-Reduce (reduce-scatter + all-gather)."""
    _validate(nbytes_total, group_size)
    if group_size == 1:
        return 0.0
    wire = 2.0 * nbytes_total * (group_size - 1) / group_size
    return 2.0 * link.latency * (group_size - 1) + wire / link.bandwidth


def ring_p2p_time(nbytes_per_step: float, group_size: int, link: LinkSpec) -> float:
    """Seconds for one full ring rotation sending ``nbytes_per_step`` hops.

    Context parallelism circulates key/value shards around the ring;
    one rotation is ``p - 1`` neighbour sends which pipeline, so the
    wall time is dominated by a single GPU's sequential sends.
    """
    _validate(nbytes_per_step, group_size)
    if group_size == 1:
        return 0.0
    steps = group_size - 1
    return steps * link.transfer_time(nbytes_per_step)
