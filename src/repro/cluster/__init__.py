"""Simulated GPU-cluster substrate.

Replaces the paper's 64xA100 testbed with an analytic hardware model:
device specs (:mod:`repro.cluster.device`), a hierarchical interconnect
(:mod:`repro.cluster.network`), cluster topology and placement
(:mod:`repro.cluster.topology`), collective-communication timing
(:mod:`repro.cluster.collectives`) and an NCCL-style communication
group pool with hot switching (:mod:`repro.cluster.groups`).
"""

from repro.cluster.collectives import (
    all_gather_time,
    all_reduce_time,
    all_to_all_time,
    reduce_scatter_time,
    ring_p2p_time,
)
from repro.cluster.device import A100_40GB, A100_80GB, H100_80GB, GPUSpec
from repro.cluster.groups import CommGroup, CommGroupPool
from repro.cluster.network import (
    INFINIBAND_400G,
    NVLINK_A100,
    LinkSpec,
    NetworkSpec,
)
from repro.cluster.topology import ClusterSpec, standard_cluster

__all__ = [
    "GPUSpec",
    "A100_40GB",
    "A100_80GB",
    "H100_80GB",
    "LinkSpec",
    "NetworkSpec",
    "NVLINK_A100",
    "INFINIBAND_400G",
    "ClusterSpec",
    "standard_cluster",
    "CommGroup",
    "CommGroupPool",
    "all_to_all_time",
    "all_gather_time",
    "reduce_scatter_time",
    "all_reduce_time",
    "ring_p2p_time",
]
