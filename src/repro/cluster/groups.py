"""NCCL-style communication-group pool with hot switching.

FlexSP changes the SP-group layout every micro-batch.  Creating a NCCL
communicator is expensive (the paper measures ~10 s to build the six
power-of-two groups on 64 GPUs), so its runtime keeps a pool: groups
are created on first use and reused afterwards, and dynamic switching
between cached groups is free (S5, "Hot Switching and Group
Management").

Because group sizes are powers of two and each GPU always pairs with
its neighbours, each GPU belongs to at most ``log2(N)`` groups and the
pool holds at most ``2N - 1`` distinct groups cluster-wide (the nodes
of a complete binary tree over ranks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import ClusterSpec

#: Seconds to initialise one new NCCL communicator.  The paper reports
#: under 10 seconds for the log2(64) = 6 nested groups of one GPU,
#: i.e. a little over a second per communicator.
DEFAULT_GROUP_CREATION_SECONDS = 1.5


@dataclass(frozen=True)
class CommGroup:
    """An established communicator over a set of device ranks."""

    ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ranks:
            raise ValueError("a communication group needs at least one rank")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError(f"duplicate ranks in group: {self.ranks}")
        if tuple(sorted(self.ranks)) != self.ranks:
            raise ValueError(f"group ranks must be sorted: {self.ranks}")

    @property
    def size(self) -> int:
        return len(self.ranks)


def _is_power_of_two(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


@dataclass
class CommGroupPool:
    """Creates, caches and hands out communication groups.

    Attributes:
        cluster: Cluster the groups live on.
        creation_seconds: Cost charged the first time a distinct group
            is requested; zero afterwards (hot switch).
    """

    cluster: ClusterSpec
    creation_seconds: float = DEFAULT_GROUP_CREATION_SECONDS
    _cache: dict[tuple[int, ...], CommGroup] = field(default_factory=dict)
    _creation_time_total: float = 0.0

    def aligned_group(self, start: int, degree: int) -> tuple[int, ...]:
        """Ranks of the neighbour-aligned group of ``degree`` at ``start``.

        Power-of-two groups must start at a multiple of their size so
        that every GPU only ever pairs with its neighbours — this is
        what bounds the pool at ``log2(N)`` groups per GPU.
        """
        if not _is_power_of_two(degree):
            raise ValueError(f"SP degrees must be powers of two, got {degree}")
        if start % degree != 0:
            raise ValueError(
                f"group of degree {degree} must start at a multiple of "
                f"{degree}, got {start}"
            )
        return self.cluster.contiguous_group(start, degree)

    def get(self, ranks: tuple[int, ...]) -> tuple[CommGroup, float]:
        """Fetch (creating if needed) the group over ``ranks``.

        Returns:
            The group and the creation cost incurred by this call
            (zero on a cache hit).
        """
        key = tuple(sorted(ranks))
        if key in self._cache:
            return self._cache[key], 0.0
        group = CommGroup(ranks=key)
        self._cache[key] = group
        cost = self.creation_seconds if group.size > 1 else 0.0
        self._creation_time_total += cost
        return group, cost

    def get_aligned(self, start: int, degree: int) -> tuple[CommGroup, float]:
        """Fetch the neighbour-aligned group of ``degree`` at ``start``."""
        return self.get(self.aligned_group(start, degree))

    @property
    def cached_group_count(self) -> int:
        """Number of distinct communicators established so far."""
        return len(self._cache)

    @property
    def creation_time_total(self) -> float:
        """Total seconds spent establishing communicators."""
        return self._creation_time_total

    def groups_per_gpu(self) -> dict[int, int]:
        """How many cached groups each GPU belongs to.

        With neighbour alignment this never exceeds ``log2(N)`` for
        multi-member groups, matching the paper's bound.
        """
        counts: dict[int, int] = {r: 0 for r in range(self.cluster.num_gpus)}
        for ranks in self._cache:
            if len(ranks) > 1:
                for r in ranks:
                    counts[r] += 1
        return counts

    def warm_standard_groups(self) -> float:
        """Pre-create every neighbour-aligned power-of-two group.

        Returns the total creation cost.  This mirrors the paper's
        worst case: the full pool is the binary tree over ranks, at
        most ``2N - 1`` groups, ``log2(N)`` per GPU.
        """
        total = 0.0
        degree = 2
        while degree <= self.cluster.num_gpus:
            for start in range(0, self.cluster.num_gpus, degree):
                __, cost = self.get_aligned(start, degree)
                total += cost
            degree *= 2
        return total
