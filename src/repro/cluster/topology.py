"""Cluster topology and canonical device placement.

A cluster is ``num_nodes`` identical nodes of ``gpus_per_node`` GPUs.
Devices are numbered 0..N-1 with node-major order, so a contiguous
block of ``d <= gpus_per_node`` device ranks starting at a multiple of
``d`` stays inside one node whenever ``d`` divides ``gpus_per_node`` —
the power-of-two neighbour pairing the paper's group manager exploits
(S5, footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.device import A100_40GB, GPUSpec
from repro.cluster.network import LinkSpec, NetworkSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    Attributes:
        num_nodes: Number of machines.
        gpus_per_node: GPUs per machine (8 in the paper's testbed).
        gpu: Device specification shared by every GPU.
        network: Interconnect model.
    """

    num_nodes: int
    gpus_per_node: int = 8
    gpu: GPUSpec = A100_40GB
    network: NetworkSpec = field(default_factory=NetworkSpec)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.gpus_per_node <= 0:
            raise ValueError(
                f"gpus_per_node must be positive, got {self.gpus_per_node}"
            )

    @property
    def num_gpus(self) -> int:
        """Total device count N."""
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting device ``rank``."""
        if not 0 <= rank < self.num_gpus:
            raise ValueError(f"rank {rank} out of range for {self.num_gpus} GPUs")
        return rank // self.gpus_per_node

    def contiguous_group(self, start: int, size: int) -> tuple[int, ...]:
        """Device ranks of a contiguous block ``[start, start + size)``."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if start < 0 or start + size > self.num_gpus:
            raise ValueError(
                f"block [{start}, {start + size}) out of range for "
                f"{self.num_gpus} GPUs"
            )
        return tuple(range(start, start + size))

    def nodes_spanned(self, ranks: tuple[int, ...]) -> int:
        """Number of distinct nodes hosting the given device ranks."""
        return len({self.node_of(r) for r in ranks})

    def group_link(self, ranks: tuple[int, ...]) -> LinkSpec:
        """Effective per-GPU link for a communication group of ``ranks``."""
        if not ranks:
            raise ValueError("group must contain at least one rank")
        spans = self.nodes_spanned(ranks)
        if spans == 1:
            return self.network.group_link(
                group_gpus_per_node=len(ranks), spans_nodes=1, total_nodes=self.num_nodes
            )
        per_node = max(
            sum(1 for r in ranks if self.node_of(r) == node)
            for node in {self.node_of(r) for r in ranks}
        )
        return self.network.group_link(
            group_gpus_per_node=per_node, spans_nodes=spans, total_nodes=self.num_nodes
        )

    def link_for_degree(self, degree: int) -> LinkSpec:
        """Effective per-GPU link for a canonically placed group of ``degree``.

        Canonical placement packs the group into contiguous ranks, so a
        group no larger than a node is all-NVLink; larger groups span
        ``degree / gpus_per_node`` nodes with ``gpus_per_node`` members
        each sharing the uplink.
        """
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        if degree > self.num_gpus:
            raise ValueError(
                f"degree {degree} exceeds cluster size {self.num_gpus}"
            )
        return self.group_link(self.contiguous_group(0, degree))

    def hierarchical_link(self) -> LinkSpec:
        """Effective per-GPU link for hierarchical cluster collectives.

        All-Gather/Reduce-Scatter of *replicated or reducible* state
        (ZeRO parameter gathers, gradient reductions) run
        hierarchically in NCCL: the node uplink carries one copy per
        node while NVLink fans it out internally, so each GPU
        effectively sees the full node uplink rather than a 1/8 share.
        All-to-All traffic is pairwise-distinct and does not get this
        benefit — it uses :meth:`group_link`.
        """
        if self.num_nodes == 1:
            return self.network.intra_node
        bandwidth = min(
            self.network.inter_node_bandwidth(self.num_nodes),
            self.network.intra_node.bandwidth,
        )
        return LinkSpec(
            name=f"{self.network.inter_node.name}/hierarchical",
            bandwidth=bandwidth,
            latency=self.network.inter_node.latency,
        )

    def total_memory_budget(self) -> float:
        """Sum of usable device memory across the cluster, bytes."""
        return self.num_gpus * self.gpu.usable_memory_bytes


def standard_cluster(num_gpus: int = 64, gpu: GPUSpec = A100_40GB) -> ClusterSpec:
    """The paper's testbed shape: nodes of 8 GPUs, NVLink + 400G IB.

    Args:
        num_gpus: Total devices; must be a multiple of 8, or at most 8
            (in which case a single partial node is modelled).
        gpu: Device type.
    """
    if num_gpus <= 0:
        raise ValueError(f"num_gpus must be positive, got {num_gpus}")
    if num_gpus <= 8:
        return ClusterSpec(num_nodes=1, gpus_per_node=num_gpus, gpu=gpu)
    if num_gpus % 8 != 0:
        raise ValueError(f"num_gpus must be a multiple of 8, got {num_gpus}")
    return ClusterSpec(num_nodes=num_gpus // 8, gpus_per_node=8, gpu=gpu)
