"""DeepSpeed-style homogeneous sequence parallelism.

The strongest non-adaptive baseline: ZeRO-3 sharded data parallelism
combined with Ulysses SP at one *static* degree ``d`` for the entire
run.  The cluster forms ``N / d`` identical SP groups (the data
parallel dimension); the global batch is Best-Fit packed into inputs
of at most ``c`` tokens — the memory capacity of one group — and the
packed inputs execute round by round under gradient accumulation.

The static degree must accommodate the *worst case* the task allows
(a single sequence at the maximum context limit), which is exactly why
these systems are stuck with large, slow groups: under a 384K limit on
64 A100-40GBs only SP=64 is feasible.
"""

from __future__ import annotations

import math
from itertools import chain

import numpy as np

from repro.core.types import (
    GroupAssignment,
    InfeasibleWorkloadError,
    IterationPlan,
    MicroBatchPlan,
)
from repro.cost.model import CostModel, cost_table
from repro.data.packing import best_fit_decreasing
from repro.simulator.timing import segment_sequential_sums


def group_token_capacity(model: CostModel, sp_degree: int) -> int:
    """Packing capacity ``c``: tokens one SP group can hold at once."""
    if sp_degree <= 0:
        raise ValueError(f"sp_degree must be positive, got {sp_degree}")
    return int(model.max_tokens_per_device() * sp_degree)


def feasible_static_degrees(model: CostModel, max_context: int) -> list[int]:
    """SP degrees whose groups can host a worst-case sequence.

    A static strategy must survive any batch the task can produce,
    i.e. a single ``max_context``-token sequence must fit one group.
    """
    degrees = []
    d = 1
    while d <= model.cluster.num_gpus:
        if model.cluster.num_gpus % d == 0 and model.fits([max_context], d):
            degrees.append(d)
        d *= 2
    return degrees


def _pack_batch(
    lengths: tuple[int, ...], model: CostModel, sp_degree: int
) -> list[tuple[int, ...]]:
    capacity = group_token_capacity(model, sp_degree)
    too_long = [s for s in lengths if s > capacity]
    if too_long:
        raise InfeasibleWorkloadError(
            f"sequences {too_long[:3]}... exceed SP={sp_degree} group "
            f"capacity of {capacity} tokens; use a larger degree"
        )
    # A well-tuned system does not pack the whole batch into fewer
    # packs than there are data-parallel replicas — that would idle
    # devices.  Shrink the packing target so packs spread across the
    # replicas; for paper-scale batches (tokens >> cluster memory)
    # this leaves the memory-capacity packing unchanged.
    num_groups = max(model.cluster.num_gpus // sp_degree, 1)
    balanced = -(-sum(lengths) // num_groups)  # ceil
    target = min(capacity, max(balanced, max(lengths)))
    packs = best_fit_decreasing(lengths, target)
    return [tuple(p.lengths) for p in packs]


def homogeneous_plan(
    lengths: tuple[int, ...], model: CostModel, sp_degree: int
) -> IterationPlan:
    """Build the iteration plan a homogeneous-SP system would execute.

    Packs the batch to the group capacity, then schedules packs onto
    the ``N / d`` groups round by round, longest packs first with LPT
    balancing inside each round.
    """
    num_groups = model.cluster.num_gpus // sp_degree
    if num_groups == 0:
        raise ValueError(
            f"SP degree {sp_degree} exceeds cluster size "
            f"{model.cluster.num_gpus}"
        )
    packs = _pack_batch(lengths, model, sp_degree)
    packs.sort(key=lambda p: sum(p), reverse=True)
    num_rounds = math.ceil(len(packs) / num_groups)

    microbatches = []
    for r in range(num_rounds):
        round_packs = packs[r * num_groups : (r + 1) * num_groups]
        groups = []
        for i, pack in enumerate(round_packs):
            start = i * sp_degree
            groups.append(
                GroupAssignment(
                    degree=sp_degree,
                    device_ranks=tuple(range(start, start + sp_degree)),
                    lengths=pack,
                )
            )
        microbatches.append(MicroBatchPlan(groups=tuple(groups)))
    return IterationPlan(
        microbatches=tuple(microbatches),
        solver_name=f"homogeneous-sp{sp_degree}",
    )


def estimate_homogeneous_iteration(
    lengths: tuple[int, ...], model: CostModel, sp_degree: int, *,
    vectorized: bool = True,
) -> float:
    """Cost-model estimate of a homogeneous iteration, seconds.

    Used by the static tuner and by FlexSP-BatchAda's per-batch degree
    choice; sums the per-round makespans under Eq. 14.

    With ``vectorized`` (the default) every pack's Eq. 14 time is
    evaluated through the :class:`~repro.cost.model.CostTable` kernels
    as one array expression, skipping plan-object construction; the
    result is bit-identical to the scalar path (``vectorized=False``),
    which walks a full :func:`homogeneous_plan` group by group.
    """
    if not vectorized:
        plan = homogeneous_plan(lengths, model, sp_degree)
        total = 0.0
        for mb in plan.microbatches:
            total += max(
                model.time_with_overheads(g.lengths, g.degree) for g in mb.groups
            )
        return total
    num_groups = model.cluster.num_gpus // sp_degree
    if num_groups == 0:
        raise ValueError(
            f"SP degree {sp_degree} exceeds cluster size "
            f"{model.cluster.num_gpus}"
        )
    packs = _pack_batch(lengths, model, sp_degree)
    packs.sort(key=lambda p: sum(p), reverse=True)
    times = _pack_times(packs, model, sp_degree)
    num_rounds = math.ceil(len(packs) / num_groups)
    total = 0.0
    for r in range(num_rounds):
        total += float(times[r * num_groups : (r + 1) * num_groups].max())
    return total


def _pack_times(
    packs: list[tuple[int, ...]], model: CostModel, sp_degree: int
) -> np.ndarray:
    """Eq. 14 + exposed-gather seconds per pack, as one array op.

    Work sums accumulate left to right per pack
    (:func:`segment_sequential_sums`), so each lane equals
    ``CostModel.time_with_overheads(pack, sp_degree)`` bit-for-bit.
    """
    table = cost_table(model)
    counts = np.fromiter((len(p) for p in packs), dtype=np.int64, count=len(packs))
    flat = np.fromiter(
        chain.from_iterable(packs), dtype=np.int64, count=int(counts.sum())
    )
    work = segment_sequential_sums(table.work_terms(flat), counts)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    tokens = np.add.reduceat(flat, starts)
    degree_idx = np.full(len(packs), table.degree_index[sp_degree])
    return table.group_times(work, tokens, degree_idx)
