"""Per-workload strategy tuning for the baselines.

The paper "manually tune[s] the most efficient parallelism strategies
for all baseline systems under different workloads" (Appendix B.2).
This module automates the same search: enumerate the feasible static
strategies, estimate each on a few probe batches from the workload's
corpus, and keep the fastest.

Both tuners default to the vectorized evaluators — the whole feasible
strategy space is scored over all probe batches as array expressions —
and accept ``vectorized=False`` to run the scalar per-(group, pack)
loops instead; the two paths score (and therefore choose) identically.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.baselines.homogeneous import (
    estimate_homogeneous_iteration,
    feasible_static_degrees,
)
from repro.baselines.megatron import (
    MegatronStrategy,
    megatron_iteration,
    megatron_strategy_space,
    megatron_token_capacity,
)
from repro.cluster.topology import ClusterSpec
from repro.core.types import InfeasibleWorkloadError
from repro.cost.model import CostModel
from repro.model.config import ModelConfig
from repro.model.memory import ActivationCheckpointing


def choose_static_degree(
    probe_batches: Iterable[tuple[int, ...]],
    model: CostModel,
    max_context: int,
    *,
    vectorized: bool = True,
) -> int:
    """Best static SP degree for a DeepSpeed-style system.

    Feasibility must cover the task's worst case (one sequence at
    ``max_context``); among feasible degrees, the one with the lowest
    mean estimated iteration time over the probe batches wins.

    Raises:
        ValueError: No degree can host a worst-case sequence.
    """
    candidates = feasible_static_degrees(model, max_context)
    if not candidates:
        raise InfeasibleWorkloadError(
            f"no SP degree on {model.cluster.num_gpus} devices fits a "
            f"{max_context}-token sequence"
        )
    batches = list(probe_batches)
    if not batches:
        raise ValueError("at least one probe batch is required")
    best_degree = None
    best_time = None
    for d in candidates:
        total = sum(
            estimate_homogeneous_iteration(batch, model, d, vectorized=vectorized)
            for batch in batches
        )
        if best_time is None or total < best_time:
            best_time = total
            best_degree = d
    assert best_degree is not None
    return best_degree


def tune_megatron(
    probe_batches: Iterable[tuple[int, ...]],
    config: ModelConfig,
    cluster: ClusterSpec,
    max_context: int,
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
    *,
    vectorized: bool = True,
) -> MegatronStrategy:
    """Best (tp, cp, dp) for a Megatron-LM-style system.

    Raises:
        ValueError: No strategy can host a worst-case sequence.
    """
    batches = list(probe_batches)
    if not batches:
        raise ValueError("at least one probe batch is required")
    best_strategy = None
    best_time = None
    for strategy in megatron_strategy_space(cluster):
        capacity = megatron_token_capacity(config, cluster, strategy, checkpointing)
        if capacity < max_context:
            continue
        try:
            total = sum(
                megatron_iteration(
                    batch, config, cluster, strategy, checkpointing,
                    pack_target=max_context, vectorized=vectorized,
                ).iteration_seconds
                for batch in batches
            )
        except ValueError:
            continue
        if best_time is None or total < best_time:
            best_time = total
            best_strategy = strategy
    if best_strategy is None:
        raise InfeasibleWorkloadError(
            f"no Megatron strategy on {cluster.num_gpus} devices fits a "
            f"{max_context}-token sequence"
        )
    return best_strategy
