"""FlexSP-BatchAda: per-batch adaptive homogeneous SP (S6.1).

A middle ground between static baselines and full FlexSP: for *each*
data batch it picks the most efficient homogeneous SP degree — e.g.
two SP=32 groups for one batch, eight SP=8 groups for the next — but
never mixes degrees within a batch.  The paper uses it to isolate how
much of FlexSP's gain comes from batch-level adaptivity versus the
finer within-batch heterogeneity.
"""

from __future__ import annotations

from repro.baselines.homogeneous import estimate_homogeneous_iteration
from repro.core.types import InfeasibleWorkloadError
from repro.cost.model import CostModel


def choose_degree_for_batch(
    lengths: tuple[int, ...], model: CostModel, *, vectorized: bool = True
) -> tuple[int, float]:
    """Best homogeneous SP degree for one specific batch.

    Unlike the static baseline, feasibility only needs to cover this
    batch's actual longest sequence, so short-sequence batches get
    small, fast groups.

    Returns:
        (degree, estimated iteration seconds).

    Raises:
        ValueError: The batch's longest sequence fits no degree.
    """
    if not lengths:
        raise ValueError("cannot choose a degree for an empty batch")
    longest = max(lengths)
    best: tuple[int, float] | None = None
    d = 1
    while d <= model.cluster.num_gpus:
        if model.cluster.num_gpus % d == 0 and model.fits([longest], d):
            estimate = estimate_homogeneous_iteration(
                lengths, model, d, vectorized=vectorized
            )
            if best is None or estimate < best[1]:
                best = (d, estimate)
        d *= 2
    if best is None:
        raise InfeasibleWorkloadError(
            f"no homogeneous SP degree fits a {longest}-token sequence on "
            f"{model.cluster.num_gpus} devices"
        )
    return best
