"""Baseline systems (S6.1).

DeepSpeed-style homogeneous Ulysses SP + ZeRO-3
(:mod:`repro.baselines.homogeneous`), Megatron-LM-style TP + CP + DP
(:mod:`repro.baselines.megatron`), the FlexSP-BatchAda variant
(:mod:`repro.baselines.batch_adaptive`), and the exhaustive strategy
tuner that stands in for the paper's manual per-workload tuning
(:mod:`repro.baselines.tuner`).
"""

from repro.baselines.batch_adaptive import choose_degree_for_batch
from repro.baselines.homogeneous import (
    estimate_homogeneous_iteration,
    feasible_static_degrees,
    homogeneous_plan,
)
from repro.baselines.megatron import (
    MegatronOutcome,
    MegatronStrategy,
    megatron_iteration,
    megatron_strategy_space,
)
from repro.baselines.tuner import choose_static_degree, tune_megatron

__all__ = [
    "homogeneous_plan",
    "estimate_homogeneous_iteration",
    "feasible_static_degrees",
    "choose_degree_for_batch",
    "MegatronStrategy",
    "MegatronOutcome",
    "megatron_iteration",
    "megatron_strategy_space",
    "choose_static_degree",
    "tune_megatron",
]
