"""Megatron-LM-style baseline: TP (+Megatron-SP) x CP x DP(ZeRO-1).

Megatron-LM shards each layer's tensors across ``tp`` devices
(tensor parallelism with Megatron-style sequence parallelism in the
dropout/normalisation regions), splits the sequence dimension of
attention across ``cp`` devices with ring-attention context
parallelism, and replicates the result ``dp`` times with ZeRO-1 data
parallelism.  The paper tunes ``tp in {8, 16}``, ``cp in {4, 8}`` per
workload (Appendix B.2).

The communication structure differs fundamentally from Ulysses SP:
TP All-Gather/Reduce-Scatter volume is charged per layer, and the CP
KV ring is charged with compute overlap (Appendix D explains that on
slow inter-node links with mostly-short sequences the attention
compute cannot hide the ring, which is why Megatron-LM generally
trails DeepSpeed in Fig. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import chain

import numpy as np

from repro.cluster.collectives import all_gather_time, all_reduce_time
from repro.cluster.topology import ClusterSpec
from repro.core.types import InfeasibleWorkloadError
from repro.data.packing import best_fit_decreasing
from repro.model.config import ModelConfig
from repro.model.flops import (
    batch_flops,
    dense_flops_per_token,
    training_flops_multiplier,
)
from repro.model.memory import (
    ActivationCheckpointing,
    activation_bytes_per_token,
)
from repro.parallelism.ring import cp_exposed_comm_time, cp_ring_time
from repro.simulator.timing import (
    MICROBATCH_LAUNCH_OVERHEAD,
    SATURATION_TOKENS,
    optimizer_step_time,
    segment_sequential_sums,
)

#: Megatron-SP collectives per layer per direction: an All-Gather and a
#: Reduce-Scatter around both the attention and the MLP block.
TP_COLLECTIVES_PER_LAYER_PER_DIRECTION = 4


@dataclass(frozen=True)
class MegatronStrategy:
    """A tuned Megatron-LM configuration.

    Attributes:
        tp: Tensor-parallel degree (with Megatron-style SP).
        cp: Context-parallel degree (ring attention).
        dp: Data-parallel degree; ``tp * cp * dp`` must equal N.
    """

    tp: int
    cp: int
    dp: int

    def __post_init__(self) -> None:
        for name in ("tp", "cp", "dp"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two, got {value}")

    @property
    def model_shards(self) -> int:
        return self.tp * self.cp

    def describe(self) -> str:
        return f"tp={self.tp} cp={self.cp} dp={self.dp} zero=1"


@dataclass(frozen=True)
class MegatronOutcome:
    """Result of one simulated Megatron-LM iteration."""

    iteration_seconds: float
    comm_seconds: float
    num_microbatches: int
    strategy: MegatronStrategy

    @property
    def comm_fraction(self) -> float:
        if self.iteration_seconds <= 0:
            return 0.0
        return self.comm_seconds / self.iteration_seconds


def megatron_strategy_space(cluster: ClusterSpec) -> list[MegatronStrategy]:
    """Candidate (tp, cp, dp) triples on this cluster.

    TP is capped at two nodes' worth of GPUs (tp=16 is the paper's
    largest) and CP at the cluster; every power-of-two factorisation of
    N is enumerated.
    """
    n = cluster.num_gpus
    strategies = []
    tp = 1
    while tp <= min(n, 2 * cluster.gpus_per_node):
        cp = 1
        while tp * cp <= n:
            if n % (tp * cp) == 0:
                dp = n // (tp * cp)
                if dp & (dp - 1) == 0:
                    strategies.append(MegatronStrategy(tp=tp, cp=cp, dp=dp))
            cp *= 2
        tp *= 2
    return strategies


def megatron_state_bytes_per_device(
    config: ModelConfig, strategy: MegatronStrategy
) -> float:
    """Model-state bytes per device under TP sharding + ZeRO-1 DP.

    TP shards parameters and gradients; Megatron's distributed
    optimizer shards the fp32 optimizer states across the full
    data-parallel replication group, which includes both the DP and CP
    dimensions (CP ranks hold identical parameters).
    """
    params = config.parameter_count()
    param_and_grad = 4.0 * params / strategy.tp
    optimizer = 12.0 * params / (strategy.tp * strategy.dp * strategy.cp)
    return param_and_grad + optimizer


def megatron_token_capacity(
    config: ModelConfig,
    cluster: ClusterSpec,
    strategy: MegatronStrategy,
    checkpointing: ActivationCheckpointing,
) -> int:
    """Tokens one model replica can hold in a micro-batch."""
    budget = cluster.gpu.usable_memory_bytes - megatron_state_bytes_per_device(
        config, strategy
    )
    if budget <= 0:
        return 0
    per_token_per_device = activation_bytes_per_token(config, checkpointing) / (
        strategy.tp * strategy.cp
    )
    return int(budget / per_token_per_device)


def _tp_comm_time(
    config: ModelConfig, cluster: ClusterSpec, tokens: int, strategy: MegatronStrategy
) -> float:
    """TP All-Gather/Reduce-Scatter seconds for one micro-batch."""
    if strategy.tp == 1:
        return 0.0
    link = cluster.link_for_degree(strategy.tp)
    # Activations are also sequence-split across CP, so each TP
    # collective moves the replica's tokens divided by cp.
    buffer_bytes = tokens / strategy.cp * config.hidden_size * config.bytes_per_element
    rounds = config.num_layers * TP_COLLECTIVES_PER_LAYER_PER_DIRECTION * 2
    per_round = all_gather_time(buffer_bytes, strategy.tp, link)
    return rounds * per_round


def _cp_comm_time(
    config: ModelConfig,
    cluster: ClusterSpec,
    lengths: tuple[int, ...],
    strategy: MegatronStrategy,
    checkpointing: ActivationCheckpointing,
    compute_seconds: float,
) -> float:
    """Exposed CP ring seconds for one micro-batch (after overlap).

    Megatron schedules the next chunk's KV rotation behind the whole
    block compute, not just the attention matmuls, so the overlap
    window is the micro-batch's full per-device compute time.
    """
    if strategy.cp == 1:
        return 0.0
    link = cluster.link_for_degree(strategy.model_shards)
    tokens = sum(lengths)
    ring = cp_ring_time(config, tokens, strategy.cp, link)
    return cp_exposed_comm_time(compute_seconds, ring, overlap_efficiency=0.9)


def _compute_time(
    config: ModelConfig,
    cluster: ClusterSpec,
    lengths: tuple[int, ...],
    strategy: MegatronStrategy,
    checkpointing: ActivationCheckpointing,
) -> float:
    """Per-device compute seconds for one replica micro-batch."""
    flops = batch_flops(config, lengths) * training_flops_multiplier(checkpointing)
    shards = strategy.tp * strategy.cp
    per_device = flops / shards
    tokens_per_device = sum(lengths) / shards
    derate = tokens_per_device / (tokens_per_device + SATURATION_TOKENS)
    return per_device / (cluster.gpu.effective_flops * derate) + MICROBATCH_LAUNCH_OVERHEAD


def _pack_replica_times(
    packs: list[tuple[int, ...]],
    config: ModelConfig,
    cluster: ClusterSpec,
    strategy: MegatronStrategy,
    checkpointing: ActivationCheckpointing,
) -> tuple[np.ndarray, np.ndarray]:
    """(replica seconds, comm seconds) per pack, as array expressions.

    Mirrors ``_compute_time`` / ``_tp_comm_time`` / ``_cp_comm_time``
    operation-for-operation (with left-to-right FLOP accumulation per
    pack), so each lane is bit-identical to the scalar inner loop of
    :func:`megatron_iteration`.
    """
    counts = np.fromiter((len(p) for p in packs), dtype=np.int64, count=len(packs))
    flat = np.fromiter(
        chain.from_iterable(packs), dtype=np.int64, count=int(counts.sum())
    )
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    tokens = np.add.reduceat(flat, starts)

    s = flat.astype(np.float64)
    dense = dense_flops_per_token(config)
    attention = config.num_layers * (4.0 * s * s * config.hidden_size / 2.0)
    forward = segment_sequential_sums(s * dense + attention, counts)
    flops = forward * training_flops_multiplier(checkpointing)
    shards = strategy.tp * strategy.cp
    per_device = flops / shards
    tokens_per_device = tokens / shards
    derate = tokens_per_device / (tokens_per_device + SATURATION_TOKENS)
    compute = (
        per_device / (cluster.gpu.effective_flops * derate)
        + MICROBATCH_LAUNCH_OVERHEAD
    )

    if strategy.tp == 1:
        tp_comm = np.zeros(len(packs))
    else:
        link = cluster.link_for_degree(strategy.tp)
        buffer_bytes = (
            tokens / strategy.cp * config.hidden_size * config.bytes_per_element
        )
        rounds = config.num_layers * TP_COLLECTIVES_PER_LAYER_PER_DIRECTION * 2
        wire = buffer_bytes * (strategy.tp - 1) / strategy.tp
        per_round = link.latency * (strategy.tp - 1) + wire / link.bandwidth
        tp_comm = rounds * per_round

    if strategy.cp == 1:
        cp_comm = np.zeros(len(packs))
    else:
        link = cluster.link_for_degree(strategy.model_shards)
        shard_tokens = tokens / strategy.cp
        kv_bytes = 2 * shard_tokens * config.hidden_size * config.bytes_per_element
        per_layer = kv_bytes * (strategy.cp - 1)
        volume = per_layer * config.num_layers * 2.0
        volume = volume / 2.0  # causal striping halves the useful rotation
        rotations = config.num_layers * 2 * max(strategy.cp - 1, 1)
        ring = link.latency * rotations + volume / link.bandwidth
        hidden = np.minimum(ring, 0.9 * compute)
        cp_comm = ring - hidden

    return compute + tp_comm + cp_comm, tp_comm + cp_comm


def megatron_iteration(
    lengths: tuple[int, ...],
    config: ModelConfig,
    cluster: ClusterSpec,
    strategy: MegatronStrategy,
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
    pack_target: int | None = None,
    *,
    vectorized: bool = True,
) -> MegatronOutcome:
    """Simulate one Megatron-LM training iteration over a global batch.

    Packs the batch to the training context length (capped by replica
    memory capacity), schedules packs on the ``dp`` replicas round by
    round, and charges compute, TP collectives, the exposed CP ring,
    the ZeRO-1 gradient All-Reduce and the optimizer.

    Args:
        pack_target: Packing capacity ``c`` in tokens; defaults to the
            replica memory capacity.  The paper's protocol packs to
            the task's maximum context length.
        vectorized: Evaluate all packs' times as array expressions
            (bit-identical to the scalar per-pack loop, which
            ``vectorized=False`` preserves as the reference path).
    """
    capacity = megatron_token_capacity(config, cluster, strategy, checkpointing)
    target = capacity if pack_target is None else min(pack_target, capacity)
    over = [s for s in lengths if s > target]
    if over:
        raise InfeasibleWorkloadError(
            f"sequence of {max(over)} tokens exceeds replica capacity "
            f"{target} under {strategy.describe()}"
        )
    packs = [tuple(p.lengths) for p in best_fit_decreasing(lengths, target)]
    packs.sort(key=lambda p: sum(p), reverse=True)
    num_rounds = math.ceil(len(packs) / strategy.dp)

    total = 0.0
    comm_total = 0.0
    if vectorized:
        replica_times, comm_times = _pack_replica_times(
            packs, config, cluster, strategy, checkpointing
        )
        for r in range(num_rounds):
            chunk = slice(r * strategy.dp, (r + 1) * strategy.dp)
            round_times = replica_times[chunk]
            # First occurrence of the maximum — the same pack the
            # scalar loop's strict ``>`` update keeps.
            slowest = int(np.argmax(round_times))
            total += float(round_times[slowest])
            comm_total += float(comm_times[chunk][slowest])
    else:
        for r in range(num_rounds):
            round_packs = packs[r * strategy.dp : (r + 1) * strategy.dp]
            round_time = 0.0
            round_comm = 0.0
            for pack in round_packs:
                tokens = sum(pack)
                compute = _compute_time(
                    config, cluster, pack, strategy, checkpointing
                )
                tp_comm = _tp_comm_time(config, cluster, tokens, strategy)
                cp_comm = _cp_comm_time(
                    config, cluster, pack, strategy, checkpointing, compute
                )
                replica_time = compute + tp_comm + cp_comm
                if replica_time > round_time:
                    round_time = replica_time
                    round_comm = tp_comm + cp_comm
            total += round_time
            comm_total += round_comm

    grad_bytes = 2.0 * config.parameter_count() / strategy.tp
    if strategy.dp > 1:
        link = cluster.hierarchical_link()
        grad_sync = all_reduce_time(grad_bytes, strategy.dp, link)
    else:
        grad_sync = 0.0
    optim = optimizer_step_time(config, cluster)
    total += grad_sync + optim
    comm_total += grad_sync

    return MegatronOutcome(
        iteration_seconds=total,
        comm_seconds=comm_total,
        num_microbatches=num_rounds,
        strategy=strategy,
    )
