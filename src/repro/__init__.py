"""FlexSP reproduction: flexible sequence parallelism for LLM training.

Reproduces "FlexSP: Accelerating Large Language Model Training via
Flexible Sequence Parallelism" (ASPLOS 2025) as a pure-Python library:
the heterogeneity-adaptive SP solver (:mod:`repro.core`), its cost
models (:mod:`repro.cost`), the simulated cluster and execution engine
standing in for the paper's 64-GPU testbed (:mod:`repro.cluster`,
:mod:`repro.simulator`), corpus and parallelism substrates
(:mod:`repro.data`, :mod:`repro.parallelism`, :mod:`repro.model`),
the evaluated baselines (:mod:`repro.baselines`) and the experiment
harness regenerating every table and figure
(:mod:`repro.experiments`).

Quickstart::

    from repro import (
        GPT_7B, COMMONCRAWL, Workload, standard_cluster,
        FlexSPSystem, run_system,
    )

    workload = Workload(model=GPT_7B, distribution=COMMONCRAWL,
                        max_context=384 * 1024,
                        cluster=standard_cluster(64))
    result = run_system(FlexSPSystem(workload), workload, num_iterations=2)
    print(result.mean_iteration_seconds)
"""

from repro.cluster import ClusterSpec, GPUSpec, standard_cluster
from repro.core import (
    FlexSPSolver,
    IterationPlan,
    MicroBatchPlan,
    SequenceBatch,
    SolverConfig,
)
from repro.core.planner import PlannerConfig, PlanInfeasibleError
from repro.cost import CostModel, fit_cost_model
from repro.data import COMMONCRAWL, GITHUB, WIKIPEDIA, SyntheticCorpus
from repro.experiments import (
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
    MegatronLMSystem,
    RunResult,
    Workload,
    build_system,
    run_system,
)
from repro.model import GPT_7B, GPT_13B, GPT_30B, ModelConfig
from repro.simulator import IterationExecutor

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ModelConfig",
    "GPT_7B",
    "GPT_13B",
    "GPT_30B",
    "ClusterSpec",
    "GPUSpec",
    "standard_cluster",
    "GITHUB",
    "COMMONCRAWL",
    "WIKIPEDIA",
    "SyntheticCorpus",
    "CostModel",
    "fit_cost_model",
    "SequenceBatch",
    "MicroBatchPlan",
    "IterationPlan",
    "FlexSPSolver",
    "SolverConfig",
    "PlannerConfig",
    "PlanInfeasibleError",
    "IterationExecutor",
    "Workload",
    "FlexSPSystem",
    "DeepSpeedUlyssesSystem",
    "FlexSPBatchAdaSystem",
    "MegatronLMSystem",
    "build_system",
    "run_system",
    "RunResult",
]
