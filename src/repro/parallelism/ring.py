"""Ring-attention context parallelism (CP) accounting.

Context parallelism (S2.1.3) splits the sequence dimension of Q, K, V
across devices and circulates K/V shards around a ring so every device
eventually attends over the full sequence.  The rotation volume is
substantial — far larger than Ulysses All-to-All — but CP overlaps it
with the chunked attention computation; it is only *exposed* when a
rotation step outlasts the attention chunk it hides behind, which is
exactly what happens for short sequences on slow inter-node links
(Appendix D's explanation of Megatron-LM's behaviour).
"""

from __future__ import annotations

from repro.cluster.network import LinkSpec
from repro.model.config import ModelConfig


def cp_kv_ring_bytes_per_step(
    config: ModelConfig, seq_len: float, cp_degree: int
) -> float:
    """Per-GPU bytes circulated per layer per direction for one sequence.

    Each of the ``cp - 1`` rotation steps forwards the K and V shards
    of ``seq_len / cp`` tokens; the backward pass additionally rotates
    K/V gradients, which we fold into the per-direction figure charged
    twice by the caller.
    """
    if cp_degree <= 0:
        raise ValueError(f"cp_degree must be positive, got {cp_degree}")
    if seq_len < 0:
        raise ValueError(f"seq_len must be non-negative, got {seq_len}")
    if cp_degree == 1:
        return 0.0
    shard_tokens = seq_len / cp_degree
    kv_bytes = 2 * shard_tokens * config.hidden_size * config.bytes_per_element
    return kv_bytes * (cp_degree - 1)


def cp_step_comm_bytes_per_gpu(
    config: ModelConfig, group_tokens: float, cp_degree: int, causal: bool = True
) -> float:
    """Per-GPU ring bytes for a full training step over ``group_tokens``.

    Forward rotates K/V once per layer and the backward pass rotates
    them again (with gradient return piggybacked on the same schedule).
    Causal masking with load-balanced striping (striped/zigzag
    attention) lets ranks skip shards that are entirely masked,
    halving the useful rotation volume.
    """
    per_layer = cp_kv_ring_bytes_per_step(config, group_tokens, cp_degree)
    directions = 2.0  # forward + backward rotation schedules
    volume = per_layer * config.num_layers * directions
    if causal:
        volume /= 2.0
    return volume


def cp_exposed_comm_time(
    attention_compute_time: float, ring_comm_time: float, overlap_efficiency: float = 0.85
) -> float:
    """Exposed (non-overlapped) communication time of a CP rotation.

    CP hides the rotation behind chunked attention compute; a fraction
    ``overlap_efficiency`` of the compute window is usable for hiding.

    Args:
        attention_compute_time: Attention compute seconds on this device.
        ring_comm_time: Total ring-rotation seconds.
        overlap_efficiency: Usable fraction of the compute window.
    """
    if not 0.0 <= overlap_efficiency <= 1.0:
        raise ValueError(
            f"overlap_efficiency must be in [0, 1], got {overlap_efficiency}"
        )
    if attention_compute_time < 0 or ring_comm_time < 0:
        raise ValueError("times must be non-negative")
    hidden = min(ring_comm_time, overlap_efficiency * attention_compute_time)
    return ring_comm_time - hidden


def cp_ring_time(
    config: ModelConfig,
    group_tokens: float,
    cp_degree: int,
    link: LinkSpec,
) -> float:
    """Wall seconds of the full-step ring rotation (before overlap)."""
    nbytes = cp_step_comm_bytes_per_gpu(config, group_tokens, cp_degree)
    if nbytes == 0.0:
        return 0.0
    rotations = config.num_layers * 2 * max(cp_degree - 1, 1)
    return link.latency * rotations + nbytes / link.bandwidth
