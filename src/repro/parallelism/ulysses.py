"""Ulysses-style sequence parallelism communication accounting.

DeepSpeed-Ulysses (Eqs. 1-4 of the paper) keeps each device holding an
``N/P x d`` sequence shard and full attention weights.  Per attention
layer and direction it performs four All-to-Alls: three to re-shard
Q, K, V from sequence-split to head-split, and one to re-shard the
attention output back.  The per-GPU payload of each All-to-All is the
device's resident token count times the hidden size — *independent of
P* — while the fraction that crosses the wire is ``(P-1)/P``.

The planner's Eq. 13 models the resulting time as
``alpha_3 * sum(s_k) / (d_p * v_p) + beta_2``; this module provides the
exact byte counts the simulator charges.
"""

from __future__ import annotations

from repro.model.config import ModelConfig

#: All-to-Alls per attention layer per direction (Q, K, V in; O out).
ALLTOALL_PER_LAYER_PER_DIRECTION = 4


def alltoall_bytes_per_gpu(
    config: ModelConfig, resident_tokens: float
) -> float:
    """Per-GPU buffer bytes of one All-to-All.

    ``resident_tokens`` is the shard size ``sum(s_k) / P`` held by each
    device of the SP group.
    """
    if resident_tokens < 0:
        raise ValueError(f"resident_tokens must be non-negative, got {resident_tokens}")
    return resident_tokens * config.hidden_size * config.bytes_per_element


def alltoall_rounds_per_step(config: ModelConfig) -> int:
    """All-to-All operations per training step (forward + backward).

    Each layer performs four All-to-Alls forward; the backward pass
    mirrors them.
    """
    return config.num_layers * ALLTOALL_PER_LAYER_PER_DIRECTION * 2


def sp_step_comm_bytes_per_gpu(
    config: ModelConfig, group_tokens: float, sp_degree: int
) -> float:
    """Total per-GPU All-to-All buffer bytes for one training step.

    Args:
        config: Model architecture.
        group_tokens: Total tokens processed by the SP group,
            ``sum(s_k)`` over its assigned sequences.
        sp_degree: Group size P.

    Returns:
        Bytes each GPU pushes through All-to-All across the whole
        forward+backward pass (before the ``(P-1)/P`` wire discount
        applied by the collective model).
    """
    if sp_degree <= 0:
        raise ValueError(f"sp_degree must be positive, got {sp_degree}")
    if group_tokens < 0:
        raise ValueError(f"group_tokens must be non-negative, got {group_tokens}")
    resident = group_tokens / sp_degree
    per_round = alltoall_bytes_per_gpu(config, resident)
    return per_round * alltoall_rounds_per_step(config)
