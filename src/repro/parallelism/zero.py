"""ZeRO sharded-data-parallel accounting.

FlexSP runs Ulysses SP on top of ZeRO-3 (PyTorch FSDP): model states
are sharded over *all* devices, so the per-device model-state memory
``M_ms`` is a constant independent of SP-group layout (S4.1.2).  ZeRO
adds communication — parameter All-Gathers before each layer's compute
(forward and backward) and a gradient Reduce-Scatter per step — whose
volume depends only on model size, not sequence lengths; the paper
therefore treats it as orthogonal, and we account for it explicitly in
the simulator so the end-to-end times include it.
"""

from __future__ import annotations

from repro.model.config import ModelConfig
from repro.model.memory import model_state_bytes_per_device


def zero_state_bytes_per_device(
    config: ModelConfig, num_devices: int, zero_stage: int = 3
) -> float:
    """Per-device model-state bytes; re-export with ZeRO vocabulary."""
    return model_state_bytes_per_device(config, num_devices, zero_stage)


def zero3_gather_bytes_per_microbatch(config: ModelConfig) -> float:
    """Per-device bytes All-Gathered per micro-batch under ZeRO-3.

    Each transformer block's bf16 parameters are gathered once for the
    forward and once for the backward of every micro-batch (FSDP
    reshard-after-forward).  This is the *result-buffer* size handed to
    the ring All-Gather model.
    """
    layer_params = config.num_layers * config.layer_parameter_count()
    bf16 = 2
    gathers_per_microbatch = 2
    return layer_params * bf16 * gathers_per_microbatch


def zero_gradient_sync_bytes(config: ModelConfig) -> float:
    """Bytes of gradients Reduce-Scattered once per training step.

    Gradient accumulation defers the synchronisation to the last
    micro-batch, so the volume is charged once per step regardless of
    the micro-batch count.
    """
    return config.parameter_count() * 2
