"""Hybrid parallelism strategy descriptors.

A strategy fixes the degree of each parallelism dimension.  The
baseline systems use one *static* strategy for a whole run: DeepSpeed
combines ZeRO-3 data parallelism with Ulysses SP; Megatron-LM combines
TP (with Megatron-style SP), ring-attention CP and ZeRO-1 DP.  FlexSP
replaces the single SP degree with a per-micro-batch mix of groups.
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


@dataclass(frozen=True)
class HybridStrategy:
    """Degrees of a static hybrid-parallel configuration.

    The product ``dp * tp * cp * sp * pp`` must equal the device count
    it is deployed on.  SP and CP both split the sequence dimension but
    differ in how attention is computed (All-to-All head scattering vs
    ring KV rotation); the paper's systems never combine them.

    Attributes:
        dp: Data-parallel degree (model replicas).
        sp: Ulysses sequence-parallel degree.
        tp: Tensor-parallel degree.
        cp: Context-parallel (ring attention) degree.
        pp: Pipeline-parallel degree.
        zero_stage: ZeRO sharding stage applied to the DP dimension.
    """

    dp: int = 1
    sp: int = 1
    tp: int = 1
    cp: int = 1
    pp: int = 1
    zero_stage: int = 3

    def __post_init__(self) -> None:
        for name in ("dp", "sp", "tp", "cp", "pp"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} degree must be positive, got {value}")
        if self.zero_stage not in (0, 1, 2, 3):
            raise ValueError(f"zero_stage must be in 0..3, got {self.zero_stage}")
        if self.sp > 1 and self.cp > 1:
            raise ValueError(
                "Ulysses SP and ring CP are alternative sequence splits; "
                "the evaluated systems use one or the other"
            )

    @property
    def world_size(self) -> int:
        """Devices one full deployment of this strategy occupies."""
        return self.dp * self.sp * self.tp * self.cp * self.pp

    @property
    def sequence_shards(self) -> int:
        """How many ways the sequence dimension is split (SP or CP)."""
        return self.sp * self.cp

    @property
    def model_shards(self) -> int:
        """How many devices cooperate on one sequence (everything but DP)."""
        return self.sp * self.tp * self.cp * self.pp

    def validate_for(self, num_gpus: int, gpus_per_node: int) -> None:
        """Raise if this strategy cannot be deployed on the cluster."""
        if self.world_size != num_gpus:
            raise ValueError(
                f"strategy occupies {self.world_size} devices but the "
                f"cluster has {num_gpus}"
            )
        if self.tp > gpus_per_node and not _is_power_of_two(self.tp):
            raise ValueError(f"tp degree {self.tp} must be a power of two")

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``"dp=2 sp=32 zero=3"``."""
        parts = []
        for name in ("dp", "sp", "tp", "cp", "pp"):
            value = getattr(self, name)
            if value > 1:
                parts.append(f"{name}={value}")
        if not parts:
            parts.append("dp=1")
        parts.append(f"zero={self.zero_stage}")
        return " ".join(parts)


def candidate_sp_degrees(num_gpus: int, max_degree: int | None = None) -> list[int]:
    """Power-of-two SP degrees deployable on ``num_gpus`` devices.

    SP degrees are powers of two to fit the binary structure of chips
    and networks (S4.1.1, footnote 3); the largest candidate is capped
    by the device count and optionally by ``max_degree``.
    """
    if num_gpus <= 0:
        raise ValueError(f"num_gpus must be positive, got {num_gpus}")
    cap = num_gpus if max_degree is None else min(num_gpus, max_degree)
    degrees = []
    d = 1
    while d <= cap:
        degrees.append(d)
        d *= 2
    return degrees
