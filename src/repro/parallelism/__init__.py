"""Parallelism-strategy substrate.

Descriptors and communication-volume accounting for the parallelism
dimensions the paper's systems combine: data parallelism with ZeRO
sharding (:mod:`repro.parallelism.zero`), Ulysses-style sequence
parallelism (:mod:`repro.parallelism.ulysses`), tensor parallelism and
ring-attention context parallelism (:mod:`repro.parallelism.ring`).
"""

from repro.parallelism.ring import (
    cp_exposed_comm_time,
    cp_kv_ring_bytes_per_step,
)
from repro.parallelism.strategies import HybridStrategy, candidate_sp_degrees
from repro.parallelism.ulysses import (
    alltoall_bytes_per_gpu,
    alltoall_rounds_per_step,
    sp_step_comm_bytes_per_gpu,
)
from repro.parallelism.zero import (
    zero3_gather_bytes_per_microbatch,
    zero_gradient_sync_bytes,
    zero_state_bytes_per_device,
)

__all__ = [
    "HybridStrategy",
    "candidate_sp_degrees",
    "alltoall_bytes_per_gpu",
    "alltoall_rounds_per_step",
    "sp_step_comm_bytes_per_gpu",
    "zero_state_bytes_per_device",
    "zero3_gather_bytes_per_microbatch",
    "zero_gradient_sync_bytes",
    "cp_kv_ring_bytes_per_step",
    "cp_exposed_comm_time",
]
