"""Command-line entry point for the perf-tracking benchmarks.

``python -m repro.bench`` (or ``make bench-solver``) runs the
solver-throughput benchmark and leaves machine-readable results in
``benchmarks/results/BENCH_solver.json`` (plus per-test wall-clocks in
``BENCH_wallclock.json``), so successive PRs can track the planning
throughput trajectory without parsing pytest output.  ``make
bench-e2e`` (selector ``e2e_sweep``) runs the end-to-end
experiment-sweep benchmark, which *appends* to the
``BENCH_e2e.json`` trajectory.

Usage::

    python -m repro.bench             # solver-throughput suite
    python -m repro.bench all         # every benchmark
    python -m repro.bench e2e_sweep   # batched-simulation sweep (BENCH_e2e.json)
    python -m repro.bench fig8        # any substring of a benchmark file
"""

from __future__ import annotations

import pathlib
import sys


def _benchmarks_dir() -> pathlib.Path:
    """Locate ``benchmarks/`` next to the source tree.

    The repo layout is ``<root>/src/repro/bench.py`` with benchmarks at
    ``<root>/benchmarks``; fall back to the working directory for
    installed-package runs driven from a checkout.
    """
    here = pathlib.Path(__file__).resolve()
    for base in (here.parents[2], pathlib.Path.cwd()):
        candidate = base / "benchmarks"
        if candidate.is_dir():
            return candidate
    raise SystemExit(
        "cannot locate the benchmarks/ directory; run from the repo root"
    )


def main(argv: list[str] | None = None) -> int:
    import pytest

    argv = list(sys.argv[1:] if argv is None else argv)
    selector = argv[0] if argv else "solver_throughput"
    bench_dir = _benchmarks_dir()
    if selector == "all":
        targets = [str(bench_dir)]
    else:
        matches = sorted(bench_dir.glob(f"test_bench_*{selector}*.py"))
        if not matches:
            options = ", ".join(
                p.stem.replace("test_bench_", "")
                for p in sorted(bench_dir.glob("test_bench_*.py"))
            )
            raise SystemExit(
                f"no benchmark matches {selector!r}; options: all, {options}"
            )
        targets = [str(p) for p in matches]
    return pytest.main(["-q", *targets, *argv[1:]])


if __name__ == "__main__":
    raise SystemExit(main())
