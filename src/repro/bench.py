"""Command-line entry point for the perf-tracking benchmarks.

Three modes:

**Campaign mode** (``--campaign``) runs the declarative campaign
engine directly — every paper artefact grid (Fig. 4, Fig. 6, Table 1,
Fig. 7, Fig. 8) in one deduplicated sweep pass — and *appends* the
machine-readable record to ``benchmarks/results/BENCH_campaign.json``.
This is what ``make bench`` invokes.  A persistent
:class:`~repro.core.cache_store.CacheStore` (default
``benchmarks/results/campaign_store/``) keeps cost-model fits, tuner
memos and FlexSP plan caches warm *across* invocations and processes;
``--no-store`` runs cold (the ``make bench-smoke`` CI tier).  Store
runs print a ``StoreStats`` report (files, bytes, entries, hit / miss
/ write / evict counts, write amplification) and append it with the
trajectory record.

**Prune mode** (``--prune``) applies the store's lifecycle policy:
``--max-age-days D`` evicts workload files last used more than ``D``
days ago, ``--max-store-bytes N`` then evicts least-recently-used
files until the store fits ``N`` bytes (``make bench-prune``).  With
neither cap (or with ``--dry-run``) nothing is deleted and the report
shows what the store holds / would lose.  An evicted workload simply
loads cold on the next campaign — pruning is never fatal.

**Pytest mode** (everything else) drives the benchmark suites exactly
as before::

    python -m repro.bench                    # solver-throughput suite
    python -m repro.bench all                # every benchmark
    python -m repro.bench e2e_sweep          # batched-simulation sweep
    python -m repro.bench fig8               # any benchmark-file substring

**Calibrate mode** (``--calibrate-workers``) sweeps the sweep-workers
x solver-workers product over a campaign (no store, so every combo
pays the same cold work), prints a wall-clock table with per-combo
steal/context-build telemetry, recommends the fastest combo, and
appends the grid to ``benchmarks/results/BENCH_scaleout.json``
(``make bench-calibrate``).

**Service mode** (``--service``) boots the resident
planning-as-a-service front-end (:class:`repro.service.PlanService`),
replays a seeded Gamma-arrival trace over three heterogeneous tenants
twice (burst-cold, then warm churn — see
:mod:`repro.service.benchmark`), verifies every unique served plan
bit-identical to a cold solve, prints the latency table and appends
the record to ``benchmarks/results/BENCH_service.json``.  The default
shape is the CI smoke tier (``make bench-service-smoke``: 16K
contexts, batch 8, seconds of trace); ``make bench-service`` passes
the longer 32K/batch-16 trace for nightly runs.  With ``--connect
HOST:PORT`` the same trace is instead replayed through the hardened
TCP transport (:mod:`repro.service.transport`) against a remote
``--serve`` process and the appended record carries a ``transport``
block (p50/p99 over TCP, retries, reconnects, degraded count).

**Serve mode** (``--serve``) runs the planning service as a TCP
server (:class:`repro.service.transport.PlanServer`) until
interrupted: ``--listen HOST:PORT`` binds (port 0 = ephemeral,
printed once bound), tenants come from the same
:func:`~repro.service.traffic.service_jobs` shape flags as service
mode (``--max-context`` / ``--batch-size`` must match the connecting
clients — the handshake verifies workload signatures), and Ctrl-C
(or ``--serve-seconds``) drains gracefully: in-flight requests are
answered, new connections refused, then the service and its pools
shut down.  The loopback chaos tier (``make bench-service-net``)
sweeps the network fault menu over this transport in-process.

**Node-limit calibrate mode** (``--calibrate-node-limit``) sweeps the
deterministic HiGHS work limit (default 50/200/500) over one campaign
artefact at the MILP backend, printing a wall-clock vs plan-quality
table and appending a ``mode: "calibrate-node-limit"`` record to
``BENCH_campaign.json`` — the calibration that picks ``--node-limit``
for full-protocol MILP passes.

Every mode accepts ``--no-native`` (equivalent to ``REPRO_NATIVE=0``)
to disable the compiled hot-kernel tier
(:mod:`repro.core.kernels`; both tiers are bit-identical, so this
only changes wall-clock).  The switch is *scoped to the run*: the
runtime flag and the ``REPRO_NATIVE`` env var are restored when the
mode returns, so invoking a ``--no-native`` run from a long-lived
process leaves later runs untouched.  ``--profile`` additionally prints a
one-line kernel-tier banner (native available yes/no, tier per
kernel) so benchmark output is self-describing; the appended campaign
records carry the same information in their ``kernels`` block.

Campaign / prune / calibrate usage::

    python -m repro.bench --campaign unified             # make bench
    python -m repro.bench --campaign smoke --no-store    # make bench-smoke
    python -m repro.bench --campaign full --profile      # full protocol
    python -m repro.bench --campaign unified --no-native
    python -m repro.bench --calibrate-node-limit --campaign full \
        --artefact fig4 --node-limit-grid 50,200,500
    python -m repro.bench kernels                        # make bench-kernels
    python -m repro.bench --campaign unified --backend milp --node-limit 500
    python -m repro.bench --campaign unified --repeat 3  # warm trajectory
    python -m repro.bench --campaign unified --profile   # stage breakdown
    python -m repro.bench --campaign unified --no-prewarm
    python -m repro.bench --campaign unified --workers 0 # 0 = all CPUs
    python -m repro.bench --campaign smoke --workers 2 \
        --inject-faults worker_kill@cell:0 --fault-seed 7   # chaos run
    python -m repro.bench --campaign smoke --fault-seed 7   # random fault
    python -m repro.bench --service                      # make bench-service-smoke
    python -m repro.bench --service --duration 20 --rate 1.5 \
        --step-window 4 --max-context 32768 --batch-size 16  # make bench-service
    python -m repro.bench --serve --listen 0.0.0.0:8471  # TCP plan server
    python -m repro.bench --service --connect host:8471  # remote trace replay
    python -m repro.bench --prune --max-age-days 30      # make bench-prune
    python -m repro.bench --prune --max-store-bytes 268435456 --dry-run
    python -m repro.bench --calibrate-workers            # make bench-calibrate
    python -m repro.bench --calibrate-workers --campaign unified \
        --workers-grid 1,2,4 --solver-workers-grid 1,2

``--workers`` / ``--solver-workers`` accept ``0`` as "use every CPU"
(``os.cpu_count()``); negative values are an argparse error.  The
library matches the CLI: ``SweepRunner(workers=None)`` runs serially
(like the CLI's ``--workers 1`` default) and ``workers=0`` means every
CPU — fan-out is always an explicit opt-in.

``--profile`` prints the per-stage SolveStats timing breakdown
(enumerate / lpt / milp_build / milp_solve) — in campaign mode per
epoch, in pytest mode through the suites that support it (e.g.
``python -m repro.bench solver_throughput --profile``); the breakdown
is part of the appended bench records either way.  ``--no-prewarm``
disables the campaign-level cold-batching pass that plans the grid's
unique uncached micro-batch shapes up front.

``--backend milp --node-limit N`` runs the MILP planner under a
*deterministic* work limit (HiGHS branch-and-bound nodes) instead of a
wall-clock budget, so MILP campaigns satisfy the same bit-identical
metrics contract as the greedy backend.

``--inject-faults SPEC --fault-seed N`` arms the deterministic chaos
plane (:mod:`repro.core.faults`): worker kills, torn spill writes,
stale store locks and hung cells fire at seeded injection points, the
sweep recovers through graduated escalation (per-cell resubmit → pool
restart → serial degradation), and the epoch must still produce
metrics bit-identical to a fault-free pass.  ``--fault-seed`` alone
draws one random fault from the menu; ``--watchdog-seconds`` bounds
hung cells.  Each epoch prints a fault report and the ``faults`` block
rides along in the appended record (``make bench-chaos`` exercises the
full matrix via ``benchmarks/test_bench_chaos.py``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import pathlib
import sys
import time


def _benchmarks_dir() -> pathlib.Path:
    """Locate ``benchmarks/`` next to the source tree.

    The repo layout is ``<root>/src/repro/bench.py`` with benchmarks at
    ``<root>/benchmarks``; fall back to the working directory for
    installed-package runs driven from a checkout.
    """
    here = pathlib.Path(__file__).resolve()
    for base in (here.parents[2], pathlib.Path.cwd()):
        candidate = base / "benchmarks"
        if candidate.is_dir():
            return candidate
    raise SystemExit(
        "cannot locate the benchmarks/ directory; run from the repo root"
    )


def append_history(path: pathlib.Path, records: list[dict]) -> None:
    """Append records to a ``{"history": [...]}`` trajectory file.

    The single definition of the trajectory-file format, shared with
    the pytest benchmarks' ``bench_json_history`` fixture.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text()).get("history", [])
        except (OSError, ValueError):
            history = []
    history.extend(records)
    path.write_text(
        json.dumps({"history": history}, indent=2, sort_keys=True) + "\n"
    )


def _campaign_tables(result) -> str:
    """Render every artefact summary as aligned text tables."""
    from repro.experiments.reporting import format_table

    blocks = []
    for artefact_result in result.artefacts:
        summary = artefact_result.summary
        title = artefact_result.artefact.title
        if "rows" in summary:  # Table 1 frontier
            degrees = sorted(
                {
                    int(d)
                    for row in summary["rows"].values()
                    for d in row["degrees"]
                },
                reverse=True,
            )
            rows = [
                [label]
                + [row["degrees"].get(str(d), "-") for d in degrees]
                + [row["min_feasible_degree"]]
                for label, row in summary["rows"].items()
            ]
            headers = ["seq x bs"] + [f"SP={d}" for d in degrees] + ["min ok"]
        elif "clusters" in summary:  # Fig. 8 scaling
            headers = ["# GPUs", "training (s)", "solving (s)", "amortized (s)"]
            rows = [
                [
                    n,
                    f"{c['training_seconds']:.1f}",
                    f"{c['solve_seconds']:.2f}",
                    f"{c['amortized_solve_seconds']:.3f}",
                ]
                for n, c in summary["clusters"].items()
            ]
        elif artefact_result.artefact.key == "fig7":  # ablations
            headers = ["workload", "variant", "iteration (s)", "relative"]
            rows = [
                [
                    workload,
                    variant,
                    f"{entry['mean_iteration_seconds']:.1f}",
                    f"{entry.get('relative', 1.0):.2f}x",
                ]
                for workload, variants in summary["workloads"].items()
                for variant, entry in variants.items()
            ]
        else:  # throughput grids (Fig. 4 / Fig. 6)
            headers = ["workload", "system", "iteration (s)", "tok/s/GPU", "ckpt"]
            rows = [
                [
                    workload,
                    system,
                    "OOM"
                    if entry["status"] == "oom"
                    else f"{entry['mean_iteration_seconds']:.1f}",
                    f"{entry['tokens_per_second_per_gpu']:.0f}",
                    row["checkpointing"],
                ]
                for workload, row in summary["workloads"].items()
                for system, entry in row["systems"].items()
            ]
        blocks.append(format_table(headers, rows, title=title))
    return "\n\n".join(blocks)


def _native_scope(args: argparse.Namespace):
    """Scoped ``--no-native``: off for the run, restored on return.

    :func:`repro.core.kernels.enabled_scope` mirrors the switch into
    ``REPRO_NATIVE`` (so spawned pool workers agree with the parent)
    and restores both the flag and the env var — including prior
    absence — when the mode finishes, so a ``--no-native`` run inside
    a long-lived process (pytest, a resident service) cannot poison
    later runs.
    """
    if getattr(args, "no_native", False):
        from repro.core import kernels

        return kernels.enabled_scope(False)
    return contextlib.nullcontext()


def run_campaign(args: argparse.Namespace) -> int:
    """Execute one campaign pass and append the trajectory record."""
    with _native_scope(args):
        return _run_campaign(args)


def _run_campaign(args: argparse.Namespace) -> int:
    from repro.core import kernels
    from repro.core.planner import PlannerConfig
    from repro.core.solver import SolverConfig
    from repro.experiments.campaign import build_campaign
    from repro.experiments.sweep import SweepRunner

    if args.profile:
        print(kernels.describe())
    planner = PlannerConfig(node_limit=args.node_limit)
    solver_config = SolverConfig(
        backend=args.backend, num_trials=args.num_trials, planner=planner
    )
    overrides = {}
    if args.batch_size is not None:
        overrides["global_batch_size"] = args.batch_size
    campaign = build_campaign(args.campaign, **overrides)

    fault_schedule = _build_fault_schedule(args)
    if fault_schedule is not None:
        print(
            f"[{args.campaign}] chaos: injecting {fault_schedule} "
            f"(seed {fault_schedule.seed})"
        )
    results_dir = _benchmarks_dir() / "results"
    store = None
    if not args.no_store:
        store = args.store or str(results_dir / "campaign_store")
    runner = SweepRunner(
        solver_config=solver_config,
        workers=args.workers,
        store=store,
        solver_workers=args.solver_workers,
        prewarm=args.prewarm,
        fault_schedule=fault_schedule,
        watchdog_seconds=args.watchdog_seconds,
    )
    records = []
    with runner:
        for epoch in range(args.repeat):
            started = time.perf_counter()
            result = campaign.run(runner)
            wall = time.perf_counter() - started
            record = {
                "mode": "cli",
                "backend": args.backend,
                "store": bool(store),
                "epoch": epoch,
                "epoch_wall_seconds": round(wall, 3),
                **result.summary(),
            }
            records.append(record)
            print(
                f"[{campaign.name}] epoch {epoch}: "
                f"{result.sweep.unique_cells}/{len(result.sweep.cells)} "
                f"unique cells in {wall:.2f}s, plan-cache hit rate "
                f"{result.plan_cache_hit_rate:.2%}"
            )
            if result.sweep.prewarm_planned:
                print(
                    f"[{campaign.name}] epoch {epoch} cold batching: "
                    f"{result.sweep.prewarm_planned} unique shapes "
                    f"planned up front in "
                    f"{result.sweep.prewarm_seconds:.2f}s"
                )
            if args.profile:
                stage_totals = result.stage_seconds
                total = sum(stage_totals.values()) or 1.0
                breakdown = ", ".join(
                    f"{stage} {seconds:.3f}s ({seconds / total:.0%})"
                    for stage, seconds in stage_totals.items()
                )
                print(
                    f"[{campaign.name}] epoch {epoch} solve stages: "
                    f"{breakdown}"
                )
                for t in result.sweep.worker_telemetry:
                    stages = ", ".join(
                        f"{stage} {seconds:.3f}s"
                        for stage, seconds in t.stage_seconds
                    )
                    print(
                        f"[{campaign.name}] epoch {epoch} worker "
                        f"{t.worker} (pid {t.pid}): {t.cells} cells, "
                        f"{t.steals} steals, {t.context_builds} context "
                        f"builds ({t.restore_seconds:.3f}s)"
                        + (f"; {stages}" if stages else "")
                    )
            stats = result.sweep.store_stats
            if stats is not None:
                print(
                    f"[{campaign.name}] epoch {epoch} store: "
                    f"{stats.files} files / {stats.bytes} B / "
                    f"{stats.entries} entries; hits {stats.hits}, "
                    f"misses {stats.misses}, writes {stats.writes}, "
                    f"evictions {stats.evictions}, lock waits "
                    f"{stats.lock_waits}, lock breaks "
                    f"{stats.lock_breaks}; write amplification "
                    f"{result.store_write_amplification:.3f} "
                    f"writes/cell"
                )
            faults = result.sweep.fault_stats
            if faults is not None:
                injected = ", ".join(
                    f"{label} x{count}"
                    for label, count in faults.injections
                ) or "none"
                print(
                    f"[{campaign.name}] epoch {epoch} faults: "
                    f"injected {injected}; {faults.cell_retries} cell "
                    f"retries, {faults.pool_restarts} pool restarts, "
                    f"{faults.shard_reassignments} shard reassignments, "
                    f"{faults.watchdog_kills} watchdog kills, "
                    f"{faults.degraded_cells} cells degraded to serial, "
                    f"{faults.lock_breaks} locks broken"
                )
    print()
    print(_campaign_tables(result))
    path = results_dir / "BENCH_campaign.json"
    append_history(path, records)
    print(f"\nappended {len(records)} record(s) to {path}")
    return 0


def _build_fault_schedule(args: argparse.Namespace):
    """Build the chaos schedule from ``--inject-faults`` / ``--fault-seed``.

    An explicit spec wins; a bare ``--fault-seed`` draws one random
    fault from the menu so CI can chaos-test without hand-picking a
    failure mode.  Returns ``None`` (faults fully disarmed) when
    neither flag is given.
    """
    from repro.core.faults import FaultSchedule

    if args.inject_faults:
        return FaultSchedule.parse(
            args.inject_faults, seed=args.fault_seed or 0
        )
    if args.fault_seed is not None:
        return FaultSchedule.single_random(args.fault_seed)
    return None


def run_prune(args: argparse.Namespace) -> int:
    """Apply the store lifecycle policy from the command line."""
    from repro.core.cache_store import CacheStore

    results_dir = _benchmarks_dir() / "results"
    root = pathlib.Path(args.store or results_dir / "campaign_store")
    if not root.is_dir():
        print(f"no cache store at {root}; nothing to prune")
        return 0
    store = CacheStore(root)
    before = store.stats()
    print(
        f"store {root}: {before.files} files, {before.bytes} B, "
        f"{before.entries} entries"
    )
    if args.max_store_bytes is None and args.max_age_days is None:
        print(
            "no caps given; nothing evicted (use --max-age-days and/or "
            "--max-store-bytes)"
        )
        return 0
    result = store.prune(
        max_store_bytes=args.max_store_bytes,
        max_age_days=args.max_age_days,
        dry_run=args.dry_run,
    )
    verb = "would evict" if args.dry_run else "evicted"
    for name in result.evicted:
        print(f"  {verb} {name}")
    print(
        f"{verb} {len(result.evicted)} file(s) / {result.bytes_freed} B; "
        f"kept {result.files_kept} file(s) / {result.bytes_kept} B"
    )
    return 0


def _parse_campaign_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run a declarative artefact campaign.",
    )
    parser.add_argument("--campaign", required=True, help="campaign name")
    parser.add_argument(
        "--store",
        default=None,
        help="CacheStore directory (default benchmarks/results/campaign_store)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="run cold: no persistent cache store (the CI smoke tier)",
    )
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sweep fan-out width; 0 = all CPUs (default 1, matching "
        "SweepRunner's serial default)",
    )
    parser.add_argument(
        "--solver-workers",
        type=int,
        default=None,
        help="width of the shared SolverPool; 0 = all CPUs "
        "(default: in-process planning)",
    )
    parser.add_argument(
        "--backend", choices=("greedy", "milp"), default="greedy"
    )
    parser.add_argument("--num-trials", type=int, default=2)
    parser.add_argument(
        "--node-limit",
        type=int,
        default=None,
        help="deterministic HiGHS work limit for --backend milp "
        "(replaces the wall-clock time limit)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="campaign epochs in this process (warm-trajectory measurement)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage SolveStats breakdown (enumerate / lpt "
        "/ milp_build / milp_solve) for each epoch",
    )
    parser.add_argument(
        "--no-prewarm",
        dest="prewarm",
        action="store_false",
        help="disable campaign-level cold batching (per-cell planning, "
        "the pre-PR5 behaviour)",
    )
    parser.add_argument(
        "--no-native",
        action="store_true",
        help="disable the compiled hot-kernel tier (numpy/scalar "
        "fallbacks; equivalent to REPRO_NATIVE=0)",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="deterministic chaos schedule: comma-separated "
        "kind@site[:N|*] specs, e.g. "
        "'worker_kill@cell:0,torn_write@spill:1'; kinds are "
        "worker_kill / torn_write / stale_lock / hang, sites are "
        "cell / spill / lock / prune / plan / spawn / drain / prewarm",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="chaos seed; with --inject-faults it seeds the schedule, "
        "alone it draws one random fault from the menu",
    )
    parser.add_argument(
        "--watchdog-seconds",
        type=float,
        default=None,
        help="per-cell hang watchdog: kill and resubmit any cell "
        "in flight longer than this (default: no watchdog)",
    )
    args = parser.parse_args(argv)
    if args.watchdog_seconds is not None and args.watchdog_seconds <= 0:
        parser.error(
            f"--watchdog-seconds must be positive, got {args.watchdog_seconds}"
        )
    if args.inject_faults:
        from repro.core.faults import FaultSchedule

        try:
            FaultSchedule.parse(args.inject_faults)
        except ValueError as error:
            parser.error(str(error))
    if args.repeat < 1:
        parser.error(f"--repeat must be at least 1, got {args.repeat}")
    args.workers = _resolve_workers(parser, "--workers", args.workers)
    if args.solver_workers is not None:
        args.solver_workers = _resolve_workers(
            parser, "--solver-workers", args.solver_workers
        )
    return args


def _resolve_workers(
    parser: argparse.ArgumentParser, flag: str, value: int
) -> int:
    """Normalise a worker-width flag: ``0`` means every CPU, negatives
    are a clear argparse error (not a deep ``SweepRunner``
    ``ValueError`` later)."""
    if value < 0:
        parser.error(
            f"{flag} must be non-negative (0 = all CPUs), got {value}"
        )
    return value if value else (os.cpu_count() or 1)


def _parse_endpoint(
    parser: argparse.ArgumentParser,
    flag: str,
    text: str,
    *,
    allow_ephemeral: bool = False,
) -> tuple[str, int]:
    """Validate a ``HOST:PORT`` flag value into ``(host, port)``.

    Bad CLI input fails fast with an argparse error (PR 9 convention),
    never half-runs: a missing colon, an empty host, a non-integer or
    out-of-range port are all rejected here.  ``allow_ephemeral``
    admits port 0 (bind an ephemeral port and print it) — valid for
    ``--listen``, meaningless for ``--connect``.
    """
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        parser.error(f"{flag} must be HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"{flag} port must be an integer, got {port_text!r}")
    minimum = 0 if allow_ephemeral else 1
    if not minimum <= port <= 65535:
        suffix = " (0 binds an ephemeral port)" if allow_ephemeral else ""
        parser.error(
            f"{flag} port must be in [{minimum}, 65535]{suffix}, got {port}"
        )
    return host, port


def _parse_serve_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the planning service as a TCP server "
        "(repro.service.transport.PlanServer) until interrupted; "
        "point remote trainers at it with --service --connect.",
    )
    parser.add_argument(
        "--serve", action="store_true", required=True, help="serve mode"
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:0 — an ephemeral port, "
        "printed once bound; use 0.0.0.0:PORT to serve other hosts)",
    )
    parser.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        help="exit (with a graceful drain) after this many seconds "
        "(default: serve until Ctrl-C)",
    )
    parser.add_argument(
        "--max-context",
        type=int,
        default=16 * 1024,
        help="tenant context length in tokens (default 16384) — must "
        "match the connecting clients",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="tenant global batch size (default 8) — must match the "
        "connecting clients",
    )
    parser.add_argument(
        "--worker-threads",
        type=int,
        default=2,
        help="service solve threads (default 2)",
    )
    parser.add_argument(
        "--solver-workers",
        type=int,
        default=1,
        help="width of the shared SolverPool; 0 = all CPUs (default 1)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=8,
        help="per-tenant admission bound on queued cold requests "
        "(default 8)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="optional CacheStore directory so the server restarts warm",
    )
    parser.add_argument("--no-native", action="store_true")
    args = parser.parse_args(argv)
    args.listen = _parse_endpoint(
        parser, "--listen", args.listen, allow_ephemeral=True
    )
    if args.serve_seconds is not None and args.serve_seconds <= 0:
        parser.error(
            f"--serve-seconds must be positive, got {args.serve_seconds}"
        )
    if args.max_pending < 1:
        parser.error(f"--max-pending must be at least 1, got {args.max_pending}")
    if args.worker_threads < 1:
        parser.error(
            f"--worker-threads must be at least 1, got {args.worker_threads}"
        )
    args.solver_workers = _resolve_workers(
        parser, "--solver-workers", args.solver_workers
    )
    return args


def run_serve(args: argparse.Namespace) -> int:
    with _native_scope(args):
        return _run_serve(args)


def _run_serve(args: argparse.Namespace) -> int:
    """Serve plans over TCP until interrupted (or --serve-seconds)."""
    from repro.service.service import PlanService
    from repro.service.traffic import service_jobs
    from repro.service.transport import PlanServer

    jobs = service_jobs(
        max_context=args.max_context, global_batch_size=args.batch_size
    )
    host, port = args.listen
    service = PlanService(
        store=args.store,
        solver_workers=args.solver_workers,
        worker_threads=args.worker_threads,
        max_pending_per_tenant=args.max_pending,
    )
    for workload in jobs.values():
        service.register(workload)
    server = PlanServer(service, host, port, owns_service=True)
    bound_host, bound_port = server.address
    print(
        f"[serve] {len(jobs)} tenants "
        f"({args.max_context // 1024}K contexts, batch {args.batch_size}) "
        f"listening on {bound_host}:{bound_port}"
    )
    print(
        f"[serve] connect with: python -m repro.bench --service "
        f"--connect {bound_host}:{bound_port} "
        f"--max-context {args.max_context} --batch-size {args.batch_size}"
    )
    try:
        if args.serve_seconds is not None:
            time.sleep(args.serve_seconds)
        else:
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:
        print("\n[serve] interrupted")
    finally:
        print("[serve] draining (in-flight requests are answered) ...")
        server.close()
        stats = server.stats()
        print(
            f"[serve] done: {stats['accepted']} connections, "
            f"{stats['requests']} requests, {stats['replayed']} idempotent "
            f"replays, {stats['refused']} refused"
        )
    return 0


def _parse_service_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the resident planning service against a "
        "seeded Gamma-arrival trace (burst-cold, then warm churn).",
    )
    parser.add_argument(
        "--service", action="store_true", required=True, help="service mode"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="trace duration in seconds of simulated arrivals (default 5)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=0.8,
        help="per-tenant mean arrival rate, requests/second (default 0.8)",
    )
    parser.add_argument(
        "--cv",
        type=float,
        default=2.0,
        help="coefficient of variation of the Gamma inter-arrival "
        "process; 1.0 is Poisson, higher is burstier (default 2.0)",
    )
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument(
        "--step-window",
        type=int,
        default=2,
        help="training steps each tenant draws batches from; small "
        "windows make the trace duplicate-heavy (default 2)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1,
        help="per-tenant admission bound on queued cold requests "
        "(default 1 — tight, so shedding is exercised)",
    )
    parser.add_argument(
        "--worker-threads",
        type=int,
        default=2,
        help="service solve threads (default 2)",
    )
    parser.add_argument(
        "--solver-workers",
        type=int,
        default=1,
        help="width of the shared SolverPool behind the service; "
        "0 = all CPUs (default 1: in-process planning)",
    )
    parser.add_argument(
        "--max-context",
        type=int,
        default=16 * 1024,
        help="tenant context length in tokens (default 16384; the "
        "nightly tier passes 32768)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="tenant global batch size (default 8; nightly passes 16)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="optional CacheStore directory so the service restarts warm",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="replay the trace through the TCP transport against a "
        "remote --serve process instead of an in-process service "
        "(the multi-host benchmark; appends a transport record)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        help="with --connect: per-request wall-clock budget in seconds "
        "before the client degrades to in-process planning (default 60)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="with --connect: transport-failure retry budget per "
        "request (default 3)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip re-solving every unique served plan on a cold engine "
        "(the bit-identity check)",
    )
    parser.add_argument("--no-native", action="store_true")
    args = parser.parse_args(argv)
    if args.connect is not None:
        args.connect = _parse_endpoint(parser, "--connect", args.connect)
    if args.deadline <= 0:
        parser.error(f"--deadline must be positive, got {args.deadline}")
    if args.retries < 0:
        parser.error(f"--retries must be non-negative, got {args.retries}")
    if args.duration <= 0:
        parser.error(f"--duration must be positive, got {args.duration}")
    if args.rate <= 0:
        parser.error(f"--rate must be positive, got {args.rate}")
    if args.max_pending < 1:
        parser.error(f"--max-pending must be at least 1, got {args.max_pending}")
    if args.worker_threads < 1:
        parser.error(
            f"--worker-threads must be at least 1, got {args.worker_threads}"
        )
    args.solver_workers = _resolve_workers(
        parser, "--solver-workers", args.solver_workers
    )
    return args


def run_service(args: argparse.Namespace) -> int:
    with _native_scope(args):
        return _run_service(args)


def _run_service(args: argparse.Namespace) -> int:
    """Replay the seeded trace through a resident PlanService."""
    from repro.experiments.reporting import format_table
    from repro.service.benchmark import run_service_benchmark
    from repro.service.traffic import service_jobs

    jobs = service_jobs(
        max_context=args.max_context, global_batch_size=args.batch_size
    )
    if args.connect is not None:
        return _run_service_transport(args, jobs)
    print(
        f"[service] {len(jobs)} tenants "
        f"({args.max_context // 1024}K contexts, batch {args.batch_size}), "
        f"Gamma trace: {args.duration:.0f}s at {args.rate}/s per tenant, "
        f"cv {args.cv}, step window {args.step_window}, seed {args.seed}"
    )
    record = run_service_benchmark(
        jobs=jobs,
        duration=args.duration,
        rate=args.rate,
        cv=args.cv,
        seed=args.seed,
        step_window=args.step_window,
        max_pending_per_tenant=args.max_pending,
        worker_threads=args.worker_threads,
        solver_workers=args.solver_workers,
        store=args.store,
        verify=not args.no_verify,
    )
    rows = [
        (
            phase,
            str(record[key]["served"]),
            f"{record[key]['plans_per_second']:.1f}",
            f"{record[key]['p50_ms']:.2f}",
            f"{record[key]['p99_ms']:.2f}",
        )
        for phase, key in (
            ("burst (cold)", "cold_phase"),
            ("churn (warm)", "warm_phase"),
        )
        if record[key]["served"]
    ]
    print()
    print(
        format_table(
            ["phase", "served", "plans/s", "p50 (ms)", "p99 (ms)"],
            rows,
            title="PlanService trace replay",
        )
    )
    verified = record["bit_identical_verified"]
    print(
        f"\n[service] {record['submitted']} submitted: "
        f"{record['solved']} solved, {record['warm_hits']} warm, "
        f"{record['coalesced']} coalesced, {record['shed']} shed "
        f"(rate {record['shed_rate']:.0%}); plan-cache hit rate "
        f"{record['plan_cache_hit_rate']:.0%}"
        + (
            f"; {verified}/{record['unique_shapes']} unique plans "
            "bit-identical to cold solves"
            if verified is not None
            else ""
        )
    )
    path = _benchmarks_dir() / "results" / "BENCH_service.json"
    append_history(path, [{"invocation": "cli", **record}])
    print(f"appended service record to {path}")
    return 0


def _run_service_transport(args: argparse.Namespace, jobs) -> int:
    """Replay the seeded trace through the TCP transport against a
    remote ``--serve`` process (the multi-host half of service mode)."""
    from repro.service.benchmark import run_transport_benchmark

    host, port = args.connect
    print(
        f"[service] replaying over TCP against {host}:{port}: "
        f"{len(jobs)} tenants ({args.max_context // 1024}K contexts, "
        f"batch {args.batch_size}), {args.duration:.0f}s of trace at "
        f"{args.rate}/s per tenant, seed {args.seed}"
    )
    record = run_transport_benchmark(
        jobs=jobs,
        duration=args.duration,
        rate=args.rate,
        cv=args.cv,
        seed=args.seed,
        step_window=args.step_window,
        connect=args.connect,
        client_deadline=args.deadline,
        client_retries=args.retries,
        verify=not args.no_verify,
    )
    transport = record["transport"]
    print(
        f"\n[service] transport: {transport['served']} served / "
        f"{transport['shed']} shed of {transport['requests']} requests in "
        f"{transport['wall_seconds']}s "
        f"(p50 {transport['p50_ms']} ms, p99 {transport['p99_ms']} ms); "
        f"{transport['retries']} retries, {transport['reconnects']} "
        f"reconnects, {transport['degraded']} degraded"
        + (
            f"; {record['bit_identical_verified']}/"
            f"{record['unique_shapes']} unique plans bit-identical to "
            "cold solves"
            if record["bit_identical_verified"] is not None
            else ""
        )
    )
    path = _benchmarks_dir() / "results" / "BENCH_service.json"
    append_history(path, [{"invocation": "cli", **record}])
    print(f"appended transport record to {path}")
    return 0


def _parse_prune_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Prune the persistent campaign cache store.",
    )
    parser.add_argument(
        "--prune", action="store_true", required=True, help="prune mode"
    )
    parser.add_argument(
        "--store",
        default=None,
        help="CacheStore directory (default benchmarks/results/campaign_store)",
    )
    parser.add_argument(
        "--max-store-bytes",
        type=int,
        default=None,
        help="evict least-recently-used workload files until the store "
        "fits this many bytes",
    )
    parser.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict workload files last used more than this many days ago",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    args = parser.parse_args(argv)
    if args.max_store_bytes is not None and args.max_store_bytes < 0:
        parser.error(
            f"--max-store-bytes must be non-negative, got {args.max_store_bytes}"
        )
    if args.max_age_days is not None and args.max_age_days < 0:
        parser.error(
            f"--max-age-days must be non-negative, got {args.max_age_days}"
        )
    return args


def _parse_calibrate_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Sweep the sweep-workers x solver-workers product "
        "over one campaign and recommend the fastest combination.",
    )
    parser.add_argument(
        "--calibrate-workers",
        action="store_true",
        required=True,
        help="calibrate mode",
    )
    parser.add_argument(
        "--campaign",
        default="smoke",
        help="campaign to time each combination against (default smoke)",
    )
    parser.add_argument(
        "--workers-grid",
        default="1,2,4",
        help="comma-separated sweep-worker widths (0 = all CPUs)",
    )
    parser.add_argument(
        "--solver-workers-grid",
        default="1,2",
        help="comma-separated shared-SolverPool widths (0 = all CPUs)",
    )
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--backend", choices=("greedy", "milp"), default="greedy"
    )
    parser.add_argument("--num-trials", type=int, default=2)
    parser.add_argument("--node-limit", type=int, default=None)
    parser.add_argument("--no-native", action="store_true")
    args = parser.parse_args(argv)
    args.workers_grid = _parse_grid(parser, "--workers-grid", args.workers_grid)
    args.solver_workers_grid = _parse_grid(
        parser, "--solver-workers-grid", args.solver_workers_grid
    )
    return args


def _parse_node_limit_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Calibrate the deterministic MILP --node-limit: run "
        "one campaign artefact at each grid value and compare plan "
        "quality against solve cost.",
    )
    parser.add_argument(
        "--calibrate-node-limit",
        action="store_true",
        required=True,
        help="node-limit calibration mode",
    )
    parser.add_argument(
        "--campaign",
        default="full",
        help="campaign whose shapes to calibrate at (default full — "
        "the paper's full protocol)",
    )
    parser.add_argument(
        "--artefact",
        default="fig4",
        help="restrict to one artefact grid (default fig4); 'all' runs "
        "the whole campaign per limit",
    )
    parser.add_argument(
        "--node-limit-grid",
        default="50,200,500",
        help="comma-separated HiGHS node limits to compare",
    )
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--num-trials", type=int, default=2)
    parser.add_argument("--no-native", action="store_true")
    args = parser.parse_args(argv)
    try:
        args.node_limit_grid = [
            int(v) for v in args.node_limit_grid.split(",") if v.strip()
        ]
    except ValueError:
        parser.error(
            f"--node-limit-grid must be a comma-separated int list, "
            f"got {args.node_limit_grid!r}"
        )
    if not args.node_limit_grid:
        parser.error("--node-limit-grid is empty")
    if any(v <= 0 for v in args.node_limit_grid):
        parser.error("--node-limit-grid values must be positive")
    return args


def run_calibrate_node_limit(args: argparse.Namespace) -> int:
    with _native_scope(args):
        return _run_calibrate_node_limit(args)


def _run_calibrate_node_limit(args: argparse.Namespace) -> int:
    """Time the MILP backend at each ``--node-limit-grid`` value.

    Each limit runs the selected artefact grid storeless in a fresh
    runner, so the limits compare like for like: the table reports
    wall-clock, the HiGHS share (``milp_solve`` stage seconds) and the
    plan-quality signal (summed mean iteration seconds over the
    grid's feasible flexsp cells — lower means the extra nodes bought
    better plans).  The record appends to ``BENCH_campaign.json`` as
    ``mode: "calibrate-node-limit"`` alongside the protocol records
    it calibrates for.
    """
    from repro.core import kernels
    from repro.core.planner import PlannerConfig
    from repro.core.solver import SolverConfig
    from repro.experiments.campaign import Campaign, build_campaign
    from repro.experiments.reporting import format_table
    from repro.experiments.sweep import SweepRunner

    overrides = {}
    if args.batch_size is not None:
        overrides["global_batch_size"] = args.batch_size
    campaign = build_campaign(args.campaign, **overrides)
    if args.artefact != "all":
        campaign = Campaign(
            name=f"{campaign.name}:{args.artefact}",
            artefacts=(campaign.artefact(args.artefact),),
        )
    print(
        f"calibrating --node-limit over {args.node_limit_grid} on "
        f"{campaign.name!r} ({len(campaign.cells)} cells, backend milp)"
    )
    print(kernels.describe())
    grid = []
    for limit in args.node_limit_grid:
        solver_config = SolverConfig(
            backend="milp",
            num_trials=args.num_trials,
            planner=PlannerConfig(node_limit=limit),
        )
        runner = SweepRunner(solver_config=solver_config, workers=1)
        started = time.perf_counter()
        with runner:
            result = campaign.run(runner)
        wall = time.perf_counter() - started
        milp_solve = result.stage_seconds.get("milp_solve", 0.0)
        flexsp = [
            m
            for m in result.sweep.metrics
            if m.system == "FlexSP" and m.status == "ok"
        ]
        quality = sum(m.mean_iteration_seconds for m in flexsp)
        grid.append(
            {
                "node_limit": limit,
                "wall_seconds": round(wall, 3),
                "milp_solve_seconds": round(milp_solve, 3),
                "flexsp_cells": len(flexsp),
                "sum_iteration_seconds": round(quality, 4),
            }
        )
        print(
            f"  --node-limit {limit}: {wall:.2f}s wall, "
            f"{milp_solve:.2f}s in HiGHS, plan quality "
            f"{quality:.2f}s summed iteration time "
            f"({len(flexsp)} flexsp cells)"
        )
    best = min(grid, key=lambda g: (g["sum_iteration_seconds"], g["node_limit"]))
    rows = [
        [
            g["node_limit"],
            f"{g['wall_seconds']:.2f}",
            f"{g['milp_solve_seconds']:.2f}",
            f"{g['sum_iteration_seconds']:.2f}",
            "<-- best plans" if g is best else "",
        ]
        for g in grid
    ]
    print()
    print(
        format_table(
            ["node limit", "wall (s)", "milp solve (s)", "sum iter (s)", ""],
            rows,
            title=f"--calibrate-node-limit: {campaign.name!r}",
        )
    )
    path = _benchmarks_dir() / "results" / "BENCH_campaign.json"
    append_history(
        path,
        [
            {
                "mode": "calibrate-node-limit",
                "campaign": campaign.name,
                "backend": "milp",
                "kernels": kernels.describe_dict(),
                "grid": grid,
                "best_node_limit": best["node_limit"],
            }
        ],
    )
    print(f"\nappended node-limit calibration record to {path}")
    return 0


def _parse_grid(
    parser: argparse.ArgumentParser, flag: str, text: str
) -> list[int]:
    try:
        values = [int(v) for v in text.split(",") if v.strip()]
    except ValueError:
        parser.error(f"{flag} must be a comma-separated int list, got {text!r}")
    if not values:
        parser.error(f"{flag} is empty")
    return [_resolve_workers(parser, flag, v) for v in values]


def run_calibrate(args: argparse.Namespace) -> int:
    with _native_scope(args):
        return _run_calibrate(args)


def _run_calibrate(args: argparse.Namespace) -> int:
    """Time every (workers, solver_workers) combination on one campaign.

    Each combination runs storeless in its own runner, so every combo
    pays identical cold work and the wall-clocks compare like for
    like; metrics stay bit-identical across combos by the fan-out
    contract (asserted here — a calibration that changed results
    would be measuring the wrong thing).
    """
    from repro.core.planner import PlannerConfig
    from repro.core.solver import SolverConfig
    from repro.experiments.campaign import build_campaign
    from repro.experiments.reporting import format_table
    from repro.experiments.sweep import SweepRunner

    planner = PlannerConfig(node_limit=args.node_limit)
    solver_config = SolverConfig(
        backend=args.backend, num_trials=args.num_trials, planner=planner
    )
    overrides = {}
    if args.batch_size is not None:
        overrides["global_batch_size"] = args.batch_size
    campaign = build_campaign(args.campaign, **overrides)
    combos = [
        (workers, solver_workers)
        for workers in args.workers_grid
        for solver_workers in args.solver_workers_grid
    ]
    print(
        f"calibrating {len(combos)} combinations on campaign "
        f"{campaign.name!r} ({os.cpu_count() or 1} CPUs)"
    )
    grid = []
    reference = None
    for workers, solver_workers in combos:
        runner = SweepRunner(
            solver_config=solver_config,
            workers=workers,
            solver_workers=solver_workers,
        )
        started = time.perf_counter()
        with runner:
            result = campaign.run(runner)
        wall = time.perf_counter() - started
        deterministic = tuple(
            m.deterministic() for m in result.sweep.metrics
        )
        if reference is None:
            reference = deterministic
        elif deterministic != reference:
            raise SystemExit(
                f"combination workers={workers} solver_workers="
                f"{solver_workers} broke the bit-identity contract"
            )
        grid.append(
            {
                "workers": workers,
                "solver_workers": solver_workers,
                "wall_seconds": round(wall, 3),
                "steals": result.total_steals,
                "context_builds": result.total_context_builds,
                "prewarm_planned": result.sweep.prewarm_planned,
            }
        )
        print(
            f"  workers={workers} solver_workers={solver_workers}: "
            f"{wall:.2f}s ({result.total_steals} steals, "
            f"{result.total_context_builds} context builds)"
        )
    best = min(grid, key=lambda g: g["wall_seconds"])
    rows = [
        [
            g["workers"],
            g["solver_workers"],
            f"{g['wall_seconds']:.2f}",
            g["steals"],
            g["context_builds"],
            "<-- best" if g is best else "",
        ]
        for g in grid
    ]
    print()
    print(
        format_table(
            ["workers", "solver workers", "wall (s)", "steals", "builds", ""],
            rows,
            title=f"--calibrate-workers: campaign {campaign.name!r}",
        )
    )
    print(
        f"\nrecommended: --workers {best['workers']} "
        f"--solver-workers {best['solver_workers']}"
    )
    path = _benchmarks_dir() / "results" / "BENCH_scaleout.json"
    append_history(
        path,
        [
            {
                "mode": "calibrate-workers",
                "campaign": campaign.name,
                "backend": args.backend,
                "cpu_count": os.cpu_count() or 1,
                "grid": grid,
                "best": {
                    "workers": best["workers"],
                    "solver_workers": best["solver_workers"],
                },
            }
        ],
    )
    print(f"appended calibration record to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--prune" in argv:
        return run_prune(_parse_prune_args(argv))
    if "--calibrate-node-limit" in argv:
        return run_calibrate_node_limit(_parse_node_limit_args(argv))
    if "--calibrate-workers" in argv:
        return run_calibrate(_parse_calibrate_args(argv))
    if "--serve" in argv:
        return run_serve(_parse_serve_args(argv))
    if "--service" in argv:
        return run_service(_parse_service_args(argv))
    if any(a.startswith("--campaign") for a in argv):
        return run_campaign(_parse_campaign_args(argv))

    native_scope = contextlib.nullcontext()
    if "--no-native" in argv:
        # Pytest-mode opt-out: the suites (and any pool workers they
        # spawn) read REPRO_NATIVE through repro.core.kernels.  The
        # scope restores flag and env var once pytest returns.
        argv.remove("--no-native")
        from repro.core import kernels

        native_scope = kernels.enabled_scope(False)
    if "--profile" in argv:
        # Pytest-mode profiling: the benchmark suites read this flag
        # through the environment (see benchmarks/conftest.py PROFILE)
        # and print/record their per-stage SolveStats breakdowns.
        argv.remove("--profile")
        os.environ["REPRO_BENCH_PROFILE"] = "1"
        from repro.core import kernels

        print(kernels.describe())

    import pytest

    selector = argv[0] if argv else "solver_throughput"
    bench_dir = _benchmarks_dir()
    if selector == "all":
        targets = [str(bench_dir)]
    else:
        matches = sorted(bench_dir.glob(f"test_bench_*{selector}*.py"))
        if not matches:
            options = ", ".join(
                p.stem.replace("test_bench_", "")
                for p in sorted(bench_dir.glob("test_bench_*.py"))
            )
            raise SystemExit(
                f"no benchmark matches {selector!r}; options: all, {options}"
            )
        targets = [str(p) for p in matches]
    with native_scope:
        return pytest.main(["-q", *targets, *argv[1:]])


if __name__ == "__main__":
    raise SystemExit(main())
