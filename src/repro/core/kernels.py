"""Compiled hot-kernel tier (optional numba, registry-dispatched).

PR 5's profiler put the remaining cold-path time in four inner loops:
the scalar and stacked LPT placement passes
(:mod:`repro.core.planner_greedy`) and the level-batched D&C argmin
layers behind the bucketing DP (:mod:`repro.core.bucketing`) and the
blaster DP (:mod:`repro.core.blaster`).  This module holds compiled
(numba ``@njit``) twins of those loops behind one registry:

* **Zero hard dependencies.**  numba is probed lazily; when absent
  (or when it fails to compile) every dispatch site silently keeps the
  existing numpy/scalar fallback.  ``pip install -e .[native]`` pulls
  the optional dependency.
* **Opt-out.**  ``REPRO_NATIVE=0`` in the environment (or the bench
  CLI's ``--no-native``, or :func:`set_enabled`) disables the tier;
  the env var is re-read by spawned pool workers, and
  :func:`set_enabled` covers forked ones.
* **Bit-identity.**  Each kernel body replays the fallback's IEEE
  float (or int64) operations in the same order — default ``njit`` is
  strict IEEE-754 (no fastmath), so plans, makespans and DP
  boundaries are bit-identical across tiers.  The bodies are plain
  Python functions jitted at first use, which keeps the *algorithm*
  testable without numba (``tests/test_core_kernels.py`` runs the
  un-jitted bodies against the fallbacks) and lets CI force the tier
  on (:func:`force`) once numba is installed.
* **Attribution.**  Every dispatch decision is recorded on the
  ambient :mod:`repro.core.stage_timing` frame under a
  ``kernel:<name>:<tier>`` pseudo-stage, so tier usage travels the
  same cross-process channel as stage seconds and lands in
  :attr:`repro.core.types.SolveStats.kernel_tiers`.

Kernel names: ``lpt_scalar``, ``lpt_stacked``, ``bucketing_dp``,
``blaster_dp`` (the two DPs share one compiled divide-and-conquer
body, mode-flagged).
"""

from __future__ import annotations

import contextlib
import os
import time
from collections.abc import Iterator, Mapping

import numpy as np

from repro.core import stage_timing

_ENV = "REPRO_NATIVE"

#: Registry vocabulary — dispatch sites and attribution use these.
KERNEL_NAMES = ("lpt_scalar", "lpt_stacked", "bucketing_dp", "blaster_dp")

#: Unreachable-state sentinel shared with the numpy DP fallbacks
#: (``np.iinfo(np.int64).max // 4`` — headroom for one int64 add).
DP_INF = np.iinfo(np.int64).max // 4


def _env_enabled(value: str | None) -> bool:
    """``REPRO_NATIVE`` parsing: only an explicit ``"0"`` opts out."""
    return (value or "").strip() != "0"


_ENABLED = _env_enabled(os.environ.get(_ENV))
#: None = not yet probed; afterwards a bool.
_AVAILABLE: bool | None = None
#: None / "native" / "fallback" — test override (see :func:`force`).
_FORCED: str | None = None
#: Lazily compiled callables keyed by kernel name; None until built.
_COMPILED: dict | None = None
#: Set when numba imported but compilation failed (tier disabled).
_COMPILE_ERROR: str | None = None


# ---------------------------------------------------------------------------
# Kernel bodies (plain Python, numba-jittable, bit-identical to the
# fallbacks they shadow — see each body's notes).
# ---------------------------------------------------------------------------


def _lpt_scalar_body(
    ordered, degrees, cpt, cbeta, caps, alpha1, alpha2, beta1, gather, exposed
):
    """One layout's incremental LPT loop (``_assign_lpt_scalar`` twin).

    Same float ops in the same order as the fallback's inlined
    ``group_time`` formula; the fallback's equal-length candidate
    cache is dropped because recomputing a lane's candidate produces
    the same bits.  Returns ``(feasible, choices, makespan)`` where
    ``choices[step]`` is the lane receiving ``ordered[step]``.
    """
    n = ordered.shape[0]
    lanes = degrees.shape[0]
    work = np.zeros(lanes)
    tokens = np.zeros(lanes)
    choices = np.zeros(n, dtype=np.int64)
    for step in range(n):
        s = ordered[step]
        term = alpha1 * s * s + alpha2 * s
        best_index = -1
        best_time = 0.0
        for i in range(lanes):
            new_tokens = tokens[i] + s
            if new_tokens > caps[i]:
                continue
            comp = (work[i] + term) / degrees[i] + beta1
            comm = cpt[i] * new_tokens + cbeta[i]
            t = comp + comm
            if gather > 0:
                bound = comm + gather
                t = t + exposed
                if bound > t:
                    t = bound
            if best_index < 0 or t < best_time:
                best_time = t
                best_index = i
        if best_index < 0:
            return False, choices, 0.0
        choices[step] = best_index
        work[best_index] += term
        tokens[best_index] += s
    makespan = -np.inf
    for i in range(lanes):
        if tokens[i] > 0:
            comp = work[i] / degrees[i] + beta1
            comm = cpt[i] * tokens[i] + cbeta[i]
            if gather <= 0:
                t = comp + comm
            else:
                t = comp + comm + exposed
                bound = comm + gather
                if bound > t:
                    t = bound
            if t > makespan:
                makespan = t
    return True, choices, makespan


def _lpt_stacked_body(
    ordered, caps, degrees, cpt, cbeta, alpha1, alpha2, beta1, gather, exposed
):
    """Whole-family LPT pass (``_assign_lpt_stacked`` twin).

    Replays the stacked numpy pass layout-by-layout: identical
    elementwise candidate formula, leftmost argmin per step (strict
    ``<`` scan == ``np.argmin``), dead layouts stop updating state
    and keep ``choices == -1``, final makespans via the ``group_time``
    expression over non-empty lanes, leftmost-minimum winner.
    Padding lanes carry ``cap == -1`` so they are never feasible.
    Returns ``(feasible, choices, makespans, winner)``.
    """
    n = ordered.shape[0]
    num_layouts, width = caps.shape
    work = np.zeros((num_layouts, width))
    tokens = np.zeros((num_layouts, width))
    alive = np.ones(num_layouts, dtype=np.bool_)
    choices = np.full((n, num_layouts), -1, dtype=np.int64)
    for step in range(n):
        s = ordered[step]
        term = alpha1 * s * s + alpha2 * s
        any_alive = False
        for layout in range(num_layouts):
            if not alive[layout]:
                continue
            best_lane = -1
            best_time = 0.0
            for g in range(width):
                new_tokens = tokens[layout, g] + s
                if new_tokens > caps[layout, g]:
                    continue
                comp = (work[layout, g] + term) / degrees[layout, g] + beta1
                comm = cpt[layout, g] * new_tokens + cbeta[layout, g]
                t = comp + comm
                if gather > 0:
                    bound = comm + gather
                    t = t + exposed
                    if bound > t:
                        t = bound
                if best_lane < 0 or t < best_time:
                    best_time = t
                    best_lane = g
            if best_lane < 0:
                alive[layout] = False
                continue
            work[layout, best_lane] += term
            tokens[layout, best_lane] += s
            choices[step, layout] = best_lane
            any_alive = True
        if not any_alive:
            return False, choices, np.zeros(num_layouts), -1
    makespans = np.empty(num_layouts)
    for layout in range(num_layouts):
        if not alive[layout]:
            makespans[layout] = np.inf
            continue
        span = -np.inf
        for g in range(width):
            if tokens[layout, g] > 0:
                comp = work[layout, g] / degrees[layout, g] + beta1
                comm = cpt[layout, g] * tokens[layout, g] + cbeta[layout, g]
                if gather <= 0:
                    t = comp + comm
                else:
                    t = comp + comm + exposed
                    bound = comm + gather
                    if bound > t:
                        t = bound
                if t > span:
                    span = t
        makespans[layout] = span
    winner = 0
    best = makespans[0]
    for layout in range(1, num_layouts):
        if makespans[layout] < best:
            best = makespans[layout]
            winner = layout
    return True, choices, makespans, winner


def _dp_choice_body(mode, values, cnt, wsum, prefix, n, layers):
    """Layered monotone D&C argmin (bucketing + blaster DP twin).

    ``mode == 0``: the bucketing recurrence (Eq. 15/16) — candidate
    cost ``err[j] + values[k-1] * (cnt[k] - cnt[j]) - (wsum[k] -
    wsum[j])``.  ``mode == 1``: the blaster recurrence (Eq. 23/24) —
    ``max(dp[j], prefix[k] - prefix[j])``; the unused prefix arrays
    of the other mode are passed empty.  Layer ``q`` solves ``k in
    [q, n]`` with ``j in [q - 1, n - 1]``, recursing depth-first over
    an explicit stack with the same midpoint split, leftmost argmin
    (first candidate seeds the scan, strict ``<`` thereafter — all
    int64 arithmetic, including any saturated ``inf + seg`` sums,
    matches the vectorised fallback bit for bit) and monotone child
    ranges (left ``[j_lo, opt]``, right ``[opt, j_hi]``) as
    :func:`repro.core._dp.solve_monotone_layer`.  Returns the
    ``(n + 1, layers + 1)`` leftmost-argmin choice matrix the callers
    backtrack (``boundary`` / ``choice`` in the fallbacks).
    """
    inf = np.int64(2305843009213693951)  # np.iinfo(np.int64).max // 4
    dp = np.full(n + 1, inf, dtype=np.int64)
    dp[0] = 0
    choice = np.zeros((n + 1, layers + 1), dtype=np.int64)
    # Explicit DFS stack; depth is O(log n) but size by node count is
    # safely bounded by 2 * (n + 2).
    cap = 2 * (n + 2)
    stack_k_lo = np.zeros(cap, dtype=np.int64)
    stack_k_hi = np.zeros(cap, dtype=np.int64)
    stack_j_lo = np.zeros(cap, dtype=np.int64)
    stack_j_hi = np.zeros(cap, dtype=np.int64)
    for layer in range(1, layers + 1):
        new_dp = np.full(n + 1, inf, dtype=np.int64)
        top = 0
        stack_k_lo[top] = layer
        stack_k_hi[top] = n
        stack_j_lo[top] = layer - 1
        stack_j_hi[top] = n - 1
        top += 1
        while top > 0:
            top -= 1
            k_lo = stack_k_lo[top]
            k_hi = stack_k_hi[top]
            j_lo = stack_j_lo[top]
            j_hi = stack_j_hi[top]
            k = (k_lo + k_hi) // 2
            j_top = j_hi
            if k - 1 < j_top:
                j_top = k - 1
            if mode == 0:
                seg = values[k - 1] * (cnt[k] - cnt[j_lo]) - (
                    wsum[k] - wsum[j_lo]
                )
                best = dp[j_lo] + seg
            else:
                seg = prefix[k] - prefix[j_lo]
                best = dp[j_lo] if dp[j_lo] > seg else seg
            opt = j_lo
            for j in range(j_lo + 1, j_top + 1):
                if mode == 0:
                    seg = values[k - 1] * (cnt[k] - cnt[j]) - (
                        wsum[k] - wsum[j]
                    )
                    cost = dp[j] + seg
                else:
                    seg = prefix[k] - prefix[j]
                    cost = dp[j] if dp[j] > seg else seg
                if cost < best:
                    best = cost
                    opt = j
            new_dp[k] = best
            choice[k, layer] = opt
            if k + 1 <= k_hi:
                stack_k_lo[top] = k + 1
                stack_k_hi[top] = k_hi
                stack_j_lo[top] = opt
                stack_j_hi[top] = j_hi
                top += 1
            if k_lo <= k - 1:
                stack_k_lo[top] = k_lo
                stack_k_hi[top] = k - 1
                stack_j_lo[top] = j_lo
                stack_j_hi[top] = opt
                top += 1
        dp = new_dp
    return choice


#: name -> plain-Python body (the jit targets); the two DP kernels
#: share one body, selected by the mode flag at the dispatch site.
KERNEL_BODIES = {
    "lpt_scalar": _lpt_scalar_body,
    "lpt_stacked": _lpt_stacked_body,
    "bucketing_dp": _dp_choice_body,
    "blaster_dp": _dp_choice_body,
}


# ---------------------------------------------------------------------------
# Registry: availability, enablement, dispatch, attribution.
# ---------------------------------------------------------------------------


def native_available() -> bool:
    """Whether numba imports on this host (probed once, cached)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


def enabled() -> bool:
    """Whether the native tier is switched on (env / CLI / runtime)."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Runtime switch (the bench CLI's ``--no-native`` handle).

    Also mirrors into ``REPRO_NATIVE`` so spawned pool workers — which
    re-import this module rather than inheriting its globals — agree.

    The mutation is process-global and permanent; callers that only
    need the switch for the duration of a run (the bench CLI, the plan
    service, tests) should prefer :func:`enabled_scope`, which restores
    both the module flag and the environment variable on exit.
    """
    global _ENABLED
    _ENABLED = bool(value)
    os.environ[_ENV] = "1" if value else "0"


@contextlib.contextmanager
def enabled_scope(value: bool) -> Iterator[None]:
    """Scoped :func:`set_enabled`: restore flag *and* env var on exit.

    ``set_enabled`` writes ``REPRO_NATIVE`` into ``os.environ`` so
    spawned pool workers agree with the parent; without a restore that
    write outlives the run and poisons every later run in the same
    process (e.g. a ``--no-native`` campaign inside pytest disabling
    the tier for all subsequent tests).  This scope saves the previous
    ``_ENABLED`` and the previous env state — including *absence* of
    the variable — and reinstates both when the block exits.
    """
    global _ENABLED
    previous_enabled = _ENABLED
    previous_env = os.environ.get(_ENV)
    set_enabled(value)
    try:
        yield
    finally:
        _ENABLED = previous_enabled
        if previous_env is None:
            os.environ.pop(_ENV, None)
        else:
            os.environ[_ENV] = previous_env


def _compile() -> dict | None:
    """Jit every kernel body once; None when numba is unusable."""
    global _COMPILED, _COMPILE_ERROR
    if _COMPILED is None and _COMPILE_ERROR is None:
        try:
            from numba import njit

            jit = njit(cache=True, nogil=True)
            compiled = {}
            for name in ("lpt_scalar", "lpt_stacked"):
                compiled[name] = jit(KERNEL_BODIES[name])
            compiled["bucketing_dp"] = compiled["blaster_dp"] = jit(
                _dp_choice_body
            )
            _COMPILED = compiled
        except Exception as exc:  # pragma: no cover - env-specific
            _COMPILE_ERROR = f"{type(exc).__name__}: {exc}"
    return _COMPILED


def use_native(name: str) -> bool:
    """Dispatch decision for one kernel (and compile on first use).

    ``_FORCED`` is sampled exactly once per call: a concurrent
    :func:`force` flip (which only the single-threaded test harness
    should perform — see :func:`force`) can change the answer *between*
    dispatches but can never split one dispatch decision across tiers.
    """
    if name not in KERNEL_BODIES:
        raise KeyError(f"unknown kernel: {name!r}")
    forced = _FORCED
    if forced == "fallback":
        return False
    if forced != "native" and not _ENABLED:
        return False
    return native_available() and _compile() is not None


def native(name: str):
    """The compiled callable for ``name`` (after :func:`use_native`)."""
    compiled = _compile()
    if compiled is None:
        raise RuntimeError(
            f"native kernel {name!r} unavailable"
            + (f" ({_COMPILE_ERROR})" if _COMPILE_ERROR else "")
        )
    return compiled[name]


@contextlib.contextmanager
def force(tier: str | None) -> Iterator[None]:
    """Test override: ``"native"``, ``"fallback"`` or None (auto).

    Forcing ``"native"`` only takes effect when numba is importable —
    dispatch still degrades to the fallback otherwise, so suites that
    force both tiers stay runnable on hosts without the extra.

    **Single-thread contract.**  The override flips the module-global
    ``_FORCED`` with no lock; enter and exit it only from one thread
    (the test harness), never concurrently with another ``force``.
    Reader threads are safe regardless: :func:`use_native` samples
    ``_FORCED`` once per dispatch, so a solve racing a flip lands
    wholly on one tier or the other — and either tier produces
    bit-identical plans, so concurrent *readers* (e.g. the plan
    service's request threads) never observe a torn result.
    """
    if tier not in (None, "native", "fallback"):
        raise ValueError(f"unknown tier: {tier!r}")
    global _FORCED
    previous = _FORCED
    _FORCED = tier
    try:
        yield
    finally:
        _FORCED = previous


def note(name: str, tier: str) -> None:
    """Record a dispatch on the ambient stage-timing frame.

    The pseudo-stage ``kernel:<name>:<tier>`` accumulates a dispatch
    count (1.0 per call) and rides the existing cross-process stage
    channel; consumers split it back out via
    :func:`tiers_from_stages`.
    """
    stage_timing.add(f"kernel:{name}:{tier}", 1.0)


def tiers_from_stages(
    stages: Mapping[str, float],
) -> tuple[tuple[str, str], ...]:
    """Extract ``(kernel, tier)`` attribution from a stage mapping.

    A kernel dispatched through both tiers within one frame (possible
    when pooled workers disagree) reports ``"mixed"``.
    """
    seen: dict[str, set[str]] = {}
    for key in stages:
        if not key.startswith("kernel:"):
            continue
        __, name, tier = key.split(":", 2)
        seen.setdefault(name, set()).add(tier)
    return tuple(
        (name, next(iter(tiers)) if len(tiers) == 1 else "mixed")
        for name, tiers in sorted(seen.items())
    )


def strip_kernel_stages(stages: Mapping[str, float]) -> dict[str, float]:
    """Drop the ``kernel:`` pseudo-stages (for pure-seconds reports)."""
    return {k: v for k, v in stages.items() if not k.startswith("kernel:")}


def active_tier() -> str:
    """The tier dispatch would pick right now (banner convenience)."""
    return "native" if use_native("lpt_scalar") else "fallback"


def warmup() -> float:
    """Compile all kernels on tiny inputs; returns wall seconds.

    This is the JIT cost the kernels benchmark reports separately
    from steady state.  No-op (0.0) when the native tier is off.
    """
    if not use_native("lpt_scalar"):
        return 0.0
    started = time.perf_counter()
    one = np.asarray([4.0])
    lane = np.asarray([1.0])
    native("lpt_scalar")(one, lane, lane, lane, one * 100, 0.0, 1.0, 0.0, 0.0, 0.0)
    native("lpt_stacked")(
        one, (one * 100).reshape(1, 1), lane.reshape(1, 1),
        lane.reshape(1, 1), lane.reshape(1, 1), 0.0, 1.0, 0.0, 0.0, 0.0,
    )
    ints = np.asarray([0, 1], dtype=np.int64)
    native("bucketing_dp")(0, ints[1:] + 3, ints, ints * 4, ints[:0], 1, 1)
    native("blaster_dp")(1, ints[:0], ints[:0], ints[:0], ints * 4, 1, 1)
    return time.perf_counter() - started


def describe_dict() -> dict:
    """Machine-readable tier description (benchmark records)."""
    available = native_available()
    return {
        "native_available": available,
        "enabled": _ENABLED,
        "forced": _FORCED,
        "compile_error": _COMPILE_ERROR,
        "tier": "native" if (available and _ENABLED and _FORCED != "fallback"
                             and _COMPILE_ERROR is None) else "fallback",
        "kernels": list(KERNEL_NAMES),
    }


def describe() -> str:
    """One-line banner for ``--profile`` output."""
    info = describe_dict()
    detail = "" if info["native_available"] else " (numba not installed)"
    if info["compile_error"]:
        detail = f" (compile failed: {info['compile_error']})"
    return (
        f"kernel tier: {info['tier']}{detail} | native available: "
        f"{'yes' if info['native_available'] else 'no'} | "
        + " ".join(f"{name}={info['tier']}" for name in KERNEL_NAMES)
    )
