"""Plan serialization and the distributed plan store (paper S5).

FlexSP disaggregates solving (CPU services, one per node) from
training (GPUs): solvers write each batch's optimal plan into a
distributed store, and the executor reads one plan per iteration.
This module provides the wire format — plans as plain JSON — and a
file-backed :class:`PlanStore` with the store's read-ahead contract.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

from repro.core.types import (
    GroupAssignment,
    IterationPlan,
    MicroBatchPlan,
    SolveStats,
)

#: Format tag written into every serialized plan.
FORMAT_VERSION = 1


def microbatch_to_dict(mb: MicroBatchPlan) -> dict[str, Any]:
    """Lossless JSON-ready representation of one micro-batch plan.

    The unit the plan cache memoises — shared by the iteration-plan
    wire format below and :mod:`repro.core.cache_store`'s spilled
    cache entries.
    """
    return {
        "groups": [
            {
                "degree": g.degree,
                "device_ranks": list(g.device_ranks),
                "lengths": list(g.lengths),
            }
            for g in mb.groups
        ]
    }


def microbatch_from_dict(payload: dict[str, Any]) -> MicroBatchPlan:
    """Inverse of :func:`microbatch_to_dict`; validates via the plan
    dataclasses' own invariants."""
    groups = tuple(
        GroupAssignment(
            degree=int(g["degree"]),
            device_ranks=tuple(int(r) for r in g["device_ranks"]),
            lengths=tuple(int(s) for s in g["lengths"]),
        )
        for g in payload["groups"]
    )
    return MicroBatchPlan(groups=groups)


def plan_to_dict(plan: IterationPlan) -> dict[str, Any]:
    """Lossless JSON-ready representation of an iteration plan."""
    payload: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "solver_name": plan.solver_name,
        "predicted_time": plan.predicted_time,
    }
    if plan.stats is not None:
        payload["stats"] = dataclasses.asdict(plan.stats)
    payload["microbatches"] = [
        microbatch_to_dict(mb) for mb in plan.microbatches
    ]
    return payload


def plan_from_dict(payload: dict[str, Any]) -> IterationPlan:
    """Inverse of :func:`plan_to_dict`; validates structure via the
    plan dataclasses' own invariants."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported plan format version {version!r}; expected "
            f"{FORMAT_VERSION}"
        )
    microbatches = [microbatch_from_dict(mb) for mb in payload["microbatches"]]
    stats = payload.get("stats")
    return IterationPlan(
        microbatches=tuple(microbatches),
        predicted_time=payload.get("predicted_time"),
        solver_name=payload.get("solver_name", "unknown"),
        stats=SolveStats(**stats) if stats is not None else None,
    )


def dumps(plan: IterationPlan) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), separators=(",", ":"))


def loads(text: str) -> IterationPlan:
    """Deserialize a plan from a JSON string."""
    return plan_from_dict(json.loads(text))


class PlanStore:
    """File-backed store of per-step plans (the S5 "distributed storage").

    Solver services call :meth:`put` for the batches they have solved;
    the executor calls :meth:`get` once per training step.  Steps are
    independent files so concurrent solver processes never contend.

    Args:
        root: Directory holding the plans; created if missing.
    """

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, step: int) -> pathlib.Path:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        return self.root / f"plan-{step:08d}.json"

    def put(self, step: int, plan: IterationPlan) -> None:
        """Persist the plan for ``step`` (atomic via rename)."""
        path = self._path(step)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(dumps(plan))
        tmp.rename(path)

    def get(self, step: int) -> IterationPlan:
        """Load the plan for ``step``.

        Raises:
            KeyError: The step has not been solved yet.
        """
        path = self._path(step)
        if not path.exists():
            raise KeyError(f"no plan stored for step {step}")
        return loads(path.read_text())

    def __contains__(self, step: int) -> bool:
        return self._path(step).exists()

    def pending_after(self, step: int) -> int:
        """How many consecutive future steps are already solved.

        The executor uses this as its read-ahead depth: a healthy
        deployment keeps it positive so solving stays overlapped.
        """
        count = 0
        while (step + count + 1) in self:
            count += 1
        return count

    def steps(self) -> list[int]:
        """All stored step indices, ascending."""
        return sorted(
            int(p.stem.split("-")[1]) for p in self.root.glob("plan-*.json")
        )
