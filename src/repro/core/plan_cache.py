"""Cross-trial and cross-iteration micro-batch plan memoisation.

The solver loop (Alg. 1) re-solves near-identical subproblems
constantly: within one ``solve()``, adjacent micro-batch-count trials
blast the *same sorted batch* into contiguous segments, so segments
recur verbatim across trials (and within a trial whenever the batch
contains runs of equal lengths); across training iterations, corpora
with quantised or recurring length mixes reproduce whole micro-batch
shapes.  Every recurrence would otherwise pay a full MILP solve.

Cache keys and the bucket signature (S4.1.3): the planner is a pure
function of the micro-batch's *length multiset* plus the cost model
and planner knobs — bucketing (Eqs. 15-16) runs over the sorted unique
lengths, so equal multisets yield the same (bucket-upper, count)
signature, the same MILP instance, and the same plan.  The canonical
key is therefore the sorted length tuple together with the cost-model
and planner-config signatures; it subsumes the coarser bucket-upper
signature while remaining exact (two batches with equal bucket
signatures but different members must *not* share a plan, since plans
carry the actual lengths).

Infeasibility is cached too: a micro-batch proven unplannable stays
unplannable for the same model and knobs, so repeat trials skip the
doomed solve.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence as SequenceABC

from repro.core.planner import PlannerConfig
from repro.core.types import MicroBatchPlan, SolveStats
from repro.cost.model import CostModel

__all__ = [
    "DEFAULT_CAPACITY",
    "INFEASIBLE",
    "CacheContext",
    "PlanCache",
    "SolveStats",  # re-exported from types for convenience
    "cache_context",
    "canonical_shape",
    "model_signature",
    "plan_key",
]

#: Default maximum number of memoised micro-batch plans.
DEFAULT_CAPACITY = 4096

#: Sentinel cached for micro-batches proven infeasible.
INFEASIBLE = "infeasible"


class CacheContext:
    """Interned (model, planner-config, backend) identity with a
    precomputed hash.

    Plan-cache keys embed deeply nested frozen dataclasses (cost
    coefficients, cluster, network specs) whose ``__hash__`` walks
    every field on each dict operation; a solver performs thousands of
    lookups per solve, so the context part of the key is wrapped once
    and its hash cached.  Dict lookups against the same context object
    short-circuit on identity.
    """

    __slots__ = ("signature", "_hash")

    def __init__(self, signature: tuple) -> None:
        self.signature = signature
        self._hash = hash(signature)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, CacheContext) and self.signature == other.signature
        )


def cache_context(
    model: CostModel, planner_config: PlannerConfig, backend: str
) -> CacheContext:
    """Build the interned context half of a plan-cache key."""
    return CacheContext((model_signature(model), planner_config, backend))


def model_signature(model: CostModel) -> tuple:
    """Hashable identity of a cost model for cache keying.

    Coefficients, cluster shape, and the communication flavour fully
    determine every planner decision; the mutable per-instance caches
    are deliberately excluded.
    """
    return (model.coeffs, model.cluster, model.comm_model)


def canonical_shape(lengths: SequenceABC[int]) -> tuple[int, ...]:
    """The canonical (sorted) form of a micro-batch's length multiset.

    Both planner backends are order-insensitive, so this is the exact
    equivalence class a cached plan is valid for.  Every key producer
    — :func:`plan_key` and the solver's hot path — must go through
    this one function.
    """
    return tuple(sorted(int(s) for s in lengths))


def plan_key(
    lengths: SequenceABC[int],
    model: CostModel,
    planner_config: PlannerConfig,
    backend: str,
    context: CacheContext | None = None,
) -> tuple:
    """Canonical cache key of one micro-batch planning problem.

    Callers issuing many lookups should pass a prebuilt ``context``
    (see :func:`cache_context`) so the model/config half of the key is
    hashed once instead of per lookup.
    """
    if context is None:
        context = cache_context(model, planner_config, backend)
    return (canonical_shape(lengths), context)


class PlanCache:
    """LRU memo of micro-batch plans keyed by :func:`plan_key`.

    Values are ``(plan, predicted_seconds)`` pairs, or
    :data:`INFEASIBLE` for shapes proven unplannable.  Eviction is
    least-recently-used.  Operations take an internal lock, so one
    cache may serve concurrent ``solve()`` calls (the pipeline's
    prefetching thread pool shares a solver); two threads planning the
    same uncached shape at once is benign — both store the same plan.

    Args:
        capacity: Maximum retained entries (None = unbounded).
    """

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: tuple):
        """The cached entry for ``key`` — ``(plan, predicted)``,
        :data:`INFEASIBLE`, or None on a miss (counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry

    def peek(self, key: tuple):
        """Like :meth:`lookup` but with zero side effects: no hit/miss
        counting, no LRU reordering.  The cold-path prewarmer uses
        this so probing for missing shapes cannot change what a later
        ``solve()`` observes or reports."""
        with self._lock:
            return self._entries.get(key)

    def store(
        self, key: tuple, plan: MicroBatchPlan | None, predicted: float | None
    ) -> None:
        """Memoise a planning outcome (``plan=None`` marks infeasible)."""
        with self._lock:
            if plan is None:
                self._entries[key] = INFEASIBLE
            else:
                self._entries[key] = (plan, predicted)
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)

    def snapshot(self) -> list[tuple[tuple, object]]:
        """A consistent copy of every entry, LRU order (oldest first).

        Entries are ``(key, (plan, predicted))`` or
        ``(key, INFEASIBLE)`` pairs.  This is the spill surface of
        :mod:`repro.core.cache_store`: the list can be persisted and
        replayed through :meth:`store` to reconstruct an equivalent
        cache (same entries, same LRU order) in another process.
        Hit/miss counters are *not* part of the snapshot — a restored
        cache starts cold on statistics, warm on content.
        """
        with self._lock:
            return list(self._entries.items())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
