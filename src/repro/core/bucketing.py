"""Sequence bucketing (S4.1.3, Eqs. 15-16).

The MILP's variable count is proportional to the number of distinct
sequence lengths, so the planner first groups sequences into ``Q``
buckets, each represented by its maximum member length.  The bucketing
error — total deviation of each sequence from its bucket's upper limit
— is minimised exactly by dynamic programming over the sorted lengths:

    err[k][q] = min_j { err[j][q-1] + sum_{i=j+1..k} (s_k - s_i) }

Duplicate lengths are collapsed first (splitting a run of equal
lengths across buckets can never help).  The per-layer segment cost
``w(j, k) = s_k * (cnt_k - cnt_j) - (wsum_k - wsum_j)`` satisfies the
concave quadrangle inequality (``w(j1,k1) + w(j2,k2) <= w(j1,k2) +
w(j2,k1)`` reduces to ``(s_k1 - s_k2)(cnt_j2 - cnt_j1) <= 0``), so
each layer's leftmost argmin is monotone in ``k`` and the layer is
solved by divide-and-conquer argmin in O(n log n) numpy-vectorised
work — O(n log n * Q) total instead of the naive O(n^2 * Q).

The naive alternative (fixed-width intervals) is kept for the Table 4
/ Fig. 7 ablations.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core._dp import solve_monotone_layer

#: The paper's default bucket count (S4.1.3).
DEFAULT_NUM_BUCKETS = 16


@dataclass(frozen=True)
class Bucket:
    """A group of similar-length sequences represented by one length.

    Attributes:
        upper: Representative (maximum) length ``s_hat_q``, tokens.
        lengths: The actual member lengths, ascending.
    """

    upper: int
    lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.lengths:
            raise ValueError("a bucket must contain at least one sequence")
        if any(s > self.upper for s in self.lengths):
            raise ValueError("bucket members must not exceed its upper limit")
        if any(s <= 0 for s in self.lengths):
            raise ValueError("sequence lengths must be positive")

    @property
    def count(self) -> int:
        """Member count ``b_hat_q``."""
        return len(self.lengths)

    @property
    def deviation(self) -> int:
        """Total bucketing error contributed by this bucket."""
        return self.upper * self.count - sum(self.lengths)


def _unique_sorted(lengths: SequenceABC[int]) -> tuple[np.ndarray, np.ndarray]:
    arr = np.asarray(lengths, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("cannot bucket an empty batch")
    if np.any(arr <= 0):
        raise ValueError("sequence lengths must be positive")
    return np.unique(arr, return_counts=True)


def optimal_buckets(
    lengths: SequenceABC[int], num_buckets: int = DEFAULT_NUM_BUCKETS
) -> list[Bucket]:
    """Minimum-deviation bucketing via dynamic programming (Eq. 16).

    Args:
        lengths: Raw sequence lengths (any order).
        num_buckets: Target bucket count Q; fewer are returned when
            there are fewer unique lengths.

    Returns:
        Buckets in ascending order of upper limit, jointly minimising
        Eq. 15's total deviation.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    values, counts = _unique_sorted(lengths)
    n = len(values)
    q_max = min(num_buckets, n)
    if q_max == n:
        return _materialise(lengths, values)

    # Prefix sums over unique values: cnt[k] sequences and wsum[k]
    # total tokens among the first k unique lengths.
    cnt = np.concatenate(([0], np.cumsum(counts)))
    wsum = np.concatenate(([0], np.cumsum(values * counts)))

    # err[j] holds err[j][q-1] while filling err[.][q]; boundary[k][q]
    # records the argmin j for reconstruction.  The segment cost is
    # concave-Monge, so each layer's leftmost argmin is monotone in k
    # and the layer is solved by the shared level-batched
    # divide-and-conquer argmin — or its compiled twin when the
    # native kernel tier is on (bit-identical boundaries either way).
    if kernels.use_native("bucketing_dp"):
        kernels.note("bucketing_dp", "native")
        boundary = kernels.native("bucketing_dp")(
            0, values, cnt, wsum, cnt[:0], n, q_max
        )
    else:
        kernels.note("bucketing_dp", "fallback")
        inf = kernels.DP_INF
        err = np.full(n + 1, inf, dtype=np.int64)
        err[0] = 0
        boundary = np.zeros((n + 1, q_max + 1), dtype=np.int64)
        for q in range(1, q_max + 1):
            new_err = np.full(n + 1, inf, dtype=np.int64)

            def flat_cost(k, lens, flat_j):
                # Cost of making (j, k] one bucket with upper limit
                # values[k-1].
                seg = np.repeat(values[k - 1], lens) * (
                    np.repeat(cnt[k], lens) - cnt[flat_j]
                ) - (np.repeat(wsum[k], lens) - wsum[flat_j])
                return err[flat_j] + seg

            def assign(k, best, opt):
                new_err[k] = best
                boundary[k, q] = opt

            solve_monotone_layer(q, n, q - 1, n - 1, flat_cost, assign)
            err = new_err

    # Walk boundaries back to recover the bucket edges.
    edges = []
    k = n
    for q in range(q_max, 0, -1):
        edges.append(k)
        k = int(boundary[k][q])
    edges.reverse()
    uppers = values[[e - 1 for e in edges]]
    return _materialise(lengths, uppers)


def naive_buckets(
    lengths: SequenceABC[int], num_buckets: int = DEFAULT_NUM_BUCKETS
) -> list[Bucket]:
    """Fixed-width-interval bucketing (the ablation baseline).

    Splits ``[0, max_length]`` into ``num_buckets`` equal intervals and
    represents each non-empty interval by its upper edge.  On long-tail
    data this wastes most intervals on the empty tail and lumps the
    dense short-sequence mass into one coarse bucket — the source of
    the up-to-22% token estimation error in Table 4.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    values, __ = _unique_sorted(lengths)
    max_len = int(values[-1])
    width = max(1, -(-max_len // num_buckets))  # ceil division
    uppers = sorted({min((int(s) + width - 1) // width * width, max_len) or width
                     for s in values})
    return _materialise(lengths, np.asarray(uppers, dtype=np.int64))


#: The paper's naive-bucketing interval: upper limits at multiples of 2K.
FIXED_INTERVAL_WIDTH = 2048


def fixed_interval_buckets(
    lengths: SequenceABC[int], width: int = FIXED_INTERVAL_WIDTH
) -> list[Bucket]:
    """The paper's exact naive method: upper limits at multiples of ``width``.

    Buckets are 0-2K, 2K-4K, 4K-6K, ... regardless of the data; the
    bucket count is data-dependent.  On long-tail corpora this places
    the dense short-sequence mass into one or two coarse intervals,
    producing the large token-estimation bias of Table 4.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    values, __ = _unique_sorted(lengths)
    uppers = sorted({-(-int(s) // width) * width for s in values})
    return _materialise(lengths, np.asarray(uppers, dtype=np.int64))


def _materialise(
    lengths: SequenceABC[int], uppers: np.ndarray
) -> list[Bucket]:
    """Assemble Bucket objects given ascending upper limits."""
    remaining = np.sort(np.asarray(lengths, dtype=np.int64))
    uppers = np.asarray(uppers, dtype=np.int64)
    # Bucket i owns the members in (uppers[i-1], uppers[i]].
    ends = np.searchsorted(remaining, uppers, side="right")
    if not ends.size or int(ends[-1]) != remaining.size:
        raise AssertionError("bucketing failed to cover all sequences")
    starts = np.concatenate(([0], ends[:-1]))
    buckets: list[Bucket] = []
    for upper, start, end in zip(uppers, starts, ends):
        if end > start:
            buckets.append(
                Bucket(
                    upper=int(upper),
                    lengths=tuple(int(s) for s in remaining[start:end]),
                )
            )
    return buckets


def bucket_sequences(
    lengths: SequenceABC[int],
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    method: str = "optimal",
) -> list[Bucket]:
    """Bucket sequences by the named method (``"optimal"`` or ``"naive"``)."""
    if method == "optimal":
        return optimal_buckets(lengths, num_buckets)
    if method == "naive":
        return naive_buckets(lengths, num_buckets)
    if method == "fixed":
        return fixed_interval_buckets(lengths)
    raise ValueError(f"unknown bucketing method: {method!r}")


def bucketing_error(buckets: SequenceABC[Bucket]) -> int:
    """Eq. 15's objective: total token deviation across buckets."""
    return sum(b.deviation for b in buckets)


def token_error_ratio(buckets: SequenceABC[Bucket]) -> float:
    """Table 4's metric: error tokens divided by total true tokens."""
    true_tokens = sum(sum(b.lengths) for b in buckets)
    if true_tokens == 0:
        raise ValueError("token_error_ratio of an empty bucketing is undefined")
    return bucketing_error(buckets) / true_tokens
