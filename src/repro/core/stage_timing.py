"""Per-stage wall-clock accounting for the cold planning path.

The cold-path engine is three pipelined stages — candidate-layout
enumeration, the stacked LPT pass, and (for the MILP backend) model
assembly plus the HiGHS solve — and the perf trajectory tracks each
one separately (``python -m repro.bench --profile``).  The planners are
pure functions called from many places (in-process, service workers,
pool workers), so the collector is deliberately decoupled from their
signatures: a caller opens a :func:`collect` frame, the planner calls
:func:`add` for each stage it executes, and every frame open *in that
thread* accumulates the seconds.

Worker processes have no access to the parent's frames; the solver's
service/pool entry points open their own frame around the planner call
and ship the collected dict back beside the planning outcome, and the
parent replays it into its active frames with :func:`merge` — so a
solve's stage breakdown is complete whether planning ran in-process or
on a pool.

Timing is host wall-clock: it never participates in the bit-identical
metrics contract (compare :meth:`repro.experiments.sweep.CellMetrics
.deterministic`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

#: The cold-path stages, in pipeline order.
STAGES = ("enumerate", "lpt", "milp_build", "milp_solve")

_LOCAL = threading.local()


def _frames() -> list[dict[str, float]]:
    frames = getattr(_LOCAL, "frames", None)
    if frames is None:
        frames = _LOCAL.frames = []
    return frames


def add(stage: str, seconds: float) -> None:
    """Charge ``seconds`` to ``stage`` in every open frame of this
    thread (no-op when none is open — planners never pay for unused
    instrumentation beyond a perf_counter pair)."""
    for frame in _frames():
        frame[stage] = frame.get(stage, 0.0) + seconds


def merge(stages: dict[str, float] | None) -> None:
    """Replay a worker-collected stage dict into the open frames."""
    if not stages:
        return
    for stage, seconds in stages.items():
        add(stage, seconds)


def accumulate(totals: dict[str, float], stages) -> dict[str, float]:
    """Fold a stage breakdown into ``totals`` (mutated and returned).

    ``stages`` may be a dict or an iterable of ``(stage, seconds)``
    pairs — the two shapes stage breakdowns travel in (collected
    frames vs the serialised tuples on
    :class:`~repro.experiments.sweep.CellMetrics`).  The single
    definition of stage-total aggregation, shared by the sweep's
    per-worker telemetry and the campaign's ``--profile`` report.
    """
    pairs = stages.items() if isinstance(stages, dict) else stages
    for stage, seconds in pairs:
        totals[stage] = totals.get(stage, 0.0) + seconds
    return totals


@contextmanager
def collect():
    """Open a frame; yields the dict the frame accumulates into.

    Frames nest (an outer solve-level frame and an inner
    per-planner-call frame both see the same :func:`add`), and each is
    removed on exit, so overlapping collectors on one thread stay
    independent.
    """
    frame: dict[str, float] = {}
    frames = _frames()
    frames.append(frame)
    try:
        yield frame
    finally:
        # Remove by identity, not equality: two frames holding equal
        # stage dicts must not shadow each other.
        for i in range(len(frames) - 1, -1, -1):
            if frames[i] is frame:
                del frames[i]
                break
