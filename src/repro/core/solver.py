"""FlexSP solver workflow (Alg. 1) and the persistent solving service.

Given a global batch, sweep the micro-batch count from the minimum
feasible ``M_min`` upward over ``M'`` trials; for each count, blast the
batch, plan every micro-batch with the parallelism planner, and keep
the plan whose *total* predicted time is lowest.

Throughput architecture (the paper's two-level multi-process solving,
S4.3, plus this repo's cross-trial reuse):

* **Micro-batch granularity.** All trials' micro-batches are collected
  first, deduplicated by canonical shape (sorted lengths — see
  :mod:`repro.core.plan_cache`), and only the unique shapes are
  planned.  Work is dispatched per micro-batch, not per trial, so one
  slow trial cannot idle the other workers.
* **Plan cache.** Unique shapes are first resolved against an LRU
  :class:`~repro.core.plan_cache.PlanCache` that persists across
  ``solve()`` calls; recurring shapes (across trials of one solve and
  across iterations of a workload) skip the MILP entirely.  Hit/miss
  counters are reported per solve via
  :class:`~repro.core.types.SolveStats` on the returned
  :class:`IterationPlan`.
* **Persistent workers.** With ``workers > 1`` the
  :class:`SolverService` keeps one ``ProcessPoolExecutor`` alive
  across ``solve()`` calls; the cost model (and its vectorized
  :class:`~repro.cost.model.CostTable`) is shipped once per worker via
  the pool initializer instead of once per task.
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from repro.core.blaster import DEFAULT_NUM_TRIALS, blast, min_microbatch_count
from repro.core.plan_cache import (
    DEFAULT_CAPACITY,
    INFEASIBLE,
    PlanCache,
    cache_context,
    canonical_shape,
)
from repro.core.planner import PlanInfeasibleError, PlannerConfig, plan_microbatch
from repro.core.planner_greedy import plan_microbatch_greedy
from repro.core.types import (
    IterationPlan,
    MicroBatchPlan,
    SequenceBatch,
    SolveStats,
)
from repro.cost.model import CostModel, cost_table

#: Registry of planner backends by name.
_BACKENDS = {
    "milp": plan_microbatch,
    "greedy": plan_microbatch_greedy,
}


@dataclass(frozen=True)
class SolverConfig:
    """Solver knobs.

    Attributes:
        num_trials: Micro-batch-count trials M' (paper default 5).
        backend: ``"milp"`` (the paper's formulation, via HiGHS) or
            ``"greedy"`` (LPT heuristic fallback).
        planner: Per-micro-batch planner configuration.
        sort_sequences: Takeaway-2 sorting in the blaster; False gives
            the Fig. 7 "w/o Sort" ablation.
        workers: Process-pool width for parallel planning (1 = serial).
        capacity_safety: Fraction of the theoretical cluster token
            capacity assumed usable when computing ``M_min``.  The
            default of 1.0 relies on the trial loop to skip counts
            whose micro-batches turn out unplannable; lower it only to
            bias toward more gradient accumulation.
        plan_cache: Memoise micro-batch plans across trials and
            ``solve()`` calls.  Disabling restores the pre-cache
            behaviour of planning every micro-batch from scratch (the
            solver-throughput benchmark's reference path).
        plan_cache_capacity: LRU capacity of the plan cache.
        persistent_workers: Keep the worker pool alive across
            ``solve()`` calls.  Disabling recreates (and tears down)
            the pool every solve — the pre-service behaviour.
    """

    num_trials: int = DEFAULT_NUM_TRIALS
    backend: str = "milp"
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    sort_sequences: bool = True
    workers: int = 1
    capacity_safety: float = 1.0
    plan_cache: bool = True
    plan_cache_capacity: int = DEFAULT_CAPACITY
    persistent_workers: bool = True

    def __post_init__(self) -> None:
        if self.num_trials <= 0:
            raise ValueError(f"num_trials must be positive, got {self.num_trials}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; options: {sorted(_BACKENDS)}"
            )
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if not 0 < self.capacity_safety <= 1:
            raise ValueError(
                f"capacity_safety must be in (0, 1], got {self.capacity_safety}"
            )
        if self.plan_cache_capacity <= 0:
            raise ValueError(
                f"plan_cache_capacity must be positive, got "
                f"{self.plan_cache_capacity}"
            )


# ---------------------------------------------------------------------------
# Worker-side state of the persistent solving service.  The initializer
# receives the cost model and planner knobs exactly once per worker
# process; tasks then carry only the micro-batch shape.
# ---------------------------------------------------------------------------

_WORKER_STATE: tuple[CostModel, PlannerConfig, str] | None = None


def _service_initializer(
    model: CostModel, planner_config: PlannerConfig, backend: str
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (model, planner_config, backend)
    # Pre-build the vectorized cost table so every task reuses it.
    cost_table(model)


def _service_plan(
    lengths: tuple[int, ...]
) -> tuple[MicroBatchPlan, float] | None:
    """Plan one micro-batch in a service worker; None if infeasible."""
    assert _WORKER_STATE is not None, "service worker used before initialization"
    model, planner_config, backend = _WORKER_STATE
    try:
        return _BACKENDS[backend](lengths, model, planner_config)
    except PlanInfeasibleError:
        return None


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """weakref.finalize target: non-blocking best-effort shutdown."""
    pool.shutdown(wait=False, cancel_futures=True)


class SolverService:
    """A persistent pool of planner workers for one (model, config).

    The pool is created lazily on first use and survives across
    ``solve()`` calls (and across batches of a workload), so process
    spawn and model shipping are one-time costs.  Usable standalone as
    a context manager::

        with SolverService(model, config) as service:
            outcomes = service.plan_shapes(shapes)

    Args:
        model: Fitted cost model shipped to each worker once.
        config: Solver knobs (worker count, backend, planner).
    """

    def __init__(self, model: CostModel, config: SolverConfig) -> None:
        self.model = model
        self.config = config
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                # Ship a pristine copy: per-instance caches (bandwidths,
                # cost tables) rebuild identically in the workers.
                pristine = CostModel(
                    coeffs=self.model.coeffs,
                    cluster=self.model.cluster,
                    comm_model=self.model.comm_model,
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    initializer=_service_initializer,
                    initargs=(pristine, self.config.planner, self.config.backend),
                )
                # GC fallback for callers that never close(): shut the
                # workers down when the service is collected, so
                # fire-and-forget solvers don't accumulate live pools.
                weakref.finalize(self, _shutdown_pool, self._pool)
            return self._pool

    def plan_shapes(
        self, shapes: list[tuple[int, ...]]
    ) -> list[tuple[MicroBatchPlan, float] | None]:
        """Plan every shape, dispatching at micro-batch granularity.

        A dead worker poisons a ``ProcessPoolExecutor`` permanently
        (every later submit raises ``BrokenProcessPool``), and a
        concurrent ``close()`` can shut the pool down mid-submit
        (``RuntimeError: cannot schedule new futures``) — in either
        case the pool is rebuilt and the batch retried once before the
        error propagates.  The ``RuntimeError`` guard covers only the
        submission phase: an exception raised *inside* a worker's
        planner is genuine and propagates without a wasteful retry.
        """
        for attempt in (0, 1):
            try:
                futures = self._submit(shapes)
            except (BrokenProcessPool, RuntimeError):
                if attempt:
                    raise
                self.close()
                continue
            try:
                return [f.result() for f in futures]
            except BrokenProcessPool:
                if attempt:
                    raise
                self.close()
        raise AssertionError("unreachable: both service attempts returned")

    def _submit(self, shapes: list[tuple[int, ...]]) -> list:
        pool = self._ensure_pool()
        return [pool.submit(_service_plan, shape) for shape in shapes]

    def close(self) -> None:
        """Shut the pool down (the next use restarts it lazily)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FlexSPSolver:
    """Produces iteration plans for global batches (Fig. 3's solver box).

    The solver owns a cross-call plan cache and (when ``workers > 1``)
    a persistent :class:`SolverService`; both live as long as the
    solver object, so a long-running deployment amortises process
    startup and re-planning across every batch it serves.

    Args:
        model: Fitted cost model for the target (model, cluster).
        config: Solver knobs; defaults match the paper.
    """

    def __init__(self, model: CostModel, config: SolverConfig | None = None) -> None:
        self.model = model
        self.config = config or SolverConfig()
        self.cache: PlanCache | None = (
            PlanCache(self.config.plan_cache_capacity)
            if self.config.plan_cache
            else None
        )
        self._context = cache_context(
            model, self.config.planner, self.config.backend
        )
        self._service: SolverService | None = None
        # solve() may be called from several threads at once (the
        # pipeline prefetches with a thread pool); the cache locks
        # internally, but lazy service creation needs this guard.
        self._service_lock = threading.Lock()

    def minimum_microbatches(self, batch: SequenceBatch) -> int:
        """``M_min`` for this batch on this cluster (takeaway 1)."""
        capacity = self.model.cluster_token_capacity() * self.config.capacity_safety
        return min_microbatch_count(batch.total_tokens, capacity)

    def solve(self, batch: SequenceBatch | tuple[int, ...]) -> IterationPlan:
        """Alg. 1: sweep micro-batch counts and return the best plan.

        Raises:
            PlanInfeasibleError: No trial produced a feasible plan —
                e.g. a sequence larger than the whole cluster's memory.
        """
        started = time.perf_counter()
        if not isinstance(batch, SequenceBatch):
            batch = SequenceBatch(lengths=tuple(batch))
        m_min = self.minimum_microbatches(batch)
        trials = [
            m
            for m in range(m_min, m_min + self.config.num_trials)
            if m <= len(batch.lengths)
        ]
        if not trials:
            trials = [len(batch.lengths)]

        # Blast every trial up front, then resolve the union of
        # micro-batch shapes: cache first, planner for the rest.
        trial_shapes: list[list[tuple[int, ...]] | None] = []
        for m in trials:
            try:
                microbatches = blast(batch, m, sort=self.config.sort_sequences)
            except ValueError:
                trial_shapes.append(None)
                continue
            trial_shapes.append([mb.lengths for mb in microbatches])

        # Resolve shapes.  With the cache enabled, shapes are
        # canonicalized and deduplicated (within the solve and against
        # prior solves); with it disabled, every occurrence is planned
        # from scratch — the faithful pre-cache reference path.  Each
        # trial keeps a slot per micro-batch: a cache key when caching,
        # else an index into the planning list.
        resolved: dict[tuple, object] = {}
        to_plan: list[tuple[int, ...]] = []
        trial_slots: list[list[object] | None] = []
        cache_hits = 0
        dedup_hits = 0
        total_microbatches = 0
        for shapes in trial_shapes:
            if shapes is None:
                trial_slots.append(None)
                continue
            slots: list[object] = []
            for shape in shapes:
                total_microbatches += 1
                if self.cache is None:
                    slots.append(len(to_plan))
                    to_plan.append(shape)
                    continue
                key = (canonical_shape(shape), self._context)
                slots.append(key)
                if key in resolved:
                    dedup_hits += 1
                    continue
                entry = self.cache.lookup(key)
                if entry is not None:
                    resolved[key] = entry
                    cache_hits += 1
                    continue
                resolved[key] = None  # pending
                to_plan.append(key[0])  # canonical sorted lengths
            trial_slots.append(slots)

        outcomes = self._plan_missing(to_plan)
        entries = [
            INFEASIBLE if outcome is None else outcome for outcome in outcomes
        ]
        if self.cache is not None:
            for shape, outcome, entry in zip(to_plan, outcomes, entries):
                key = (shape, self._context)
                resolved[key] = entry
                self.cache.store(
                    key,
                    None if outcome is None else outcome[0],
                    None if outcome is None else outcome[1],
                )

        best: tuple[float, list[MicroBatchPlan]] | None = None
        for slots in trial_slots:
            if slots is None:
                continue
            total = 0.0
            plans: list[MicroBatchPlan] = []
            for slot in slots:
                entry = entries[slot] if isinstance(slot, int) else resolved[slot]
                if entry is INFEASIBLE:
                    plans = []
                    break
                plan, predicted = entry
                plans.append(plan)
                total += predicted
            if not plans:
                continue
            if best is None or total < best[0]:
                best = (total, plans)

        if best is None:
            raise PlanInfeasibleError(
                f"no feasible plan for batch of {batch.total_tokens} tokens "
                f"with micro-batch counts {trials}"
            )
        total, plans = best
        stats = SolveStats(
            cache_hits=cache_hits,
            dedup_hits=dedup_hits,
            cache_misses=len(to_plan),
            trials=len(trials),
            microbatches=total_microbatches,
            solve_seconds=time.perf_counter() - started,
        )
        return IterationPlan(
            microbatches=tuple(plans),
            predicted_time=total,
            solver_name=f"flexsp-{self.config.backend}",
            stats=stats,
        )

    def _plan_missing(
        self, shapes: list[tuple[int, ...]]
    ) -> list[tuple[MicroBatchPlan, float] | None]:
        """Plan uncached shapes — in-process, or on the service pool."""
        if not shapes:
            return []
        if self.config.workers > 1 and len(shapes) > 1:
            if self.config.persistent_workers:
                return self.service().plan_shapes(shapes)
            # Pre-service behaviour: a throwaway pool per solve.  Local
            # to this call so concurrent solve() threads never tear
            # down a pool another thread is submitting to.
            with SolverService(self.model, self.config) as service:
                return service.plan_shapes(shapes)
        planner = _BACKENDS[self.config.backend]
        outcomes: list[tuple[MicroBatchPlan, float] | None] = []
        for shape in shapes:
            try:
                outcomes.append(planner(shape, self.model, self.config.planner))
            except PlanInfeasibleError:
                outcomes.append(None)
        return outcomes

    def service(self) -> SolverService:
        """The lazily started persistent :class:`SolverService`."""
        with self._service_lock:
            if self._service is None:
                self._service = SolverService(self.model, self.config)
            return self._service

    def close(self) -> None:
        """Release the worker pool (kept plans/cache remain valid)."""
        with self._service_lock:
            if self._service is not None:
                self._service.close()
                self._service = None

    def __enter__(self) -> "FlexSPSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def ablated(self, **changes) -> "FlexSPSolver":
        """Copy of this solver with config fields replaced.

        Convenience for the Fig. 7 ablations, e.g.
        ``solver.ablated(sort_sequences=False)`` or
        ``solver.ablated(planner=replace(cfg.planner, bucketing="naive"))``.
        """
        return FlexSPSolver(self.model, replace(self.config, **changes))
