"""FlexSP solver workflow (Alg. 1) and the persistent solving service.

Given a global batch, sweep the micro-batch count from the minimum
feasible ``M_min`` upward over ``M'`` trials; for each count, blast the
batch, plan every micro-batch with the parallelism planner, and keep
the plan whose *total* predicted time is lowest.

Throughput architecture (the paper's two-level multi-process solving,
S4.3, plus this repo's cross-trial reuse):

* **Micro-batch granularity.** All trials' micro-batches are collected
  first, deduplicated by canonical shape (sorted lengths — see
  :mod:`repro.core.plan_cache`), and only the unique shapes are
  planned.  Work is dispatched per micro-batch, not per trial, so one
  slow trial cannot idle the other workers.
* **Plan cache.** Unique shapes are first resolved against an LRU
  :class:`~repro.core.plan_cache.PlanCache` that persists across
  ``solve()`` calls; recurring shapes (across trials of one solve and
  across iterations of a workload) skip the MILP entirely.  Hit/miss
  counters are reported per solve via
  :class:`~repro.core.types.SolveStats` on the returned
  :class:`IterationPlan`.
* **Persistent workers.** With ``workers > 1`` the
  :class:`SolverService` keeps one ``ProcessPoolExecutor`` alive
  across ``solve()`` calls; the cost model (and its vectorized
  :class:`~repro.cost.model.CostTable`) is shipped once per worker via
  the pool initializer instead of once per task.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from repro.core import faults, kernels, pools, stage_timing
from repro.core.blaster import (
    DEFAULT_NUM_TRIALS,
    blast_multi,
    min_microbatch_count,
)
from repro.core.plan_cache import (
    DEFAULT_CAPACITY,
    INFEASIBLE,
    PlanCache,
    cache_context,
    canonical_shape,
)
from repro.core.planner import PlanInfeasibleError, PlannerConfig, plan_microbatch
from repro.core.planner_greedy import plan_microbatch_greedy
from repro.core.types import (
    IterationPlan,
    MicroBatchPlan,
    SequenceBatch,
    SolveStats,
)
from repro.cost.model import CostModel, cost_table

#: Registry of planner backends by name.
_BACKENDS = {
    "milp": plan_microbatch,
    "greedy": plan_microbatch_greedy,
}


@dataclass(frozen=True)
class SolverConfig:
    """Solver knobs.

    Attributes:
        num_trials: Micro-batch-count trials M' (paper default 5).
        backend: ``"milp"`` (the paper's formulation, via HiGHS) or
            ``"greedy"`` (LPT heuristic fallback).
        planner: Per-micro-batch planner configuration.
        sort_sequences: Takeaway-2 sorting in the blaster; False gives
            the Fig. 7 "w/o Sort" ablation.
        workers: Process-pool width for parallel planning (1 = serial).
        capacity_safety: Fraction of the theoretical cluster token
            capacity assumed usable when computing ``M_min``.  The
            default of 1.0 relies on the trial loop to skip counts
            whose micro-batches turn out unplannable; lower it only to
            bias toward more gradient accumulation.
        plan_cache: Memoise micro-batch plans across trials and
            ``solve()`` calls.  Disabling restores the pre-cache
            behaviour of planning every micro-batch from scratch (the
            solver-throughput benchmark's reference path).
        plan_cache_capacity: LRU capacity of the plan cache.
        persistent_workers: Keep the worker pool alive across
            ``solve()`` calls.  Disabling recreates (and tears down)
            the pool every solve — the pre-service behaviour.
    """

    num_trials: int = DEFAULT_NUM_TRIALS
    backend: str = "milp"
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    sort_sequences: bool = True
    workers: int = 1
    capacity_safety: float = 1.0
    plan_cache: bool = True
    plan_cache_capacity: int = DEFAULT_CAPACITY
    persistent_workers: bool = True

    def __post_init__(self) -> None:
        if self.num_trials <= 0:
            raise ValueError(f"num_trials must be positive, got {self.num_trials}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; options: {sorted(_BACKENDS)}"
            )
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if not 0 < self.capacity_safety <= 1:
            raise ValueError(
                f"capacity_safety must be in (0, 1], got {self.capacity_safety}"
            )
        if self.plan_cache_capacity <= 0:
            raise ValueError(
                f"plan_cache_capacity must be positive, got "
                f"{self.plan_cache_capacity}"
            )


# ---------------------------------------------------------------------------
# Worker-side state of the persistent solving service.  The initializer
# receives the cost model and planner knobs exactly once per worker
# process; tasks then carry only the micro-batch shape.
# ---------------------------------------------------------------------------

_WORKER_STATE: tuple[CostModel, PlannerConfig, str] | None = None


def _service_initializer(
    model: CostModel,
    planner_config: PlannerConfig,
    backend: str,
    fault_schedule=None,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (model, planner_config, backend)
    # Chaos testing: arm the parent's fault schedule in this worker
    # (None outside chaos runs) and visit the spawn injection point.
    faults.arm(fault_schedule)
    faults.maybe_inject("spawn")
    # Pre-build the vectorized cost table so every task reuses it.
    cost_table(model)


def _service_plan(
    lengths: tuple[int, ...]
) -> tuple[tuple[MicroBatchPlan, float] | None, dict[str, float]]:
    """Plan one micro-batch in a service worker; ships the outcome
    (None if infeasible) together with the per-stage timing the
    planner recorded, so the parent's solve-level breakdown covers
    pooled work too."""
    assert _WORKER_STATE is not None, "service worker used before initialization"
    model, planner_config, backend = _WORKER_STATE
    faults.maybe_inject("plan")
    with stage_timing.collect() as stages:
        try:
            outcome = _BACKENDS[backend](lengths, model, planner_config)
        except PlanInfeasibleError:
            outcome = None
    return outcome, stages


#: Sentinel for a shape whose outcome has not been collected yet.
_PENDING = object()


def _plan_resumable(
    submit, close, count: int
) -> list[tuple[MicroBatchPlan, float] | None]:
    """Collect per-shape planning outcomes, surviving pool death
    mid-batch without replanning completed shapes.

    ``submit(indices)`` submits planner tasks for the given shape
    indices on a (lazily rebuilt) pool and returns aligned futures;
    ``close`` tears a broken pool down so the next ``submit`` rebuilds
    it.  Completed outcomes are kept across deaths — only
    still-missing indices are ever resubmitted, so the campaign
    prewarm resumes from the last completed shape instead of paying
    the whole batch again.  Each completed future's stage timings
    merge into the caller's open :mod:`~repro.core.stage_timing`
    frames exactly once (an index never runs twice, so eager merging
    cannot double-count the solve-level breakdown).

    ``RuntimeError`` from ``submit`` covers only the submission phase
    (a concurrently-closed pool); an exception raised *inside* a
    worker's planner is genuine and propagates immediately.  Two
    consecutive rounds without a single completed shape raise — the
    pool is dying faster than it plans, and retrying forever would
    hang the solve.
    """
    outcomes: list = [_PENDING] * count
    barren_rounds = 0
    while True:
        missing = [i for i, o in enumerate(outcomes) if o is _PENDING]
        if not missing:
            return outcomes
        try:
            futures = submit(missing)
        except (BrokenProcessPool, RuntimeError):
            barren_rounds += 1
            if barren_rounds >= 2:
                raise
            close()
            continue
        progressed = 0
        broken = False
        for index, future in zip(missing, futures):
            try:
                outcome, stages = future.result()
            except BrokenProcessPool:
                broken = True
                continue
            outcomes[index] = outcome
            stage_timing.merge(stages)
            progressed += 1
        if not broken:
            continue
        barren_rounds = 0 if progressed else barren_rounds + 1
        if barren_rounds >= 2:
            raise BrokenProcessPool(
                "planner pool died in consecutive rounds without "
                "completing a single shape"
            )
        close()


class SolverService:
    """A persistent pool of planner workers for one (model, config).

    The pool is created lazily on first use and survives across
    ``solve()`` calls (and across batches of a workload), so process
    spawn and model shipping are one-time costs.  Usable standalone as
    a context manager::

        with SolverService(model, config) as service:
            outcomes = service.plan_shapes(shapes)

    Args:
        model: Fitted cost model shipped to each worker once.
        config: Solver knobs (worker count, backend, planner).
    """

    def __init__(self, model: CostModel, config: SolverConfig) -> None:
        self.model = model
        self.config = config
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._finalizer = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                # Ship a pristine copy: per-instance caches (bandwidths,
                # cost tables) rebuild identically in the workers.
                pristine = CostModel(
                    coeffs=self.model.coeffs,
                    cluster=self.model.cluster,
                    comm_model=self.model.comm_model,
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    initializer=_service_initializer,
                    initargs=(
                        pristine,
                        self.config.planner,
                        self.config.backend,
                        faults.active_schedule(),
                    ),
                )
                # GC/exit fallback for callers that never close(): shut
                # the workers down when the service is collected or the
                # interpreter exits, so fire-and-forget solvers don't
                # leak worker processes.
                self._finalizer = pools.track_pool(self, self._pool)
            return self._pool

    def plan_shapes(
        self, shapes: list[tuple[int, ...]]
    ) -> list[tuple[MicroBatchPlan, float] | None]:
        """Plan every shape, dispatching at micro-batch granularity.

        A dead worker poisons a ``ProcessPoolExecutor`` permanently
        (every later submit raises ``BrokenProcessPool``), and a
        concurrent ``close()`` can shut the pool down mid-submit
        (``RuntimeError: cannot schedule new futures``) — in either
        case the pool is rebuilt and only the **still-missing** shapes
        are resubmitted (see :func:`_plan_resumable`): outcomes
        already collected before the death survive, so a mid-batch
        crash never replans completed work.  Worker exceptions are
        genuine and propagate without retry.
        """

        def _submit(indices: list[int]) -> list:
            pool = self._ensure_pool()
            return [pool.submit(_service_plan, shapes[i]) for i in indices]

        return _plan_resumable(_submit, self.close, len(shapes))

    def close(self) -> None:
        """Shut the pool down (the next use restarts it lazily)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            finalizer, self._finalizer = self._finalizer, None
        if pool is not None:
            pool.shutdown()
        if finalizer is not None:
            # Invoking (not detaching) also retires the pool from the
            # exit registry; weakref.finalize runs at most once.
            finalizer()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Shared multi-tenant solver pool.  One ProcessPoolExecutor serves every
# (model, config) context of a sweep: tasks carry the context as a
# pre-pickled blob plus its digest, and each worker memoises the
# unpickled context by digest — so the model is deserialized once per
# (worker, context) rather than shipped through an initializer that
# would pin the pool to a single workload.
# ---------------------------------------------------------------------------

_POOL_CONTEXTS: dict[str, tuple[CostModel, PlannerConfig, str]] = {}


def _pool_initializer(fault_schedule=None) -> None:
    """Arm the parent's fault schedule (chaos runs only) in a shared-
    pool worker and visit the spawn injection point."""
    faults.arm(fault_schedule)
    faults.maybe_inject("spawn")


def _pool_plan(
    digest: str, blob: bytes, shape: tuple[int, ...]
) -> tuple[tuple[MicroBatchPlan, float] | None, dict[str, float]]:
    """Plan one micro-batch for one tenant context; ships the outcome
    (None if infeasible) plus the planner's stage timings."""
    state = _POOL_CONTEXTS.get(digest)
    if state is None:
        state = pickle.loads(blob)
        _POOL_CONTEXTS[digest] = state
        # Pre-build the vectorized cost table so every later task of
        # this context reuses it.
        cost_table(state[0])
    model, planner_config, backend = state
    faults.maybe_inject("plan")
    with stage_timing.collect() as stages:
        try:
            outcome = _BACKENDS[backend](shape, model, planner_config)
        except PlanInfeasibleError:
            outcome = None
    return outcome, stages


class PooledPlanner:
    """One tenant's :class:`SolverService`-compatible view of a
    :class:`SolverPool`.

    ``plan_shapes`` matches :meth:`SolverService.plan_shapes`, so a
    :class:`FlexSPSolver` accepts either as its injected service.
    ``close()`` is a no-op — the pool belongs to the
    :class:`SolverPool`, which many solvers share.
    """

    __slots__ = ("pool", "digest", "_blob")

    def __init__(self, pool: "SolverPool", digest: str, blob: bytes) -> None:
        self.pool = pool
        self.digest = digest
        self._blob = blob

    def plan_shapes(
        self, shapes: list[tuple[int, ...]]
    ) -> list[tuple[MicroBatchPlan, float] | None]:
        return self.pool.plan_shapes(self.digest, self._blob, shapes)

    def close(self) -> None:  # pragma: no cover - trivial
        """No-op: the shared pool outlives any one tenant."""


class SolverPool:
    """A persistent planner-worker pool shared across workloads.

    Where :class:`SolverService` dedicates a pool to one
    (model, config) pair, a ``SolverPool`` multiplexes every workload
    of a sweep over a single ``ProcessPoolExecutor`` — the ROADMAP's
    "one SolverService pool between the sweep workers and the
    per-workload FlexSPSolvers" item.  Tenants are obtained with
    :meth:`client` and injected into :class:`FlexSPSolver`; planning
    outcomes are bit-identical to in-process planning because the
    workers run the same pure planner functions on an identically
    reconstructed cost model.

    Args:
        workers: Pool width; ``None`` uses the CPU count.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._clients: dict[str, PooledPlanner] = {}
        self._finalizer = None
        self._dispatched = 0

    @property
    def dispatched(self) -> int:
        """Planner tasks shipped to pool workers so far (telemetry for
        the ``--calibrate-workers`` sweep: a combo whose pool never
        receives work is configured too wide)."""
        with self._lock:
            return self._dispatched

    def client(self, model: CostModel, config: SolverConfig) -> PooledPlanner:
        """The (interned) tenant handle for one (model, config) context."""
        # Ship a pristine copy: per-instance caches rebuild identically
        # in the workers (same policy as SolverService).
        pristine = CostModel(
            coeffs=model.coeffs,
            cluster=model.cluster,
            comm_model=model.comm_model,
        )
        blob = pickle.dumps(
            (pristine, config.planner, config.backend),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(blob).hexdigest()
        with self._lock:
            client = self._clients.get(digest)
            if client is None:
                client = PooledPlanner(self, digest, blob)
                self._clients[digest] = client
            return client

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                # The initializer arms the parent's fault schedule in
                # each worker (a no-op outside chaos runs) so the
                # ``plan`` injection point is live pool-side too.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_initializer,
                    initargs=(faults.active_schedule(),),
                )
                self._finalizer = pools.track_pool(self, self._pool)
            return self._pool

    def plan_shapes(
        self, digest: str, blob: bytes, shapes: list[tuple[int, ...]]
    ) -> list[tuple[MicroBatchPlan, float] | None]:
        """Plan every shape for one tenant (same recovery contract as
        :meth:`SolverService.plan_shapes`: a broken or concurrently-
        closed pool is rebuilt and only still-missing shapes are
        resubmitted; worker exceptions propagate)."""

        def _submit(indices: list[int]) -> list:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_pool_plan, digest, blob, shapes[i])
                for i in indices
            ]
            with self._lock:
                self._dispatched += len(futures)
            return futures

        return _plan_resumable(_submit, self.close, len(shapes))

    def close(self) -> None:
        """Shut the shared pool down (the next use restarts it lazily).

        Tenant handles stay valid — worker-side context caches are
        rebuilt from the blobs on the next dispatch.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            finalizer, self._finalizer = self._finalizer, None
        if pool is not None:
            pool.shutdown()
        if finalizer is not None:
            finalizer()  # retires the pool from the exit registry too

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FlexSPSolver:
    """Produces iteration plans for global batches (Fig. 3's solver box).

    The solver owns a cross-call plan cache and (when ``workers > 1``)
    a persistent :class:`SolverService`; both live as long as the
    solver object, so a long-running deployment amortises process
    startup and re-planning across every batch it serves.  A resident
    front-end (:class:`repro.service.PlanService`) keeps one such
    solver per tenant, all planning on one shared :class:`SolverPool`,
    and classifies requests warm/cold with the :meth:`is_warm` /
    :meth:`pending_shapes` probes.

    Args:
        model: Fitted cost model for the target (model, cluster).
        config: Solver knobs; defaults match the paper.
        service: Optional injected planning service — typically a
            :class:`PooledPlanner` tenant of a shared
            :class:`SolverPool`, so many workloads' solvers fan their
            planning onto one pool instead of each nesting its own.
            When provided, it is used whenever a solve has several
            shapes to plan (regardless of ``config.workers``, which
            sizes only solver-*owned* pools) and is **not** closed by
            this solver — its lifetime belongs to the injector.
    """

    def __init__(
        self,
        model: CostModel,
        config: SolverConfig | None = None,
        service: "SolverService | PooledPlanner | None" = None,
    ) -> None:
        self.model = model
        self.config = config or SolverConfig()
        self.cache: PlanCache | None = (
            PlanCache(self.config.plan_cache_capacity)
            if self.config.plan_cache
            else None
        )
        self._context = cache_context(
            model, self.config.planner, self.config.backend
        )
        self._service = service
        self._service_owned = service is None
        # solve() may be called from several threads at once (the
        # pipeline prefetches with a thread pool); the cache locks
        # internally, but lazy service creation and the blast memo
        # need this guard.
        self._service_lock = threading.Lock()
        #: Tiny LRU of blasted trial shapes per batch — pending_shapes
        #: (the prewarm probe) and the following solve() share one DP.
        self._trial_memo: OrderedDict[
            tuple[int, ...],
            tuple[list[int], list[list[tuple[int, ...]] | None]],
        ] = OrderedDict()

    @property
    def context(self):
        """The interned :class:`~repro.core.plan_cache.CacheContext`
        this solver keys its plan cache with.

        Callers seeding the cache externally (the cache store's
        preload) must key entries with *this* object — an equal but
        distinct context would defeat the identity fast path every
        hot-loop lookup relies on.
        """
        return self._context

    def minimum_microbatches(self, batch: SequenceBatch) -> int:
        """``M_min`` for this batch on this cluster (takeaway 1)."""
        capacity = self.model.cluster_token_capacity() * self.config.capacity_safety
        return min_microbatch_count(batch.total_tokens, capacity)

    def _trial_shapes(
        self, batch: SequenceBatch
    ) -> tuple[list[int], list[list[tuple[int, ...]] | None]]:
        """Every trial's micro-batch shapes — one shared balanced-cut
        DP for the whole trial sweep (the layers are count-independent,
        see :func:`~repro.core.blaster.blast_multi`).  ``None`` slots
        mark counts that cannot split the batch.

        Memoised on the batch's lengths (small LRU): the campaign
        prewarmer asks for a batch's shapes via :meth:`pending_shapes`
        and the measurement's :meth:`solve` immediately re-derives the
        same split — the DP is pure, so the repeat is served from the
        memo bit-identically.
        """
        key = batch.lengths
        memo = self._trial_memo
        with self._service_lock:
            cached = memo.get(key)
            if cached is not None:
                memo.move_to_end(key)
                return cached
        m_min = self.minimum_microbatches(batch)
        trials = [
            m
            for m in range(m_min, m_min + self.config.num_trials)
            if m <= len(batch.lengths)
        ]
        if not trials:
            trials = [len(batch.lengths)]
        blasted = blast_multi(batch, trials, sort=self.config.sort_sequences)
        trial_shapes: list[list[tuple[int, ...]] | None] = [
            [mb.lengths for mb in blasted[m]] if m in blasted else None
            for m in trials
        ]
        with self._service_lock:
            memo[key] = (trials, trial_shapes)
            while len(memo) > 16:
                memo.popitem(last=False)
        return trials, trial_shapes

    def pending_shapes(
        self, batch: SequenceBatch | tuple[int, ...]
    ) -> list[tuple[int, ...]]:
        """Canonical micro-batch shapes a :meth:`solve` of ``batch``
        would have to plan from scratch right now.

        The campaign-level cold-batching hook: the sweep runner asks
        every cold cell for its pending shapes up front, dedups them
        across cells *at planner-call granularity*, and dispatches the
        union in sorted-shape order (see ``SweepRunner``).  Pure
        inspection — no planning happens, and the cache is probed
        without touching its hit/miss counters or LRU order, so a
        later ``solve()`` reports the same statistics it would have
        cold.  Returns sorted shapes ((length count, lengths) order —
        the order that maximises MILP skeleton reuse, which is keyed
        on bucket/degree structure).  Without a plan cache there is
        nothing to seed, so the result is empty.
        """
        if self.cache is None:
            return []
        if not isinstance(batch, SequenceBatch):
            batch = SequenceBatch(lengths=tuple(batch))
        __, trial_shapes = self._trial_shapes(batch)
        missing: set[tuple[int, ...]] = set()
        for shapes in trial_shapes:
            if shapes is None:
                continue
            for shape in shapes:
                canonical = canonical_shape(shape)
                if canonical in missing:
                    continue
                if self.cache.peek((canonical, self._context)) is None:
                    missing.add(canonical)
        return sorted(missing, key=lambda s: (len(s), s))

    def is_warm(self, batch: SequenceBatch | tuple[int, ...]) -> bool:
        """Whether a :meth:`solve` of ``batch`` would be answered
        entirely from the plan cache (no planner calls).

        Pure probe, like :meth:`pending_shapes` — no counters move, no
        LRU order changes — so a resident front-end (the plan service)
        can classify a request as warm/cold at admission time without
        perturbing the statistics the eventual solve will report.
        Always False without a plan cache: every solve plans afresh.
        """
        if self.cache is None:
            return False
        return not self.pending_shapes(batch)

    def plan_shapes_cold(
        self, shapes: list[tuple[int, ...]]
    ) -> list[tuple[MicroBatchPlan, float] | None]:
        """Plan ``shapes`` exactly as a solve's cache misses would —
        in-process or on the injected pool/service — without reading
        or writing the plan cache.  Pair with :meth:`seed_plan`."""
        return self._plan_missing(list(shapes))

    def seed_plan(
        self,
        shape: tuple[int, ...],
        outcome: tuple[MicroBatchPlan, float] | None,
    ) -> None:
        """Store one planning outcome (``None`` = infeasible) under
        this solver's interned cache context.  Seeded entries are
        indistinguishable from entries a solve stored itself —
        bit-identical plans, same eviction order semantics."""
        if self.cache is None:
            return
        self.cache.store(
            (canonical_shape(shape), self._context),
            None if outcome is None else outcome[0],
            None if outcome is None else outcome[1],
        )

    def solve(self, batch: SequenceBatch | tuple[int, ...]) -> IterationPlan:
        """Alg. 1: sweep micro-batch counts and return the best plan.

        Raises:
            PlanInfeasibleError: No trial produced a feasible plan —
                e.g. a sequence larger than the whole cluster's memory.
        """
        started = time.perf_counter()
        if not isinstance(batch, SequenceBatch):
            batch = SequenceBatch(lengths=tuple(batch))
        # The stage frame wraps the blaster DP as well as the planner
        # calls so kernel-tier attribution covers both (stage *seconds*
        # themselves only ever come from the planners).
        with stage_timing.collect() as stages:
            trials, trial_shapes = self._trial_shapes(batch)

            # Resolve shapes.  With the cache enabled, shapes are
            # canonicalized and deduplicated (within the solve and
            # against prior solves); with it disabled, every occurrence
            # is planned from scratch — the faithful pre-cache
            # reference path.  Each trial keeps a slot per micro-batch:
            # a cache key when caching, else an index into the planning
            # list.
            resolved: dict[tuple, object] = {}
            to_plan: list[tuple[int, ...]] = []
            trial_slots: list[list[object] | None] = []
            cache_hits = 0
            dedup_hits = 0
            total_microbatches = 0
            for shapes in trial_shapes:
                if shapes is None:
                    trial_slots.append(None)
                    continue
                slots: list[object] = []
                for shape in shapes:
                    total_microbatches += 1
                    if self.cache is None:
                        slots.append(len(to_plan))
                        to_plan.append(shape)
                        continue
                    key = (canonical_shape(shape), self._context)
                    slots.append(key)
                    if key in resolved:
                        dedup_hits += 1
                        continue
                    entry = self.cache.lookup(key)
                    if entry is not None:
                        resolved[key] = entry
                        cache_hits += 1
                        continue
                    resolved[key] = None  # pending
                    to_plan.append(key[0])  # canonical sorted lengths
                trial_slots.append(slots)

            outcomes = self._plan_missing(to_plan)
        entries = [
            INFEASIBLE if outcome is None else outcome for outcome in outcomes
        ]
        if self.cache is not None:
            for shape, outcome, entry in zip(to_plan, outcomes, entries):
                key = (shape, self._context)
                resolved[key] = entry
                self.cache.store(
                    key,
                    None if outcome is None else outcome[0],
                    None if outcome is None else outcome[1],
                )

        best: tuple[float, list[MicroBatchPlan]] | None = None
        for slots in trial_slots:
            if slots is None:
                continue
            total = 0.0
            plans: list[MicroBatchPlan] = []
            for slot in slots:
                entry = entries[slot] if isinstance(slot, int) else resolved[slot]
                if entry is INFEASIBLE:
                    plans = []
                    break
                plan, predicted = entry
                plans.append(plan)
                total += predicted
            if not plans:
                continue
            if best is None or total < best[0]:
                best = (total, plans)

        if best is None:
            raise PlanInfeasibleError(
                f"no feasible plan for batch of {batch.total_tokens} tokens "
                f"with micro-batch counts {trials}"
            )
        total, plans = best
        stats = SolveStats(
            cache_hits=cache_hits,
            dedup_hits=dedup_hits,
            cache_misses=len(to_plan),
            trials=len(trials),
            microbatches=total_microbatches,
            solve_seconds=time.perf_counter() - started,
            **{
                f"{stage}_seconds": stages.get(stage, 0.0)
                for stage in stage_timing.STAGES
            },
            kernel_tiers=kernels.tiers_from_stages(stages),
        )
        return IterationPlan(
            microbatches=tuple(plans),
            predicted_time=total,
            solver_name=f"flexsp-{self.config.backend}",
            stats=stats,
        )

    def _plan_missing(
        self, shapes: list[tuple[int, ...]]
    ) -> list[tuple[MicroBatchPlan, float] | None]:
        """Plan uncached shapes — in-process, or on a service pool."""
        if not shapes:
            return []
        pooled = not self._service_owned or self.config.workers > 1
        if pooled and len(shapes) > 1:
            if not self._service_owned or self.config.persistent_workers:
                return self.service().plan_shapes(shapes)
            # Pre-service behaviour: a throwaway pool per solve.  Local
            # to this call so concurrent solve() threads never tear
            # down a pool another thread is submitting to.
            with SolverService(self.model, self.config) as service:
                return service.plan_shapes(shapes)
        planner = _BACKENDS[self.config.backend]
        outcomes: list[tuple[MicroBatchPlan, float] | None] = []
        for shape in shapes:
            try:
                outcomes.append(planner(shape, self.model, self.config.planner))
            except PlanInfeasibleError:
                outcomes.append(None)
        return outcomes

    def service(self) -> "SolverService | PooledPlanner":
        """The injected service, or the lazily started solver-owned
        persistent :class:`SolverService`."""
        with self._service_lock:
            if self._service is None:
                self._service = SolverService(self.model, self.config)
            return self._service

    def close(self) -> None:
        """Release the worker pool (kept plans/cache remain valid).

        Injected services are left running — they belong to whoever
        shared them (e.g. a sweep's :class:`SolverPool`).
        """
        with self._service_lock:
            if self._service_owned and self._service is not None:
                self._service.close()
                self._service = None

    def __enter__(self) -> "FlexSPSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def ablated(self, **changes) -> "FlexSPSolver":
        """Copy of this solver with config fields replaced.

        Convenience for the Fig. 7 ablations, e.g.
        ``solver.ablated(sort_sequences=False)`` or
        ``solver.ablated(planner=replace(cfg.planner, bucketing="naive"))``.
        An injected shared-pool tenant is re-derived for the new config
        so ablated solvers keep planning on the same :class:`SolverPool`.
        """
        config = replace(self.config, **changes)
        service = None
        if isinstance(self._service, PooledPlanner):
            service = self._service.pool.client(self.model, config)
        return FlexSPSolver(self.model, config, service=service)
