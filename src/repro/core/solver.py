"""FlexSP solver workflow (Alg. 1).

Given a global batch, sweep the micro-batch count from the minimum
feasible ``M_min`` upward over ``M'`` trials; for each count, blast the
batch, plan every micro-batch with the parallelism planner, and keep
the plan whose *total* predicted time is lowest.  Optionally fan the
trials out over a process pool, mirroring the paper's two-level
multi-process solving.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from repro.core.blaster import DEFAULT_NUM_TRIALS, blast, min_microbatch_count
from repro.core.planner import PlanInfeasibleError, PlannerConfig, plan_microbatch
from repro.core.planner_greedy import plan_microbatch_greedy
from repro.core.types import IterationPlan, MicroBatchPlan, SequenceBatch
from repro.cost.model import CostModel

#: Registry of planner backends by name.
_BACKENDS = {
    "milp": plan_microbatch,
    "greedy": plan_microbatch_greedy,
}


@dataclass(frozen=True)
class SolverConfig:
    """Solver knobs.

    Attributes:
        num_trials: Micro-batch-count trials M' (paper default 5).
        backend: ``"milp"`` (the paper's formulation, via HiGHS) or
            ``"greedy"`` (LPT heuristic fallback).
        planner: Per-micro-batch planner configuration.
        sort_sequences: Takeaway-2 sorting in the blaster; False gives
            the Fig. 7 "w/o Sort" ablation.
        workers: Process-pool width for parallel trials (1 = serial).
        capacity_safety: Fraction of the theoretical cluster token
            capacity assumed usable when computing ``M_min``.  The
            default of 1.0 relies on the trial loop to skip counts
            whose micro-batches turn out unplannable; lower it only to
            bias toward more gradient accumulation.
    """

    num_trials: int = DEFAULT_NUM_TRIALS
    backend: str = "milp"
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    sort_sequences: bool = True
    workers: int = 1
    capacity_safety: float = 1.0

    def __post_init__(self) -> None:
        if self.num_trials <= 0:
            raise ValueError(f"num_trials must be positive, got {self.num_trials}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; options: {sorted(_BACKENDS)}"
            )
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if not 0 < self.capacity_safety <= 1:
            raise ValueError(
                f"capacity_safety must be in (0, 1], got {self.capacity_safety}"
            )


def _solve_one_trial(
    batch: SequenceBatch,
    num_microbatches: int,
    model: CostModel,
    config: SolverConfig,
) -> tuple[float, list[MicroBatchPlan]] | None:
    """Plan the whole batch at one micro-batch count; None if infeasible."""
    planner = _BACKENDS[config.backend]
    try:
        microbatches = blast(batch, num_microbatches, sort=config.sort_sequences)
    except ValueError:
        return None
    plans: list[MicroBatchPlan] = []
    total = 0.0
    for mb in microbatches:
        try:
            plan, predicted = planner(mb.lengths, model, config.planner)
        except PlanInfeasibleError:
            return None
        plans.append(plan)
        total += predicted
    return total, plans


class FlexSPSolver:
    """Produces iteration plans for global batches (Fig. 3's solver box).

    Args:
        model: Fitted cost model for the target (model, cluster).
        config: Solver knobs; defaults match the paper.
    """

    def __init__(self, model: CostModel, config: SolverConfig | None = None) -> None:
        self.model = model
        self.config = config or SolverConfig()

    def minimum_microbatches(self, batch: SequenceBatch) -> int:
        """``M_min`` for this batch on this cluster (takeaway 1)."""
        capacity = self.model.cluster_token_capacity() * self.config.capacity_safety
        return min_microbatch_count(batch.total_tokens, capacity)

    def solve(self, batch: SequenceBatch | tuple[int, ...]) -> IterationPlan:
        """Alg. 1: sweep micro-batch counts and return the best plan.

        Raises:
            PlanInfeasibleError: No trial produced a feasible plan —
                e.g. a sequence larger than the whole cluster's memory.
        """
        if not isinstance(batch, SequenceBatch):
            batch = SequenceBatch(lengths=tuple(batch))
        m_min = self.minimum_microbatches(batch)
        trials = [
            m
            for m in range(m_min, m_min + self.config.num_trials)
            if m <= len(batch.lengths)
        ]
        if not trials:
            trials = [len(batch.lengths)]

        if self.config.workers > 1:
            results = self._solve_parallel(batch, trials)
        else:
            results = [
                _solve_one_trial(batch, m, self.model, self.config) for m in trials
            ]

        best: tuple[float, list[MicroBatchPlan]] | None = None
        for outcome in results:
            if outcome is None:
                continue
            if best is None or outcome[0] < best[0]:
                best = outcome
        if best is None:
            raise PlanInfeasibleError(
                f"no feasible plan for batch of {batch.total_tokens} tokens "
                f"with micro-batch counts {trials}"
            )
        total, plans = best
        return IterationPlan(
            microbatches=tuple(plans),
            predicted_time=total,
            solver_name=f"flexsp-{self.config.backend}",
        )

    def _solve_parallel(self, batch: SequenceBatch, trials: list[int]):
        """Two-level multi-process solving (S4.3): one worker per trial."""
        with ProcessPoolExecutor(max_workers=self.config.workers) as pool:
            futures = [
                pool.submit(_solve_one_trial, batch, m, self.model, self.config)
                for m in trials
            ]
            return [f.result() for f in futures]

    def ablated(self, **changes) -> "FlexSPSolver":
        """Copy of this solver with config fields replaced.

        Convenience for the Fig. 7 ablations, e.g.
        ``solver.ablated(sort_sequences=False)`` or
        ``solver.ablated(planner=replace(cfg.planner, bucketing="naive"))``.
        """
        return FlexSPSolver(self.model, replace(self.config, **changes))
