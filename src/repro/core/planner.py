"""Parallelism planner: the MILP of S4.1 (Eqs. 17-22).

Given one micro-batch's sequences, the planner decides (1) how many SP
groups to form, (2) each group's degree, and (3) how many sequences of
each bucket go to each group, minimising the makespan ``C`` — the
maximum of the groups' Eq. 14 execution times — subject to per-device
memory (Eq. 19), the cluster device budget (Eq. 20), selection linking
(Eq. 21) and assignment completeness (Eq. 22).

The decision variables are the binary group-selection vector ``m`` over
*virtual groups* (one per possible group of each power-of-two degree)
and the integer assignment matrix ``A_hat[q][p]`` counting bucket-``q``
sequences routed to group ``p``.  The paper solves the MILP with SCIP;
we use scipy's HiGHS backend, with identical formulation plus
symmetry-breaking order constraints over same-degree groups.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core import stage_timing
from repro.core.bucketing import DEFAULT_NUM_BUCKETS, Bucket, bucket_sequences
from repro.core.types import GroupAssignment, MicroBatchPlan
from repro.cost.model import CostModel, CostTable, cost_table


#: Re-entrancy/ref count of :func:`_quiet_stdout` with the saved
#: descriptors of the *outermost* entry.  Descriptors 1/2 are
#: process-wide, so the silencer refcounts across nested *and
#: concurrent* uses (the pipeline solves from a thread pool): the
#: first entrant redirects, the last exiter restores.
_QUIET_LOCK = threading.Lock()
_QUIET_DEPTH = 0
_QUIET_SAVED: list[tuple[int, int]] = []


@contextlib.contextmanager
def _quiet_stdout():
    """Silence HiGHS's unconditional C++ diagnostics during a solve.

    HiGHS prints branch-and-bound internals straight to file descriptor
    1 and warnings (e.g. time-limit notices) to descriptor 2, bypassing
    ``sys.stdout``/``sys.stderr``; both descriptors are redirected to
    the null device for the duration.  Re-entrant and thread-safe:
    nested or concurrent entries share one redirection, and only the
    final exit restores the original descriptors.  Streams without a
    usable descriptor are skipped individually.
    """
    global _QUIET_DEPTH
    with _QUIET_LOCK:
        _QUIET_DEPTH += 1
        if _QUIET_DEPTH == 1:
            _redirect_to_devnull()
    try:
        yield
    finally:
        with _QUIET_LOCK:
            _QUIET_DEPTH -= 1
            if _QUIET_DEPTH == 0:
                for fd, saved in _QUIET_SAVED:
                    os.dup2(saved, fd)
                    os.close(saved)
                _QUIET_SAVED.clear()


def _redirect_to_devnull() -> None:
    """Point descriptors 1/2 at the null device, stashing duplicates
    in ``_QUIET_SAVED``.  On any failure (e.g. fd exhaustion) the
    partial redirect is rolled back and the solve proceeds unsilenced
    — never raising, never leaking descriptors or depth state.
    """
    for stream in (sys.stdout, sys.stderr):
        try:
            stream.flush()
        except (OSError, ValueError, AttributeError):
            pass
    saved: list[tuple[int, int]] = []
    try:
        # HiGHS writes through the C runtime's stdout/stderr, i.e. the
        # process-level descriptors — not the sys.std* objects (which
        # pytest may have swapped for pipe-less buffers).
        for fd in (1, 2):
            try:
                saved.append((fd, os.dup(fd)))
            except OSError:
                continue
        if saved:
            with open(os.devnull, "w") as devnull:
                for fd, __ in saved:
                    os.dup2(devnull.fileno(), fd)
    except OSError:
        for fd, dup in saved:
            try:
                os.dup2(dup, fd)
                os.close(dup)
            except OSError:
                pass
        return
    _QUIET_SAVED.extend(saved)


class PlanInfeasibleError(Exception):
    """The micro-batch cannot be scheduled within the memory budget."""


@dataclass(frozen=True)
class PlannerConfig:
    """Planner knobs.

    Attributes:
        num_buckets: Bucket count Q (paper default 16).
        bucketing: ``"optimal"`` (DP) or ``"naive"`` (fixed intervals)
            or ``"none"`` (one bucket per unique length; the Fig. 7
            "w/o BKT" ablation).
        time_limit: HiGHS wall-clock limit in seconds per solve.
            Wall-clock budgets make MILP outcomes host-load dependent;
            see ``node_limit`` for the deterministic alternative.
        node_limit: Deterministic work limit — cap HiGHS's
            branch-and-bound at this many nodes *instead of* the
            wall-clock ``time_limit`` (which is ignored while set).
            The same problem then explores the same tree on any host,
            so MILP-backed cells satisfy the sweeps' bit-identical
            contract; ``None`` (the default) keeps the wall-clock
            budget.
        mip_rel_gap: Acceptable relative optimality gap.
        max_groups_per_degree: Cap on virtual groups per degree (None
            means the natural ``N / d``).
        min_degree: Smallest candidate SP degree (1 in the paper).
        greedy_incumbent: Prime branch-and-bound with the greedy LPT
            plan's makespan as a cutoff on ``C`` and return whichever
            of the two plans predicts faster.  This plays the role of
            SCIP's primal heuristics in the paper's setup; disabling it
            exposes raw HiGHS behaviour.
    """

    num_buckets: int = DEFAULT_NUM_BUCKETS
    bucketing: str = "optimal"
    time_limit: float = 2.0
    node_limit: int | None = None
    mip_rel_gap: float = 0.03
    max_groups_per_degree: int | None = None
    min_degree: int = 1
    greedy_incumbent: bool = True

    def __post_init__(self) -> None:
        if self.bucketing not in ("optimal", "naive", "none"):
            raise ValueError(f"unknown bucketing mode: {self.bucketing!r}")
        if self.time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {self.time_limit}")
        if self.node_limit is not None and self.node_limit <= 0:
            raise ValueError(
                f"node_limit must be positive or None, got {self.node_limit}"
            )
        if not 0 <= self.mip_rel_gap < 1:
            raise ValueError(f"mip_rel_gap must be in [0, 1), got {self.mip_rel_gap}")
        if self.min_degree <= 0 or self.min_degree & (self.min_degree - 1):
            raise ValueError(f"min_degree must be a power of two, got {self.min_degree}")


@dataclass(frozen=True)
class VirtualGroup:
    """One candidate SP group in the MILP."""

    degree: int
    index_within_degree: int


def _make_buckets(lengths: tuple[int, ...], config: PlannerConfig) -> list[Bucket]:
    if config.bucketing == "none":
        # One bucket per unique length: zero bucketing error, but the
        # MILP grows with the number of distinct lengths (the ablation
        # shows the solver then struggles within its time budget).
        return bucket_sequences(lengths, num_buckets=len(set(lengths)), method="optimal")
    return bucket_sequences(lengths, config.num_buckets, method=config.bucketing)


def enumerate_virtual_groups(
    model: CostModel, lengths: tuple[int, ...], config: PlannerConfig
) -> list[VirtualGroup]:
    """Candidate groups: every degree that could serve some sequence.

    Degrees below the smallest that fits the *shortest* sequence are
    useless and pruned; the upper end is the cluster size.  For each
    degree ``d`` there are up to ``N / d`` simultaneous groups.
    """
    num_gpus = model.cluster.num_gpus
    shortest = min(lengths)
    groups: list[VirtualGroup] = []
    degree = config.min_degree
    while degree <= num_gpus:
        if model.fits([shortest], degree):
            count = num_gpus // degree
            if config.max_groups_per_degree is not None:
                count = min(count, config.max_groups_per_degree)
            for i in range(count):
                groups.append(VirtualGroup(degree=degree, index_within_degree=i))
        degree *= 2
    if not groups:
        raise PlanInfeasibleError(
            f"no SP degree up to {num_gpus} fits even a {shortest}-token sequence"
        )
    return groups


def _check_feasibility(
    model: CostModel, buckets: list[Bucket], groups: list[VirtualGroup]
) -> None:
    """Fast necessary-condition checks before invoking the MILP."""
    max_degree = max(g.degree for g in groups)
    longest = max(b.upper for b in buckets)
    if not model.fits([longest], max_degree):
        raise PlanInfeasibleError(
            f"a {longest}-token sequence exceeds device memory even at "
            f"SP={max_degree}"
        )
    total_tokens = sum(sum(b.lengths) for b in buckets)
    if total_tokens > model.cluster_token_capacity():
        raise PlanInfeasibleError(
            f"micro-batch holds {total_tokens} tokens but the cluster fits "
            f"only {model.cluster_token_capacity():.0f}; blast further"
        )


class _MilpSkeleton:
    """The structure of one MILP instance class, assembled once.

    Micro-batches of one workload overwhelmingly share their problem
    *structure* — the bucket count Q and the virtual-group degree list
    — and differ only in the bucket uppers/counts.  Everything that
    depends on structure alone is built here and cached on the model's
    :class:`~repro.cost.model.CostTable`
    (:attr:`~repro.cost.model.CostTable.milp_skeletons`): the
    constraint rows/columns, the CSC scaffolding (sort permutation,
    index and pointer arrays), the length-independent coefficient
    segments, and the bound templates.  Per solve only the
    length-dependent value blocks are recomputed (:meth:`values`) and
    scattered through the cached permutation — HiGHS receives a
    matrix bit-for-bit equal to the original COO assembly (asserted
    duplicate-free at build time, so COO's duplicate-summing pass is
    provably a no-op).

    Variable layout: ``x = [m_0..m_{P-1} | A_{0,0}..A_{Q-1,P-1} | C]``
    with A in bucket-major order.
    """

    def __init__(self, table: CostTable, num_buckets: int, degrees: tuple[int, ...]):
        num_groups = len(degrees)
        self.num_buckets = num_buckets
        self.num_groups = num_groups
        self.num_vars = num_groups + num_buckets * num_groups + 1
        self.c_index = self.num_vars - 1
        self.degrees = degrees
        self.degree_arr = np.asarray(degrees, dtype=np.float64)
        degree_idx = np.asarray(
            [table.degree_index[d] for d in degrees], dtype=np.intp
        )
        #: Distinct degrees and each group's index into them — the
        #: Eq. 18 coefficients are computed once per distinct degree
        #: per solve and fanned out through this.
        self.distinct_degrees = sorted(set(degrees))
        position = {d: i for i, d in enumerate(self.distinct_degrees)}
        self.distinct_inverse = np.asarray(
            [position[d] for d in degrees], dtype=np.intp
        )
        self.cpt = table.comm_per_token[degree_idx]
        self.comm_beta = table.comm_beta[degree_idx]
        self.caps = table.token_caps[degree_idx]
        self.gather = table.gather
        self.exposed_gather = table.exposed_gather
        self.beta1 = table.beta1

        a_cols = num_groups + np.arange(num_buckets, dtype=np.intp) * num_groups
        all_p = np.arange(num_groups, dtype=np.intp)
        self._a_cols = a_cols

        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []

        def add_block(rows, cols) -> None:
            rows_parts.append(np.asarray(rows, dtype=np.intp))
            cols_parts.append(np.asarray(cols, dtype=np.intp))

        # (18) Time: the per-group time including the exposed ZeRO-3
        # gather is max of two linear branches (see CostModel
        # .time_with_overheads), so each group contributes two
        # "branch <= C" constraints.  Block emission ORDER here must
        # match the value emission order in :meth:`values` exactly.
        rows_per_group = 2 if self.gather > 0 else 1
        r1 = np.arange(num_groups, dtype=np.intp) * rows_per_group
        a_col_matrix = a_cols[None, :] + all_p[:, None]  # (P, Q)
        # Branch 1: compute-bound — comp + comm + (1-ov)*gather <= C.
        add_block(np.repeat(r1, num_buckets), a_col_matrix.ravel())
        add_block(r1, all_p)
        add_block(r1, np.full(num_groups, self.c_index))
        self.branch1_static = self.beta1 + self.comm_beta + self.exposed_gather
        time_rows = num_groups * rows_per_group
        self.communicating = self.degree_arr > 1
        if self.gather > 0:
            # Branch 2: gather-bound — comm + gather <= C.
            r2 = r1 + 1
            if np.any(self.communicating):
                add_block(
                    np.repeat(r2[self.communicating], num_buckets),
                    a_col_matrix[self.communicating].ravel(),
                )
            add_block(r2, all_p)
            add_block(r2, np.full(num_groups, self.c_index))
            self.branch2_static = self.comm_beta + self.gather

        # (19)+(21) Memory and linking: sum_q s_q A_{q,p} <= cap_d m_p.
        mem_rows = time_rows + all_p
        add_block(np.repeat(mem_rows, num_buckets), a_col_matrix.ravel())
        add_block(mem_rows, all_p)

        # (20) Device budget: sum_p d_p m_p <= N.
        self.budget_row = time_rows + num_groups
        add_block(np.full(num_groups, self.budget_row), all_p)

        # (22) Completeness: sum_p A_{q,p} = b_q.
        self.comp_rows = self.budget_row + 1 + np.arange(
            num_buckets, dtype=np.intp
        )
        add_block(
            np.repeat(self.comp_rows, num_groups),
            (a_cols[:, None] + all_p[None, :]).ravel(),
        )

        # Symmetry breaking: same-degree groups are interchangeable,
        # so order them by selection then by assigned token load.
        by_degree: dict[int, list[int]] = {}
        for p, d in enumerate(degrees):
            by_degree.setdefault(d, []).append(p)
        row = self.budget_row + 1 + num_buckets
        num_pairs = 0
        for members in by_degree.values():
            for p_a, p_b in zip(members, members[1:]):
                add_block([row, row], [p_a, p_b])
                row += 1
                add_block(
                    np.full(2 * num_buckets, row),
                    np.concatenate((a_cols + p_a, a_cols + p_b)),
                )
                row += 1
                num_pairs += 1
        self.num_rows = row
        self.num_pairs = num_pairs

        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
        # CSC scaffolding: column-major sort computed once.  The
        # original assembly went through COO (which sums duplicate
        # entries); proving there are none makes the cached scatter
        # bit-identical to it.
        self.perm = np.lexsort((rows, cols))
        sorted_rows = rows[self.perm]
        sorted_cols = cols[self.perm]
        flat = sorted_cols * np.intp(self.num_rows) + sorted_rows
        if np.any(flat[1:] == flat[:-1]):  # pragma: no cover - structural
            raise AssertionError("duplicate (row, col) in MILP assembly")
        self.indices = sorted_rows
        self.indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(cols, minlength=self.num_vars)))
        ).astype(np.intp)

        # Constraint-bound templates (counts filled per solve).
        self.lower_template = np.full(self.num_rows, -np.inf)
        self.upper_template = np.zeros(self.num_rows)
        # Static variable metadata.
        objective = np.zeros(self.num_vars)
        objective[self.c_index] = 1.0
        self.objective = objective
        integrality = np.ones(self.num_vars)
        integrality[self.c_index] = 0
        self.integrality = integrality

    def a_index(self, q: int, p: int) -> int:
        return self.num_groups + q * self.num_groups + p

    def distinct_time_coefficients(
        self, table: CostTable, uppers: np.ndarray
    ) -> np.ndarray:
        """Eq. 18 coefficients per *distinct* degree, ``(D, Q)`` — the
        one per-solve kernel evaluation, shared by the matrix values
        and the incumbent lower bound."""
        return np.stack(
            [
                table.milp_time_coefficients(uppers, d)
                for d in self.distinct_degrees
            ]
        )

    def values(
        self,
        table: CostTable,
        uppers: np.ndarray,
        w_distinct: np.ndarray | None = None,
    ) -> np.ndarray:
        """The length-dependent value vector, in block-emission order."""
        if w_distinct is None:
            w_distinct = self.distinct_time_coefficients(table, uppers)
        num_groups = self.num_groups
        parts: list[np.ndarray] = [
            w_distinct[self.distinct_inverse].ravel(),
            self.branch1_static,
            np.full(num_groups, -1.0),
        ]
        if self.gather > 0:
            if np.any(self.communicating):
                parts.append(
                    (self.cpt[self.communicating, None] * uppers[None, :]).ravel()
                )
            parts.append(self.branch2_static)
            parts.append(np.full(num_groups, -1.0))
        parts.append(
            np.broadcast_to(uppers, (num_groups, self.num_buckets)).ravel()
        )
        parts.append(-self.caps)
        parts.append(self.degree_arr)
        parts.append(np.ones(self.num_buckets * num_groups))
        if self.num_pairs:
            pair_template = np.concatenate(([-1.0, 1.0], -uppers, uppers))
            parts.append(np.tile(pair_template, self.num_pairs))
        return np.concatenate(parts)

    def matrix(
        self,
        table: CostTable,
        uppers: np.ndarray,
        w_distinct: np.ndarray | None = None,
    ) -> sparse.csc_array:
        data = self.values(table, uppers, w_distinct)[self.perm]
        return sparse.csc_array(
            (data, self.indices, self.indptr),
            shape=(self.num_rows, self.num_vars),
            dtype=np.float64,
        )

#: Retained MILP skeletons per cost table.  Structures recur heavily
#: within a workload (same Q, similar degree universes) but the key
#: space is open-ended across diverse batches, so the cache is
#: LRU-capped — a long-running solver deployment cannot grow a
#: worker's RSS without bound.
_SKELETON_CAPACITY = 64

#: Guards every table's skeleton LRU: solve() is documented as
#: callable from several threads (the pipeline's prefetch pool), and
#: an unlocked move_to_end racing an eviction would KeyError.  One
#: process-wide lock suffices — the guarded section is a dict probe,
#: never a skeleton build.
_SKELETON_LOCK = threading.Lock()


def _skeleton(
    table: CostTable, num_buckets: int, degrees: tuple[int, ...]
) -> _MilpSkeleton:
    key = (num_buckets, degrees)
    skeletons = table.milp_skeletons
    with _SKELETON_LOCK:
        skeleton = skeletons.get(key)
        if skeleton is not None:
            skeletons.move_to_end(key)
            return skeleton
    # Built outside the lock: assembly is the expensive part, and two
    # threads racing to build the same structure both produce
    # equivalent immutable skeletons (last insert wins).
    skeleton = _MilpSkeleton(table, num_buckets, degrees)
    with _SKELETON_LOCK:
        existing = skeletons.get(key)
        if existing is not None:
            skeletons.move_to_end(key)
            return existing
        skeletons[key] = skeleton
        while len(skeletons) > _SKELETON_CAPACITY:
            skeletons.popitem(last=False)
    return skeleton


def _incumbent_lower_bound(
    skeleton: _MilpSkeleton,
    table: CostTable,
    uppers: np.ndarray,
    w_distinct: np.ndarray,
) -> float:
    """A valid lower bound on the optimal makespan ``C``.

    Every occupied bucket's members must land in *some* group of some
    candidate degree, whose branch rows then dominate a single
    member's own coefficients (all Eq. 18 terms are non-negative):
    ``C >= max_q min_d branch_time(d, q)``.  Installing the bound
    tightens branch-and-bound without excluding any feasible solution.
    ``w_distinct`` is the ``(D, Q)`` coefficient stack the matrix
    assembly computes anyway — shared, not recomputed.
    """
    distinct_idx = np.asarray(
        [table.degree_index[d] for d in skeleton.distinct_degrees],
        dtype=np.intp,
    )
    cpt = table.comm_per_token[distinct_idx][:, None]
    comm_beta = table.comm_beta[distinct_idx][:, None]
    branch1 = w_distinct + (table.beta1 + table.exposed_gather) + comm_beta
    if table.gather > 0:
        branch2 = cpt * uppers[None, :] + comm_beta + table.gather
        per_degree = np.maximum(branch1, branch2)
    else:
        per_degree = branch1
    per_bucket = per_degree.min(axis=0)
    # Buckets are built from the batch itself, so every bucket holds
    # at least one member.
    return float(per_bucket.max())


def _incumbent_cutoff(
    plan: MicroBatchPlan,
    buckets: list[Bucket],
    table: CostTable,
    universe: list[VirtualGroup],
) -> float | None:
    """The greedy plan's makespan *priced at bucket uppers*, when that
    plan is a feasible MILP solution — then a valid upper bound on the
    optimal ``C`` (HiGHS's objective cutoff), usually far tighter than
    the actual-length makespan plus bucketing slack.

    Returns None when the greedy assignment falls outside the MILP's
    feasible region — a degree the virtual-group ``universe`` does not
    carry (or not often enough), or a group whose bucket-priced tokens
    exceed its memory cap — since pricing an infeasible assignment
    would risk cutting the true optimum off.  Feasibility is checked
    against the *actual* universe the MILP is built from, so the check
    can never drift from ``enumerate_virtual_groups``'s membership
    rules.
    """
    upper_of: dict[int, float] = {}
    for bucket in buckets:
        for s in set(bucket.lengths):
            upper_of[s] = float(bucket.upper)
    available: dict[int, int] = {}
    for group in universe:
        available[group.degree] = available.get(group.degree, 0) + 1
    count_by_degree: dict[int, int] = {}
    for g in plan.groups:
        count_by_degree[g.degree] = count_by_degree.get(g.degree, 0) + 1
    for degree, count in count_by_degree.items():
        if count > available.get(degree, 0):
            return None
    worst = 0.0
    for g in plan.groups:
        idx = table.degree_index[g.degree]
        priced = np.asarray([upper_of[s] for s in g.lengths], dtype=np.float64)
        tokens = float(priced.sum())
        if tokens > table.token_caps[idx]:
            return None  # Eq. 19 violated at bucket uppers
        w_sum = float(table.milp_time_coefficients(priced, g.degree).sum())
        branch = w_sum + table.beta1 + table.comm_beta[idx] + table.exposed_gather
        if table.gather > 0:
            gather_bound = (
                table.comm_per_token[idx] * tokens
                + table.comm_beta[idx]
                + table.gather
            )
            branch = max(branch, gather_bound)
        worst = max(worst, branch)
    return worst


def _build_and_solve(
    model: CostModel,
    buckets: list[Bucket],
    groups: list[VirtualGroup],
    config: PlannerConfig,
    c_upper: float = np.inf,
    bound_objective: bool = False,
):
    """Assemble the sparse MILP (via the cached skeleton) and run HiGHS.

    The Eq. 18 time coefficients come from the vectorized
    :class:`repro.cost.model.CostTable` (one elementwise kernel per
    *distinct* degree); the constraint structure, CSC scaffolding and
    length-independent segments come from the
    :class:`_MilpSkeleton` shared by every micro-batch with the same
    (bucket count, degree list).  Every coefficient value and the row
    ordering are identical to the original from-scratch COO assembly,
    so HiGHS receives a bit-for-bit equal problem.
    """
    build_started = time.perf_counter()
    table = cost_table(model)
    if table.activation_budget <= 0:
        raise PlanInfeasibleError("model states alone exceed device memory")
    num_buckets = len(buckets)
    degrees = tuple(g.degree for g in groups)
    skeleton = _skeleton(table, num_buckets, degrees)
    uppers = np.asarray([b.upper for b in buckets], dtype=np.float64)
    counts = np.asarray([b.count for b in buckets], dtype=np.float64)

    w_distinct = skeleton.distinct_time_coefficients(table, uppers)
    c_lower = (
        _incumbent_lower_bound(skeleton, table, uppers, w_distinct)
        if bound_objective
        else 0.0
    )
    matrix = skeleton.matrix(table, uppers, w_distinct)
    lower = skeleton.lower_template.copy()
    upper = skeleton.upper_template.copy()
    upper[skeleton.budget_row] = float(model.cluster.num_gpus)
    lower[skeleton.comp_rows] = counts
    upper[skeleton.comp_rows] = counts
    constraints = LinearConstraint(matrix, lower, upper)

    num_groups = skeleton.num_groups
    c_index = skeleton.c_index
    var_lower = np.zeros(skeleton.num_vars)
    var_lower[c_index] = min(c_lower, c_upper)
    var_upper = np.empty(skeleton.num_vars)
    var_upper[:num_groups] = 1.0
    var_upper[num_groups:c_index] = np.repeat(counts, num_groups)
    var_upper[c_index] = c_upper

    # Budget: a node_limit is deterministic (same problem, same tree on
    # any host) and therefore replaces — not complements — the
    # wall-clock limit, which would otherwise re-introduce host-load
    # dependence into the outcome.
    options = {"mip_rel_gap": config.mip_rel_gap, "presolve": True}
    if config.node_limit is not None:
        options["node_limit"] = config.node_limit
    else:
        options["time_limit"] = config.time_limit
    stage_timing.add("milp_build", time.perf_counter() - build_started)
    solve_started = time.perf_counter()
    with _quiet_stdout():
        result = milp(
            c=skeleton.objective,
            constraints=constraints,
            integrality=skeleton.integrality,
            bounds=Bounds(var_lower, var_upper),
            options=options,
        )
    stage_timing.add("milp_solve", time.perf_counter() - solve_started)
    return result, skeleton.a_index, c_index


def _extract_plan(
    model: CostModel,
    buckets: list[Bucket],
    groups: list[VirtualGroup],
    solution: np.ndarray,
    a_index,
) -> MicroBatchPlan:
    """Turn MILP variable values into a concrete MicroBatchPlan.

    Bucket members are mapped back to groups longest-first into the
    highest-degree groups, which only tightens memory relative to the
    planner's upper-limit approximation.
    """
    num_groups = len(groups)
    selected = [p for p in range(num_groups) if solution[p] > 0.5]
    assignment_counts: dict[int, list[int]] = {
        p: [int(round(solution[a_index(q, p)])) for q in range(len(buckets))]
        for p in selected
    }
    # Keep only groups that actually received work.
    active = [p for p in selected if sum(assignment_counts[p]) > 0]
    if not active:
        raise PlanInfeasibleError("MILP returned a plan with no active groups")
    # Highest degrees first: deterministic device placement with
    # power-of-two alignment preserved.
    active.sort(key=lambda p: -groups[p].degree)

    per_group_lengths: dict[int, list[int]] = {p: [] for p in active}
    for q, bucket in enumerate(buckets):
        members = sorted(bucket.lengths, reverse=True)
        cursor = 0
        for p in active:
            take = assignment_counts[p][q]
            per_group_lengths[p].extend(members[cursor : cursor + take])
            cursor += take
        if cursor != len(members):
            raise AssertionError(
                f"bucket {q}: assigned {cursor} of {len(members)} sequences"
            )

    assignments = []
    offset = 0
    for p in active:
        degree = groups[p].degree
        ranks = tuple(range(offset, offset + degree))
        offset += degree
        assignments.append(
            GroupAssignment(
                degree=degree,
                device_ranks=ranks,
                lengths=tuple(sorted(per_group_lengths[p], reverse=True)),
            )
        )
    return MicroBatchPlan(groups=tuple(assignments))


def plan_makespan(model: CostModel, plan: MicroBatchPlan) -> float:
    """A plan's predicted makespan on *actual* (unbucketed) lengths.

    Includes the exposed ZeRO-3 gather so that micro-batch-count
    choices in the solver loop see the true per-micro-batch cost.
    """
    return max(model.time_with_overheads(g.lengths, g.degree) for g in plan.groups)


def plan_microbatch(
    lengths: tuple[int, ...] | list[int],
    model: CostModel,
    config: PlannerConfig | None = None,
) -> tuple[MicroBatchPlan, float]:
    """Solve the S4.1 MILP for one micro-batch.

    With ``greedy_incumbent`` enabled (default), the greedy LPT plan is
    computed first and its makespan installed as an upper bound on the
    MILP's objective — branch-and-bound then only explores strictly
    better regions, and the better of the two plans is returned.  Both
    candidates are compared on their actual-length makespans, so the
    bucketing approximation never inflates the reported prediction.

    Args:
        lengths: The micro-batch's sequence lengths.
        model: Fitted cost model for the (model, cluster) pair.
        config: Planner knobs; defaults match the paper.

    Returns:
        The best plan found and its predicted makespan in seconds.

    Raises:
        PlanInfeasibleError: No feasible grouping exists (the caller —
            the solver loop — should retry with more micro-batches).
    """
    # Imported here: planner_greedy imports this module's exception and
    # config types, so a module-level import would be circular.
    from repro.core.planner_greedy import plan_microbatch_greedy

    config = config or PlannerConfig()
    lengths = tuple(int(s) for s in lengths)
    if not lengths:
        raise ValueError("cannot plan an empty micro-batch")
    enum_started = time.perf_counter()
    buckets = _make_buckets(lengths, config)
    groups = enumerate_virtual_groups(model, lengths, config)
    _check_feasibility(model, buckets, groups)
    stage_timing.add("enumerate", time.perf_counter() - enum_started)

    incumbent: tuple[MicroBatchPlan, float] | None = None
    c_upper = np.inf
    if config.greedy_incumbent:
        table = cost_table(model)
        try:
            greedy_plan, greedy_pred = plan_microbatch_greedy(lengths, model)
            incumbent = (greedy_plan, greedy_pred)
            # The MILP prices buckets at their upper limits, so allow
            # the cutoff a little slack over the actual-length
            # makespan — and tighten it to the incumbent's own
            # bucket-priced makespan whenever the greedy assignment is
            # MILP-feasible (a genuine solution, so a valid cutoff).
            c_upper = greedy_pred * 1.05
            priced = _incumbent_cutoff(greedy_plan, buckets, table, groups)
            if priced is not None:
                c_upper = min(c_upper, priced)
        except PlanInfeasibleError:
            incumbent = None

    # The C lower bound is valid with or without an incumbent, but
    # gated on the same knob: disabling greedy_incumbent documents
    # itself as exposing raw HiGHS behaviour.
    result, a_index, c_index = _build_and_solve(
        model,
        buckets,
        groups,
        config,
        c_upper=c_upper,
        bound_objective=config.greedy_incumbent,
    )
    if result.x is None:
        if incumbent is not None:
            return incumbent
        raise PlanInfeasibleError(
            f"MILP solver found no feasible plan (status={result.status}: "
            f"{result.message})"
        )
    plan = _extract_plan(model, buckets, groups, result.x, a_index)
    predicted = plan_makespan(model, plan)
    if incumbent is not None and incumbent[1] <= predicted:
        return incumbent
    return plan, predicted
