"""Parallelism planner: the MILP of S4.1 (Eqs. 17-22).

Given one micro-batch's sequences, the planner decides (1) how many SP
groups to form, (2) each group's degree, and (3) how many sequences of
each bucket go to each group, minimising the makespan ``C`` — the
maximum of the groups' Eq. 14 execution times — subject to per-device
memory (Eq. 19), the cluster device budget (Eq. 20), selection linking
(Eq. 21) and assignment completeness (Eq. 22).

The decision variables are the binary group-selection vector ``m`` over
*virtual groups* (one per possible group of each power-of-two degree)
and the integer assignment matrix ``A_hat[q][p]`` counting bucket-``q``
sequences routed to group ``p``.  The paper solves the MILP with SCIP;
we use scipy's HiGHS backend, with identical formulation plus
symmetry-breaking order constraints over same-degree groups.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.bucketing import DEFAULT_NUM_BUCKETS, Bucket, bucket_sequences
from repro.core.types import GroupAssignment, MicroBatchPlan
from repro.cost.model import CostModel, cost_table


#: Re-entrancy/ref count of :func:`_quiet_stdout` with the saved
#: descriptors of the *outermost* entry.  Descriptors 1/2 are
#: process-wide, so the silencer refcounts across nested *and
#: concurrent* uses (the pipeline solves from a thread pool): the
#: first entrant redirects, the last exiter restores.
_QUIET_LOCK = threading.Lock()
_QUIET_DEPTH = 0
_QUIET_SAVED: list[tuple[int, int]] = []


@contextlib.contextmanager
def _quiet_stdout():
    """Silence HiGHS's unconditional C++ diagnostics during a solve.

    HiGHS prints branch-and-bound internals straight to file descriptor
    1 and warnings (e.g. time-limit notices) to descriptor 2, bypassing
    ``sys.stdout``/``sys.stderr``; both descriptors are redirected to
    the null device for the duration.  Re-entrant and thread-safe:
    nested or concurrent entries share one redirection, and only the
    final exit restores the original descriptors.  Streams without a
    usable descriptor are skipped individually.
    """
    global _QUIET_DEPTH
    with _QUIET_LOCK:
        _QUIET_DEPTH += 1
        if _QUIET_DEPTH == 1:
            _redirect_to_devnull()
    try:
        yield
    finally:
        with _QUIET_LOCK:
            _QUIET_DEPTH -= 1
            if _QUIET_DEPTH == 0:
                for fd, saved in _QUIET_SAVED:
                    os.dup2(saved, fd)
                    os.close(saved)
                _QUIET_SAVED.clear()


def _redirect_to_devnull() -> None:
    """Point descriptors 1/2 at the null device, stashing duplicates
    in ``_QUIET_SAVED``.  On any failure (e.g. fd exhaustion) the
    partial redirect is rolled back and the solve proceeds unsilenced
    — never raising, never leaking descriptors or depth state.
    """
    for stream in (sys.stdout, sys.stderr):
        try:
            stream.flush()
        except (OSError, ValueError, AttributeError):
            pass
    saved: list[tuple[int, int]] = []
    try:
        # HiGHS writes through the C runtime's stdout/stderr, i.e. the
        # process-level descriptors — not the sys.std* objects (which
        # pytest may have swapped for pipe-less buffers).
        for fd in (1, 2):
            try:
                saved.append((fd, os.dup(fd)))
            except OSError:
                continue
        if saved:
            with open(os.devnull, "w") as devnull:
                for fd, __ in saved:
                    os.dup2(devnull.fileno(), fd)
    except OSError:
        for fd, dup in saved:
            try:
                os.dup2(dup, fd)
                os.close(dup)
            except OSError:
                pass
        return
    _QUIET_SAVED.extend(saved)


class PlanInfeasibleError(Exception):
    """The micro-batch cannot be scheduled within the memory budget."""


@dataclass(frozen=True)
class PlannerConfig:
    """Planner knobs.

    Attributes:
        num_buckets: Bucket count Q (paper default 16).
        bucketing: ``"optimal"`` (DP) or ``"naive"`` (fixed intervals)
            or ``"none"`` (one bucket per unique length; the Fig. 7
            "w/o BKT" ablation).
        time_limit: HiGHS wall-clock limit in seconds per solve.
            Wall-clock budgets make MILP outcomes host-load dependent;
            see ``node_limit`` for the deterministic alternative.
        node_limit: Deterministic work limit — cap HiGHS's
            branch-and-bound at this many nodes *instead of* the
            wall-clock ``time_limit`` (which is ignored while set).
            The same problem then explores the same tree on any host,
            so MILP-backed cells satisfy the sweeps' bit-identical
            contract; ``None`` (the default) keeps the wall-clock
            budget.
        mip_rel_gap: Acceptable relative optimality gap.
        max_groups_per_degree: Cap on virtual groups per degree (None
            means the natural ``N / d``).
        min_degree: Smallest candidate SP degree (1 in the paper).
        greedy_incumbent: Prime branch-and-bound with the greedy LPT
            plan's makespan as a cutoff on ``C`` and return whichever
            of the two plans predicts faster.  This plays the role of
            SCIP's primal heuristics in the paper's setup; disabling it
            exposes raw HiGHS behaviour.
    """

    num_buckets: int = DEFAULT_NUM_BUCKETS
    bucketing: str = "optimal"
    time_limit: float = 2.0
    node_limit: int | None = None
    mip_rel_gap: float = 0.03
    max_groups_per_degree: int | None = None
    min_degree: int = 1
    greedy_incumbent: bool = True

    def __post_init__(self) -> None:
        if self.bucketing not in ("optimal", "naive", "none"):
            raise ValueError(f"unknown bucketing mode: {self.bucketing!r}")
        if self.time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {self.time_limit}")
        if self.node_limit is not None and self.node_limit <= 0:
            raise ValueError(
                f"node_limit must be positive or None, got {self.node_limit}"
            )
        if not 0 <= self.mip_rel_gap < 1:
            raise ValueError(f"mip_rel_gap must be in [0, 1), got {self.mip_rel_gap}")
        if self.min_degree <= 0 or self.min_degree & (self.min_degree - 1):
            raise ValueError(f"min_degree must be a power of two, got {self.min_degree}")


@dataclass(frozen=True)
class VirtualGroup:
    """One candidate SP group in the MILP."""

    degree: int
    index_within_degree: int


def _make_buckets(lengths: tuple[int, ...], config: PlannerConfig) -> list[Bucket]:
    if config.bucketing == "none":
        # One bucket per unique length: zero bucketing error, but the
        # MILP grows with the number of distinct lengths (the ablation
        # shows the solver then struggles within its time budget).
        return bucket_sequences(lengths, num_buckets=len(set(lengths)), method="optimal")
    return bucket_sequences(lengths, config.num_buckets, method=config.bucketing)


def enumerate_virtual_groups(
    model: CostModel, lengths: tuple[int, ...], config: PlannerConfig
) -> list[VirtualGroup]:
    """Candidate groups: every degree that could serve some sequence.

    Degrees below the smallest that fits the *shortest* sequence are
    useless and pruned; the upper end is the cluster size.  For each
    degree ``d`` there are up to ``N / d`` simultaneous groups.
    """
    num_gpus = model.cluster.num_gpus
    shortest = min(lengths)
    groups: list[VirtualGroup] = []
    degree = config.min_degree
    while degree <= num_gpus:
        if model.fits([shortest], degree):
            count = num_gpus // degree
            if config.max_groups_per_degree is not None:
                count = min(count, config.max_groups_per_degree)
            for i in range(count):
                groups.append(VirtualGroup(degree=degree, index_within_degree=i))
        degree *= 2
    if not groups:
        raise PlanInfeasibleError(
            f"no SP degree up to {num_gpus} fits even a {shortest}-token sequence"
        )
    return groups


def _check_feasibility(
    model: CostModel, buckets: list[Bucket], groups: list[VirtualGroup]
) -> None:
    """Fast necessary-condition checks before invoking the MILP."""
    max_degree = max(g.degree for g in groups)
    longest = max(b.upper for b in buckets)
    if not model.fits([longest], max_degree):
        raise PlanInfeasibleError(
            f"a {longest}-token sequence exceeds device memory even at "
            f"SP={max_degree}"
        )
    total_tokens = sum(sum(b.lengths) for b in buckets)
    if total_tokens > model.cluster_token_capacity():
        raise PlanInfeasibleError(
            f"micro-batch holds {total_tokens} tokens but the cluster fits "
            f"only {model.cluster_token_capacity():.0f}; blast further"
        )


def _build_and_solve(
    model: CostModel,
    buckets: list[Bucket],
    groups: list[VirtualGroup],
    config: PlannerConfig,
    c_upper: float = np.inf,
):
    """Assemble the sparse MILP and run HiGHS.

    Variable layout: ``x = [m_0..m_{P-1} | A_{0,0}..A_{Q-1,P-1} | C]``
    with A in bucket-major order.

    The constraint matrix is assembled from whole-row numpy blocks:
    the Eq. 18 time coefficients come from the vectorized
    :class:`repro.cost.model.CostTable` (one elementwise kernel per
    *distinct* degree instead of a Python loop per (bucket, group)
    pair).  Every coefficient value and the row ordering are identical
    to the original scalar assembly, so HiGHS receives a bit-for-bit
    equal problem.
    """
    num_groups = len(groups)
    num_buckets = len(buckets)
    num_vars = num_groups + num_buckets * num_groups + 1
    c_index = num_vars - 1

    def a_index(q: int, p: int) -> int:
        return num_groups + q * num_groups + p

    table = cost_table(model)
    coeffs = model.coeffs
    uppers = np.asarray([b.upper for b in buckets], dtype=np.float64)
    counts = np.asarray([b.count for b in buckets], dtype=np.float64)
    degree_list = [g.degree for g in groups]
    degree_arr = np.asarray(degree_list, dtype=np.float64)
    degree_idx = np.asarray(
        [table.degree_index[d] for d in degree_list], dtype=np.intp
    )
    #: Eq. 18 compute-branch coefficients per distinct degree; the
    #: per-token communication seconds and branch betas come straight
    #: from the table's precomputed per-degree arrays.
    w_by_degree = {
        d: table.milp_time_coefficients(uppers, d) for d in sorted(set(degree_list))
    }
    cpt = table.comm_per_token[degree_idx]
    comm_beta = table.comm_beta[degree_idx]

    #: A-variable columns of group p are ``a_cols + p``.
    a_cols = num_groups + np.arange(num_buckets, dtype=np.intp) * num_groups
    all_p = np.arange(num_groups, dtype=np.intp)

    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []

    def add_block(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        rows_parts.append(np.asarray(rows, dtype=np.intp))
        cols_parts.append(np.asarray(cols, dtype=np.intp))
        vals_parts.append(np.asarray(vals, dtype=np.float64))

    # (18) Time: the per-group time including the exposed ZeRO-3
    # gather is max of two linear branches (see CostModel
    # .time_with_overheads), so each group contributes two
    # "branch <= C" constraints.
    gather = coeffs.zero_gather_seconds
    exposed_gather = (1.0 - coeffs.zero_overlap) * gather
    rows_per_group = 2 if gather > 0 else 1
    r1 = np.arange(num_groups, dtype=np.intp) * rows_per_group
    a_col_matrix = a_cols[None, :] + all_p[:, None]  # (P, Q)
    # Branch 1: compute-bound — comp + comm + (1-ov)*gather <= C.
    w_matrix = np.stack([w_by_degree[d] for d in degree_list])  # (P, Q)
    add_block(np.repeat(r1, num_buckets), a_col_matrix.ravel(), w_matrix.ravel())
    beta1_vec = coeffs.beta1 + comm_beta
    add_block(r1, all_p, beta1_vec + exposed_gather)
    add_block(r1, np.full(num_groups, c_index), np.full(num_groups, -1.0))
    time_rows = num_groups * rows_per_group
    if gather > 0:
        # Branch 2: gather-bound — comm + gather <= C.
        r2 = r1 + 1
        communicating = degree_arr > 1
        if np.any(communicating):
            comm_matrix = cpt[communicating, None] * uppers[None, :]
            add_block(
                np.repeat(r2[communicating], num_buckets),
                a_col_matrix[communicating].ravel(),
                comm_matrix.ravel(),
            )
        add_block(r2, all_p, comm_beta + gather)
        add_block(r2, np.full(num_groups, c_index), np.full(num_groups, -1.0))

    # (19)+(21) Memory and linking in one: sum_q s_q A_{q,p} <= cap_d m_p.
    if table.activation_budget <= 0:
        raise PlanInfeasibleError("model states alone exceed device memory")
    caps = table.token_caps[degree_idx]
    mem_rows = time_rows + all_p
    add_block(
        np.repeat(mem_rows, num_buckets),
        a_col_matrix.ravel(),
        np.broadcast_to(uppers, (num_groups, num_buckets)).ravel(),
    )
    add_block(mem_rows, all_p, -caps)

    # (20) Device budget: sum_p d_p m_p <= N.
    budget_row = time_rows + num_groups
    add_block(np.full(num_groups, budget_row), all_p, degree_arr)

    # (22) Completeness: sum_p A_{q,p} = b_q.
    comp_rows = budget_row + 1 + np.arange(num_buckets, dtype=np.intp)
    add_block(
        np.repeat(comp_rows, num_groups),
        (a_cols[:, None] + all_p[None, :]).ravel(),
        np.ones(num_buckets * num_groups),
    )

    # Symmetry breaking: same-degree groups are interchangeable, so
    # order them by selection then by assigned token load.
    by_degree: dict[int, list[int]] = {}
    for p, g in enumerate(groups):
        by_degree.setdefault(g.degree, []).append(p)
    row = budget_row + 1 + num_buckets
    for members in by_degree.values():
        for p_a, p_b in zip(members, members[1:]):
            add_block([row, row], [p_a, p_b], [-1.0, 1.0])
            row += 1
            add_block(
                np.full(2 * num_buckets, row),
                np.concatenate((a_cols + p_a, a_cols + p_b)),
                np.concatenate((-uppers, uppers)),
            )
            row += 1

    lower = np.full(row, -np.inf)
    upper = np.zeros(row)
    upper[budget_row] = float(model.cluster.num_gpus)
    lower[comp_rows] = counts
    upper[comp_rows] = counts

    matrix = sparse.csc_array(
        (
            np.concatenate(vals_parts),
            (np.concatenate(rows_parts), np.concatenate(cols_parts)),
        ),
        shape=(row, num_vars),
        dtype=np.float64,
    )
    constraints = LinearConstraint(matrix, lower, upper)

    objective = np.zeros(num_vars)
    objective[c_index] = 1.0
    integrality = np.ones(num_vars)
    integrality[c_index] = 0
    var_lower = np.zeros(num_vars)
    var_upper = np.empty(num_vars)
    var_upper[:num_groups] = 1.0
    var_upper[num_groups:c_index] = np.repeat(counts, num_groups)
    var_upper[c_index] = c_upper

    # Budget: a node_limit is deterministic (same problem, same tree on
    # any host) and therefore replaces — not complements — the
    # wall-clock limit, which would otherwise re-introduce host-load
    # dependence into the outcome.
    options = {"mip_rel_gap": config.mip_rel_gap, "presolve": True}
    if config.node_limit is not None:
        options["node_limit"] = config.node_limit
    else:
        options["time_limit"] = config.time_limit
    with _quiet_stdout():
        result = milp(
            c=objective,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(var_lower, var_upper),
            options=options,
        )
    return result, a_index, c_index


def _extract_plan(
    model: CostModel,
    buckets: list[Bucket],
    groups: list[VirtualGroup],
    solution: np.ndarray,
    a_index,
) -> MicroBatchPlan:
    """Turn MILP variable values into a concrete MicroBatchPlan.

    Bucket members are mapped back to groups longest-first into the
    highest-degree groups, which only tightens memory relative to the
    planner's upper-limit approximation.
    """
    num_groups = len(groups)
    selected = [p for p in range(num_groups) if solution[p] > 0.5]
    assignment_counts: dict[int, list[int]] = {
        p: [int(round(solution[a_index(q, p)])) for q in range(len(buckets))]
        for p in selected
    }
    # Keep only groups that actually received work.
    active = [p for p in selected if sum(assignment_counts[p]) > 0]
    if not active:
        raise PlanInfeasibleError("MILP returned a plan with no active groups")
    # Highest degrees first: deterministic device placement with
    # power-of-two alignment preserved.
    active.sort(key=lambda p: -groups[p].degree)

    per_group_lengths: dict[int, list[int]] = {p: [] for p in active}
    for q, bucket in enumerate(buckets):
        members = sorted(bucket.lengths, reverse=True)
        cursor = 0
        for p in active:
            take = assignment_counts[p][q]
            per_group_lengths[p].extend(members[cursor : cursor + take])
            cursor += take
        if cursor != len(members):
            raise AssertionError(
                f"bucket {q}: assigned {cursor} of {len(members)} sequences"
            )

    assignments = []
    offset = 0
    for p in active:
        degree = groups[p].degree
        ranks = tuple(range(offset, offset + degree))
        offset += degree
        assignments.append(
            GroupAssignment(
                degree=degree,
                device_ranks=ranks,
                lengths=tuple(sorted(per_group_lengths[p], reverse=True)),
            )
        )
    return MicroBatchPlan(groups=tuple(assignments))


def plan_makespan(model: CostModel, plan: MicroBatchPlan) -> float:
    """A plan's predicted makespan on *actual* (unbucketed) lengths.

    Includes the exposed ZeRO-3 gather so that micro-batch-count
    choices in the solver loop see the true per-micro-batch cost.
    """
    return max(model.time_with_overheads(g.lengths, g.degree) for g in plan.groups)


def plan_microbatch(
    lengths: tuple[int, ...] | list[int],
    model: CostModel,
    config: PlannerConfig | None = None,
) -> tuple[MicroBatchPlan, float]:
    """Solve the S4.1 MILP for one micro-batch.

    With ``greedy_incumbent`` enabled (default), the greedy LPT plan is
    computed first and its makespan installed as an upper bound on the
    MILP's objective — branch-and-bound then only explores strictly
    better regions, and the better of the two plans is returned.  Both
    candidates are compared on their actual-length makespans, so the
    bucketing approximation never inflates the reported prediction.

    Args:
        lengths: The micro-batch's sequence lengths.
        model: Fitted cost model for the (model, cluster) pair.
        config: Planner knobs; defaults match the paper.

    Returns:
        The best plan found and its predicted makespan in seconds.

    Raises:
        PlanInfeasibleError: No feasible grouping exists (the caller —
            the solver loop — should retry with more micro-batches).
    """
    # Imported here: planner_greedy imports this module's exception and
    # config types, so a module-level import would be circular.
    from repro.core.planner_greedy import plan_microbatch_greedy

    config = config or PlannerConfig()
    lengths = tuple(int(s) for s in lengths)
    if not lengths:
        raise ValueError("cannot plan an empty micro-batch")
    buckets = _make_buckets(lengths, config)
    groups = enumerate_virtual_groups(model, lengths, config)
    _check_feasibility(model, buckets, groups)

    incumbent: tuple[MicroBatchPlan, float] | None = None
    c_upper = np.inf
    if config.greedy_incumbent:
        try:
            greedy_plan, greedy_pred = plan_microbatch_greedy(lengths, model)
            incumbent = (greedy_plan, greedy_pred)
            # The MILP prices buckets at their upper limits, so allow
            # the cutoff a little slack over the actual-length makespan.
            c_upper = greedy_pred * 1.05
        except PlanInfeasibleError:
            incumbent = None

    result, a_index, c_index = _build_and_solve(
        model, buckets, groups, config, c_upper=c_upper
    )
    if result.x is None:
        if incumbent is not None:
            return incumbent
        raise PlanInfeasibleError(
            f"MILP solver found no feasible plan (status={result.status}: "
            f"{result.message})"
        )
    plan = _extract_plan(model, buckets, groups, result.x, a_index)
    predicted = plan_makespan(model, plan)
    if incumbent is not None and incumbent[1] <= predicted:
        return incumbent
    return plan, predicted
