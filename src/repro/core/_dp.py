"""Monotone divide-and-conquer argmin for layered DPs.

Shared machinery of the bucketing (Eq. 15/16) and blaster (Eq. 23/24)
dynamic programs.  Both have layers of the form

    new[k] = min_{j in [j_first, k-1]} combine(prev[j], w(j, k))

whose *leftmost* argmin is nondecreasing in ``k`` (their segment costs
satisfy the concave quadrangle inequality), so each layer is solvable
by divide-and-conquer over ``k``.  All nodes of one recursion level
are evaluated together: their candidate ranges are flattened into a
single array and reduced with one segmented ``np.minimum.reduceat``
pass, leaving O(log n) numpy calls per layer and no per-``k`` Python
work.

Tie-breaking matters: the reduction selects the *smallest* ``j``
attaining each node's minimum, matching ``np.argmin`` over the full
range in the reference quadratic DPs — callers rely on bit-identical
reconstruction paths.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def solve_monotone_layer(
    k_first: int,
    k_last: int,
    j_first: int,
    j_last: int,
    flat_cost: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    assign: Callable[[np.ndarray, np.ndarray, np.ndarray], None],
) -> None:
    """Fill one DP layer for ``k in [k_first, k_last]``.

    Args:
        k_first, k_last: Inclusive range of positions to solve.
        j_first, j_last: Inclusive range of candidate split points;
            each ``k`` considers ``j in [j_first, min(j_last, k - 1)]``
            (monotonically narrowed as the recursion splits).
        flat_cost: ``(k, lens, flat_j) -> candidates`` where ``k`` is
            the per-node midpoint array, ``lens`` the per-node
            candidate counts, and ``flat_j`` the flattened candidate
            split points; returns the flattened candidate costs
            (``np.repeat(per_node_value, lens)`` broadcasts node-level
            terms).
        assign: ``(k, best, opt) -> None`` records each midpoint's
            optimal cost and leftmost-argmin split point.
    """
    k_lo = np.asarray([k_first], dtype=np.int64)
    k_hi = np.asarray([k_last], dtype=np.int64)
    j_lo = np.asarray([j_first], dtype=np.int64)
    j_hi = np.asarray([j_last], dtype=np.int64)
    while k_lo.size:
        k = (k_lo + k_hi) // 2
        j_top = np.minimum(j_hi, k - 1)
        lens = j_top - j_lo + 1
        starts = np.concatenate(([0], np.cumsum(lens[:-1])))
        total = int(lens.sum())
        flat_j = np.repeat(j_lo - starts, lens) + np.arange(total)
        candidates = flat_cost(k, lens, flat_j)
        best = np.minimum.reduceat(candidates, starts)
        # Leftmost argmin per node (ties resolve to the smallest j,
        # matching the reference quadratic DP's np.argmin).
        at_min = candidates == np.repeat(best, lens)
        first = np.minimum.reduceat(
            np.where(at_min, np.arange(total), total), starts
        )
        opt = flat_j[first]
        assign(k, best, opt)
        # Children: left halves inherit [j_lo, opt], right [opt, j_hi].
        left = k_lo <= k - 1
        right = k + 1 <= k_hi
        k_lo, k_hi, j_lo, j_hi = (
            np.concatenate((k_lo[left], k[right] + 1)),
            np.concatenate((k[left] - 1, k_hi[right])),
            np.concatenate((j_lo[left], opt[right])),
            np.concatenate((opt[left], j_hi[right])),
        )
