"""Process-pool lifecycle guard shared by every persistent pool owner.

Three components in this repo keep ``ProcessPoolExecutor`` workers
alive across calls — :class:`repro.core.solver.SolverService`,
:class:`repro.core.solver.SolverPool` and
:class:`repro.experiments.sweep.SweepRunner`.  Each is a context
manager, but the trajectory-regeneration use case encourages
fire-and-forget usage (create a runner at module scope, call ``run()``
repeatedly, never ``close()``), and an abandoned pool means leaked
worker processes.

:func:`track_pool` gives every owner the same two-layer guard:

* a ``weakref.finalize`` on the *owner* shuts the pool down when the
  owner is garbage collected (fire-and-forget callers), and
* a module-level registry + ``atexit`` hook shuts down every pool that
  is still alive at interpreter exit (owners that stay referenced to
  the very end, e.g. module-scope runners).

Owners that do call ``close()`` should invoke the returned finalizer
(calling it twice is harmless — ``weakref.finalize`` runs at most
once) so the guard does not outlive the pool.
"""

from __future__ import annotations

import atexit
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor

__all__ = ["track_pool", "live_pool_count", "register_worker_exit_flush"]

_LOCK = threading.Lock()
#: Every tracked pool that has not been collected yet.  Weak references
#: only: the registry must never keep a pool (and its workers) alive.
_POOLS: "weakref.WeakSet[ProcessPoolExecutor]" = weakref.WeakSet()


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Best-effort non-blocking shutdown (finalizer / atexit target)."""
    pool.shutdown(wait=False, cancel_futures=True)
    with _LOCK:
        _POOLS.discard(pool)


def track_pool(owner: object, pool: ProcessPoolExecutor) -> weakref.finalize:
    """Register ``pool`` for shutdown when ``owner`` dies or at exit.

    Returns the ``weakref.finalize`` handle; the owner's ``close()``
    should call it after (or instead of) its own ``pool.shutdown()`` so
    the guard is retired together with the pool.
    """
    with _LOCK:
        _POOLS.add(pool)
    return weakref.finalize(owner, _shutdown_pool, pool)


def live_pool_count() -> int:
    """How many tracked pools are still alive (test/diagnostic hook)."""
    with _LOCK:
        return len(_POOLS)


#: ``(pid, callback)`` pairs already registered, so a process whose
#: init path runs more than once (a worker re-initialised across pool
#: generations, or in-process use re-entering it) flushes once at
#: exit, not once per registration.  Keyed by pid because a forked
#: child inherits this set while ``multiprocessing`` clears its
#: finalizer registry at bootstrap — the child must register afresh.
_EXIT_FLUSHES: set = set()


def register_worker_exit_flush(callback) -> None:
    """Run ``callback`` once when the current (worker) process exits.

    The sweep pool's workers batch their cache-store spills, so each
    worker needs a drain hook that survives pool shutdown.  Plain
    ``atexit`` is NOT that hook: ``multiprocessing`` children leave
    through ``os._exit`` after running only ``multiprocessing.util``'s
    finalizers, so the flush is registered as a ``util.Finalize`` with
    a non-None ``exitpriority`` (None-priority finalizers run only on
    garbage collection, never at exit).  In a regular interpreter the
    same finalizers run via ``util._exit_function``'s own ``atexit``
    registration, so one registration covers worker processes and
    in-process use alike.  Registering the same callback again is a
    no-op (idempotent per process).  The callback is wrapped: a flush
    failure at exit (e.g. the store volume vanished) must not turn a
    clean worker shutdown into a crash.
    """
    import os
    from multiprocessing import util

    key = (os.getpid(), callback)
    with _LOCK:
        if key in _EXIT_FLUSHES:
            return
        _EXIT_FLUSHES.add(key)

    def _safe_flush() -> None:
        try:
            callback()
        except Exception:  # pragma: no cover - exit-time best effort
            pass

    util.Finalize(None, _safe_flush, exitpriority=10)


@atexit.register
def _shutdown_all() -> None:
    """Interpreter-exit safety net: no tracked pool outlives the session.

    Note the ordering caveat: ``concurrent.futures`` registers its own
    shutdown through ``threading``'s internal exit hooks, which run
    *before* regular ``atexit`` callbacks and drain any still-queued
    work first — so this sweep guarantees cleanup of forgotten pools,
    not prompt exit while cells are still in flight.  Owners that want
    promptness must ``close()`` (or let GC fire the per-owner
    finalizer) before exiting.
    """
    with _LOCK:
        pools = list(_POOLS)
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)
