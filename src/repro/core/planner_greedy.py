"""Greedy fallback planner.

A fast heuristic alternative to the MILP: enumerate a small family of
plausible group *layouts* (partitions of the cluster into power-of-two
SP groups) and, for each, assign sequences longest-first to the group
whose finish time stays smallest (LPT scheduling) subject to memory.
Used when the MILP backend is disabled, as a MILP warm-start quality
reference, and in the solver-ablation benchmark.

Layout family: for the minimal degree ``d_big`` that fits the longest
sequence, try every fill degree ``f`` — the layout is one ``d_big``
group plus ``(N - d_big) / f`` groups of degree ``f`` — as well as the
uniform all-``f`` layouts for every feasible ``f``.
"""

from __future__ import annotations

from repro.core.planner import PlanInfeasibleError, PlannerConfig
from repro.core.types import GroupAssignment, MicroBatchPlan
from repro.cost.model import CostModel


def candidate_layouts(model: CostModel, longest: int) -> list[tuple[int, ...]]:
    """Group-degree layouts to try, each summing to at most N."""
    num_gpus = model.cluster.num_gpus
    d_big = model.min_degree_for_sequence(longest)
    if d_big is None:
        raise PlanInfeasibleError(
            f"a {longest}-token sequence exceeds memory even at SP={num_gpus}"
        )
    layouts: set[tuple[int, ...]] = set()
    f = 1
    while f <= num_gpus:
        if f >= d_big:
            # Uniform layout of degree f (all groups can host anything).
            layouts.add(tuple([f] * (num_gpus // f)))
        if f <= num_gpus - d_big:
            remaining = num_gpus - d_big
            layouts.add(tuple([d_big] + [f] * (remaining // f)))
        f *= 2
    layouts.add((d_big,))
    return sorted(layouts, reverse=True)


def _assign_lpt(
    lengths: tuple[int, ...], degrees: tuple[int, ...], model: CostModel
) -> tuple[list[list[int]], float] | None:
    """Longest-processing-time assignment onto a fixed layout.

    Returns per-group length lists and the makespan, or None when some
    sequence fits no group.
    """
    group_lengths: list[list[int]] = [[] for __ in degrees]
    group_tokens = [0.0] * len(degrees)
    activation_budget = model.memory_budget - model.coeffs.model_state_bytes
    caps = [activation_budget / model.coeffs.memory_per_token * d for d in degrees]

    for s in sorted(lengths, reverse=True):
        best_index = None
        best_time = None
        for i, d in enumerate(degrees):
            if group_tokens[i] + s > caps[i]:
                continue
            t = model.time_with_overheads(group_lengths[i] + [s], d)
            if best_time is None or t < best_time:
                best_time = t
                best_index = i
        if best_index is None:
            return None
        group_lengths[best_index].append(s)
        group_tokens[best_index] += s
    makespan = max(
        model.time_with_overheads(gl, d)
        for gl, d in zip(group_lengths, degrees)
        if gl
    )
    return group_lengths, makespan


def plan_microbatch_greedy(
    lengths: tuple[int, ...] | list[int],
    model: CostModel,
    config: PlannerConfig | None = None,
) -> tuple[MicroBatchPlan, float]:
    """Greedy counterpart of :func:`repro.core.planner.plan_microbatch`.

    Same signature and contract; typically within a few percent of the
    MILP on realistic batches but orders of magnitude faster.
    """
    del config  # accepted for interface parity; no knobs used
    lengths = tuple(int(s) for s in lengths)
    if not lengths:
        raise ValueError("cannot plan an empty micro-batch")
    if any(s <= 0 for s in lengths):
        raise ValueError("sequence lengths must be positive")

    total = sum(lengths)
    if total > model.cluster_token_capacity():
        raise PlanInfeasibleError(
            f"micro-batch holds {total} tokens but the cluster fits only "
            f"{model.cluster_token_capacity():.0f}"
        )

    best: tuple[MicroBatchPlan, float] | None = None
    for layout in candidate_layouts(model, max(lengths)):
        assigned = _assign_lpt(lengths, layout, model)
        if assigned is None:
            continue
        group_lengths, makespan = assigned
        if best is not None and makespan >= best[1]:
            continue
        assignments = []
        offset = 0
        order = sorted(
            range(len(layout)), key=lambda i: (-layout[i], i)
        )
        for i in order:
            if not group_lengths[i]:
                continue
            degree = layout[i]
            ranks = tuple(range(offset, offset + degree))
            offset += degree
            assignments.append(
                GroupAssignment(
                    degree=degree,
                    device_ranks=ranks,
                    lengths=tuple(sorted(group_lengths[i], reverse=True)),
                )
            )
        best = (MicroBatchPlan(groups=tuple(assignments)), makespan)
    if best is None:
        raise PlanInfeasibleError(
            "no layout could host the micro-batch within memory"
        )
    return best
