"""Greedy fallback planner.

A fast heuristic alternative to the MILP: enumerate a small family of
plausible group *layouts* (partitions of the cluster into power-of-two
SP groups) and, for each, assign sequences longest-first to the group
whose finish time stays smallest (LPT scheduling) subject to memory.
Used when the MILP backend is disabled, as a MILP warm-start quality
reference, and in the solver-ablation benchmark.

Layout family: for the minimal degree ``d_big`` that fits the longest
sequence, try every fill degree ``f`` — the layout is one ``d_big``
group plus ``(N - d_big) / f`` groups of degree ``f`` — as well as the
uniform all-``f`` layouts for every feasible ``f``.

Cold-path engine (the first-time-solve pipeline):

* **Memoised enumeration.**  The family depends only on ``(d_big,
  N)`` — the longest sequence's memory class — so the layouts and
  their stacked arrays are enumerated once per class and cached on the
  model's :class:`~repro.cost.model.CostTable`
  (:attr:`~repro.cost.model.CostTable.layout_stacks`).
* **Dominance pruning.**  Before any LPT work, layouts that provably
  cannot win are dropped: a layout whose total token capacity is below
  the micro-batch (pigeonhole-infeasible) or whose largest per-group
  capacity cannot host the longest sequence.  Pruning is *lossless* —
  every dropped layout would have returned ``None`` from the LPT pass,
  so the surviving family yields bit-identical best layouts and
  makespans (property-tested in
  ``tests/test_property_planner_pruning.py``).
* **Stacked LPT.**  All surviving layouts' LPT placements are
  evaluated in one numpy pass over a padded ``(layouts, groups)``
  lane matrix — one elementwise kernel evaluation per placed sequence
  for the *whole family* instead of a Python loop per layout.  The
  incremental per-lane work/token sums accumulate in the same order
  as the scalar model's sequential ``sum``, so makespans are
  bit-identical to the original O(n^2) per-layout formulation.

Narrow families take a scalar per-layout loop instead (same
arithmetic, no array overhead).  The crossover is measured, not
guessed: both paths cost one candidate evaluation per *live lane* per
placed sequence, the scalar loop paying ~0.5-1 us of Python per lane
and the stacked pass a lane-count-independent ~20-30 us of numpy
dispatch per step — so the deciding variable is the surviving
family's total lane count (groups summed over surviving layouts), not
the sequence count.  :func:`calibrate_vector_threshold` times both
paths across cluster sizes and returns the lane count where the
stacked pass starts winning; since the compiled hot-kernel tier the
measurement also records which tier (native/fallback, see
:mod:`repro.core.kernels`) it ran on — the crossover moves when both
loops are jitted, so a threshold is only valid for its tier.
Calibrated 2026-08 on the reference container (single-core, numpy
2.x, fallback tier): the stacked pass wins from the narrowest family
the calibrator keeps alive (the 16-GPU family, ~43 lanes) and again
at ~74 lanes, while the widest measured family (~135 lanes at 64
GPUs) is contested — the scalar loop's equal-length candidate cache
keeps it competitive there — so the threshold sits at the measured
stacked-wins floor of 43 lanes.  Re-run the calibrator after numpy,
numba or hardware changes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core import kernels, stage_timing
from repro.core.planner import PlanInfeasibleError, PlannerConfig
from repro.core.types import GroupAssignment, MicroBatchPlan
from repro.cost.model import CostModel, CostTable, cost_table


def candidate_layouts(model: CostModel, longest: int) -> list[tuple[int, ...]]:
    """Group-degree layouts to try, each summing to at most N.

    Memoised per memory class: the family depends on ``longest`` only
    through ``d_big``, so repeated solves of one model reuse the
    enumeration (and its stacked arrays) from the cost table.  Returns
    a fresh list — the cached stack's row order must survive caller
    mutation.
    """
    return list(_layout_stack(model, longest).layouts)


def _enumerate_layouts(num_gpus: int, d_big: int) -> list[tuple[int, ...]]:
    layouts: set[tuple[int, ...]] = set()
    f = 1
    while f <= num_gpus:
        if f >= d_big:
            # Uniform layout of degree f (all groups can host anything).
            layouts.add(tuple([f] * (num_gpus // f)))
        if f <= num_gpus - d_big:
            remaining = num_gpus - d_big
            layouts.add(tuple([d_big] + [f] * (remaining // f)))
        f *= 2
    layouts.add((d_big,))
    return sorted(layouts, reverse=True)


class LayoutStack:
    """One memory class's candidate family as stacked lane arrays.

    Layouts are padded to a common group count ``G``; padding lanes
    carry a token cap of ``-1`` so the LPT feasibility mask rejects
    them unconditionally (every length is positive) without branching.

    Attributes:
        layouts: The family, in :func:`candidate_layouts` order.
        degree_idx: ``(L, G)`` indices into the table's degree
            universe (0 for padding — the cap mask makes it inert).
        caps: ``(L, G)`` per-lane token capacities; ``-1`` padding.
        capacities: ``(L,)`` total token capacity per layout.
        max_caps: ``(L,)`` largest single-lane capacity per layout.
        lanes: ``(L,)`` real (non-padding) lane count per layout.
    """

    __slots__ = (
        "layouts", "degree_idx", "caps", "capacities", "max_caps", "lanes",
        "degrees", "comm_per_token", "comm_beta", "lane_constants",
    )

    def __init__(self, table: CostTable, layouts: list[tuple[int, ...]]):
        self.layouts = layouts
        num_layouts = len(layouts)
        width = max(len(layout) for layout in layouts)
        self.degree_idx = np.zeros((num_layouts, width), dtype=np.intp)
        self.caps = np.full((num_layouts, width), -1.0)
        for row, layout in enumerate(layouts):
            idx = [table.degree_index[d] for d in layout]
            self.degree_idx[row, : len(layout)] = idx
            self.caps[row, : len(layout)] = table.token_caps[idx]
        real = self.caps >= 0
        self.capacities = np.where(real, self.caps, 0.0).sum(axis=1)
        self.max_caps = self.caps.max(axis=1)
        self.lanes = real.sum(axis=1)
        # Hoisted per-lane coefficient matrices: the stacked pass runs
        # one elementwise kernel per placed sequence, so the per-degree
        # gathers must not happen inside the loop.
        self.degrees = table.degree_arr[self.degree_idx]
        self.comm_per_token = table.comm_per_token[self.degree_idx]
        self.comm_beta = table.comm_beta[self.degree_idx]
        #: Per-layout (degree, cpt, comm_beta, cap) float tuples for
        #: the scalar loop — no dict lookups in the inner loop.
        self.lane_constants = [
            [
                (
                    float(layout[i]),
                    float(table.comm_per_token[table.degree_index[layout[i]]]),
                    float(table.comm_beta[table.degree_index[layout[i]]]),
                    float(table.token_caps[table.degree_index[layout[i]]]),
                )
                for i in range(len(layout))
            ]
            for layout in layouts
        ]

    def surviving(self, total_tokens: float, longest: float) -> np.ndarray:
        """Indices of layouts that dominance pruning keeps.

        Lossless by construction: a pruned layout either lacks the
        aggregate capacity for the batch (pigeonhole — some lane would
        have to exceed its cap, so LPT must return ``None``) or has no
        lane that can host the longest sequence alone (its first
        placement already fails).  Neither can ever be the best
        layout, so the winner and its makespan are bit-identical to
        the unpruned family's.
        """
        keep = (self.capacities >= total_tokens) & (self.max_caps >= longest)
        return np.flatnonzero(keep)


def _layout_stack(model: CostModel, longest: int) -> LayoutStack:
    table = cost_table(model)
    num_gpus = model.cluster.num_gpus
    d_big = model.min_degree_for_sequence(longest)
    if d_big is None:
        raise PlanInfeasibleError(
            f"a {longest}-token sequence exceeds memory even at SP={num_gpus}"
        )
    stack = table.layout_stacks.get(d_big)
    if stack is None:
        stack = LayoutStack(table, _enumerate_layouts(num_gpus, d_big))
        table.layout_stacks[d_big] = stack
    return stack


#: Live-lane count (groups summed across the surviving family) below
#: which the scalar per-layout loop beats the stacked numpy pass; both
#: paths are bit-identical.  Set from
#: :func:`calibrate_vector_threshold` (see the module docstring).
_VECTOR_THRESHOLD = 43


def _assign_lpt_stacked(
    ordered: list[int],
    stack: LayoutStack,
    rows: np.ndarray,
    table: CostTable,
) -> tuple[np.ndarray, np.ndarray, int] | None:
    """LPT over every surviving layout in one lane-matrix pass.

    Args:
        ordered: Sequence lengths, longest first.
        stack: The memory class's stacked family.
        rows: Surviving layout indices into the stack.
        table: The model's vectorized cost table.

    Returns:
        ``(choices, makespans, winner)`` where ``choices[step, l]`` is
        the lane that received ``ordered[step]`` in surviving layout
        ``l`` (-1 once the layout died), ``makespans[l]`` its final
        makespan (inf for dead layouts), and ``winner`` the first
        surviving-layout index attaining the minimum — exactly the
        layout the per-layout reference loop would keep.  ``None``
        when every layout dies.
    """
    caps = stack.caps[rows]
    degrees = stack.degrees[rows]
    cpt = stack.comm_per_token[rows]
    comm_beta = stack.comm_beta[rows]
    beta1 = table.beta1
    gather = table.gather
    exposed = table.exposed_gather
    num_layouts, width = caps.shape
    work = np.zeros((num_layouts, width))
    tokens = np.zeros((num_layouts, width))
    alive = np.ones(num_layouts, dtype=bool)
    choices = np.full((len(ordered), num_layouts), -1, dtype=np.intp)
    layout_axis = np.arange(num_layouts)

    for step, s in enumerate(ordered):
        term = table.alpha1 * float(s) * float(s) + table.alpha2 * float(s)
        new_tokens = tokens + s
        # Inlined CostTable.group_times over the hoisted lane matrices
        # (same elementwise IEEE ops in the same order).
        comp = (work + term) / degrees + beta1
        comm = cpt * new_tokens + comm_beta
        cand = comp + comm
        if gather > 0:
            cand = np.maximum(cand + exposed, comm + gather)
        cand = np.where(new_tokens > caps, np.inf, cand)
        best = np.argmin(cand, axis=1)
        fits = np.isfinite(cand[layout_axis, best]) & alive
        alive &= fits
        if not alive.any():
            return None
        lanes = best[fits]
        work[fits, lanes] += term
        tokens[fits, lanes] += s
        choices[step, fits] = lanes

    finish = table.group_times(work, tokens, stack.degree_idx[rows])
    makespans = np.where(tokens > 0, finish, -np.inf).max(axis=1)
    makespans = np.where(alive, makespans, np.inf)
    winner = int(np.argmin(makespans))
    return choices, makespans, winner


def _assign_lpt_scalar(
    ordered: list[int],
    lane_constants: list[tuple[float, float, float, float]],
    table: CostTable,
) -> tuple[list[list[int]], float] | None:
    """Scalar twin of the stacked LPT pass (small instances).

    ``lane_constants`` carries one ``(degree, comm_per_token,
    comm_beta, cap)`` tuple per group (see
    :attr:`LayoutStack.lane_constants`); the inner loop is the inlined
    :meth:`~repro.cost.model.CostTable.group_time` formula — same
    float ops, no per-step table lookups.
    """
    num_lanes = len(lane_constants)
    lane_range = range(num_lanes)
    group_lengths: list[list[int]] = [[] for __ in lane_range]
    work = [0.0] * num_lanes
    tokens = [0.0] * num_lanes
    alpha1 = table.alpha1
    alpha2 = table.alpha2
    beta1 = table.beta1
    gather = table.gather
    exposed = table.exposed_gather
    # Sorted batches carry runs of equal lengths (quantised corpora
    # especially); within a run only the lane that just received a
    # sequence has a changed candidate time, so the others are served
    # from this cache — recomputing them would produce the same bits.
    cand: list[float | None] = [None] * num_lanes
    prev_s = None
    term = 0.0
    stale: tuple[int, ...] | range = lane_range
    for s in ordered:
        if s != prev_s:
            prev_s = s
            term = alpha1 * float(s) * float(s) + alpha2 * float(s)
            stale = lane_range
        for i in stale:
            d, cpt, comm_beta, cap = lane_constants[i]
            new_tokens = tokens[i] + s
            if new_tokens > cap:
                cand[i] = None
                continue
            comp = (work[i] + term) / d + beta1
            comm = cpt * new_tokens + comm_beta
            t = comp + comm
            if gather > 0:
                bound = comm + gather
                t = t + exposed
                if bound > t:
                    t = bound
            cand[i] = t
        best_index = None
        best_time = None
        for i in lane_range:
            t = cand[i]
            if t is None:
                continue
            if best_time is None or t < best_time:
                best_time = t
                best_index = i
        if best_index is None:
            return None
        group_lengths[best_index].append(s)
        work[best_index] += term
        tokens[best_index] += s
        stale = (best_index,)
    makespan = max(
        table.group_time(work[i], tokens[i], int(d))
        for i, (d, *__) in enumerate(lane_constants)
        if group_lengths[i]
    )
    return group_lengths, float(makespan)


def _assign_lpt_stacked_native(
    ordered: list[int],
    stack: LayoutStack,
    rows: np.ndarray,
    table: CostTable,
) -> tuple[np.ndarray, np.ndarray, int] | None:
    """Compiled twin of :func:`_assign_lpt_stacked` (same contract)."""
    feasible, choices, makespans, winner = kernels.native("lpt_stacked")(
        np.asarray(ordered, dtype=np.float64),
        stack.caps[rows],
        stack.degrees[rows],
        stack.comm_per_token[rows],
        stack.comm_beta[rows],
        table.alpha1,
        table.alpha2,
        table.beta1,
        table.gather,
        table.exposed_gather,
    )
    if not feasible:
        return None
    return choices, makespans, int(winner)


def _assign_lpt_scalar_native(
    ordered: list[int],
    ordered_arr: np.ndarray,
    stack: LayoutStack,
    row: int,
    table: CostTable,
) -> tuple[list[list[int]], float] | None:
    """Compiled twin of :func:`_assign_lpt_scalar` (same contract).

    ``ordered_arr`` is the float64 view of ``ordered``, hoisted by the
    caller so the per-layout loop converts the batch once.
    """
    lanes = int(stack.lanes[row])
    feasible, choices, makespan = kernels.native("lpt_scalar")(
        ordered_arr,
        stack.degrees[row, :lanes],
        stack.comm_per_token[row, :lanes],
        stack.comm_beta[row, :lanes],
        stack.caps[row, :lanes],
        table.alpha1,
        table.alpha2,
        table.beta1,
        table.gather,
        table.exposed_gather,
    )
    if not feasible:
        return None
    group_lengths: list[list[int]] = [[] for __ in range(lanes)]
    for step, s in enumerate(ordered):
        group_lengths[int(choices[step])].append(s)
    return group_lengths, float(makespan)


def _build_plan(
    layout: tuple[int, ...], group_lengths: list[list[int]]
) -> MicroBatchPlan:
    """Winning layout + per-group lengths -> the concrete plan."""
    assignments = []
    offset = 0
    order = sorted(range(len(layout)), key=lambda i: (-layout[i], i))
    for i in order:
        if not group_lengths[i]:
            continue
        degree = layout[i]
        ranks = tuple(range(offset, offset + degree))
        offset += degree
        assignments.append(
            GroupAssignment(
                degree=degree,
                device_ranks=ranks,
                lengths=tuple(sorted(group_lengths[i], reverse=True)),
            )
        )
    return MicroBatchPlan(groups=tuple(assignments))


def plan_microbatch_greedy(
    lengths: tuple[int, ...] | list[int],
    model: CostModel,
    config: PlannerConfig | None = None,
) -> tuple[MicroBatchPlan, float]:
    """Greedy counterpart of :func:`repro.core.planner.plan_microbatch`.

    Same signature and contract; typically within a few percent of the
    MILP on realistic batches but orders of magnitude faster.
    """
    del config  # accepted for interface parity; no knobs used
    lengths = tuple(int(s) for s in lengths)
    if not lengths:
        raise ValueError("cannot plan an empty micro-batch")
    if any(s <= 0 for s in lengths):
        raise ValueError("sequence lengths must be positive")

    total = sum(lengths)
    if total > model.cluster_token_capacity():
        raise PlanInfeasibleError(
            f"micro-batch holds {total} tokens but the cluster fits only "
            f"{model.cluster_token_capacity():.0f}"
        )

    longest = max(lengths)
    enum_started = time.perf_counter()
    table = cost_table(model)
    if table.activation_budget <= 0:
        raise PlanInfeasibleError(
            "no layout could host the micro-batch within memory"
        )
    stack = _layout_stack(model, longest)
    rows = stack.surviving(float(total), float(longest))
    stage_timing.add("enumerate", time.perf_counter() - enum_started)
    if rows.size == 0:
        raise PlanInfeasibleError(
            "no layout could host the micro-batch within memory"
        )

    lpt_started = time.perf_counter()
    ordered = sorted(lengths, reverse=True)
    outcome: tuple[MicroBatchPlan, float] | None = None
    if int(stack.lanes[rows].sum()) <= _VECTOR_THRESHOLD:
        scalar_native = kernels.use_native("lpt_scalar")
        kernels.note("lpt_scalar", "native" if scalar_native else "fallback")
        ordered_arr = (
            np.asarray(ordered, dtype=np.float64) if scalar_native else None
        )
        best: tuple[tuple[int, ...], list[list[int]], float] | None = None
        for row in rows:
            layout = stack.layouts[int(row)]
            if scalar_native:
                assigned = _assign_lpt_scalar_native(
                    ordered, ordered_arr, stack, int(row), table
                )
            else:
                assigned = _assign_lpt_scalar(
                    ordered, stack.lane_constants[int(row)], table
                )
            if assigned is None:
                continue
            group_lengths, makespan = assigned
            if best is not None and makespan >= best[2]:
                continue
            best = (layout, group_lengths, makespan)
        if best is not None:
            outcome = (_build_plan(best[0], best[1]), best[2])
    else:
        if kernels.use_native("lpt_stacked"):
            kernels.note("lpt_stacked", "native")
            stacked = _assign_lpt_stacked_native(ordered, stack, rows, table)
        else:
            kernels.note("lpt_stacked", "fallback")
            stacked = _assign_lpt_stacked(ordered, stack, rows, table)
        if stacked is not None:
            choices, makespans, winner = stacked
            layout = stack.layouts[int(rows[winner])]
            group_lengths = [[] for __ in layout]
            for step, lane in enumerate(choices[:, winner]):
                group_lengths[lane].append(ordered[step])
            outcome = (_build_plan(layout, group_lengths), float(makespans[winner]))
    stage_timing.add("lpt", time.perf_counter() - lpt_started)

    if outcome is None:
        raise PlanInfeasibleError(
            "no layout could host the micro-batch within memory"
        )
    return outcome


@dataclass(frozen=True)
class ThresholdCalibration:
    """One :func:`calibrate_vector_threshold` measurement.

    Attributes:
        threshold: The recommended :data:`_VECTOR_THRESHOLD` value.
        tier: Which kernel tier (``"native"``/``"fallback"``) both
            paths ran on — the crossover moves when the loops are
            compiled, so a threshold is only valid for its tier.
        samples: ``(lanes, winner)`` per measured cluster size, where
            ``winner`` names the faster path at that family width.
    """

    threshold: int
    tier: str
    samples: tuple[tuple[int, str], ...] = ()

    def __int__(self) -> int:
        return self.threshold


def calibrate_vector_threshold(
    *,
    cluster_sizes: tuple[int, ...] = (8, 16, 32, 64),
    sequence_count: int = 32,
    repeats: int = 30,
) -> ThresholdCalibration:
    """Measure the scalar/stacked LPT crossover on this host.

    Times both (bit-identical) paths over synthetic micro-batches
    against GPT-7B fits on growing clusters — the candidate family's
    total lane count grows with the cluster — and returns the lane
    count at which the stacked pass should take over: the geometric
    midpoint between the widest family the scalar loop still wins and
    the narrowest one the stacked pass wins.  Both paths are timed
    through the same kernel dispatch production uses, so the result
    records the tier (:attr:`ThresholdCalibration.tier`) it is valid
    for.  The module constant :data:`_VECTOR_THRESHOLD` is the
    checked-in result of this calibration (see the module docstring);
    re-run after numpy, numba or hardware changes::

        PYTHONPATH=src python -c "from repro.core.planner_greedy \\
            import calibrate_vector_threshold as c; print(c())"
    """
    from repro.cluster.topology import standard_cluster
    from repro.cost.profiler import fit_cost_model
    from repro.model.config import GPT_7B

    rng = np.random.default_rng(7)
    scalar_native = kernels.use_native("lpt_scalar")
    stacked_native = kernels.use_native("lpt_stacked")
    tier = "native" if (scalar_native and stacked_native) else "fallback"
    if tier == "native":
        kernels.warmup()  # keep JIT compilation out of the timings
    scalar_best: int | None = None
    stacked_best: int | None = None
    samples: list[tuple[int, str]] = []
    for num_gpus in cluster_sizes:
        model = fit_cost_model(
            GPT_7B.with_max_context(64 * 1024), standard_cluster(num_gpus)
        )
        table = cost_table(model)
        # Scale lengths with the cluster so capacity pruning keeps the
        # family wide (the regime the threshold decides).
        top = 300 * num_gpus
        lengths = tuple(
            int(s) for s in rng.integers(256, top, size=sequence_count)
        )
        ordered = sorted(lengths, reverse=True)
        stack = _layout_stack(model, max(lengths))
        rows = stack.surviving(float(sum(lengths)), float(max(lengths)))
        if rows.size == 0:
            continue
        lanes = int(stack.lanes[rows].sum())

        ordered_arr = np.asarray(ordered, dtype=np.float64)
        started = time.perf_counter()
        for __ in range(repeats):
            for row in rows:
                if scalar_native:
                    _assign_lpt_scalar_native(
                        ordered, ordered_arr, stack, int(row), table
                    )
                else:
                    _assign_lpt_scalar(
                        ordered, stack.lane_constants[int(row)], table
                    )
        scalar_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for __ in range(repeats):
            if stacked_native:
                _assign_lpt_stacked_native(ordered, stack, rows, table)
            else:
                _assign_lpt_stacked(ordered, stack, rows, table)
        stacked_seconds = time.perf_counter() - started

        if stacked_seconds <= scalar_seconds:
            samples.append((lanes, "stacked"))
            stacked_best = (
                lanes if stacked_best is None else min(stacked_best, lanes)
            )
        else:
            samples.append((lanes, "scalar"))
            scalar_best = (
                lanes if scalar_best is None else max(scalar_best, lanes)
            )
    if stacked_best is None:
        threshold = scalar_best or _VECTOR_THRESHOLD
    elif scalar_best is None or scalar_best >= stacked_best:
        threshold = stacked_best
    else:
        threshold = int(round((scalar_best * stacked_best) ** 0.5))
    return ThresholdCalibration(
        threshold=int(threshold), tier=tier, samples=tuple(samples)
    )
