"""Greedy fallback planner.

A fast heuristic alternative to the MILP: enumerate a small family of
plausible group *layouts* (partitions of the cluster into power-of-two
SP groups) and, for each, assign sequences longest-first to the group
whose finish time stays smallest (LPT scheduling) subject to memory.
Used when the MILP backend is disabled, as a MILP warm-start quality
reference, and in the solver-ablation benchmark.

Layout family: for the minimal degree ``d_big`` that fits the longest
sequence, try every fill degree ``f`` — the layout is one ``d_big``
group plus ``(N - d_big) / f`` groups of degree ``f`` — as well as the
uniform all-``f`` layouts for every feasible ``f``.

The LPT inner loop is the solver's single hottest code path (it runs
inside every MILP solve as the incumbent): it is implemented against
the vectorized :class:`repro.cost.model.CostTable` with *incremental*
per-group work/token sums, so each placement step is one elementwise
numpy evaluation over the layout's groups instead of re-summing every
group's assigned lengths.  The incremental sums accumulate in the
same order as the scalar model's sequential ``sum``, so makespans are
bit-identical to the original O(n^2) formulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.planner import PlanInfeasibleError, PlannerConfig
from repro.core.types import GroupAssignment, MicroBatchPlan
from repro.cost.model import CostModel, cost_table


def candidate_layouts(model: CostModel, longest: int) -> list[tuple[int, ...]]:
    """Group-degree layouts to try, each summing to at most N."""
    num_gpus = model.cluster.num_gpus
    d_big = model.min_degree_for_sequence(longest)
    if d_big is None:
        raise PlanInfeasibleError(
            f"a {longest}-token sequence exceeds memory even at SP={num_gpus}"
        )
    layouts: set[tuple[int, ...]] = set()
    f = 1
    while f <= num_gpus:
        if f >= d_big:
            # Uniform layout of degree f (all groups can host anything).
            layouts.add(tuple([f] * (num_gpus // f)))
        if f <= num_gpus - d_big:
            remaining = num_gpus - d_big
            layouts.add(tuple([d_big] + [f] * (remaining // f)))
        f *= 2
    layouts.add((d_big,))
    return sorted(layouts, reverse=True)


#: Below this (sequences x groups) size the scalar incremental loop
#: beats numpy's per-call overhead; both paths are bit-identical.
_VECTOR_THRESHOLD = 192


def _assign_lpt(
    lengths: tuple[int, ...], degrees: tuple[int, ...], model: CostModel
) -> tuple[list[list[int]], float] | None:
    """Longest-processing-time assignment onto a fixed layout.

    Returns per-group length lists and the makespan, or None when some
    sequence fits no group.  One numpy evaluation per placed sequence:
    candidate finish times for *all* groups come from the cost table's
    elementwise kernel over incrementally maintained work/token sums.
    Tiny instances take a scalar incremental loop instead (same
    arithmetic, no array overhead).
    """
    table = cost_table(model)
    if table.activation_budget <= 0:
        return None
    if len(lengths) * len(degrees) <= _VECTOR_THRESHOLD:
        return _assign_lpt_scalar(lengths, degrees, table)
    num_groups = len(degrees)
    group_lengths: list[list[int]] = [[] for __ in degrees]
    degree_idx = np.asarray([table.degree_index[d] for d in degrees], dtype=np.intp)
    caps = table.token_caps[degree_idx]

    # Incremental per-group state: sequential work/token sums match the
    # scalar model's summation order bit-for-bit.
    work = np.zeros(num_groups)
    tokens = np.zeros(num_groups)

    for s in sorted(lengths, reverse=True):
        term = table.alpha1 * float(s) * float(s) + table.alpha2 * float(s)
        cand = table.group_times(work + term, tokens + s, degree_idx)
        cand = np.where(tokens + s > caps, np.inf, cand)
        best_index = int(np.argmin(cand))
        if not np.isfinite(cand[best_index]):
            return None
        group_lengths[best_index].append(s)
        work[best_index] += term
        tokens[best_index] += s
    finish = table.group_times(work, tokens, degree_idx)
    makespan = float(np.max(finish[tokens > 0]))
    return group_lengths, makespan


def _assign_lpt_scalar(
    lengths: tuple[int, ...], degrees: tuple[int, ...], table
) -> tuple[list[list[int]], float] | None:
    """Scalar twin of the vectorized LPT loop (small instances)."""
    group_lengths: list[list[int]] = [[] for __ in degrees]
    caps = [float(table.token_caps[table.degree_index[d]]) for d in degrees]
    work = [0.0] * len(degrees)
    tokens = [0.0] * len(degrees)
    for s in sorted(lengths, reverse=True):
        term = table.alpha1 * float(s) * float(s) + table.alpha2 * float(s)
        best_index = None
        best_time = None
        for i, d in enumerate(degrees):
            if tokens[i] + s > caps[i]:
                continue
            t = table.group_time(work[i] + term, tokens[i] + s, d)
            if best_time is None or t < best_time:
                best_time = t
                best_index = i
        if best_index is None:
            return None
        group_lengths[best_index].append(s)
        work[best_index] += term
        tokens[best_index] += s
    makespan = max(
        table.group_time(work[i], tokens[i], d)
        for i, d in enumerate(degrees)
        if group_lengths[i]
    )
    return group_lengths, float(makespan)


def plan_microbatch_greedy(
    lengths: tuple[int, ...] | list[int],
    model: CostModel,
    config: PlannerConfig | None = None,
) -> tuple[MicroBatchPlan, float]:
    """Greedy counterpart of :func:`repro.core.planner.plan_microbatch`.

    Same signature and contract; typically within a few percent of the
    MILP on realistic batches but orders of magnitude faster.
    """
    del config  # accepted for interface parity; no knobs used
    lengths = tuple(int(s) for s in lengths)
    if not lengths:
        raise ValueError("cannot plan an empty micro-batch")
    if any(s <= 0 for s in lengths):
        raise ValueError("sequence lengths must be positive")

    total = sum(lengths)
    if total > model.cluster_token_capacity():
        raise PlanInfeasibleError(
            f"micro-batch holds {total} tokens but the cluster fits only "
            f"{model.cluster_token_capacity():.0f}"
        )

    best: tuple[MicroBatchPlan, float] | None = None
    for layout in candidate_layouts(model, max(lengths)):
        assigned = _assign_lpt(lengths, layout, model)
        if assigned is None:
            continue
        group_lengths, makespan = assigned
        if best is not None and makespan >= best[1]:
            continue
        assignments = []
        offset = 0
        order = sorted(
            range(len(layout)), key=lambda i: (-layout[i], i)
        )
        for i in order:
            if not group_lengths[i]:
                continue
            degree = layout[i]
            ranks = tuple(range(offset, offset + degree))
            offset += degree
            assignments.append(
                GroupAssignment(
                    degree=degree,
                    device_ranks=ranks,
                    lengths=tuple(sorted(group_lengths[i], reverse=True)),
                )
            )
        best = (MicroBatchPlan(groups=tuple(assignments)), makespan)
    if best is None:
        raise PlanInfeasibleError(
            "no layout could host the micro-batch within memory"
        )
    return best
