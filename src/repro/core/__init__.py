"""FlexSP core: the paper's primary contribution.

Pipeline (Fig. 3): the **sequence blaster** (:mod:`repro.core.blaster`)
chunks a global batch into micro-batches; per micro-batch, **sequence
bucketing** (:mod:`repro.core.bucketing`) compresses lengths into a few
buckets; the **parallelism planner** (:mod:`repro.core.planner`) solves
a MILP choosing heterogeneous SP groups and assigning every sequence to
one; the **solver** (:mod:`repro.core.solver`) sweeps micro-batch
counts and returns the best full-iteration plan.
"""

from repro.core.blaster import blast, min_microbatch_count
from repro.core.cache_store import (
    CacheStore,
    PruneResult,
    StoreStats,
    WorkloadState,
)
from repro.core.bucketing import (
    Bucket,
    bucket_sequences,
    bucketing_error,
    naive_buckets,
    optimal_buckets,
)
from repro.core.planner import PlannerConfig, plan_microbatch
from repro.core.solver import FlexSPSolver, SolverConfig, SolverPool, SolverService
from repro.core.types import (
    GroupAssignment,
    IterationPlan,
    MicroBatchPlan,
    SequenceBatch,
)

__all__ = [
    "SequenceBatch",
    "GroupAssignment",
    "MicroBatchPlan",
    "IterationPlan",
    "Bucket",
    "optimal_buckets",
    "naive_buckets",
    "bucket_sequences",
    "bucketing_error",
    "blast",
    "min_microbatch_count",
    "PlannerConfig",
    "plan_microbatch",
    "SolverConfig",
    "FlexSPSolver",
    "SolverPool",
    "SolverService",
    "CacheStore",
    "WorkloadState",
    "StoreStats",
    "PruneResult",
]
