"""Persistent cross-process cache store for per-workload solver state.

The sweep layer memoises expensive per-workload derivations — the
fitted cost model, the tuned baseline strategies, and FlexSP's
micro-batch plan cache — but only in process memory: a new process (a
CI re-run, the next figure regeneration) starts cold.  This module
spills that state to disk and restores it bit-identically, so
trajectories stay warm *across* processes.

On-disk layout (all JSON, under one root directory)::

    <root>/
      workload-<digest>.json      one file per workload signature

where ``<digest>`` is the first 16 hex chars of the SHA-256 of the
workload signature's ``repr`` (deterministic across processes, unlike
``hash()``).  Each file holds::

    {
      "version": 1,
      "signature": "<repr of the full workload signature>",
      "cost_model": {"coeffs": {...}, "comm_model": "alltoall"},
      "static_degree": 8,
      "megatron_strategy": [tp, cp, dp],
      "plans": {
        "<context digest>": [
          {"shape": [s1, s2, ...], "plan": {...} | null,
           "predicted": float | null},
          ...
        ]
      }
    }

``plans`` is keyed by the *planning context* — a digest of the
``(PlannerConfig, backend)`` pair — because plan-cache entries are only
valid for the exact planner knobs that produced them; ``plan: null``
records a shape proven infeasible.  Floats round-trip exactly through
JSON (shortest-repr doubles), so a restored cost model, plan, and
predicted time are bit-identical to what was spilled.

Invalidation rules:

* The file embeds the **full** workload signature; a digest collision
  or a stale file from a changed :class:`~repro.experiments.workloads.
  Workload` schema fails the signature comparison and loads as cold.
* :data:`STORE_VERSION` gates the whole format — bump it whenever the
  profiler, planner, or serialization semantics change in a way that
  would make restored state disagree with freshly computed state, and
  every existing store silently becomes cold.
* Plan entries are additionally scoped by the context digest, so
  changing solver knobs (backend, bucketing, trials, limits) never
  replays plans from other knobs.
* Corrupted or partially written files (killed process, disk full) are
  *ignored, never fatal*: loads return ``None`` and the next
  :meth:`CacheStore.save` atomically replaces the file.

Concurrent writers (sweep pool workers) are safe: writes go through a
unique temp file plus ``os.replace``, and :meth:`CacheStore.save`
holds a per-workload advisory file lock across its read-merge-replace
so two workers persisting different cells of one workload union their
plan entries rather than clobbering each other (last writer wins per
shape).  Readers never need the lock — ``os.replace`` keeps every
observable file state a complete JSON document.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any

try:  # pragma: no cover - import guard
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.core.plan_cache import INFEASIBLE, PlanCache
from repro.core.planner import PlannerConfig
from repro.core.serialization import microbatch_from_dict, microbatch_to_dict
from repro.core.types import MicroBatchPlan
from repro.cost.model import CostCoefficients

__all__ = [
    "STORE_VERSION",
    "CacheStore",
    "PlanEntry",
    "WorkloadState",
    "context_digest",
    "entries_from_cache",
    "preload_cache",
    "signature_digest",
]

#: Format tag of the store layout; bump to invalidate every store.
STORE_VERSION = 1

#: One spilled plan-cache entry: canonical (sorted) micro-batch shape,
#: the memoised plan (None = proven infeasible) and its predicted
#: makespan seconds (None for infeasible entries).
PlanEntry = tuple[tuple[int, ...], MicroBatchPlan | None, float | None]


def signature_digest(signature: tuple) -> str:
    """Deterministic short digest of a workload signature.

    ``repr`` of the signature tuple (frozen dataclasses all the way
    down) is stable across processes; ``hash()`` is not (string
    hashing is salted per process).
    """
    return hashlib.sha256(repr(signature).encode()).hexdigest()[:16]


def context_digest(planner_config: PlannerConfig, backend: str) -> str:
    """Digest of the planning context plan entries are scoped by."""
    return hashlib.sha256(repr((planner_config, backend)).encode()).hexdigest()[:16]


@dataclass
class WorkloadState:
    """Everything the store holds for one workload signature.

    Attributes:
        signature: ``repr`` of the full workload signature (collision
            and staleness guard — compared verbatim on load).
        coeffs: Fitted cost-model coefficients, if spilled.
        comm_model: The fit's communication flavour.
        static_degree: DeepSpeed's tuned static SP degree, if tuned.
        megatron_strategy: Megatron's tuned ``(tp, cp, dp)``, if tuned.
        plans: Plan-cache entries per planning-context digest.
    """

    signature: str
    coeffs: CostCoefficients | None = None
    comm_model: str | None = None
    static_degree: int | None = None
    megatron_strategy: tuple[int, int, int] | None = None
    plans: dict[str, list[PlanEntry]] = field(default_factory=dict)


def entries_from_cache(cache: PlanCache) -> list[PlanEntry]:
    """Convert a :meth:`PlanCache.snapshot` into spillable entries.

    The cache key's context half is dropped — the caller scopes the
    entries under the matching :func:`context_digest` instead.
    """
    entries: list[PlanEntry] = []
    for (shape, _context), entry in cache.snapshot():
        if entry is INFEASIBLE:
            entries.append((tuple(shape), None, None))
        else:
            plan, predicted = entry
            entries.append((tuple(shape), plan, predicted))
    return entries


def preload_cache(
    cache: PlanCache, entries: list[PlanEntry], context: object
) -> None:
    """Replay spilled entries into a live cache under ``context``.

    ``context`` must be the :class:`~repro.core.plan_cache.
    CacheContext` of the solver that will consume the cache, so the
    reconstructed keys equal the ones its hot path builds.
    """
    for shape, plan, predicted in entries:
        cache.store((tuple(shape), context), plan, predicted)


def _entry_to_dict(entry: PlanEntry) -> dict[str, Any]:
    shape, plan, predicted = entry
    return {
        "shape": list(shape),
        "plan": None if plan is None else microbatch_to_dict(plan),
        "predicted": predicted,
    }


def _entry_from_dict(payload: dict[str, Any]) -> PlanEntry:
    plan = payload["plan"]
    return (
        tuple(int(s) for s in payload["shape"]),
        None if plan is None else microbatch_from_dict(plan),
        payload["predicted"],
    )


def _state_to_dict(state: WorkloadState) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "version": STORE_VERSION,
        "signature": state.signature,
        "cost_model": None,
        "static_degree": state.static_degree,
        "megatron_strategy": (
            None
            if state.megatron_strategy is None
            else list(state.megatron_strategy)
        ),
        "plans": {
            context: [_entry_to_dict(e) for e in entries]
            for context, entries in state.plans.items()
        },
    }
    if state.coeffs is not None:
        payload["cost_model"] = {
            "coeffs": dataclasses.asdict(state.coeffs),
            "comm_model": state.comm_model,
        }
    return payload


def _state_from_dict(payload: dict[str, Any]) -> WorkloadState:
    if payload.get("version") != STORE_VERSION:
        raise ValueError(f"unsupported store version {payload.get('version')!r}")
    cost_model = payload.get("cost_model")
    coeffs = comm_model = None
    if cost_model is not None:
        coeffs = CostCoefficients(**cost_model["coeffs"])
        comm_model = cost_model["comm_model"]
    strategy = payload.get("megatron_strategy")
    return WorkloadState(
        signature=payload["signature"],
        coeffs=coeffs,
        comm_model=comm_model,
        static_degree=payload.get("static_degree"),
        megatron_strategy=None if strategy is None else tuple(strategy),
        plans={
            context: [_entry_from_dict(e) for e in entries]
            for context, entries in payload.get("plans", {}).items()
        },
    )


class CacheStore:
    """File-backed store of per-workload solver state.

    Args:
        root: Directory holding the store; created if missing.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, signature: tuple) -> pathlib.Path:
        return self.root / f"workload-{signature_digest(signature)}.json"

    def load(self, signature: tuple) -> WorkloadState | None:
        """The spilled state for ``signature``, or None.

        None covers every cold case uniformly: no file yet, a corrupt
        or truncated file, an incompatible :data:`STORE_VERSION`, or a
        digest collision / stale schema (embedded signature mismatch).
        """
        state = self._read(self._path(signature))
        if state is None or state.signature != repr(signature):
            return None
        return state

    def _read(self, path: pathlib.Path) -> WorkloadState | None:
        try:
            text = path.read_text()
        except (OSError, ValueError):  # missing, unreadable, or not UTF-8
            return None
        try:
            return _state_from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError):
            # Corrupted, truncated, foreign, or out-of-version file:
            # treat as cold; the next save() replaces it atomically.
            return None

    @contextlib.contextmanager
    def _write_lock(self, path: pathlib.Path):
        """Advisory per-workload lock serialising read-merge-replace.

        Without it, two workers could both read state v0, each merge
        only its own entries, and the second ``os.replace`` would
        discard the first's.  Lock files live beside the data files;
        on platforms without ``fcntl`` the lock degrades to a no-op
        (single-process use is still fully safe).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        lock_path = path.with_suffix(".lock")
        with open(lock_path, "w") as lock:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)

    def save(self, signature: tuple, state: WorkloadState) -> None:
        """Persist ``state``, merging with what is already on disk.

        Scalars (cost model, tuner memos) prefer the new state when it
        has them; plan entries are unioned per context with the new
        entries winning per shape.  The read-merge-replace sequence
        runs under a per-workload file lock (concurrent writers union
        rather than clobber) and the write itself is atomic (unique
        temp file + ``os.replace``), so readers never observe partial
        JSON.
        """
        if state.signature != repr(signature):
            raise ValueError(
                "state.signature does not match the signature it is "
                "being saved under"
            )
        path = self._path(signature)
        with self._write_lock(path):
            existing = self.load(signature)
            if existing is not None:
                state = _merged(existing, state)
            payload = json.dumps(_state_to_dict(state), separators=(",", ":"))
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=path.stem + ".", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as f:
                    f.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def signatures(self) -> list[str]:
        """Digests of every workload file currently in the store."""
        return sorted(
            p.stem.split("-", 1)[1] for p in self.root.glob("workload-*.json")
        )


def _merged(existing: WorkloadState, new: WorkloadState) -> WorkloadState:
    """Union of two states for the same signature (new wins per field
    and per plan shape)."""
    plans: dict[str, list[PlanEntry]] = {}
    for source in (existing, new):
        for context, entries in source.plans.items():
            by_shape = {e[0]: e for e in plans.get(context, [])}
            for entry in entries:
                by_shape[entry[0]] = entry
            plans[context] = list(by_shape.values())
    return WorkloadState(
        signature=new.signature,
        coeffs=new.coeffs if new.coeffs is not None else existing.coeffs,
        comm_model=(
            new.comm_model if new.coeffs is not None else existing.comm_model
        ),
        static_degree=(
            new.static_degree
            if new.static_degree is not None
            else existing.static_degree
        ),
        megatron_strategy=(
            new.megatron_strategy
            if new.megatron_strategy is not None
            else existing.megatron_strategy
        ),
        plans=plans,
    )
