"""Persistent cross-process cache store for per-workload solver state.

The sweep layer memoises expensive per-workload derivations — the
fitted cost model, the tuned baseline strategies, and FlexSP's
micro-batch plan cache — but only in process memory: a new process (a
CI re-run, the next figure regeneration) starts cold.  This module
spills that state to disk and restores it bit-identically, so
trajectories stay warm *across* processes.

On-disk layout (all JSON, under one root directory)::

    <root>/
      workload-<digest>.json      one file per workload signature

where ``<digest>`` is the first 16 hex chars of the SHA-256 of the
workload signature's ``repr`` (deterministic across processes, unlike
``hash()``).  Each file holds::

    {
      "version": 1,
      "signature": "<repr of the full workload signature>",
      "cost_model": {"coeffs": {...}, "comm_model": "alltoall"},
      "static_degree": 8,
      "megatron_strategy": [tp, cp, dp],
      "plans": {
        "<context digest>": [
          {"shape": [s1, s2, ...], "plan": {...} | null,
           "predicted": float | null},
          ...
        ]
      }
    }

``plans`` is keyed by the *planning context* — a digest of the
``(PlannerConfig, backend)`` pair — because plan-cache entries are only
valid for the exact planner knobs that produced them; ``plan: null``
records a shape proven infeasible.  Floats round-trip exactly through
JSON (shortest-repr doubles), so a restored cost model, plan, and
predicted time are bit-identical to what was spilled.

Invalidation rules:

* The file embeds the **full** workload signature; a digest collision
  or a stale file from a changed :class:`~repro.experiments.workloads.
  Workload` schema fails the signature comparison and loads as cold.
* :data:`STORE_VERSION` gates the whole format — bump it whenever the
  profiler, planner, or serialization semantics change in a way that
  would make restored state disagree with freshly computed state, and
  every existing store silently becomes cold.
* Plan entries are additionally scoped by the context digest, so
  changing solver knobs (backend, bucketing, trials, limits) never
  replays plans from other knobs.
* Corrupted or partially written files (killed process, disk full) are
  *ignored, never fatal*: loads return ``None`` and the next
  :meth:`CacheStore.save` atomically replaces the file.

Concurrent writers (sweep pool workers) are safe: writes go through a
unique temp file plus ``os.replace``, and :meth:`CacheStore.save`
holds a per-workload advisory file lock across its read-merge-replace
so two workers persisting different cells of one workload union their
plan entries rather than clobbering each other (last writer wins per
shape).  Readers never need the lock — ``os.replace`` keeps every
observable file state a complete JSON document.

Lifecycle (eviction): next to the data files lives a **store
manifest** (``store-manifest.json``) with per-file accounting —
``last_used`` (bumped by both loads and saves), ``entry_count`` and
``bytes`` — maintained best-effort under its own advisory lock and
fully reconciled against the directory on every :meth:`CacheStore.
prune` / :meth:`CacheStore.stats` (a corrupt or stale manifest is
rebuilt from a scan, never trusted blindly and never fatal).
:meth:`CacheStore.prune` evicts files by age (``max_age_days``) and
then least-recently-used-first until the store fits
``max_store_bytes``.  Two guards keep pruning safe against running
campaigns:

* files this :class:`CacheStore` instance has itself saved or loaded
  (its *working set*) are never evicted by its own ``prune`` unless
  ``protect_touched=False``, and
* a victim whose data file changed since the pass observed it (a
  concurrent writer's merge-save) is skipped — re-checked under the
  same per-workload lock the writers hold, against the file's own
  recorded mtime/size rather than this process's wall clock, so clock
  skew cannot defeat the guard.

An evicted workload simply loads cold on the next miss.  Lock files
are left in place in normal operation, but acquisition is **bounded**:
a writer that cannot take the lock immediately polls with a dead-pid
probe against the recorded holder, safely *breaks* a lock whose
holder crashed (unlink + fresh acquire, counted as ``lock_breaks``),
and only falls back to an honest blocking wait when the holder is
demonstrably alive or unidentifiable.  Because breaking recreates the
lock file, every acquisition re-verifies that the inode it locked is
still the inode on disk and retries otherwise — two writers can never
both hold "the" lock.  The write paths also visit the
:mod:`repro.core.faults` injection points ``spill`` (torn non-atomic
data write), ``lock`` and ``prune`` (a lock file stamped with a dead
holder), so chaos tests can prove all of the above actually fires.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any

try:  # pragma: no cover - import guard
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.core import faults
from repro.core.plan_cache import INFEASIBLE, PlanCache
from repro.core.planner import PlannerConfig
from repro.core.serialization import microbatch_from_dict, microbatch_to_dict
from repro.core.types import MicroBatchPlan
from repro.cost.model import CostCoefficients

__all__ = [
    "MANIFEST_NAME",
    "STORE_VERSION",
    "CacheStore",
    "PlanEntry",
    "PruneResult",
    "StoreStats",
    "WorkloadState",
    "context_digest",
    "entries_from_cache",
    "preload_cache",
    "signature_digest",
]

#: Format tag of the store layout; bump to invalidate every store.
STORE_VERSION = 1

#: Name of the per-store accounting manifest (lives inside the root).
MANIFEST_NAME = "store-manifest.json"

#: One spilled plan-cache entry: canonical (sorted) micro-batch shape,
#: the memoised plan (None = proven infeasible) and its predicted
#: makespan seconds (None for infeasible entries).
PlanEntry = tuple[tuple[int, ...], MicroBatchPlan | None, float | None]


def signature_digest(signature: tuple) -> str:
    """Deterministic short digest of a workload signature.

    ``repr`` of the signature tuple (frozen dataclasses all the way
    down) is stable across processes; ``hash()`` is not (string
    hashing is salted per process).
    """
    return hashlib.sha256(repr(signature).encode()).hexdigest()[:16]


def context_digest(planner_config: PlannerConfig, backend: str) -> str:
    """Digest of the planning context plan entries are scoped by."""
    return hashlib.sha256(repr((planner_config, backend)).encode()).hexdigest()[:16]


@dataclass
class WorkloadState:
    """Everything the store holds for one workload signature.

    Attributes:
        signature: ``repr`` of the full workload signature (collision
            and staleness guard — compared verbatim on load).
        coeffs: Fitted cost-model coefficients, if spilled.
        comm_model: The fit's communication flavour.
        static_degree: DeepSpeed's tuned static SP degree, if tuned.
        megatron_strategy: Megatron's tuned ``(tp, cp, dp)``, if tuned.
        plans: Plan-cache entries per planning-context digest.
    """

    signature: str
    coeffs: CostCoefficients | None = None
    comm_model: str | None = None
    static_degree: int | None = None
    megatron_strategy: tuple[int, int, int] | None = None
    plans: dict[str, list[PlanEntry]] = field(default_factory=dict)


def entries_from_cache(cache: PlanCache) -> list[PlanEntry]:
    """Convert a :meth:`PlanCache.snapshot` into spillable entries.

    The cache key's context half is dropped — the caller scopes the
    entries under the matching :func:`context_digest` instead.
    """
    entries: list[PlanEntry] = []
    for (shape, _context), entry in cache.snapshot():
        if entry is INFEASIBLE:
            entries.append((tuple(shape), None, None))
        else:
            plan, predicted = entry
            entries.append((tuple(shape), plan, predicted))
    return entries


def preload_cache(
    cache: PlanCache, entries: list[PlanEntry], context: object
) -> None:
    """Replay spilled entries into a live cache under ``context``.

    ``context`` must be the :class:`~repro.core.plan_cache.
    CacheContext` of the solver that will consume the cache, so the
    reconstructed keys equal the ones its hot path builds.
    """
    for shape, plan, predicted in entries:
        cache.store((tuple(shape), context), plan, predicted)


def _entry_to_dict(entry: PlanEntry) -> dict[str, Any]:
    shape, plan, predicted = entry
    return {
        "shape": list(shape),
        "plan": None if plan is None else microbatch_to_dict(plan),
        "predicted": predicted,
    }


def _entry_from_dict(payload: dict[str, Any]) -> PlanEntry:
    plan = payload["plan"]
    return (
        tuple(int(s) for s in payload["shape"]),
        None if plan is None else microbatch_from_dict(plan),
        payload["predicted"],
    )


def _state_to_dict(state: WorkloadState) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "version": STORE_VERSION,
        "signature": state.signature,
        "cost_model": None,
        "static_degree": state.static_degree,
        "megatron_strategy": (
            None
            if state.megatron_strategy is None
            else list(state.megatron_strategy)
        ),
        "plans": {
            context: [_entry_to_dict(e) for e in entries]
            for context, entries in state.plans.items()
        },
    }
    if state.coeffs is not None:
        payload["cost_model"] = {
            "coeffs": dataclasses.asdict(state.coeffs),
            "comm_model": state.comm_model,
        }
    return payload


def _state_from_dict(payload: dict[str, Any]) -> WorkloadState:
    if not isinstance(payload, dict):
        # Valid JSON of the wrong shape (an array, a string): as
        # corrupt as garbage bytes, and reported the same way.
        raise ValueError(f"store payload is not an object: {type(payload)}")
    if payload.get("version") != STORE_VERSION:
        raise ValueError(f"unsupported store version {payload.get('version')!r}")
    cost_model = payload.get("cost_model")
    coeffs = comm_model = None
    if cost_model is not None:
        coeffs = CostCoefficients(**cost_model["coeffs"])
        comm_model = cost_model["comm_model"]
    strategy = payload.get("megatron_strategy")
    return WorkloadState(
        signature=payload["signature"],
        coeffs=coeffs,
        comm_model=comm_model,
        static_degree=payload.get("static_degree"),
        megatron_strategy=None if strategy is None else tuple(strategy),
        plans={
            context: [_entry_from_dict(e) for e in entries]
            for context, entries in payload.get("plans", {}).items()
        },
    )


@dataclass(frozen=True)
class StoreStats:
    """One store's accounting snapshot plus this process's counters.

    ``files`` / ``bytes`` / ``entries`` describe what is on disk right
    now (reconciled manifest); ``hits`` / ``misses`` / ``writes`` /
    ``evictions`` count what *this* :class:`CacheStore` instance did
    (loads served warm, loads served cold, data files actually
    written, files pruned).  The sweep layer sums counter dicts across
    pool workers, so the counters are also the unit the campaign's
    write-amplification figure (writes / cells measured) is built
    from.
    """

    files: int = 0
    bytes: int = 0
    entries: int = 0
    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    #: Contended lock acquisitions: how often a save had to block
    #: behind another process's merge of the same workload file — the
    #: shared-store contention figure at campaign fan-out.
    lock_waits: int = 0
    #: Stale locks safely broken: contended acquisitions whose
    #: recorded holder pid turned out to be dead (a crashed writer) —
    #: the lock file was unlinked and re-acquired instead of blocking
    #: forever.  The chaos benchmark's stale-lock recovery figure.
    lock_breaks: int = 0

    def to_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one :meth:`CacheStore.prune` pass.

    ``evicted`` lists the pruned data-file names in eviction order;
    with ``dry_run`` nothing was deleted and the list is what *would*
    have been evicted.  ``bytes_freed`` is accounted from the victims'
    sizes; ``files_kept`` / ``bytes_kept`` describe the surviving
    store.
    """

    evicted: tuple[str, ...]
    bytes_freed: int
    files_kept: int
    bytes_kept: int
    dry_run: bool = False


def _entry_count(state: WorkloadState) -> int:
    """How many restorable entries a state holds (plan entries plus
    each present scalar memo) — the manifest's ``entry_count``."""
    return (
        sum(len(entries) for entries in state.plans.values())
        + (state.coeffs is not None)
        + (state.static_degree is not None)
        + (state.megatron_strategy is not None)
    )


#: How long a contended lock acquisition probes before giving up and
#: blocking honestly behind a live (or unidentifiable) holder, and how
#: often it polls.  Module-level so tests can monkeypatch the bound.
LOCK_TIMEOUT_SECONDS = 10.0
LOCK_POLL_SECONDS = 0.05


def _same_inode(lock, lock_path: pathlib.Path) -> bool:
    """Is the fd's inode still the lock file on disk?

    Breaking a stale lock unlinks and recreates the path, so a waiter
    holding an fd on the *old* inode would otherwise "acquire" a lock
    nobody else can see.  Every successful acquisition re-verifies
    identity and retries on a fresh open when it fails.
    """
    try:
        return os.fstat(lock.fileno()).st_ino == os.stat(lock_path).st_ino
    except OSError:
        return False


def _stamp_holder(lock) -> None:
    """Record our pid in the held lock file (best-effort) so waiters
    can probe whether the holder is still alive."""
    with contextlib.suppress(OSError, ValueError):
        lock.seek(0)
        lock.truncate()
        lock.write(str(os.getpid()))
        lock.flush()


def _holder_pid(lock) -> int | None:
    """The pid recorded in the lock file, or None when absent/garbled
    (an unidentifiable holder is conservatively treated as alive)."""
    try:
        lock.seek(0)
        text = lock.read(32).strip()
    except (OSError, ValueError):
        return None
    try:
        return int(text)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    """Signal-0 probe; EPERM means alive-but-not-ours."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, OverflowError):  # EPERM etc.: assume alive
        return True
    return True


def _break_lock(lock_path: pathlib.Path):
    """Break a lock whose recorded holder is dead: unlink the stale
    file and acquire a fresh one.  Returns the held file object, or
    None when another waiter won the race (the caller re-loops)."""
    with contextlib.suppress(OSError):
        os.unlink(lock_path)
    try:
        fresh = open(lock_path, "a+")
    except OSError:
        return None
    try:
        fcntl.flock(fresh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        fresh.close()
        return None
    if not _same_inode(fresh, lock_path):
        with contextlib.suppress(OSError):
            fcntl.flock(fresh.fileno(), fcntl.LOCK_UN)
        fresh.close()
        return None
    _stamp_holder(fresh)
    return fresh


def _acquire_lock(
    lock_path: pathlib.Path, on_wait, on_break, timeout, force_probe
):
    """Acquire the advisory lock with bounded waiting; returns the
    held (and pid-stamped) file object.  See :func:`_locked`."""
    notified = False
    while True:
        lock = open(lock_path, "a+")
        acquired = False
        if force_probe:
            # Injection support: skip the fast path once so the
            # planted stale-holder file is actually probed.
            force_probe = False
        else:
            with contextlib.suppress(OSError):
                fcntl.flock(lock.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                acquired = True
        if not acquired:
            if not notified:
                notified = True
                if on_wait is not None:
                    on_wait()
            deadline = time.monotonic() + timeout
            while not acquired:
                pid = _holder_pid(lock)
                if (
                    pid is not None
                    and pid != os.getpid()
                    and not _pid_alive(pid)
                ):
                    lock.close()
                    fresh = _break_lock(lock_path)
                    if fresh is None:
                        break  # lost the breaking race; reopen and retry
                    if on_break is not None:
                        on_break()
                    return fresh
                if time.monotonic() >= deadline:
                    # Live (or unidentifiable) holder past the bound:
                    # block honestly, exactly as before the bound
                    # existed.  Never steal from a live writer.
                    fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
                    acquired = True
                    break
                time.sleep(LOCK_POLL_SECONDS)
                with contextlib.suppress(OSError):
                    fcntl.flock(
                        lock.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB
                    )
                    acquired = True
        if acquired:
            if _same_inode(lock, lock_path):
                _stamp_holder(lock)
                return lock
            # The inode under our flock was broken away (unlinked and
            # recreated) while we waited: release and retry on the
            # live file.
            with contextlib.suppress(OSError):
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
        lock.close()


@contextlib.contextmanager
def _locked(
    lock_path: pathlib.Path,
    on_wait=None,
    on_break=None,
    timeout: float | None = None,
    force_probe: bool = False,
):
    """Advisory exclusive flock on ``lock_path``, with bounded waiting
    and stale-lock breaking.

    The single definition of the store's locking idiom (per-workload
    write locks and the manifest lock both use it).  On platforms
    without ``fcntl`` the lock degrades to a no-op — single-process
    use is still fully safe.

    Acquisition: a non-blocking attempt first; on contention the
    waiter polls (every :data:`LOCK_POLL_SECONDS`) for up to
    ``timeout`` seconds (default :data:`LOCK_TIMEOUT_SECONDS`),
    probing the pid the holder stamped into the lock file.  A dead
    holder — a writer that crashed between acquiring and releasing —
    gets its lock *broken*: the stale file is unlinked and a fresh one
    acquired, so one crash never wedges every future writer.  A live
    or unidentifiable holder is never stolen from: past the bound the
    waiter simply blocks, as it always did.  Because breaking swaps
    the inode under concurrent waiters, every successful acquisition
    verifies fd-inode identity against the path and retries on a
    mismatch — mutual exclusion holds through a break.

    ``on_wait`` is called (once) when the lock is contended; the store
    counts those as ``lock_waits``.  ``on_break`` is called for each
    stale lock broken (``lock_breaks``).  ``force_probe`` skips the
    initial fast path once so an injected stale-holder file is
    actually examined (the ``stale_lock`` fault realisation).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    lock = _acquire_lock(
        lock_path,
        on_wait,
        on_break,
        LOCK_TIMEOUT_SECONDS if timeout is None else timeout,
        force_probe,
    )
    try:
        yield
    finally:
        try:
            with contextlib.suppress(OSError):
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
        finally:
            lock.close()


def _atomic_write(path: pathlib.Path, payload: str) -> None:
    """Atomically replace ``path`` with ``payload``.

    The single definition of the store's write idiom (data files and
    the manifest both use it): a unique sibling temp file plus
    ``os.replace``, so every observable file state is a complete JSON
    document; the temp file is cleaned up on any failure.
    """
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as f:
            f.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CacheStore:
    """File-backed store of per-workload solver state.

    Args:
        root: Directory holding the store; created if missing.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Data-file names this instance saved or loaded — the running
        #: campaign's working set, protected from its own prune.
        self._touched: set[str] = set()
        self._counters = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "evictions": 0,
            "lock_waits": 0,
            "lock_breaks": 0,
        }
        # Counter increments are read-modify-write; the plan service's
        # request threads share one store instance (read-mostly:
        # concurrent load() is safe — atomic os.replace keeps every
        # observable file a complete document — and save() serialises
        # on the per-workload file lock), so the accounting needs its
        # own guard to stay exact under threads.
        self._counters_lock = threading.Lock()

    def _count(self, key: str, delta: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += delta

    def _path(self, signature: tuple) -> pathlib.Path:
        return self.root / f"workload-{signature_digest(signature)}.json"

    def counters(self) -> dict[str, int]:
        """Copy of this instance's hit/miss/write/eviction counters."""
        with self._counters_lock:
            return dict(self._counters)

    def load(self, signature: tuple) -> WorkloadState | None:
        """The spilled state for ``signature``, or None.

        None covers every cold case uniformly: no file yet, a corrupt
        or truncated file, an incompatible :data:`STORE_VERSION`, or a
        digest collision / stale schema (embedded signature mismatch).
        A served load counts as a hit and bumps the data file's mtime
        (best-effort) — an O(1) lock-free metadata op the reconciled
        manifest honours as ``last_used`` (it takes the max of the
        recorded value and the mtime), so readers keep hot files out
        of LRU eviction's reach without paying a manifest rewrite
        under the store-wide lock on every warm restore.  The bump
        also shields an in-use file from a concurrent prune's
        changed-since-observed re-check.
        """
        path = self._path(signature)
        state = self._load_state(path, signature)
        if state is None:
            self._count("misses")
            return None
        self._count("hits")
        self._touched.add(path.name)
        with contextlib.suppress(OSError):
            os.utime(path)
        return state

    def _load_state(
        self, path: pathlib.Path, signature: tuple
    ) -> WorkloadState | None:
        """Uncounted load (shared by :meth:`load` and save's merge)."""
        state = self._read(path)
        if state is None or state.signature != repr(signature):
            return None
        return state

    def _read(self, path: pathlib.Path) -> WorkloadState | None:
        try:
            text = path.read_text()
        except (OSError, ValueError):  # missing, unreadable, or not UTF-8
            return None
        try:
            return _state_from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError):
            # Corrupted, truncated, foreign, or out-of-version file:
            # treat as cold; the next save() replaces it atomically.
            return None

    def _write_lock(self, path: pathlib.Path):
        """Advisory per-workload lock serialising read-merge-replace.

        Without it, two workers could both read state v0, each merge
        only its own entries, and the second ``os.replace`` would
        discard the first's.  Lock files live beside the data files.
        Contended acquisitions bump the ``lock_waits`` counter; stale
        locks broken on the way in bump ``lock_breaks``.

        This is the ``lock`` injection point: a ``stale_lock`` fault
        plants a dead holder pid in the lock file and forces the probe
        path, proving the breaking machinery end to end.
        """
        lock_path = path.with_suffix(".lock")
        force_probe = False
        if faults.maybe_inject("lock") == "stale_lock":
            force_probe = self._plant_stale_lock(lock_path)
        return _locked(
            lock_path,
            on_wait=self._count_wait,
            on_break=self._count_break,
            force_probe=force_probe,
        )

    def _plant_stale_lock(self, lock_path: pathlib.Path) -> bool:
        """Realise a ``stale_lock`` fault: stamp a dead pid into the
        lock file, exactly what a writer crashing between acquire and
        release leaves behind (the kernel drops the flock with the
        process; only the stamped pid persists)."""
        try:
            lock_path.write_text(str(faults.dead_pid()))
        except OSError:  # pragma: no cover - injection best-effort
            return False
        return True

    def _count_wait(self) -> None:
        self._count("lock_waits")

    def _count_break(self) -> None:
        self._count("lock_breaks")

    def save(self, signature: tuple, state: WorkloadState) -> None:
        """Persist ``state``, merging with what is already on disk.

        Scalars (cost model, tuner memos) prefer the new state when it
        has them; plan entries are unioned per context with the new
        entries winning per shape.  The read-merge-replace sequence
        runs under a per-workload file lock (concurrent writers union
        rather than clobber) and the write itself is atomic (unique
        temp file + ``os.replace``), so readers never observe partial
        JSON.  Each write also refreshes the file's manifest
        accounting (``last_used`` / ``entry_count`` / ``bytes``) and
        counts toward this instance's ``writes`` counter.
        """
        if state.signature != repr(signature):
            raise ValueError(
                "state.signature does not match the signature it is "
                "being saved under"
            )
        path = self._path(signature)
        with self._write_lock(path):
            existing = self._load_state(path, signature)
            if existing is not None:
                state = _merged(existing, state)
            payload = json.dumps(_state_to_dict(state), separators=(",", ":"))
            if faults.maybe_inject("spill") == "torn_write":
                # Realise a torn write: a truncated payload lands at
                # the data path *without* the atomic temp+replace, the
                # write is not counted and the manifest not updated —
                # what a crash mid-write leaves behind.  The store
                # contract absorbs it: the next load parses garbage,
                # returns cold, and the next save atomically replaces
                # the wreck.
                with contextlib.suppress(OSError):
                    path.write_text(payload[: max(1, len(payload) // 2)])
                    self._touched.add(path.name)
                return
            _atomic_write(path, payload)
            self._count("writes")
            self._touched.add(path.name)
            self._update_manifest(
                path.name,
                last_used=time.time(),
                entry_count=_entry_count(state),
                size=len(payload),
            )

    def signatures(self) -> list[str]:
        """Digests of every workload file currently in the store."""
        return sorted(
            p.stem.split("-", 1)[1] for p in self.root.glob("workload-*.json")
        )

    # -- manifest accounting ------------------------------------------------

    @property
    def _manifest_path(self) -> pathlib.Path:
        return self.root / MANIFEST_NAME

    def _manifest_lock(self, force_probe: bool = False):
        """Advisory lock serialising manifest read-modify-write.

        Always acquired *after* a per-workload file lock when both are
        held (save, prune), so the two lock levels cannot deadlock.
        Stale manifest locks are broken like workload locks (and
        counted); ``force_probe`` serves the ``prune`` injection.
        """
        return _locked(
            self.root / "store-manifest.lock",
            on_wait=self._count_wait,
            on_break=self._count_break,
            force_probe=force_probe,
        )

    def _read_manifest(self) -> dict[str, dict] | None:
        """The manifest's file table, or None when corrupt/missing.

        Validated field by field — a manifest is plain accounting that
        can always be rebuilt from a directory scan, so anything
        malformed (garbage bytes, truncation, foreign schema, wrong
        version) reads as "no manifest", never as an error.
        """
        try:
            payload = json.loads(self._manifest_path.read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != STORE_VERSION
            or not isinstance(payload.get("files"), dict)
        ):
            return None
        files: dict[str, dict] = {}
        for name, entry in payload["files"].items():
            if not isinstance(name, str) or not isinstance(entry, dict):
                return None
            try:
                files[name] = {
                    "last_used": float(entry["last_used"]),
                    "entry_count": int(entry["entry_count"]),
                    "bytes": int(entry["bytes"]),
                }
            except (KeyError, TypeError, ValueError):
                return None
        return files

    def _write_manifest(self, files: dict[str, dict]) -> None:
        """Atomically replace the manifest (same temp-file dance as the
        data files, so readers never observe partial JSON)."""
        _atomic_write(
            self._manifest_path,
            json.dumps(
                {"version": STORE_VERSION, "files": files},
                separators=(",", ":"),
                sort_keys=True,
            ),
        )

    def _update_manifest(
        self, name: str, *, last_used: float, entry_count: int, size: int
    ) -> None:
        """Record a save in the manifest (best-effort: accounting must
        never fail a data write — a lost update is reconciled by the
        next prune/stats scan)."""
        try:
            with self._manifest_lock():
                files = self._read_manifest() or {}
                files[name] = {
                    "last_used": last_used,
                    "entry_count": entry_count,
                    "bytes": size,
                }
                self._write_manifest(files)
        except OSError:  # pragma: no cover - disk full / permissions
            pass

    def _touch_manifest(self, name: str, when: float | None = None) -> None:
        """Bump ``name``'s ``last_used`` (best-effort, loads/touches)."""
        try:
            with self._manifest_lock():
                files = self._read_manifest() or {}
                if name in files:
                    files[name]["last_used"] = (
                        time.time() if when is None else when
                    )
                    self._write_manifest(files)
        except OSError:  # pragma: no cover - disk full / permissions
            pass

    def touch(self, signature: tuple, when: float | None = None) -> None:
        """Record a use of ``signature``'s file at ``when`` (default
        now).

        With an explicit ``when`` the data file's mtime is rewound too,
        so age-based pruning sees the backdated time through both the
        manifest and the reconciliation scan (the eviction property
        tests drive the clock through this).
        """
        path = self._path(signature)
        if when is not None:
            with contextlib.suppress(OSError):
                os.utime(path, (when, when))
        self._touch_manifest(path.name, when)

    def _reconciled_files(self) -> dict[str, dict]:
        """Manifest entries reconciled against the directory.

        The manifest is best-effort, so the directory is the source of
        truth for existence and size: entries for vanished files are
        dropped, files the manifest missed are adopted (their
        ``last_used`` falls back to mtime), and ``last_used`` is the
        max of the recorded value and the file's mtime so a writer
        whose manifest update was lost still reads as fresh.
        """
        recorded = self._read_manifest() or {}
        files: dict[str, dict] = {}
        for path in sorted(self.root.glob("workload-*.json")):
            try:
                st = path.stat()
            except OSError:
                continue
            entry = recorded.get(path.name)
            if entry is None:
                state = self._read(path)
                files[path.name] = {
                    "last_used": st.st_mtime,
                    "entry_count": 0 if state is None else _entry_count(state),
                    "bytes": st.st_size,
                }
            else:
                files[path.name] = {
                    "last_used": max(entry["last_used"], st.st_mtime),
                    "entry_count": entry["entry_count"],
                    "bytes": st.st_size,
                }
        return files

    def scan(self) -> tuple[int, int, int]:
        """Reconciled ``(files, bytes, entries)`` totals of the store."""
        files = self._reconciled_files()
        return (
            len(files),
            sum(entry["bytes"] for entry in files.values()),
            sum(entry["entry_count"] for entry in files.values()),
        )

    def stats(self) -> StoreStats:
        """On-disk totals plus this instance's counters."""
        num_files, num_bytes, num_entries = self.scan()
        return StoreStats(
            files=num_files,
            bytes=num_bytes,
            entries=num_entries,
            **self.counters(),
        )

    def prune(
        self,
        *,
        max_store_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
        protect_touched: bool = True,
        dry_run: bool = False,
    ) -> PruneResult:
        """Evict workload files by age and least-recently-used order.

        Two passes over the reconciled manifest, oldest ``last_used``
        first:

        1. with ``max_age_days``, every file last used more than that
           many days before ``now`` is a victim;
        2. with ``max_store_bytes``, further files are evicted
           LRU-first until the survivors' total size fits the cap.

        Files in this instance's working set (saved or loaded here)
        are skipped while ``protect_touched`` holds, so a prune issued
        mid-campaign can never evict an entry the campaign just wrote;
        cross-process writers are protected by a re-check under the
        per-workload lock — a victim whose mtime or size no longer
        matches what this pass observed is left alone.  ``now`` exists
        for deterministic tests; with ``dry_run`` the victims are
        computed but nothing is deleted.  An evicted signature simply
        loads cold on its next miss.
        """
        started = time.time() if now is None else now
        force_probe = False
        if faults.maybe_inject("prune") == "stale_lock":
            # The ``prune`` injection point: the lifecycle pass finds
            # the manifest lock orphaned by a crashed writer and must
            # break it rather than wedge.
            force_probe = self._plant_stale_lock(
                self.root / "store-manifest.lock"
            )
        with self._manifest_lock(force_probe=force_probe):
            files = self._reconciled_files()
            if not dry_run:
                self._write_manifest(files)
        protected = set(self._touched) if protect_touched else set()
        order = sorted(files, key=lambda n: (files[n]["last_used"], n))
        victims: list[str] = []
        if max_age_days is not None:
            cutoff = started - max_age_days * 86400.0
            victims.extend(
                name
                for name in order
                if files[name]["last_used"] < cutoff and name not in protected
            )
        if max_store_bytes is not None:
            total = sum(entry["bytes"] for entry in files.values())
            total -= sum(files[name]["bytes"] for name in victims)
            for name in order:
                if total <= max_store_bytes:
                    break
                if name in victims or name in protected:
                    continue
                victims.append(name)
                total -= files[name]["bytes"]
        evicted: list[str] = []
        gone: set[str] = set()
        freed = 0
        for name in victims:
            if dry_run:
                evicted.append(name)
                freed += files[name]["bytes"]
                continue
            path = self.root / name
            removed = False
            with self._write_lock(path):
                try:
                    st = path.stat()
                except OSError:
                    st = None  # already gone; still drop the accounting
                if st is not None:
                    if (
                        st.st_mtime > files[name]["last_used"]
                        or st.st_size != files[name]["bytes"]
                    ):
                        # Changed since the pass observed it (a live
                        # writer's merge-save landed): not a victim
                        # anymore.  Compared against the file's own
                        # reconciled accounting, not this process's
                        # wall clock, so clock skew between hosts (or
                        # a lagging filesystem timestamp) cannot let
                        # prune swallow a concurrent write.
                        continue
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    removed = True
                    freed += st.st_size
                with self._manifest_lock():
                    recorded = self._read_manifest()
                    if recorded is not None and name in recorded:
                        del recorded[name]
                        self._write_manifest(recorded)
            if removed:
                self._count("evictions")
                evicted.append(name)
            elif st is None:
                # Vanished before we acted (another pruner won the
                # race): its stale accounting was dropped above, but it
                # is NOT this pass's eviction — reporting it would
                # double-count the deletion across concurrent prunes —
                # and it is not a survivor either.
                gone.add(name)
        kept = [
            name for name in files if name not in gone and name not in evicted
        ]
        return PruneResult(
            evicted=tuple(evicted),
            bytes_freed=freed,
            files_kept=len(kept),
            bytes_kept=sum(files[name]["bytes"] for name in kept),
            dry_run=dry_run,
        )


def _merged(existing: WorkloadState, new: WorkloadState) -> WorkloadState:
    """Union of two states for the same signature (new wins per field
    and per plan shape)."""
    plans: dict[str, list[PlanEntry]] = {}
    for source in (existing, new):
        for context, entries in source.plans.items():
            by_shape = {e[0]: e for e in plans.get(context, [])}
            for entry in entries:
                by_shape[entry[0]] = entry
            plans[context] = list(by_shape.values())
    return WorkloadState(
        signature=new.signature,
        coeffs=new.coeffs if new.coeffs is not None else existing.coeffs,
        comm_model=(
            new.comm_model if new.coeffs is not None else existing.comm_model
        ),
        static_degree=(
            new.static_degree
            if new.static_degree is not None
            else existing.static_degree
        ),
        megatron_strategy=(
            new.megatron_strategy
            if new.megatron_strategy is not None
            else existing.megatron_strategy
        ),
        plans=plans,
    )
