"""Plan data structures shared by the solver, baselines and executor.

An :class:`IterationPlan` is the contract between planning and
execution: a list of micro-batches, each a set of SP groups running
*concurrently*, each group owning a disjoint slice of devices and a
multiset of sequences it processes as one packed varlen batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _merge_kernel_tiers(
    first: tuple[tuple[str, str], ...], second: tuple[tuple[str, str], ...]
) -> tuple[tuple[str, str], ...]:
    """Union two kernel-tier attributions; conflicts become "mixed"."""
    merged = dict(first)
    for name, tier in second:
        if name in merged and merged[name] != tier:
            merged[name] = "mixed"
        else:
            merged[name] = tier
    return tuple(sorted(merged.items()))


class InfeasibleWorkloadError(ValueError):
    """A (workload, strategy) configuration that cannot be scheduled.

    Raised by the baseline planners/tuners when a batch exceeds the
    memory capacity of the requested configuration — the paper's "OOM"
    table corners.  Subclasses ``ValueError`` for backward
    compatibility with callers that catch broadly; sweep machinery
    catches *this* type (plus the solver's ``PlanInfeasibleError``)
    so genuine programming errors are never misreported as OOM cells.
    """


@dataclass(frozen=True)
class SolveStats:
    """Counters describing how one solver ``solve()`` did its work.

    Attributes:
        cache_hits: Micro-batches served from the cross-solve plan
            cache (first encounter in this solve, found cached).
        dedup_hits: Duplicate micro-batch shapes within this solve,
            resolved by reuse without a cache lookup or planner call.
        cache_misses: Shapes that required a planner invocation.
        trials: Micro-batch-count trials attempted.
        microbatches: Total micro-batches across all trials; always
            ``cache_hits + dedup_hits + cache_misses``.
        solve_seconds: Wall-clock of the solve, when measured.
        enumerate_seconds: Wall-clock spent enumerating/pruning
            candidate layouts, bucketing and building the virtual
            group universe (the cold path's first stage).
        lpt_seconds: Wall-clock spent in the stacked/scalar LPT
            placement passes.
        milp_build_seconds: Wall-clock spent assembling MILP value
            blocks and bounds onto the cached constraint skeleton.
        milp_solve_seconds: Wall-clock spent inside HiGHS.
        kernel_tiers: Sorted ``(kernel, tier)`` pairs attributing each
            hot kernel this solve dispatched to the tier that ran it —
            ``"native"`` (compiled, :mod:`repro.core.kernels`),
            ``"fallback"`` (numpy/scalar) or ``"mixed"`` (pooled
            workers disagreed).  Diagnostic only: both tiers produce
            bit-identical plans, so this never enters a determinism
            contract.

    The four stage counters are host wall-clock like
    ``solve_seconds`` — never part of any bit-identical contract —
    and cover planner work wherever it ran (in-process or on a
    service/pool worker; see :mod:`repro.core.stage_timing`).
    """

    cache_hits: int = 0
    dedup_hits: int = 0
    cache_misses: int = 0
    trials: int = 0
    microbatches: int = 0
    solve_seconds: float = 0.0
    enumerate_seconds: float = 0.0
    lpt_seconds: float = 0.0
    milp_build_seconds: float = 0.0
    milp_solve_seconds: float = 0.0
    kernel_tiers: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        # JSON round-trips deliver lists of lists; normalise so
        # deserialised stats compare equal to the originals.
        object.__setattr__(
            self,
            "kernel_tiers",
            tuple(
                (str(name), str(tier)) for name, tier in self.kernel_tiers
            ),
        )

    @property
    def planner_calls(self) -> int:
        """Planner invocations actually executed (one per miss)."""
        return self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of micro-batches that skipped a planner call
        (served from the plan cache or by intra-solve dedup)."""
        reused = self.cache_hits + self.dedup_hits
        total = reused + self.cache_misses
        if total == 0:
            return 0.0
        return reused / total

    def merged(self, other: "SolveStats") -> "SolveStats":
        """Counter-wise sum (for aggregating across solves)."""
        return SolveStats(
            cache_hits=self.cache_hits + other.cache_hits,
            dedup_hits=self.dedup_hits + other.dedup_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            trials=self.trials + other.trials,
            microbatches=self.microbatches + other.microbatches,
            solve_seconds=self.solve_seconds + other.solve_seconds,
            enumerate_seconds=self.enumerate_seconds + other.enumerate_seconds,
            lpt_seconds=self.lpt_seconds + other.lpt_seconds,
            milp_build_seconds=(
                self.milp_build_seconds + other.milp_build_seconds
            ),
            milp_solve_seconds=(
                self.milp_solve_seconds + other.milp_solve_seconds
            ),
            kernel_tiers=_merge_kernel_tiers(
                self.kernel_tiers, other.kernel_tiers
            ),
        )

    def stage_seconds(self) -> dict[str, float]:
        """The cold-path stage breakdown as an ordered dict (the
        ``--profile`` report's unit).  Driven by
        :data:`repro.core.stage_timing.STAGES` — each stage name maps
        onto its ``<stage>_seconds`` field, so the vocabulary cannot
        drift from the collectors'."""
        from repro.core.stage_timing import STAGES

        return {stage: getattr(self, f"{stage}_seconds") for stage in STAGES}


@dataclass(frozen=True)
class SequenceBatch:
    """An ordered collection of raw sequence lengths to plan over."""

    lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.lengths:
            raise ValueError("a sequence batch must be non-empty")
        if any(s <= 0 for s in self.lengths):
            raise ValueError("sequence lengths must be positive")

    @property
    def total_tokens(self) -> int:
        return int(sum(self.lengths))

    @property
    def max_length(self) -> int:
        return int(max(self.lengths))

    def sorted(self) -> "SequenceBatch":
        """Ascending-length copy (the blaster's takeaway-2 ordering)."""
        return SequenceBatch(lengths=tuple(sorted(self.lengths)))


@dataclass(frozen=True)
class GroupAssignment:
    """One SP group in one micro-batch, with its workload.

    Attributes:
        degree: SP degree (group size), a power of two.
        device_ranks: The devices forming the group; contiguous and
            neighbour-aligned under canonical placement.
        lengths: Sequence lengths assigned to this group.  The group
            processes them as a single packed varlen input.
    """

    degree: int
    device_ranks: tuple[int, ...]
    lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.degree <= 0 or self.degree & (self.degree - 1) != 0:
            raise ValueError(f"SP degree must be a power of two, got {self.degree}")
        if len(self.device_ranks) != self.degree:
            raise ValueError(
                f"group of degree {self.degree} must own exactly that many "
                f"devices, got {len(self.device_ranks)}"
            )
        if any(s <= 0 for s in self.lengths):
            raise ValueError("assigned sequence lengths must be positive")

    @property
    def tokens(self) -> int:
        """Total tokens this group processes."""
        return int(sum(self.lengths))

    @property
    def tokens_per_device(self) -> float:
        """Resident tokens per member device."""
        return self.tokens / self.degree


@dataclass(frozen=True)
class MicroBatchPlan:
    """SP groups that execute concurrently for one micro-batch.

    Groups may be heterogeneous in degree — the paper's key departure
    from prior systems — but must occupy disjoint devices.  Empty
    groups are permitted only transiently inside the planner and are
    dropped before a plan is finalised.
    """

    groups: tuple[GroupAssignment, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a micro-batch plan needs at least one group")
        seen: set[int] = set()
        for g in self.groups:
            for r in g.device_ranks:
                if r in seen:
                    raise ValueError(
                        f"device rank {r} appears in more than one SP group"
                    )
                seen.add(r)
        if any(not g.lengths for g in self.groups):
            raise ValueError("finalised plans must not contain empty groups")

    @property
    def devices_used(self) -> int:
        return sum(g.degree for g in self.groups)

    @property
    def tokens(self) -> int:
        return sum(g.tokens for g in self.groups)

    @property
    def num_sequences(self) -> int:
        return sum(len(g.lengths) for g in self.groups)

    def degree_histogram(self) -> dict[int, int]:
        """Count of groups per SP degree, e.g. ``{32: 1, 8: 4}``."""
        hist: dict[int, int] = {}
        for g in self.groups:
            hist[g.degree] = hist.get(g.degree, 0) + 1
        return hist

    def layout(self) -> str:
        """Table-3-style layout string, e.g. ``"<32, 8 x 4>"``."""
        hist = self.degree_histogram()
        parts = []
        for degree in sorted(hist, reverse=True):
            count = hist[degree]
            parts.append(f"{degree} x {count}" if count > 1 else f"{degree}")
        return "<" + ", ".join(parts) + ">"


@dataclass(frozen=True)
class IterationPlan:
    """The full plan for one training step.

    Attributes:
        microbatches: Executed sequentially with gradient accumulation.
        predicted_time: The solver's estimate of execution seconds
            (sum over micro-batches of the planner objective), if known.
        solver_name: Which planner produced this plan.
        stats: Solver-side counters (plan-cache hits/misses, planner
            calls) recorded by the solve that produced this plan; None
            for plans from baselines or deserialised without stats.
    """

    microbatches: tuple[MicroBatchPlan, ...]
    predicted_time: float | None = None
    solver_name: str = "flexsp"
    stats: SolveStats | None = None

    def __post_init__(self) -> None:
        if not self.microbatches:
            raise ValueError("an iteration plan needs at least one micro-batch")

    @property
    def num_microbatches(self) -> int:
        return len(self.microbatches)

    @property
    def tokens(self) -> int:
        return sum(mb.tokens for mb in self.microbatches)

    @property
    def num_sequences(self) -> int:
        return sum(mb.num_sequences for mb in self.microbatches)

    def layouts(self) -> list[str]:
        """Per-micro-batch layout strings (Table 3 format)."""
        return [mb.layout() for mb in self.microbatches]

    def assignment_by_degree(self) -> dict[int, list[int]]:
        """All sequence lengths grouped by the SP degree serving them.

        This is the Fig. 5b view: which lengths went to which degree.
        """
        result: dict[int, list[int]] = {}
        for mb in self.microbatches:
            for g in mb.groups:
                result.setdefault(g.degree, []).extend(g.lengths)
        return result
