"""Sequence blaster (S4.2 and Appendix A).

When a global batch holds more tokens than the cluster can fit, it is
chunked into micro-batches executed sequentially under gradient
accumulation.  The blaster follows the paper's three takeaways:

1. Fewer micro-batches are usually better — start from the smallest
   feasible count ``M_min = ceil(batch_tokens / cluster_capacity)``
   and let the solver try a handful of counts above it.
2. Low length-variance within a micro-batch is better — sort the batch
   by length and cut it into *contiguous* segments.
3. Token counts should be even across micro-batches — choose the cut
   points by dynamic programming minimising the maximum segment token
   sum (Eq. 23/24).
"""

from __future__ import annotations

import math
from collections.abc import Sequence as SequenceABC

import numpy as np

from repro.core import kernels
from repro.core._dp import solve_monotone_layer
from repro.core.types import SequenceBatch

#: The paper's default number of micro-batch-count trials M'.
DEFAULT_NUM_TRIALS = 5


def min_microbatch_count(batch_tokens: float, cluster_token_capacity: float) -> int:
    """Smallest feasible micro-batch count ``M_min`` (takeaway 1)."""
    if batch_tokens <= 0:
        raise ValueError(f"batch_tokens must be positive, got {batch_tokens}")
    if cluster_token_capacity <= 0:
        raise ValueError(
            f"cluster_token_capacity must be positive, got {cluster_token_capacity}"
        )
    return max(1, math.ceil(batch_tokens / cluster_token_capacity))


def balanced_cut_points(lengths: SequenceABC[int], num_chunks: int) -> list[int]:
    """Cut a sorted length list into chunks with balanced token sums.

    Implements the Appendix A dynamic program: ``DP[k][i]`` is the best
    achievable maximum chunk-token-sum when splitting the first ``k``
    sequences into ``i`` chunks,

        DP[k][i] = min_j max(DP[j][i-1], sum(s_{j+1}..s_k)).

    Args:
        lengths: Sequence lengths, already sorted (takeaway 2 ordering).
        num_chunks: Number of chunks M; must not exceed ``len(lengths)``.

    Returns:
        Ending indices ``j_1 < ... < j_M = len(lengths)`` such that
        chunk ``i`` covers ``[j_{i-1}, j_i)``.
    """
    return balanced_cut_points_multi(lengths, (num_chunks,))[num_chunks]


def balanced_cut_points_multi(
    lengths: SequenceABC[int], chunk_counts: SequenceABC[int]
) -> dict[int, list[int]]:
    """Cut points for *several* chunk counts from one shared DP.

    The Appendix A recurrence ``DP[k][i] = min_j max(DP[j][i-1],
    sum(s_{j+1}..s_k))`` is independent of the final chunk count M —
    layer ``i`` is the same table whatever M the caller backtracks
    for.  The solver's trial loop blasts the *same sorted batch* at
    ``M_min .. M_min + M' - 1``, so running the layers once up to
    ``max(chunk_counts)`` and backtracking each requested count from
    the shared choice matrix does the work of M' separate DPs for the
    price of one; every count's cuts are bit-identical to an
    independent :func:`balanced_cut_points` call.

    Returns:
        ``{count: cuts}`` for every requested count (duplicates
        collapse onto one entry).
    """
    k_total = len(lengths)
    counts = sorted(set(int(c) for c in chunk_counts))
    if not counts:
        raise ValueError("need at least one chunk count")
    if counts[0] <= 0:
        raise ValueError(f"num_chunks must be positive, got {counts[0]}")
    if counts[-1] > k_total:
        raise ValueError(
            f"cannot split {k_total} sequences into {counts[-1]} non-empty "
            "micro-batches"
        )
    results: dict[int, list[int]] = {}
    # Trivial splits need no DP: one chunk takes everything; as many
    # chunks as sequences forces singleton chunks.
    if counts[0] == 1:
        results[1] = [k_total]
    if counts[-1] == k_total:
        results[k_total] = list(range(1, k_total + 1))
    needed = [c for c in counts if c not in results]
    if not needed:
        return results
    max_chunks = needed[-1]
    arr = np.asarray(lengths, dtype=np.int64)
    prefix = np.concatenate(([0], np.cumsum(arr)))

    # Each DP layer has monotone leftmost argmins: the chunk sum
    # ``prefix[k] - prefix[j]`` shifts by a positive constant as k
    # grows (lengths are positive) while DP[j][i-1] is nondecreasing
    # in j, so the f/segment crossing point only moves right — the
    # shared level-batched divide-and-conquer argmin applies.
    if kernels.use_native("blaster_dp"):
        kernels.note("blaster_dp", "native")
        empty = prefix[:0]
        choice = kernels.native("blaster_dp")(
            1, empty, empty, empty, prefix, k_total, max_chunks
        )
    else:
        kernels.note("blaster_dp", "fallback")
        inf = kernels.DP_INF
        dp = np.full(k_total + 1, inf, dtype=np.int64)
        dp[0] = 0
        choice = np.zeros((k_total + 1, max_chunks + 1), dtype=np.int64)
        for i in range(1, max_chunks + 1):
            new_dp = np.full(k_total + 1, inf, dtype=np.int64)

            def flat_cost(k, lens, flat_j):
                seg = np.repeat(prefix[k], lens) - prefix[flat_j]
                return np.maximum(dp[flat_j], seg)

            def assign(k, best, opt):
                new_dp[k] = best
                choice[k, i] = opt

            solve_monotone_layer(
                i, k_total, i - 1, k_total - 1, flat_cost, assign
            )
            dp = new_dp

    for num_chunks in needed:
        cuts: list[int] = []
        k = k_total
        for i in range(num_chunks, 0, -1):
            cuts.append(k)
            k = int(choice[k][i])
        cuts.reverse()
        results[num_chunks] = cuts
    return results


def blast(
    batch: SequenceBatch, num_microbatches: int, sort: bool = True
) -> list[SequenceBatch]:
    """Blast a global batch into ``num_microbatches`` micro-batches.

    Args:
        batch: The global batch.
        num_microbatches: Number of micro-batches M.
        sort: Apply takeaway-2 length sorting before cutting.  The
            Fig. 7 "w/o Sort" ablation sets this False, cutting the
            batch in its arrival order instead.

    Returns:
        Micro-batches in execution order; their concatenation is a
        permutation of the input batch.
    """
    lengths = list(batch.lengths)
    if sort:
        lengths.sort()
    cuts = balanced_cut_points(lengths, num_microbatches)
    out: list[SequenceBatch] = []
    start = 0
    for end in cuts:
        out.append(SequenceBatch(lengths=tuple(lengths[start:end])))
        start = end
    return out


def blast_multi(
    batch: SequenceBatch, counts: SequenceABC[int], sort: bool = True
) -> dict[int, list[SequenceBatch]]:
    """Blast one batch at several micro-batch counts in one DP pass.

    The solver's trial sweep calls this once instead of :func:`blast`
    per trial: the batch is sorted once and the balanced-cut DP runs
    once to the largest count (see :func:`balanced_cut_points_multi`).
    Counts that cannot split the batch (more chunks than sequences)
    are simply absent from the result, mirroring the ``ValueError``
    the per-trial loop used to swallow.

    Returns:
        ``{count: micro-batches}``, each entry bit-identical to
        ``blast(batch, count, sort)``.
    """
    lengths = list(batch.lengths)
    if sort:
        lengths.sort()
    feasible = [c for c in counts if 0 < c <= len(lengths)]
    if not feasible:
        return {}
    all_cuts = balanced_cut_points_multi(lengths, feasible)
    out: dict[int, list[SequenceBatch]] = {}
    for count, cuts in all_cuts.items():
        microbatches: list[SequenceBatch] = []
        start = 0
        for end in cuts:
            microbatches.append(SequenceBatch(lengths=tuple(lengths[start:end])))
            start = end
        out[count] = microbatches
    return out


def max_microbatch_tokens(microbatches: SequenceABC[SequenceBatch]) -> int:
    """Largest token load among micro-batches (the Eq. 23 objective)."""
    if not microbatches:
        raise ValueError("no micro-batches given")
    return max(mb.total_tokens for mb in microbatches)
