"""Deterministic fault-injection plane for chaos-testing campaigns.

A training/inference campaign that serves real traffic must survive
its own infrastructure: a sweep worker dying mid-cell, a cache-store
write torn by a crash, a lock file orphaned by a killed writer, a
cell that simply hangs.  This module lets tests and benchmarks *make
those things happen on purpose*, deterministically, so the recovery
machinery in :mod:`repro.experiments.sweep` and
:mod:`repro.core.cache_store` is exercised by CI instead of waiting
for production to exercise it.

Model:

* **Injection points** are named sites the production code visits via
  :func:`maybe_inject` — ``cell`` (sweep worker cell execution),
  ``spill`` (cache-store save), ``lock`` (store write-lock
  acquisition), ``prune`` (store lifecycle pass), ``plan`` (solver
  pool/service worker task), ``spawn`` (sweep worker initialisation),
  ``drain`` (sweep worker flush), ``prewarm`` (the runner's cold-
  batching pass), plus the plan-transport network sites ``accept``
  (the TCP listener admitting a connection), ``handshake`` (the
  version/signature exchange), ``recv`` (reading a request frame) and
  ``send`` (writing a response frame) — all visited server-side by
  :mod:`repro.service.transport`.  When no schedule is armed, a visit
  is one module-global read and a ``None`` check — zero overhead on
  the hot path.
* A **fault spec** is ``kind@site[:occurrence]``: ``worker_kill@cell``
  (die on the first cell), ``torn_write@spill:2`` (tear the third
  save), ``hang@cell:1``, ``stale_lock@prune``, or
  ``worker_kill@cell:*`` (die on *every* cell — the repeated-death
  schedule that forces graduated recovery all the way down to serial
  execution).  Kinds: ``worker_kill`` (``os._exit`` on the spot),
  ``hang`` (sleep :attr:`FaultSchedule.hang_seconds`, for the
  watchdog to kill), ``torn_write`` and ``stale_lock`` (realised by
  the cache store itself — a truncated non-atomic data write, a lock
  file stamped with a dead holder pid), and the network kinds
  realised by the plan transport: ``conn_reset`` (the connection is
  aborted with an RST at the site), ``torn_frame`` (half a
  length-prefixed frame is written, then the connection reset),
  ``delay`` (the site stalls :attr:`FaultSchedule.delay_seconds` — a
  slow peer), ``drop_response`` (the response is solved, recorded,
  and silently never sent — the client must retry and re-attach).
* A :class:`FaultSchedule` groups specs with a seed and a **record
  ledger** — an append-only file, shared by every process the
  schedule reaches (pool initializers ship it to workers).  Each
  firing is appended *before* the fault is realised, so a worker that
  ``os._exit``\\ s still leaves an exact record; integer-occurrence
  specs are gated through the ledger to fire **once globally**
  (otherwise ``worker_kill@cell:0`` would kill every restarted worker
  forever and recovery could never converge), while ``*`` specs fire
  on every visit in every process.

The contract the injection plane exists to verify is the repo-wide
bit-identity invariant: **any fault schedule yields campaign results
bit-identical to the fault-free serial pass** — faults and the
recovery they trigger move *where and when* cells run, never what
they measure.  :class:`FaultStats` is the recovery side's report card
(surfaced on :class:`~repro.experiments.sweep.SweepResult`, in the
campaign summary's ``"faults"`` block and by ``python -m repro.bench
--campaign ... --profile``).
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import pathlib
import random
import tempfile
import threading
import time
from dataclasses import dataclass

try:  # pragma: no cover - import guard
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "FAULT_KINDS",
    "INJECTION_SITES",
    "NETWORK_FAULT_MENU",
    "RANDOM_FAULT_MENU",
    "FaultSchedule",
    "FaultSpec",
    "FaultStats",
    "arm",
    "active_schedule",
    "armed",
    "dead_pid",
    "disarm",
    "maybe_inject",
]

#: Fault kinds a spec may request.
FAULT_KINDS = (
    "worker_kill",
    "torn_write",
    "stale_lock",
    "hang",
    "conn_reset",
    "torn_frame",
    "delay",
    "drop_response",
)

#: Registered injection-point names (see the module docstring).
INJECTION_SITES = (
    "cell",
    "spill",
    "lock",
    "prune",
    "plan",
    "spawn",
    "drain",
    "prewarm",
    "accept",
    "handshake",
    "recv",
    "send",
)

#: The (kind, site) pairs a seeded random schedule draws from — every
#: combination here is survivable by the graduated recovery policy
#: (``worker_kill@prewarm`` is deliberately absent: the prewarm pass
#: runs in the campaign's parent process, where a kill is not a fault
#: to recover from but the campaign ending).
RANDOM_FAULT_MENU = (
    ("worker_kill", "cell"),
    ("worker_kill", "spawn"),
    ("worker_kill", "drain"),
    ("worker_kill", "plan"),
    ("hang", "cell"),
    ("torn_write", "spill"),
    ("stale_lock", "lock"),
    ("stale_lock", "prune"),
)

#: The network (kind, site) pairs the plan-transport chaos benchmark
#: sweeps — every combination is survivable by the
#: :class:`~repro.service.transport.PlanClient` deadline/retry/backoff
#: ladder (with degradation to an in-process service as the last
#: rung).  Kept separate from :data:`RANDOM_FAULT_MENU`: the sweep's
#: graduated recovery never visits these sites, so drawing them there
#: would produce schedules that cannot fire.
NETWORK_FAULT_MENU = (
    ("conn_reset", "accept"),
    ("conn_reset", "handshake"),
    ("conn_reset", "recv"),
    ("conn_reset", "send"),
    ("torn_frame", "handshake"),
    ("torn_frame", "send"),
    ("delay", "accept"),
    ("delay", "recv"),
    ("delay", "send"),
    ("drop_response", "send"),
)

#: Exit status of a worker killed by ``worker_kill`` (diagnostic only;
#: the parent sees the death as ``BrokenProcessPool`` either way).
KILLED_EXIT_CODE = 113


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: ``kind@site[:occurrence]``.

    Attributes:
        kind: What happens (a :data:`FAULT_KINDS` member).
        site: Where it happens (an :data:`INJECTION_SITES` member).
        occurrence: Which visit of ``site`` fires it — ``0`` (the
            default) is the first visit, counted per process; ``None``
            (spelled ``*``) fires on every visit.  Integer specs fire
            **once globally** (ledger-gated across processes and
            worker restarts); ``*`` specs fire every time.
    """

    kind: str
    site: str
    occurrence: int | None = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; options: "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.site not in INJECTION_SITES:
            raise ValueError(
                f"unknown injection site {self.site!r}; options: "
                f"{sorted(INJECTION_SITES)}"
            )
        if self.occurrence is not None and self.occurrence < 0:
            raise ValueError(
                f"occurrence must be non-negative or None, got "
                f"{self.occurrence}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind@site[:N|*]`` spec string."""
        text = text.strip()
        if "@" not in text:
            raise ValueError(
                f"fault spec {text!r} is not of the form kind@site[:N|*]"
            )
        kind, _, rest = text.partition("@")
        site, sep, occurrence_text = rest.partition(":")
        if not sep:
            occurrence: int | None = 0
        elif occurrence_text == "*":
            occurrence = None
        else:
            try:
                occurrence = int(occurrence_text)
            except ValueError:
                raise ValueError(
                    f"fault occurrence must be an integer or '*', got "
                    f"{occurrence_text!r} in {text!r}"
                ) from None
        return cls(kind=kind.strip(), site=site.strip(), occurrence=occurrence)

    @property
    def label(self) -> str:
        """The ``kind@site`` name injections are recorded under."""
        return f"{self.kind}@{self.site}"

    def __str__(self) -> str:
        suffix = ":*" if self.occurrence is None else f":{self.occurrence}"
        return f"{self.label}{suffix}"


@dataclass(frozen=True)
class FaultSchedule:
    """A reproducible set of fault specs plus their shared ledger.

    Picklable (it rides pool initializers into worker processes) and
    frozen; the mutable cross-process state lives in the
    ``record_path`` ledger file, never in the object.

    Attributes:
        specs: The fault specs, in declaration order.
        seed: Seed the schedule was derived from (recorded for
            reproducibility; :meth:`single_random` draws from it).
        record_path: Append-only ledger file shared by every process
            this schedule is armed in.  Auto-generated under the
            temp directory when empty.
        hang_seconds: How long a ``hang`` fault sleeps.  Deliberately
            longer than any sane watchdog timeout — a hang is only
            survivable because the watchdog kills the sleeper.
        delay_seconds: How long a ``delay`` network fault stalls its
            site.  Deliberately *shorter* than any sane transport
            I/O timeout — a slow peer is absorbed, not retried.
    """

    specs: tuple[FaultSpec, ...]
    seed: int = 0
    record_path: str = ""
    hang_seconds: float = 120.0
    delay_seconds: float = 0.25

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.hang_seconds <= 0:
            raise ValueError(
                f"hang_seconds must be positive, got {self.hang_seconds}"
            )
        if self.delay_seconds <= 0:
            raise ValueError(
                f"delay_seconds must be positive, got {self.delay_seconds}"
            )
        if not self.record_path:
            fd, path = tempfile.mkstemp(
                prefix="repro-fault-ledger-", suffix=".log"
            )
            os.close(fd)
            object.__setattr__(self, "record_path", path)

    @classmethod
    def parse(cls, text: str, seed: int = 0, **kwargs) -> "FaultSchedule":
        """Parse a comma-separated spec list, e.g.
        ``"worker_kill@cell:3,torn_write@spill"``."""
        specs = tuple(
            FaultSpec.parse(part) for part in text.split(",") if part.strip()
        )
        if not specs:
            raise ValueError(f"no fault specs in {text!r}")
        return cls(specs=specs, seed=seed, **kwargs)

    @classmethod
    def single_random(cls, seed: int, **kwargs) -> "FaultSchedule":
        """One seeded random fault from :data:`RANDOM_FAULT_MENU` —
        the ``--fault-seed N`` (without ``--inject-faults``) schedule:
        every seed deterministically maps to one (kind, site,
        occurrence) triple."""
        rng = random.Random(seed)
        kind, site = rng.choice(RANDOM_FAULT_MENU)
        occurrence = rng.randint(0, 2)
        return cls(
            specs=(FaultSpec(kind=kind, site=site, occurrence=occurrence),),
            seed=seed,
            **kwargs,
        )

    def read_ledger(self) -> list[str]:
        """Every recorded injection so far, as ``kind@site`` labels in
        firing order (the accounting half of the ledger; the gating
        half is internal to the plane)."""
        labels = []
        for line in _ledger_lines(self.record_path):
            parts = line.split(" ", 1)
            if len(parts) == 2:
                labels.append(parts[1])
        return labels

    def injection_counts(self) -> dict[str, int]:
        """Ledger totals per ``kind@site`` label."""
        counts: dict[str, int] = {}
        for label in self.read_ledger():
            counts[label] = counts.get(label, 0) + 1
        return counts

    def __str__(self) -> str:
        return ",".join(str(spec) for spec in self.specs)


@dataclass(frozen=True)
class FaultStats:
    """One sweep pass's fault-and-recovery accounting.

    Everything here is host-side bookkeeping — never part of the
    bit-identical metrics contract (which is exactly what it exists to
    defend).

    Attributes:
        injections: ``(kind@site, count)`` pairs of faults actually
            realised during the pass (from the schedule's ledger).
        cell_retries: Cells resubmitted after their slot died (the
            first escalation rung, with deterministic bounded
            backoff).
        pool_restarts: Slot worker pools torn down and lazily
            restarted (the second rung).
        shard_reassignments: Shards moved off a retired slot to
            surviving slots (the third rung).
        degraded_cells: Cells that fell all the way to serial
            in-process execution (the final rung — pools kept dying).
        watchdog_kills: Hung flights killed by the watchdog timeout.
        lock_breaks: Stale store locks (dead recorded holder) safely
            broken during the pass.
    """

    injections: tuple[tuple[str, int], ...] = ()
    cell_retries: int = 0
    pool_restarts: int = 0
    shard_reassignments: int = 0
    degraded_cells: int = 0
    watchdog_kills: int = 0
    lock_breaks: int = 0

    @property
    def total_injections(self) -> int:
        return sum(count for _, count in self.injections)

    def to_dict(self) -> dict:
        """JSON-ready form (the campaign summary's ``"faults"`` block)."""
        return {
            "injections": dict(self.injections),
            "total_injections": self.total_injections,
            "cell_retries": self.cell_retries,
            "pool_restarts": self.pool_restarts,
            "shard_reassignments": self.shard_reassignments,
            "degraded_cells": self.degraded_cells,
            "watchdog_kills": self.watchdog_kills,
            "lock_breaks": self.lock_breaks,
        }


# ---------------------------------------------------------------------------
# The armed plane.  One module-global slot: maybe_inject() is a single
# global read plus a None check when disarmed, so production code can
# visit injection sites unconditionally.
# ---------------------------------------------------------------------------


class _FaultPlane:
    """Per-process view of an armed schedule (visit counters + ledger)."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._visits = [0] * len(schedule.specs)
        self._lock = threading.Lock()

    def visit(self, site: str) -> str | None:
        """Count a site visit; realise and/or report any fault it fires.

        Process faults (``worker_kill``, ``hang``) are realised here —
        a kill records its ledger line first and never returns; a hang
        sleeps and then continues (the watchdog is expected to kill
        the sleeper long before the nap ends).  Data faults
        (``torn_write``, ``stale_lock``) and the network kinds
        (``conn_reset``, ``torn_frame``, ``delay``, ``drop_response``)
        are returned as the fired kind for the *caller* to realise —
        only the cache store knows what a torn write means, and only
        the plan transport knows what resetting a connection means.
        """
        fired_kind: str | None = None
        for index, spec in enumerate(self.schedule.specs):
            if spec.site != site:
                continue
            with self._lock:
                count = self._visits[index]
                self._visits[index] = count + 1
            if spec.occurrence is None:
                self._record(index, spec, gate=False)
            elif count != spec.occurrence or not self._record(
                index, spec, gate=True
            ):
                continue
            if spec.kind == "worker_kill":
                os._exit(KILLED_EXIT_CODE)
            if spec.kind == "hang":
                time.sleep(self.schedule.hang_seconds)
                continue
            if fired_kind is None:
                fired_kind = spec.kind
        return fired_kind

    def _record(self, index: int, spec: FaultSpec, gate: bool) -> bool:
        """Append a firing to the ledger; with ``gate``, refuse when
        the spec already fired anywhere (once-globally semantics).

        The check-then-append runs under an flock on a sibling lock
        file, so two workers reaching the same occurrence concurrently
        cannot both fire a once-only spec.  Recording happens *before*
        realisation — a ``worker_kill`` leaves its line behind.
        """
        path = self.schedule.record_path
        marker = f"{index} "
        with _ledger_locked(path):
            if gate and any(
                line.startswith(marker) for line in _ledger_lines(path)
            ):
                return False
            try:
                with open(path, "a") as ledger:
                    ledger.write(f"{index} {spec.label}\n")
                    ledger.flush()
                    os.fsync(ledger.fileno())
            except OSError:  # pragma: no cover - ledger volume vanished
                pass
        return True


def _ledger_lines(path: str) -> list[str]:
    try:
        return pathlib.Path(path).read_text().splitlines()
    except OSError:
        return []


@contextlib.contextmanager
def _ledger_locked(path: str):
    """Short blocking flock guarding the ledger's check-then-append."""
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    with open(path + ".lock", "a+") as lock:
        fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock.fileno(), fcntl.LOCK_UN)


_ACTIVE: _FaultPlane | None = None


def arm(schedule: FaultSchedule | None) -> None:
    """Arm ``schedule`` in this process (None disarms).

    Worker processes are armed through their pool initializers (the
    sweep's slot pools and the solver pools ship the parent's active
    schedule); the parent arms around each sweep pass.
    """
    global _ACTIVE
    _ACTIVE = None if schedule is None else _FaultPlane(schedule)


def disarm() -> None:
    """Disarm the plane (visits become free again)."""
    arm(None)


def active_schedule() -> FaultSchedule | None:
    """The armed schedule, if any (what pool initializers ship)."""
    plane = _ACTIVE
    return None if plane is None else plane.schedule


@contextlib.contextmanager
def armed(schedule: FaultSchedule | None):
    """Scoped arm/disarm (restores whatever was armed before)."""
    previous = active_schedule()
    arm(schedule)
    try:
        yield
    finally:
        arm(previous)


def maybe_inject(site: str) -> str | None:
    """Visit injection point ``site``.

    Returns the kind of a fired *data or network* fault
    (``torn_write`` / ``stale_lock`` / ``conn_reset`` / ``torn_frame``
    / ``delay`` / ``drop_response``) for the caller to realise, or
    None.  Process faults are realised inline (``worker_kill`` does
    not return).  Disarmed, this is one global read and a None check.
    """
    plane = _ACTIVE
    if plane is None:
        return None
    return plane.visit(site)


def dead_pid() -> int:
    """A pid guaranteed to belong to no live process (fork a child
    that exits immediately and reap it) — what the ``stale_lock``
    realisation stamps into a lock file as the "crashed" holder."""
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        return 2**31 - 1
    pid = os.fork()
    if pid == 0:  # pragma: no cover - the throwaway child
        os._exit(0)
    os.waitpid(pid, 0)
    return pid
