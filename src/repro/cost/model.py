"""The extended alpha-beta cost model (Eqs. 11-14).

FlexSP extends the classic alpha-beta model ``T = alpha * W + beta`` by
making sequence length the independent variable:

* compute (Eq. 12):
  ``T_comp = (1/d) * sum_k(alpha1 * s_k^2 + alpha2 * s_k) + beta1``
* communication (Eq. 13):
  ``T_comm = (1/(d * v_d)) * sum_k(alpha3 * s_k) + beta2``
* memory (Eq. 11):
  ``Mem = (sum_k s_k / d) * M_token + M_ms``

where ``d`` is the SP degree and ``v_d`` the profiled per-GPU bandwidth
of a degree-``d`` group under canonical placement.  All terms are
linear in the assignment variables, which is what lets the planner be
a MILP.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.topology import ClusterSpec


@dataclass(frozen=True)
class CostCoefficients:
    """Fitted coefficients of the extended alpha-beta model.

    Attributes:
        alpha1: Seconds per (token^2 / device) of attention compute.
        alpha2: Seconds per (token / device) of linear-module compute.
        beta1: Fixed compute overhead per micro-batch, seconds.
        alpha3: Communication *work* per token (bytes-equivalent); the
            time contribution is ``alpha3 * s / (d * v_d)``.
        beta2: Fixed communication startup overhead, seconds.
        memory_per_token: Activation bytes per resident token, M_token.
        model_state_bytes: Per-device model-state bytes, M_ms.
        zero_gather_seconds: Raw ZeRO-3 parameter All-Gather seconds
            per micro-batch (a profiled constant, independent of the
            SP layout); partially hidden behind compute.
        zero_overlap: Fraction of the gather hideable behind compute.
    """

    alpha1: float
    alpha2: float
    beta1: float
    alpha3: float
    beta2: float
    memory_per_token: float
    model_state_bytes: float
    zero_gather_seconds: float = 0.0
    zero_overlap: float = 0.85

    def __post_init__(self) -> None:
        for name in ("alpha1", "alpha2", "alpha3", "memory_per_token"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("beta1", "beta2", "model_state_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class CostModel:
    """Evaluates time and memory of SP-group workloads (Eqs. 11-14).

    Attributes:
        coeffs: Fitted alpha-beta coefficients.
        cluster: Supplies per-degree bandwidths ``v_d``, device memory
            budget ``E`` and the candidate-degree universe.
        comm_model: ``"alltoall"`` for Ulysses SP (the paper's default)
            or ``"ring"`` for ring-attention context parallelism — the
            Appendix E extension, where FlexSP's planner drives
            flexible CP groups instead.  ``alpha3`` is fit against the
            matching ground truth, and the per-token communication time
            scales as ``1/d`` for All-to-All but as ``(d-1)/d`` (nearly
            degree-independent) for the KV ring.
    """

    coeffs: CostCoefficients
    cluster: ClusterSpec
    comm_model: str = "alltoall"
    _bandwidth_cache: dict[int, float] = field(
        default_factory=dict, compare=False, hash=False, repr=False
    )
    _table_cache: dict[str, "CostTable"] = field(
        default_factory=dict, compare=False, hash=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.comm_model not in ("alltoall", "ring"):
            raise ValueError(
                f"comm_model must be 'alltoall' or 'ring', got {self.comm_model!r}"
            )

    def bandwidth(self, degree: int) -> float:
        """Profiled per-GPU All-to-All bandwidth ``v_d`` of a degree-``d`` group.

        This is the *effective algorithmic* bandwidth the paper's
        profiling would observe: the physical link rate divided by the
        ``(d-1)/d`` wire fraction of an All-to-All, so that Eq. 13 with
        a single ``alpha_3`` is exact across degrees.
        """
        if degree not in self._bandwidth_cache:
            if degree == 1:
                self._bandwidth_cache[degree] = float("inf")
            else:
                link = self.cluster.link_for_degree(degree)
                wire_fraction = (degree - 1) / degree
                self._bandwidth_cache[degree] = link.bandwidth / wire_fraction
        return self._bandwidth_cache[degree]

    @property
    def memory_budget(self) -> float:
        """Per-device memory budget ``E`` in bytes."""
        return self.cluster.gpu.usable_memory_bytes

    def compute_time(self, lengths: Iterable[int], degree: int) -> float:
        """Eq. 12: per-device compute seconds of a group's workload."""
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        work = sum(
            self.coeffs.alpha1 * s * s + self.coeffs.alpha2 * s for s in lengths
        )
        return work / degree + self.coeffs.beta1

    def comm_seconds_per_token(self, degree: int) -> float:
        """Communication seconds contributed by one assigned token.

        This is the coefficient the MILP places on each assignment
        variable: ``alpha3 / (d * v_d)`` for Ulysses All-to-All
        (Eq. 13), or ``alpha3 * (d-1)/d / v_d`` for the CP ring, whose
        per-GPU rotation volume does not shrink with the group size.
        """
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        if degree == 1:
            return 0.0
        if self.comm_model == "alltoall":
            return self.coeffs.alpha3 / (degree * self.bandwidth(degree))
        link = self.cluster.link_for_degree(degree)
        return self.coeffs.alpha3 * (degree - 1) / degree / link.bandwidth

    def comm_time(self, lengths: Iterable[int], degree: int) -> float:
        """Eq. 13: sequence-scattering communication seconds."""
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        if degree == 1:
            return 0.0
        per_token = self.comm_seconds_per_token(degree)
        return per_token * sum(lengths) + self.coeffs.beta2

    def time(self, lengths: Iterable[int], degree: int) -> float:
        """Eq. 14: total group seconds (compute + communication)."""
        lengths = list(lengths)
        return self.compute_time(lengths, degree) + self.comm_time(lengths, degree)

    def time_with_overheads(self, lengths: Iterable[int], degree: int) -> float:
        """Eq. 14 plus the exposed ZeRO-3 gather (S4.1.2's extension).

        The raw per-micro-batch gather ``g`` is hidden behind compute
        up to ``zero_overlap * g``, giving the piecewise-linear form
        ``max(comp + comm + (1 - ov) * g, comm + g)`` — both branches
        linear in the assignment, so the MILP stays a MILP.
        """
        lengths = list(lengths)
        comp = self.compute_time(lengths, degree)
        comm = self.comm_time(lengths, degree)
        gather = self.coeffs.zero_gather_seconds
        if gather <= 0:
            return comp + comm
        exposed_branch = comp + comm + (1.0 - self.coeffs.zero_overlap) * gather
        gather_bound_branch = comm + gather
        return max(exposed_branch, gather_bound_branch)

    def memory(self, lengths: Iterable[int], degree: int) -> float:
        """Eq. 11: per-device bytes of a group's workload."""
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        tokens = sum(lengths)
        return (
            tokens / degree * self.coeffs.memory_per_token
            + self.coeffs.model_state_bytes
        )

    def fits(self, lengths: Iterable[int], degree: int) -> bool:
        """Whether the workload satisfies the memory constraint (Cond. 7)."""
        return self.memory(lengths, degree) <= self.memory_budget

    def max_tokens_per_device(self) -> float:
        """Largest resident token count one device can hold."""
        budget = self.memory_budget - self.coeffs.model_state_bytes
        if budget <= 0:
            raise ValueError(
                "model states alone exceed device memory; use more devices "
                "or a smaller model"
            )
        return budget / self.coeffs.memory_per_token

    def cluster_token_capacity(self) -> float:
        """Tokens the whole cluster can hold in one micro-batch.

        This is the denominator of the blaster's minimum-micro-batch
        count ``M_min = ceil(batch_tokens / cluster_capacity)``.
        """
        return self.max_tokens_per_device() * self.cluster.num_gpus

    def min_degree_for_sequence(self, seq_len: int) -> int | None:
        """Smallest power-of-two SP degree that fits one sequence alone.

        Returns None when even the full cluster cannot fit it.
        """
        if seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {seq_len}")
        degree = 1
        while degree <= self.cluster.num_gpus:
            if self.fits([seq_len], degree):
                return degree
            degree *= 2
        return None


class CostTable:
    """Vectorized view of a :class:`CostModel` over all candidate degrees.

    The solver loop evaluates Eqs. 11-14 millions of times per solve —
    once per (bucket, virtual group) pair in the MILP assembly and once
    per (sequence, group) step of the greedy LPT incumbent.  The scalar
    :class:`CostModel` methods rebuild every per-degree constant
    (``v_d`` lookups, ``alpha3 / (d * v_d)``, branch betas) on each
    call; this table precomputes them **once per solve** as numpy
    arrays aligned with the power-of-two degree universe, so the hot
    paths reduce to elementwise array arithmetic and dot products.

    Exactness: every per-entry expression replicates the scalar
    formula operation-for-operation (same IEEE-754 double ops in the
    same order), so coefficients produced from the table are
    bit-identical to the scalar path; only reductions over *many*
    lengths (``np.dot``) may differ from Python's sequential ``sum``
    in the last ulp, which is why :meth:`time_with_overheads` is
    documented to agree with the scalar model to ~1e-9 relative.

    Attributes:
        model: The wrapped scalar model.
        degrees: Ascending power-of-two degree universe (1..N).
    """

    def __init__(self, model: CostModel, degrees: Iterable[int] | None = None):
        self.model = model
        coeffs = model.coeffs
        if degrees is None:
            degrees = []
            d = 1
            while d <= model.cluster.num_gpus:
                degrees.append(d)
                d *= 2
        self.degrees: tuple[int, ...] = tuple(int(d) for d in degrees)
        if not self.degrees:
            raise ValueError("CostTable needs at least one candidate degree")
        self.degree_index: dict[int, int] = {
            d: i for i, d in enumerate(self.degrees)
        }
        n = len(self.degrees)
        self.degree_arr = np.asarray(self.degrees, dtype=np.float64)
        #: ``alpha3``-derived communication seconds per assigned token,
        #: per degree (0 for degree 1), exactly comm_seconds_per_token.
        self.comm_per_token = np.asarray(
            [model.comm_seconds_per_token(d) for d in self.degrees]
        )
        #: beta2 where the degree communicates, else 0 (degree 1).
        self.comm_beta = np.asarray(
            [coeffs.beta2 if d > 1 else 0.0 for d in self.degrees]
        )
        self.alpha1 = coeffs.alpha1
        self.alpha2 = coeffs.alpha2
        self.beta1 = coeffs.beta1
        self.gather = coeffs.zero_gather_seconds
        self.exposed_gather = (1.0 - coeffs.zero_overlap) * self.gather
        self.memory_per_token = coeffs.memory_per_token
        self.model_state_bytes = coeffs.model_state_bytes
        #: Per-degree activation-token capacity — the exact cap the MILP
        #: memory rows and the greedy LPT feasibility check use.
        budget = model.memory_budget - coeffs.model_state_bytes
        self.activation_budget = budget
        if budget > 0:
            self.token_caps = budget / coeffs.memory_per_token * self.degree_arr
        else:
            self.token_caps = np.zeros(n)
        #: Cold-path memos keyed by problem *structure*: the greedy
        #: planner's stacked candidate-layout family per memory class
        #: (``d_big``) and the MILP's assembled constraint skeletons
        #: per (bucket count, degree list).  Both caches live exactly
        #: as long as this table (== the model instance), so repeated
        #: solves and persistent pool workers enumerate/assemble once.
        #: Layout stacks are bounded by the power-of-two degree
        #: universe; skeleton keys vary with batch length
        #: distributions, so the planner LRU-caps that dict (see
        #: ``repro.core.planner._skeleton``).
        self.layout_stacks: dict = {}
        self.milp_skeletons: "OrderedDict" = OrderedDict()

    # ------------------------------------------------------------------
    # Elementwise kernels (bit-identical to the scalar path).
    # ------------------------------------------------------------------

    def work_terms(self, lengths) -> np.ndarray:
        """Eq. 12 quadratic work per sequence: ``alpha1 s^2 + alpha2 s``."""
        s = np.asarray(lengths, dtype=np.float64)
        return self.alpha1 * s * s + self.alpha2 * s

    def milp_time_coefficients(self, uppers, degree: int) -> np.ndarray:
        """Eq. 18 coefficient of one assignment variable per bucket.

        ``(alpha1 s^2 + alpha2 s) / d + comm_per_token(d) * s`` for
        every bucket upper ``s`` — the compute-branch row of the MILP,
        bit-identical to the scalar inner loop it replaces.
        """
        s = np.asarray(uppers, dtype=np.float64)
        idx = self.degree_index[degree]
        w = (self.alpha1 * s * s + self.alpha2 * s) / degree
        return w + self.comm_per_token[idx] * s

    def group_time(self, work: float, tokens: float, degree: int) -> float:
        """Eq. 14 + exposed gather from *accumulated* sums.

        ``work`` must be the sequential sum of :meth:`work_terms` in
        assignment order and ``tokens`` the token sum; then this equals
        ``CostModel.time_with_overheads`` bit-for-bit.
        """
        idx = self.degree_index[degree]
        comp = work / degree + self.beta1
        comm = self.comm_per_token[idx] * tokens + self.comm_beta[idx]
        if self.gather <= 0:
            return comp + comm
        return max(comp + comm + self.exposed_gather, comm + self.gather)

    def group_times(
        self, work: np.ndarray, tokens: np.ndarray, degree_idx: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`group_time` across many groups at once.

        ``degree_idx`` indexes :attr:`degrees`; each lane reproduces
        the scalar expression exactly (elementwise IEEE ops).
        """
        d = self.degree_arr[degree_idx]
        comp = work / d + self.beta1
        comm = self.comm_per_token[degree_idx] * tokens + self.comm_beta[degree_idx]
        if self.gather <= 0:
            return comp + comm
        return np.maximum(comp + comm + self.exposed_gather, comm + self.gather)

    # ------------------------------------------------------------------
    # Whole-group evaluation (dot-product reductions; ~1e-9 agreement).
    # ------------------------------------------------------------------

    def time_with_overheads(self, lengths, degree: int) -> float:
        """Vectorised ``CostModel.time_with_overheads`` for one group."""
        terms = self.work_terms(lengths)
        work = float(terms.sum())
        tokens = float(np.asarray(lengths, dtype=np.float64).sum())
        return self.group_time(work, tokens, degree)

    def memory(self, tokens: float, degree: int) -> float:
        """Eq. 11 from a precomputed token sum (exact scalar replica)."""
        return tokens / degree * self.memory_per_token + self.model_state_bytes


def cost_table(model: CostModel) -> CostTable:
    """Build (or fetch the memoised) :class:`CostTable` of ``model``.

    The table is cached on the model instance — like the bandwidth
    cache — so repeated solves, the estimator, and each solver-service
    worker pay the construction cost exactly once per process.
    """
    table = model._table_cache.get("default")
    if table is None:
        table = CostTable(model)
        model._table_cache["default"] = table
    return table
