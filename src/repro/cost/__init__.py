"""Cost-model substrate (paper S4.1.2).

The extended alpha-beta cost model (:mod:`repro.cost.model`), the
profiler that fits its coefficients against the simulated hardware
(:mod:`repro.cost.profiler`), and plan-level estimation helpers
(:mod:`repro.cost.estimator`).
"""

from repro.cost.estimator import estimate_iteration_time, estimate_microbatch_time
from repro.cost.model import CostCoefficients, CostModel
from repro.cost.profiler import fit_cost_model

__all__ = [
    "CostCoefficients",
    "CostModel",
    "fit_cost_model",
    "estimate_microbatch_time",
    "estimate_iteration_time",
]
