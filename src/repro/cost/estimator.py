"""Plan-level time and memory estimation.

Thin helpers that lift the per-group cost model (Eq. 14) to
micro-batch plans (max over concurrent groups) and iteration plans
(sum over sequential micro-batches) — the objective structure of the
planner's optimisation problem (Eq. 5/17).

All helpers evaluate through the memoised vectorized
:class:`repro.cost.model.CostTable` (array lookups and dot products)
rather than the scalar model methods; agreement with the scalar path
is within ~1e-9 relative (reduction order), which the property suite
pins down.
"""

from __future__ import annotations

from repro.core.types import IterationPlan, MicroBatchPlan
from repro.cost.model import CostModel, cost_table


def estimate_microbatch_time(model: CostModel, microbatch: MicroBatchPlan) -> float:
    """Estimated seconds of one micro-batch: slowest concurrent group,
    including the exposed ZeRO-3 gather overhead."""
    table = cost_table(model)
    return max(
        table.time_with_overheads(g.lengths, g.degree) for g in microbatch.groups
    )


def estimate_iteration_time(model: CostModel, plan: IterationPlan) -> float:
    """Estimated seconds of a full iteration: sum of micro-batches."""
    return sum(estimate_microbatch_time(model, mb) for mb in plan.microbatches)


def microbatch_peak_memory(model: CostModel, microbatch: MicroBatchPlan) -> float:
    """Largest per-device memory over the micro-batch's groups, bytes."""
    table = cost_table(model)
    return max(table.memory(g.tokens, g.degree) for g in microbatch.groups)


def validate_plan_memory(model: CostModel, plan: IterationPlan) -> None:
    """Raise ValueError if any group in the plan violates Cond. (7)."""
    table = cost_table(model)
    for i, mb in enumerate(plan.microbatches):
        for g in mb.groups:
            usage = table.memory(g.tokens, g.degree)
            if usage > model.memory_budget * (1 + 1e-9):
                raise ValueError(
                    f"micro-batch {i}: SP={g.degree} group with "
                    f"{g.tokens} tokens needs {usage / 2**30:.2f} GiB, "
                    f"budget is {model.memory_budget / 2**30:.2f} GiB"
                )


def group_imbalance(model: CostModel, microbatch: MicroBatchPlan) -> float:
    """Idle fraction caused by stragglers within a micro-batch.

    0 means perfectly balanced groups; approaching 1 means most
    device-time is spent waiting for the slowest group — the waste the
    paper's time-balanced assignment is designed to avoid.
    """
    times = [model.time(g.lengths, g.degree) for g in microbatch.groups]
    degrees = [g.degree for g in microbatch.groups]
    makespan = max(times)
    if makespan <= 0:
        return 0.0
    busy = sum(t * d for t, d in zip(times, degrees))
    capacity = makespan * sum(degrees)
    return 1.0 - busy / capacity
