"""Coefficient fitting by profiling the simulated hardware.

The paper obtains its alpha-beta coefficients "through profiling"
(S4.1.2): run probe workloads on the real cluster, record times, and
least-squares fit.  We reproduce the workflow against the simulator's
ground-truth timing functions.  Because the ground truth contains mild
non-linearities the planner model cannot express (efficiency
saturation at small shards, per-round collective latencies), the fit
has a small residual — the <6% estimation error of Appendix C /
Fig. 9 — rather than being trivially exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.cost.model import CostCoefficients, CostModel
from repro.model.config import ModelConfig
from repro.model.memory import (
    ActivationCheckpointing,
    activation_bytes_per_token,
    model_state_bytes_per_device,
)
from repro.simulator.timing import group_alltoall_time, group_compute_time

#: Probe sequence lengths used to excite the quadratic and linear
#: compute terms, tokens.
DEFAULT_PROBE_LENGTHS = (1024, 2048, 4096, 8192, 16384, 32768, 65536)

#: Probe sequence counts per micro-batch.
DEFAULT_PROBE_COUNTS = (1, 4, 16)


@dataclass(frozen=True)
class ProfileObservation:
    """One probe measurement."""

    lengths: tuple[int, ...]
    degree: int
    compute_seconds: float
    comm_seconds: float


def run_probes(
    config: ModelConfig,
    cluster: ClusterSpec,
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
    probe_lengths: tuple[int, ...] = DEFAULT_PROBE_LENGTHS,
    probe_counts: tuple[int, ...] = DEFAULT_PROBE_COUNTS,
    comm_model: str = "alltoall",
) -> list[ProfileObservation]:
    """Measure probe workloads on the simulated cluster.

    Every (length, count, degree) combination that plausibly fits in
    memory is timed once; degrees sweep the power-of-two candidates.
    ``comm_model`` selects the scattering mechanism being profiled:
    Ulysses All-to-All or the ring-attention KV rotation (Appendix E).
    """
    from repro.parallelism.ring import cp_ring_time

    observations: list[ProfileObservation] = []
    degree = 1
    while degree <= cluster.num_gpus:
        for s in probe_lengths:
            for count in probe_counts:
                lengths = (s,) * count
                tokens = s * count
                compute = group_compute_time(
                    config, cluster, lengths, degree, checkpointing
                )
                if comm_model == "alltoall":
                    comm = group_alltoall_time(config, cluster, tokens, degree)
                elif degree > 1:
                    comm = cp_ring_time(
                        config, tokens, degree, cluster.link_for_degree(degree)
                    )
                else:
                    comm = 0.0
                observations.append(
                    ProfileObservation(
                        lengths=lengths,
                        degree=degree,
                        compute_seconds=compute,
                        comm_seconds=comm,
                    )
                )
        degree *= 2
    return observations


def _fit_compute(observations: list[ProfileObservation]) -> tuple[float, float, float]:
    """Relative least-squares fit of (alpha1, alpha2, beta1) to Eq. 12.

    Rows are normalised by the observed time so the fit minimises
    *relative* error — the metric Appendix C reports — rather than
    letting the largest probes dominate.
    """
    rows = []
    targets = []
    for obs in observations:
        sq = sum(s * s for s in obs.lengths) / obs.degree
        lin = sum(obs.lengths) / obs.degree
        weight = 1.0 / obs.compute_seconds
        rows.append([sq * weight, lin * weight, weight])
        targets.append(1.0)
    design = np.asarray(rows, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    # Column scaling keeps the normal equations well conditioned: the
    # quadratic column is ~1e9 times the constant column.
    scale = np.maximum(np.abs(design).max(axis=0), 1e-30)
    solution, *_ = np.linalg.lstsq(design / scale, y, rcond=None)
    alpha1, alpha2, beta1 = solution / scale
    return max(alpha1, 0.0), max(alpha2, 0.0), max(beta1, 0.0)


def _fit_comm(
    observations: list[ProfileObservation],
    model: "CostModelProxy",
    comm_model: str = "alltoall",
) -> tuple[float, float]:
    """Least-squares fit of (alpha3, beta2) to Eq. 13.

    Only multi-device groups communicate; degree-1 observations are
    excluded.  The regressor is ``sum(s) / (d * v_d)`` with the same
    bandwidths the planner will use, so alpha3 absorbs the per-token
    All-to-All volume and the ``(d-1)/d`` wire fraction.
    """
    rows = []
    targets = []
    for obs in observations:
        if obs.degree == 1 or obs.comm_seconds <= 0:
            continue
        tokens = sum(obs.lengths)
        weight = 1.0 / obs.comm_seconds
        if comm_model == "alltoall":
            regressor = tokens / (obs.degree * model.bandwidth(obs.degree))
        else:
            d = obs.degree
            regressor = tokens * (d - 1) / d / model.link_bandwidth(d)
        rows.append([regressor * weight, weight])
        targets.append(1.0)
    design = np.asarray(rows, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    scale = np.maximum(np.abs(design).max(axis=0), 1e-30)
    solution, *_ = np.linalg.lstsq(design / scale, y, rcond=None)
    alpha3, beta2 = solution / scale
    return max(alpha3, 0.0), max(beta2, 0.0)


class CostModelProxy:
    """Bandwidth lookup shared by fitting and the final model.

    Must match :meth:`repro.cost.model.CostModel.bandwidth` exactly —
    including the ``(d-1)/d`` wire-fraction absorption — or the fitted
    ``alpha_3`` would be calibrated against a different regressor than
    the planner later evaluates.
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        self._cluster = cluster
        self._cache: dict[int, float] = {}

    def bandwidth(self, degree: int) -> float:
        if degree not in self._cache:
            link = self._cluster.link_for_degree(degree)
            wire_fraction = (degree - 1) / degree
            self._cache[degree] = link.bandwidth / wire_fraction
        return self._cache[degree]

    def link_bandwidth(self, degree: int) -> float:
        """Raw per-GPU link bandwidth (the ring regressor's divisor)."""
        return self._cluster.link_for_degree(degree).bandwidth


def fit_cost_model(
    config: ModelConfig,
    cluster: ClusterSpec,
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
    probe_lengths: tuple[int, ...] = DEFAULT_PROBE_LENGTHS,
    probe_counts: tuple[int, ...] = DEFAULT_PROBE_COUNTS,
    comm_model: str = "alltoall",
) -> CostModel:
    """Profile the simulated cluster and fit a planner cost model.

    This is the entry point FlexSP and the baseline tuners use to
    obtain their shared cost model for a (model, cluster, policy)
    combination.
    """
    from repro.cluster.collectives import all_gather_time
    from repro.parallelism.zero import zero3_gather_bytes_per_microbatch
    from repro.simulator.timing import ZERO3_OVERLAP_FRACTION

    observations = run_probes(
        config, cluster, checkpointing, probe_lengths, probe_counts,
        comm_model=comm_model,
    )
    alpha1, alpha2, beta1 = _fit_compute(observations)
    alpha3, beta2 = _fit_comm(
        observations, CostModelProxy(cluster), comm_model=comm_model
    )
    gather_raw = all_gather_time(
        zero3_gather_bytes_per_microbatch(config),
        cluster.num_gpus,
        cluster.hierarchical_link(),
    )
    coeffs = CostCoefficients(
        alpha1=alpha1,
        alpha2=alpha2,
        beta1=beta1,
        alpha3=alpha3,
        beta2=beta2,
        memory_per_token=activation_bytes_per_token(config, checkpointing),
        model_state_bytes=model_state_bytes_per_device(
            config, cluster.num_gpus, zero_stage=3
        ),
        zero_gather_seconds=gather_raw,
        zero_overlap=ZERO3_OVERLAP_FRACTION,
    )
    return CostModel(coeffs=coeffs, cluster=cluster, comm_model=comm_model)


def estimation_errors(
    model: CostModel,
    config: ModelConfig,
    cluster: ClusterSpec,
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
    probe_lengths: tuple[int, ...] = DEFAULT_PROBE_LENGTHS,
    probe_counts: tuple[int, ...] = DEFAULT_PROBE_COUNTS,
) -> list[tuple[int, float, float]]:
    """Relative estimation error per probe (Fig. 9 / Appendix C).

    Returns ``(degree, truth_seconds, relative_error)`` triples where
    the error compares the planner's Eq. 14 estimate with the
    simulator's ground truth for the same workload.
    """
    results = []
    for obs in run_probes(config, cluster, checkpointing, probe_lengths, probe_counts):
        truth = obs.compute_seconds + obs.comm_seconds
        estimate = model.time(obs.lengths, obs.degree)
        results.append((obs.degree, truth, (estimate - truth) / truth))
    return results
