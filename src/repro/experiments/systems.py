"""Unified training-system wrappers.

Every evaluated system exposes the same interface — take a global
batch of sequence lengths, return an :class:`IterationOutcome` — so
the runner and benchmarks can sweep systems uniformly:

* :class:`FlexSPSystem` — the paper's contribution: solver + executor.
* :class:`DeepSpeedUlyssesSystem` — static homogeneous SP + ZeRO-3.
* :class:`FlexSPBatchAdaSystem` — per-batch adaptive homogeneous SP.
* :class:`MegatronLMSystem` — tuned TP/CP/DP with ring attention.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

from repro.baselines.batch_adaptive import choose_degree_for_batch
from repro.baselines.homogeneous import homogeneous_plan
from repro.baselines.megatron import MegatronStrategy, megatron_iteration
from repro.baselines.tuner import choose_static_degree, tune_megatron
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.core.types import IterationPlan
from repro.cost.model import CostModel
from repro.cost.profiler import fit_cost_model
from repro.experiments.workloads import Workload
from repro.simulator.executor import IterationExecutor
from repro.simulator.trace import PhaseKind


def _workload_cost_model(
    workload: Workload, cost_model: CostModel | None
) -> CostModel:
    """The injected cost model, or a freshly fitted one.

    Sweeps fit one model per workload and share it across the systems
    of a cell; standalone construction keeps the old fit-per-system
    behaviour.
    """
    if cost_model is not None:
        return cost_model
    return fit_cost_model(
        workload.model_at_context, workload.cluster, workload.checkpointing
    )


@dataclass(frozen=True)
class IterationOutcome:
    """One iteration's measurements, system-agnostic.

    Attributes:
        iteration_seconds: Simulated wall-clock of the training step.
        comm_seconds: Exposed communication (All-to-All for SP systems;
            TP + CP + gradient traffic for Megatron).
        alltoall_seconds: All-to-All component only (zero for Megatron).
        solve_seconds: Host-side planning time (FlexSP's solver; ~0 for
            static baselines).
        num_microbatches: Gradient-accumulation depth used.
        plan: The executed plan, when the system produces one.
    """

    iteration_seconds: float
    comm_seconds: float
    alltoall_seconds: float
    solve_seconds: float
    num_microbatches: int
    plan: IterationPlan | None = None

    @property
    def comm_fraction(self) -> float:
        if self.iteration_seconds <= 0:
            return 0.0
        return self.comm_seconds / self.iteration_seconds

    @property
    def alltoall_fraction(self) -> float:
        if self.iteration_seconds <= 0:
            return 0.0
        return self.alltoall_seconds / self.iteration_seconds


class TrainingSystem(Protocol):
    """A system that can execute training iterations on a workload."""

    name: str

    def run_iteration(self, lengths: tuple[int, ...]) -> IterationOutcome: ...


def _executor_outcome(
    executor: IterationExecutor,
    plan: IterationPlan,
    solve_seconds: float,
) -> IterationOutcome:
    result = executor.run(plan)
    alltoall = result.trace.alltoall_seconds()
    comm = alltoall + result.trace.wall_seconds(PhaseKind.GRAD_SYNC)
    return IterationOutcome(
        iteration_seconds=result.iteration_seconds,
        comm_seconds=comm,
        alltoall_seconds=alltoall,
        solve_seconds=solve_seconds,
        num_microbatches=plan.num_microbatches,
        plan=plan,
    )


class FlexSPSystem:
    """The paper's system: heterogeneity-adaptive SP (solver + executor).

    The solver runs on CPUs and overlaps with training in the paper
    (S5); ``solve_seconds`` is therefore reported separately from the
    iteration time rather than added to it.

    The wrapped :class:`FlexSPSolver` persists across iterations, so
    its plan cache warms over the workload and its worker pool (when
    ``solver_config.workers > 1``) is spawned once; call :meth:`close`
    (or use the system as a context manager) to release the pool.
    With ``solver_service`` — typically a tenant of a sweep's shared
    :class:`~repro.core.solver.SolverPool` — the solver plans on that
    injected service instead of owning a pool (and :meth:`close`
    leaves it running for its owner).
    """

    def __init__(
        self,
        workload: Workload,
        solver_config: SolverConfig | None = None,
        cost_model: CostModel | None = None,
        vectorized: bool = True,
        solver_service=None,
    ):
        self.name = "FlexSP"
        self.workload = workload
        self.cost_model = _workload_cost_model(workload, cost_model)
        self.solver = FlexSPSolver(
            self.cost_model, solver_config, service=solver_service
        )
        self.executor = IterationExecutor(
            config=workload.model_at_context,
            cluster=workload.cluster,
            checkpointing=workload.checkpointing,
            vectorized=vectorized,
        )

    def plan(self, lengths: tuple[int, ...]) -> tuple[IterationPlan, float]:
        """Solve for a plan, returning it with the solve wall-time."""
        start = time.perf_counter()
        plan = self.solver.solve(tuple(lengths))
        return plan, time.perf_counter() - start

    def run_iteration(self, lengths: tuple[int, ...]) -> IterationOutcome:
        plan, solve_seconds = self.plan(lengths)
        return _executor_outcome(self.executor, plan, solve_seconds)

    def close(self) -> None:
        """Release the solver's persistent worker pool, if any."""
        self.solver.close()

    def __enter__(self) -> "FlexSPSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DeepSpeedUlyssesSystem:
    """Static homogeneous Ulysses SP + ZeRO-3 (the DeepSpeed baseline).

    The static degree is tuned once per workload against the task's
    worst case, exactly as the paper tunes its baselines.
    """

    def __init__(
        self,
        workload: Workload,
        sp_degree: int | None = None,
        num_probe_batches: int = 2,
        cost_model: CostModel | None = None,
        probe_batches: list[tuple[int, ...]] | None = None,
        vectorized: bool = True,
    ):
        self.name = "DeepSpeed"
        self.workload = workload
        self.cost_model = _workload_cost_model(workload, cost_model)
        if sp_degree is None:
            if probe_batches is None:
                corpus = workload.corpus()
                probe_batches = [
                    corpus.batch(step).lengths for step in range(num_probe_batches)
                ]
            sp_degree = choose_static_degree(
                probe_batches, self.cost_model, workload.max_context,
                vectorized=vectorized,
            )
        self.sp_degree = sp_degree
        self.executor = IterationExecutor(
            config=workload.model_at_context,
            cluster=workload.cluster,
            checkpointing=workload.checkpointing,
            vectorized=vectorized,
        )

    def run_iteration(self, lengths: tuple[int, ...]) -> IterationOutcome:
        plan = homogeneous_plan(tuple(lengths), self.cost_model, self.sp_degree)
        return _executor_outcome(self.executor, plan, solve_seconds=0.0)


class FlexSPBatchAdaSystem:
    """FlexSP-BatchAda: best homogeneous SP degree per batch (S6.1)."""

    def __init__(
        self,
        workload: Workload,
        cost_model: CostModel | None = None,
        vectorized: bool = True,
    ):
        self.name = "FlexSP-BatchAda"
        self.workload = workload
        self.vectorized = vectorized
        self.cost_model = _workload_cost_model(workload, cost_model)
        self.executor = IterationExecutor(
            config=workload.model_at_context,
            cluster=workload.cluster,
            checkpointing=workload.checkpointing,
            vectorized=vectorized,
        )

    def run_iteration(self, lengths: tuple[int, ...]) -> IterationOutcome:
        start = time.perf_counter()
        degree, __ = choose_degree_for_batch(
            tuple(lengths), self.cost_model, vectorized=self.vectorized
        )
        solve_seconds = time.perf_counter() - start
        plan = homogeneous_plan(tuple(lengths), self.cost_model, degree)
        return _executor_outcome(self.executor, plan, solve_seconds)


class MegatronLMSystem:
    """Tuned Megatron-LM baseline: TP (+SP) x CP x DP(ZeRO-1)."""

    def __init__(
        self,
        workload: Workload,
        strategy: MegatronStrategy | None = None,
        num_probe_batches: int = 2,
        probe_batches: list[tuple[int, ...]] | None = None,
        vectorized: bool = True,
    ):
        self.name = "Megatron-LM"
        self.workload = workload
        self.vectorized = vectorized
        if strategy is None:
            if probe_batches is None:
                corpus = workload.corpus()
                probe_batches = [
                    corpus.batch(step).lengths for step in range(num_probe_batches)
                ]
            strategy = tune_megatron(
                probe_batches,
                workload.model_at_context,
                workload.cluster,
                workload.max_context,
                workload.checkpointing,
                vectorized=vectorized,
            )
        self.strategy = strategy

    def run_iteration(self, lengths: tuple[int, ...]) -> IterationOutcome:
        outcome = megatron_iteration(
            tuple(lengths),
            self.workload.model_at_context,
            self.workload.cluster,
            self.strategy,
            self.workload.checkpointing,
            pack_target=self.workload.max_context,
            vectorized=self.vectorized,
        )
        return IterationOutcome(
            iteration_seconds=outcome.iteration_seconds,
            comm_seconds=outcome.comm_seconds,
            alltoall_seconds=0.0,
            solve_seconds=0.0,
            num_microbatches=outcome.num_microbatches,
            plan=None,
        )


#: System constructors by short name.
SYSTEM_BUILDERS = {
    "flexsp": FlexSPSystem,
    "deepspeed": DeepSpeedUlyssesSystem,
    "batchada": FlexSPBatchAdaSystem,
    "megatron": MegatronLMSystem,
}


def build_system(name: str, workload: Workload, **kwargs) -> TrainingSystem:
    """Instantiate a system by short name for the given workload."""
    try:
        builder = SYSTEM_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; options: {sorted(SYSTEM_BUILDERS)}"
        ) from None
    return builder(workload, **kwargs)
