"""Parallel experiment-sweep runner.

The paper's evaluation is a grid of independent cells — a (system,
workload) pair measured over a few global batches (Fig. 4's 18 cells,
Fig. 6's cluster- and context-scaling slices, Table 1's capacity
frontier, Fig. 7's ablation matrix, Fig. 8's weak scaling).
Regenerating the grids one benchmark at a time repeats a lot of work:
every system re-fits the same cost model, re-tunes the same baselines,
re-samples the same corpus, and re-solves the same FlexSP plans.

:class:`SweepRunner` treats the whole campaign as one sweep:

* **Shared per-workload state.**  A :class:`WorkloadContext` memoises
  (keyed by :func:`workload_signature`) the fitted cost model, the
  sampled corpus batches, the baseline tuning results and the
  constructed systems — including FlexSP's persistent solver, whose
  plan cache therefore stays warm across cells *and* across repeated
  ``run()`` calls (trajectory regeneration).
* **Cell dedup.**  Grids overlap (Fig. 6's 192K context point is a
  Fig. 4 cell); duplicate cells are measured once and fanned back out.
* **Cell variants.**  A cell may carry a :attr:`SweepCell.variant` —
  hashable system-construction overrides — so parameterised artefacts
  (Table 1's fixed SP degrees, Fig. 7's solver ablations) ride the
  same grid machinery instead of ad-hoc benchmark loops.
* **Persistent cross-process cache.**  With a
  :class:`~repro.core.cache_store.CacheStore`, each context restores
  spilled cost-model fits, tuner memos and plan-cache entries on
  construction and spills them back after a pass, so a *new process*
  (CI re-run, next regeneration) starts warm with bit-identical
  metrics.
* **One shared solver pool.**  With ``solver_workers > 1`` (or a
  ``solver_config.workers > 1``) the runner owns a single
  :class:`~repro.core.solver.SolverPool` whose tenant clients are
  injected into every workload's :class:`FlexSPSolver` — the
  per-workload solvers no longer nest their own process pools.
* **Workload-sharded work-stealing fan-out.**  With ``workers > 1``
  the unique cells are grouped into *shards* by
  :func:`workload_signature` and affinity-dispatched over persistent
  single-worker pool slots (one ``ProcessPoolExecutor`` per slot, so
  a shard's cells land on exactly one worker process): each
  workload's context — cost-model fit, corpus sample, tuner memos,
  plan cache — is built or store-restored *once*, in the worker that
  owns the shard.  An idle slot steals cells from the tail of the
  heaviest remaining shard, paying the duplicate context build only
  when a steal actually happens, so long-tail cells no longer
  serialize behind a static partition.  Workers keep their context
  caches alive across cells and sweeps, the same architecture as
  :class:`repro.core.solver.SolverService`, and share one solver pool
  and one cache store across all of their workloads.  Fan-out passes
  run the same cold-batching prewarm as serial ones: pending shapes
  are probed in the parent (side-effect-free), planned once through
  the shared :class:`~repro.core.solver.SolverPool`, and the seeded
  state reaches the shard workers via the store (when configured) or
  a shipped pre-seed snapshot (when not).
* **Per-worker telemetry.**  Every pass reports
  :class:`WorkerTelemetry` rows — cells run, steals, context builds,
  context build/restore seconds and the solve-stage breakdown —
  shipped home beside the store counters the way
  :mod:`repro.core.stage_timing` ships solver stages, and surfaced by
  ``python -m repro.bench --campaign ... --profile``.
* **Batched spills.**  Workers accumulate dirty store state and
  merge-save once per drain (end of a :meth:`SweepRunner.run` pass,
  and guaranteed at worker exit via :func:`repro.core.pools.
  register_worker_exit_flush`) instead of after every cell;
  ``spill_batch`` restores per-cell spilling (``1``, the write-
  amplification baseline) or any intermediate cadence.  Store write
  amplification (writes / cells measured) is surfaced per cell as
  :attr:`CellMetrics.store_writes` and per pass as
  :attr:`SweepResult.store_stats`.
* **Fault injection & graduated recovery.**  The executor visits the
  :mod:`repro.core.faults` injection points (``cell``, ``spawn``,
  ``drain``, ``prewarm``; the store and solver layers add ``spill``,
  ``lock``, ``prune``, ``plan``) and survives what they throw at it
  with a graduated escalation instead of the old all-or-nothing pass
  retry: a cell whose slot dies is **resubmitted** with deterministic
  bounded backoff; the dead slot's pool is **restarted** lazily; a
  slot that keeps dying is **retired**, its unfinished shards
  reassigned to surviving slots through the same
  :class:`_ShardScheduler` stealing machinery; and when no slots
  survive (or a cell exhausts its retries) the work **degrades to
  serial in-process execution** — a campaign finishes on the parent
  alone if it must.  A watchdog kills and resubmits hung flights
  (``watchdog_seconds``).  Recovery moves only *where and when* a
  cell runs: results stay bit-identical to the fault-free serial
  pass, and the whole story is accounted in
  :attr:`SweepResult.fault_stats` (:class:`~repro.core.faults.
  FaultStats`).

Results are plain :class:`CellMetrics` (no plans or traces), so they
are cheap to ship across the pool and serialise into the
``BENCH_e2e.json`` / ``BENCH_campaign.json`` trajectories.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core import faults, kernels, pools, stage_timing
from repro.core.cache_store import (
    CacheStore,
    StoreStats,
    WorkloadState,
    context_digest,
    entries_from_cache,
    preload_cache,
)
from repro.core.faults import FaultSchedule, FaultStats
from repro.core.planner import PlanInfeasibleError
from repro.core.solver import SolverConfig, SolverPool
from repro.core.types import InfeasibleWorkloadError
from repro.cost.model import CostModel
from repro.cost.profiler import fit_cost_model
from repro.data.dataset import GlobalBatch
from repro.experiments.runner import RunResult, run_system
from repro.experiments.systems import (
    SYSTEM_BUILDERS,
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
    MegatronLMSystem,
    TrainingSystem,
)
from repro.experiments.workloads import Workload

#: Probe batches used to tune the static baselines (the paper tunes
#: against a handful of representative batches, Appendix B.2).
DEFAULT_PROBE_BATCHES = 2

#: Variant keys each system accepts (see :attr:`SweepCell.variant`).
VARIANT_KEYS = {
    "flexsp": ("sort_sequences", "bucketing"),
    "deepspeed": ("sp_degree",),
    "batchada": (),
    "megatron": (),
}


def workload_signature(workload: Workload) -> tuple:
    """Hashable identity of a workload's full configuration.

    Two workloads with equal signatures produce identical corpora,
    cost models and tuning results, so every per-workload memo in the
    sweep — and every :class:`~repro.core.cache_store.CacheStore`
    file — is keyed on this.  Fields are enumerated dynamically so a
    field added to :class:`Workload` later can never be silently left
    out of the key.
    """
    return tuple(
        getattr(workload, field.name) for field in dataclasses.fields(workload)
    )


@dataclass(frozen=True)
class SweepCell:
    """One independent measurement of the evaluation grid.

    Attributes:
        system: Short system name (a :data:`SYSTEM_BUILDERS` key).
        workload: Evaluation configuration.
        num_iterations: Consecutive global batches to measure.
        start_step: First corpus step of the measured window.
        variant: System-construction overrides as sorted ``(key,
            value)`` pairs — e.g. ``(("sp_degree", 8),)`` pins a
            Table 1 degree, ``(("bucketing", "naive"),)`` selects a
            Fig. 7 ablation.  Hashable, so variant cells dedup like
            plain ones.  Valid keys per system: :data:`VARIANT_KEYS`.
    """

    system: str
    workload: Workload
    num_iterations: int = 1
    start_step: int = 0
    variant: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.system not in SYSTEM_BUILDERS:
            raise ValueError(
                f"unknown system {self.system!r}; options: "
                f"{sorted(SYSTEM_BUILDERS)}"
            )
        if self.num_iterations <= 0:
            raise ValueError(
                f"num_iterations must be positive, got {self.num_iterations}"
            )
        if self.start_step < 0:
            raise ValueError(
                f"start_step must be non-negative, got {self.start_step}"
            )
        # Normalise the variant so equal override sets written in any
        # order dedup to one cell.
        variant = tuple(sorted(tuple(self.variant), key=lambda kv: kv[0]))
        allowed = VARIANT_KEYS[self.system]
        for key, value in variant:
            if key not in allowed:
                raise ValueError(
                    f"system {self.system!r} does not accept variant key "
                    f"{key!r}; options: {sorted(allowed)}"
                )
            # Values are validated here, eagerly: a bad value swallowed
            # later by the infeasibility handling would masquerade as a
            # fabricated OOM cell in the generated table.
            if key == "bucketing" and value not in ("optimal", "naive", "none"):
                raise ValueError(f"unknown bucketing variant {value!r}")
            if key == "sort_sequences" and not isinstance(value, bool):
                raise ValueError(
                    f"sort_sequences variant must be a bool, got {value!r}"
                )
            if key == "sp_degree" and (
                not isinstance(value, int)
                or value <= 0
                or value & (value - 1)
            ):
                raise ValueError(
                    f"sp_degree variant must be a positive power of two, "
                    f"got {value!r}"
                )
        object.__setattr__(self, "variant", variant)

    @property
    def variant_label(self) -> str:
        """Human-readable variant tag, e.g. ``"sp_degree=8"``."""
        return ",".join(f"{k}={v}" for k, v in self.variant)


@dataclass(frozen=True)
class CellMetrics:
    """The paper's per-cell metrics, detached from plans and traces.

    ``mean_solve_seconds`` is host wall-clock (non-deterministic); the
    other fields are pure functions of the simulated execution and are
    bit-identical however the cell is computed (scalar or vectorized,
    in-process or on a pool worker, cold or restored from a
    :class:`~repro.core.cache_store.CacheStore`).

    ``checkpointing`` surfaces the workload's chosen activation
    checkpointing policy (``"none"`` / ``"selective"`` / ``"full"``):
    long-context cells escalate the policy on small clusters, and
    figure regeneration annotates that escalation from here.

    ``status`` is ``"ok"`` for measured cells and ``"oom"`` for cells
    whose configuration cannot be scheduled at all (Table 1's
    infeasible degree/length corners); OOM cells carry zero metrics.

    ``store_writes`` counts the cache-store data files written while
    this cell was handled (including any spill it triggered) — the
    per-cell leg of the write-amplification accounting.  Like
    ``mean_solve_seconds`` it is host-side bookkeeping, not part of
    :meth:`deterministic`: it depends on the spill cadence
    (``spill_batch``) and on which cell of a batch crosses the flush
    threshold.

    ``stage_seconds`` is the cold-path planning breakdown —
    ``(stage, seconds)`` pairs for enumerate / lpt / milp_build /
    milp_solve, summed over the cell's solves (see
    :class:`~repro.core.types.SolveStats`) — surfaced by
    ``python -m repro.bench --profile``.  Host wall-clock, excluded
    from :meth:`deterministic`; empty for systems without a solver
    and for prewarmed cells (whose planning happened in the runner's
    cold-batching pass and is accounted there).
    """

    system: str
    workload: str
    num_iterations: int
    mean_iteration_seconds: float
    mean_comm_fraction: float
    mean_alltoall_fraction: float
    tokens_per_second_per_gpu: float
    mean_solve_seconds: float
    plan_cache_hit_rate: float
    checkpointing: str = ""
    status: str = "ok"
    store_writes: int = 0
    stage_seconds: tuple[tuple[str, float], ...] = ()

    def deterministic(self) -> tuple[float, float, float, float]:
        """The wall-clock-free metric tuple used for exact comparisons."""
        return (
            self.mean_iteration_seconds,
            self.mean_comm_fraction,
            self.mean_alltoall_fraction,
            self.tokens_per_second_per_gpu,
        )

    @property
    def feasible(self) -> bool:
        return self.status == "ok"

    @classmethod
    def infeasible(cls, cell: SweepCell) -> "CellMetrics":
        """The OOM marker cell: zero metrics, ``status="oom"``."""
        return cls(
            system=cell.system,
            workload=cell.workload.name,
            num_iterations=cell.num_iterations,
            mean_iteration_seconds=0.0,
            mean_comm_fraction=0.0,
            mean_alltoall_fraction=0.0,
            tokens_per_second_per_gpu=0.0,
            mean_solve_seconds=0.0,
            plan_cache_hit_rate=0.0,
            checkpointing=cell.workload.checkpointing.value,
            status="oom",
        )


def cell_metrics(result: RunResult, cell: SweepCell) -> CellMetrics:
    """Condense a :class:`RunResult` into sweep metrics."""
    stats = result.solve_stats
    stage_seconds = (
        tuple(stats.stage_seconds().items()) if stats is not None else ()
    )
    return CellMetrics(
        system=result.system,
        workload=result.workload,
        num_iterations=len(result.outcomes),
        mean_iteration_seconds=result.mean_iteration_seconds,
        mean_comm_fraction=result.mean_comm_fraction,
        mean_alltoall_fraction=result.mean_alltoall_fraction,
        tokens_per_second_per_gpu=result.tokens_per_second_per_gpu(
            cell.workload.cluster.num_gpus
        ),
        mean_solve_seconds=result.mean_solve_seconds,
        plan_cache_hit_rate=result.plan_cache_hit_rate,
        checkpointing=cell.workload.checkpointing.value,
        stage_seconds=stage_seconds,
    )


def find_cell_metrics(
    cells: Sequence[SweepCell],
    metrics: Sequence[CellMetrics],
    system: str,
    workload_name: str,
    variant: tuple[tuple[str, object], ...] = (),
) -> CellMetrics | None:
    """Look one cell's metrics up in aligned (cells, metrics) lists.

    The single definition of cell identity for lookups — shared by
    :meth:`SweepResult.metric` and the campaign engine's per-artefact
    slices, so the two can never diverge.  Returns None when absent.
    """
    variant = tuple(sorted(variant, key=lambda kv: kv[0]))
    for cell, cell_metrics_ in zip(cells, metrics):
        if (
            cell.system == system
            and cell.workload.name == workload_name
            and cell.variant == variant
        ):
            return cell_metrics_
    return None


@dataclass(frozen=True)
class WorkerTelemetry:
    """One worker's share of a sweep pass (host-side accounting).

    A row per pool slot for fan-out passes, plus a single row
    (``worker=0``, the parent pid) for serial ones, so campaign
    tooling reads one vocabulary either way.  Everything here is
    wall-clock/bookkeeping — never part of the bit-identical metrics
    contract.

    Attributes:
        worker: Pool-slot index (0-based; serial passes use 0).
        pid: Worker process id (the parent's for serial passes; 0
            when a fan-out drain could not reach the worker).
        cells: Unique cells this worker measured during the pass.
        steals: How many of those were stolen from another slot's
            shard — each steal is the price of one (possible)
            duplicate context build, so ``sum(context_builds) <=
            unique workloads + sum(steals)`` bounds the redundant
            work.
        context_builds: :class:`WorkloadContext` constructions
            (cold builds and store restores alike) in this worker
            during the pass.
        restore_seconds: Wall-clock those constructions took —
            the fan-out overhead the shard affinity amortises.
        stage_seconds: The worker's cold-path solve-stage breakdown
            (same vocabulary as :attr:`CellMetrics.stage_seconds`).
    """

    worker: int
    pid: int
    cells: int
    steals: int
    context_builds: int = 0
    restore_seconds: float = 0.0
    stage_seconds: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one sweep pass.

    Attributes:
        cells: The requested cells, in request order.
        metrics: Per-cell metrics aligned with ``cells`` (duplicate
            cells share one measurement).
        unique_cells: How many distinct cells were actually measured.
        wall_seconds: Host wall-clock of the pass.
        store_stats: Cache-store accounting for this pass (None
            without a store): on-disk totals after the pass plus the
            hit/miss/write/eviction counter *deltas* attributable to
            it.  Fan-out counters are collected at the drain flushes
            (after each pass and again at ``close()``); a worker that
            misses every drain still spills at exit, but those writes
            land after the last collection and are absent from every
            pass's delta — the figure is a lower bound, short by at
            most one merge-save per dirty workload per such worker.
        prewarm_planned: Micro-batch shapes the cold-batching pass
            planned up front (0 when prewarming was off, fanned out,
            or everything was already cached/restored).
        prewarm_seconds: Wall-clock of that pass (inside
            ``wall_seconds``).
        prewarm_stage_seconds: Its cold-path stage breakdown, same
            vocabulary as :attr:`CellMetrics.stage_seconds`.
        worker_telemetry: Per-worker accounting rows for this pass
            (see :class:`WorkerTelemetry`); one row per pool slot, or
            a single parent row for serial passes.
        fault_stats: Fault-and-recovery accounting for this pass
            (:class:`~repro.core.faults.FaultStats`): realised
            injections from the armed schedule's ledger plus the
            recovery escalations the executor performed (cell
            retries, pool restarts, shard reassignments, degradations
            to serial, watchdog kills, store lock breaks).  None when
            no schedule was armed and no recovery fired — the
            fault-free common case.
    """

    cells: tuple[SweepCell, ...]
    metrics: tuple[CellMetrics, ...]
    unique_cells: int
    wall_seconds: float
    store_stats: StoreStats | None = None
    prewarm_planned: int = 0
    prewarm_seconds: float = 0.0
    prewarm_stage_seconds: tuple[tuple[str, float], ...] = ()
    worker_telemetry: tuple[WorkerTelemetry, ...] = ()
    fault_stats: FaultStats | None = None

    def metric(
        self,
        system: str,
        workload_name: str,
        variant: tuple[tuple[str, object], ...] = (),
    ) -> CellMetrics:
        """Look one cell's metrics up by system, workload and variant."""
        found = find_cell_metrics(
            self.cells, self.metrics, system, workload_name, variant
        )
        if found is None:
            raise KeyError(
                f"no cell for system={system!r} workload={workload_name!r} "
                f"variant={variant!r}"
            )
        return found


class WorkloadContext:
    """Memoised per-workload state shared by every cell that uses it.

    Everything derivable from the workload alone is computed lazily
    once: the corpus batches, the fitted cost model, the tuned baseline
    strategies, and the system instances themselves (whose executors
    and FlexSP solver — with its plan cache — persist for the life of
    the context).

    With a ``store``, the expensive derivations are *restored* from
    disk instead of recomputed when a previous process spilled them
    (see :mod:`repro.core.cache_store`), and :meth:`persist` spills the
    current state back.  Without a store, a ``preseed``
    :class:`~repro.core.cache_store.WorkloadState` (the parent's
    exported prewarm state, shipped to shard workers by the fan-out
    dispatcher) restores exactly like a store load would.  With a
    ``solver_pool``, FlexSP solvers plan on the shared pool's workers
    instead of owning pools of their own.
    """

    def __init__(
        self,
        workload: Workload,
        solver_config: SolverConfig | None = None,
        vectorized: bool = True,
        store: CacheStore | None = None,
        solver_pool: SolverPool | None = None,
        preseed: WorkloadState | None = None,
    ) -> None:
        self.workload = workload
        self.solver_config = solver_config
        self.vectorized = vectorized
        self.store = store
        self.solver_pool = solver_pool
        self._signature = workload_signature(workload)
        self._corpus = workload.corpus()
        self._batches: dict[int, GlobalBatch] = {}
        self._cost_model: CostModel | None = None
        self._static_degree: int | None = None
        self._megatron_strategy = None
        self._systems: dict[tuple[str, tuple], TrainingSystem] = {}
        self._restored: WorkloadState | None = (
            store.load(self._signature) if store is not None else preseed
        )
        self._persisted_fingerprint: tuple | None = None
        self._restore_scalars()
        if self._restored is not None:
            # What is on disk IS this context's spillable state until a
            # cell learns something new, so seed the dirty-tracking
            # fingerprint from it (no systems exist yet, so the
            # fingerprint is exactly the restored state): a fully warm
            # pass then spills nothing instead of rewriting identical
            # bytes — the restored-run half of the write-amplification
            # fix.
            self._persisted_fingerprint = self._state_fingerprint()

    def _restore_scalars(self) -> None:
        """Adopt spilled cost-model / tuner state (bit-identical to a
        fresh derivation — floats round-trip exactly through the
        store's JSON)."""
        state = self._restored
        if state is None:
            return
        if state.coeffs is not None and state.comm_model == "alltoall":
            self._cost_model = CostModel(
                coeffs=state.coeffs,
                cluster=self.workload.cluster,
                comm_model=state.comm_model,
            )
        if state.static_degree is not None:
            self._static_degree = int(state.static_degree)
        if state.megatron_strategy is not None:
            from repro.baselines.megatron import MegatronStrategy

            tp, cp, dp = state.megatron_strategy
            self._megatron_strategy = MegatronStrategy(tp=tp, cp=cp, dp=dp)

    @property
    def cost_model(self) -> CostModel:
        """The workload's fitted cost model (profiled or restored once)."""
        if self._cost_model is None:
            self._cost_model = fit_cost_model(
                self.workload.model_at_context,
                self.workload.cluster,
                self.workload.checkpointing,
            )
        return self._cost_model

    def batch(self, step: int) -> GlobalBatch:
        """Corpus batch for ``step``, sampled at most once."""
        batch = self._batches.get(step)
        if batch is None:
            batch = self._corpus.batch(step)
            self._batches[step] = batch
        return batch

    def batches(self, num: int, start_step: int = 0) -> list[GlobalBatch]:
        return [self.batch(step) for step in range(start_step, start_step + num)]

    def probe_batches(
        self, num: int = DEFAULT_PROBE_BATCHES
    ) -> list[tuple[int, ...]]:
        """The tuners' probe lengths (the first corpus batches)."""
        return [self.batch(step).lengths for step in range(num)]

    def static_degree(self) -> int:
        """DeepSpeed's tuned static SP degree (tuned or restored once)."""
        if self._static_degree is None:
            from repro.baselines.tuner import choose_static_degree

            self._static_degree = choose_static_degree(
                self.probe_batches(),
                self.cost_model,
                self.workload.max_context,
                vectorized=self.vectorized,
            )
        return self._static_degree

    def megatron_strategy(self):
        """Megatron-LM's tuned (tp, cp, dp) strategy (tuned once)."""
        if self._megatron_strategy is None:
            from repro.baselines.tuner import tune_megatron

            self._megatron_strategy = tune_megatron(
                self.probe_batches(),
                self.workload.model_at_context,
                self.workload.cluster,
                self.workload.max_context,
                self.workload.checkpointing,
                vectorized=self.vectorized,
            )
        return self._megatron_strategy

    def _flexsp_config(
        self, variant: tuple[tuple[str, object], ...]
    ) -> SolverConfig:
        """The cell's solver config with variant overrides applied."""
        config = self.solver_config or SolverConfig()
        for key, value in variant:
            if key == "sort_sequences":
                config = dataclasses.replace(config, sort_sequences=bool(value))
            elif key == "bucketing":
                config = dataclasses.replace(
                    config,
                    planner=dataclasses.replace(config.planner, bucketing=value),
                )
            else:  # pragma: no cover - guarded by SweepCell validation
                raise ValueError(f"unknown flexsp variant key {key!r}")
        return config

    def _build_flexsp(
        self, variant: tuple[tuple[str, object], ...]
    ) -> FlexSPSystem:
        config = self._flexsp_config(variant)
        service = (
            self.solver_pool.client(self.cost_model, config)
            if self.solver_pool is not None
            else None
        )
        system = FlexSPSystem(
            self.workload,
            config,
            cost_model=self.cost_model,
            vectorized=self.vectorized,
            solver_service=service,
        )
        self._preload_plans(system)
        return system

    def _preload_plans(self, system: FlexSPSystem) -> None:
        """Replay spilled plan-cache entries into a fresh solver."""
        state, solver = self._restored, system.solver
        if state is None or solver.cache is None:
            return
        config = solver.config
        entries = state.plans.get(context_digest(config.planner, config.backend))
        if not entries:
            return
        # Key with the solver's own interned context so hot-path
        # lookups take the identity fast path, not a deep comparison.
        preload_cache(solver.cache, entries, solver.context)

    def system(
        self, name: str, variant: tuple[tuple[str, object], ...] = ()
    ) -> TrainingSystem:
        """The (persistent) system instance for this workload/variant."""
        key = (name, variant)
        system = self._systems.get(key)
        if system is not None:
            return system
        workload = self.workload
        overrides = dict(variant)
        if name == "flexsp":
            system = self._build_flexsp(variant)
        elif name == "deepspeed":
            sp_degree = overrides.get("sp_degree")
            system = DeepSpeedUlyssesSystem(
                workload,
                sp_degree=(
                    sp_degree if sp_degree is not None else self.static_degree()
                ),
                cost_model=self.cost_model,
                vectorized=self.vectorized,
            )
        elif name == "batchada":
            system = FlexSPBatchAdaSystem(
                workload,
                cost_model=self.cost_model,
                vectorized=self.vectorized,
            )
        elif name == "megatron":
            system = MegatronLMSystem(
                workload,
                strategy=self.megatron_strategy(),
                vectorized=self.vectorized,
            )
        else:  # pragma: no cover - guarded by SweepCell validation
            raise ValueError(f"unknown system {name!r}")
        self._systems[key] = system
        return system

    def run(self, cell: SweepCell) -> CellMetrics:
        """Measure one cell against this context's shared state.

        Infeasible configurations — a Table 1 corner whose fixed SP
        degree cannot host the batch, a cluster too small for any
        strategy — are reported as ``status="oom"`` cells rather than
        raised, exactly as the paper's tables mark them.  Only the two
        dedicated infeasibility exceptions are converted; any other
        error (a genuine bug, a bad argument) propagates.
        """
        try:
            result = run_system(
                self.system(cell.system, cell.variant),
                self.workload,
                num_iterations=cell.num_iterations,
                start_step=cell.start_step,
                batches=self.batches(cell.num_iterations, cell.start_step),
            )
        except (PlanInfeasibleError, InfeasibleWorkloadError):
            return CellMetrics.infeasible(cell)
        return cell_metrics(result, cell)

    def _state_fingerprint(self) -> tuple:
        """Cheap summary of the spillable state, for dirty tracking.

        Plan caches are fingerprinted by entry count per planning-
        context digest — the unit :meth:`persist` unions by — taking
        the max over the live solver caches sharing a digest (the
        Fig. 7 sort ablation) and the restored entries of digests this
        pass never instantiated, so a fully warm or partially
        exercised restored context fingerprints equal to its seed and
        spills nothing.  An entry *replacing* another at constant
        count (LRU churn at capacity), or a smaller variant cache
        catching up to its sibling's count, is not detected, which at
        worst delays the spill to the next pass that grows any cache
        past the digest's max.
        """
        caches: dict[str, int] = {}
        for system in self._systems.values():
            solver = getattr(system, "solver", None)
            if solver is None or solver.cache is None:
                continue
            digest = context_digest(
                solver.config.planner, solver.config.backend
            )
            caches[digest] = max(caches.get(digest, 0), len(solver.cache))
        if self._restored is not None:
            for digest, entries in self._restored.plans.items():
                caches[digest] = max(caches.get(digest, 0), len(entries))
        return (
            self._cost_model is not None,
            self._static_degree,
            self._megatron_strategy,
            tuple(sorted(caches.items())),
        )

    def export_state(self) -> WorkloadState:
        """Snapshot the spillable state as a
        :class:`~repro.core.cache_store.WorkloadState`.

        The serialisation half of :meth:`persist`, also used directly
        by the fan-out dispatcher to ship the parent's prewarm-seeded
        state to shard workers when no store is configured (the
        snapshot round-trips bit-identically either way).  Plan
        entries of flexsp variants that share a planning context
        (e.g. the sort ablation, which changes blasting but not
        per-shape planning) are unioned.
        """
        state = WorkloadState(signature=repr(self._signature))
        if self._cost_model is not None:
            state.coeffs = self._cost_model.coeffs
            state.comm_model = self._cost_model.comm_model
        if self._static_degree is not None:
            state.static_degree = self._static_degree
        if self._megatron_strategy is not None:
            strategy = self._megatron_strategy
            state.megatron_strategy = (strategy.tp, strategy.cp, strategy.dp)
        for system in self._systems.values():
            solver = getattr(system, "solver", None)
            if solver is None or solver.cache is None:
                continue
            digest = context_digest(solver.config.planner, solver.config.backend)
            merged = {e[0]: e for e in state.plans.get(digest, [])}
            for entry in entries_from_cache(solver.cache):
                merged[entry[0]] = entry
            state.plans[digest] = list(merged.values())
        return state

    def persist(self) -> None:
        """Spill this context's reusable state to the cache store.

        No-op without a store, and skipped entirely when nothing
        spillable changed since the last persist (or, for a restored
        context, since the restore — the drain flush persists every
        context it touched, and with ``spill_batch=1`` every cell
        triggers one; without the fingerprint check each no-op call
        would re-serialise the whole workload file under the store
        lock).
        """
        if self.store is None:
            return
        fingerprint = self._state_fingerprint()
        if fingerprint == self._persisted_fingerprint:
            return
        self.store.save(self._signature, self.export_state())
        self._persisted_fingerprint = fingerprint


# ---------------------------------------------------------------------------
# Worker-side state of the sweep pool slots.  Contexts live in the
# worker process and persist across cells and across sweeps, so each
# worker amortises profiling/tuning/corpus work exactly like the serial
# path.  Each worker owns at most one SolverPool and one CacheStore,
# shared by all of its workload contexts; spills are batched per worker
# and drained at the end of each pass (and, as a guarantee, at worker
# exit — the parent cannot reach into a worker at shutdown).  The
# telemetry dict is cumulative for the life of the worker process; the
# parent attributes per-pass deltas (see SweepRunner).
# ---------------------------------------------------------------------------

_WORKER_SWEEP: (
    tuple[SolverConfig | None, bool, str | None, int, int] | None
) = None
_WORKER_CONTEXTS: dict = {}
_WORKER_SOLVER_POOL: SolverPool | None = None
_WORKER_STORE: CacheStore | None = None
_WORKER_CELLS_SINCE_SPILL = 0
_WORKER_PRESEED: dict = {}
_WORKER_TELEMETRY: dict = {
    "cells": 0,
    "context_builds": 0,
    "restore_seconds": 0.0,
    "stages": {},
}


def _sweep_worker_init(
    solver_config: SolverConfig | None,
    vectorized: bool,
    store_root: str | None,
    solver_workers: int,
    spill_batch: int,
    fault_schedule: FaultSchedule | None = None,
) -> None:
    global _WORKER_SWEEP, _WORKER_SOLVER_POOL, _WORKER_STORE
    global _WORKER_CELLS_SINCE_SPILL
    _WORKER_SWEEP = (
        solver_config, vectorized, store_root, solver_workers, spill_batch,
    )
    _WORKER_CONTEXTS.clear()
    _WORKER_PRESEED.clear()
    _WORKER_SOLVER_POOL = None
    _WORKER_CELLS_SINCE_SPILL = 0
    _WORKER_TELEMETRY.update(
        cells=0, context_builds=0, restore_seconds=0.0, stages={}
    )
    # Chaos testing: arm the parent's fault schedule (None outside
    # chaos runs) before anything that can fault, then visit the spawn
    # injection point — a worker_kill here dies during pool startup.
    faults.arm(fault_schedule)
    faults.maybe_inject("spawn")
    _WORKER_STORE = CacheStore(store_root) if store_root else None
    if _WORKER_STORE is not None:
        # Batched spills must survive pool shutdown: whatever is still
        # dirty when this worker exits is flushed on the way out.
        pools.register_worker_exit_flush(_sweep_worker_flush)


def _sweep_worker_preseed(states: dict) -> int:
    """Adopt the parent's exported prewarm state (storeless fan-out).

    ``states`` maps workload signatures to
    :class:`~repro.core.cache_store.WorkloadState` snapshots; a
    context built later for one of these signatures restores from the
    snapshot exactly as it would from a store file.  Returns the
    number of snapshots adopted (a cheap dispatch barrier for the
    parent).
    """
    _WORKER_PRESEED.update(states)
    return len(states)


def _sweep_worker_flush() -> tuple[int, dict[str, int], dict]:
    """Spill every dirty context and report this worker's accounting.

    The drain hook: the parent submits one flush per pool slot after
    each pass (idempotent — a worker that receives two drains, or
    none, stays correct; :class:`WorkloadContext.persist` skips clean
    state) and :func:`repro.core.pools.register_worker_exit_flush`
    runs it once more at worker exit.  Returns ``(pid, cumulative
    store counters, cumulative telemetry)`` so the parent can
    aggregate store stats and :class:`WorkerTelemetry` per worker
    process.
    """
    global _WORKER_CELLS_SINCE_SPILL
    faults.maybe_inject("drain")
    for context in _WORKER_CONTEXTS.values():
        context.persist()
    _WORKER_CELLS_SINCE_SPILL = 0
    counters = _WORKER_STORE.counters() if _WORKER_STORE is not None else {}
    telemetry = dict(_WORKER_TELEMETRY, stages=dict(_WORKER_TELEMETRY["stages"]))
    return os.getpid(), counters, telemetry


def _sweep_worker_run(cell: SweepCell) -> CellMetrics:
    global _WORKER_SOLVER_POOL, _WORKER_CELLS_SINCE_SPILL
    assert _WORKER_SWEEP is not None, "sweep worker used before initialization"
    # The cell injection point (worker-side only: a cell degraded to
    # serial in-process execution deliberately bypasses it — the
    # parent dying is the campaign ending, not a fault to recover
    # from).  worker_kill dies here; hang sleeps until the parent's
    # watchdog kills this process.
    faults.maybe_inject("cell")
    solver_config, vectorized, __, solver_workers, spill_batch = _WORKER_SWEEP
    if solver_workers > 1 and _WORKER_SOLVER_POOL is None:
        _WORKER_SOLVER_POOL = SolverPool(solver_workers)
    key = workload_signature(cell.workload)
    context = _WORKER_CONTEXTS.get(key)
    if context is None:
        build_started = time.perf_counter()
        context = WorkloadContext(
            cell.workload,
            solver_config,
            vectorized,
            store=_WORKER_STORE,
            solver_pool=_WORKER_SOLVER_POOL,
            preseed=_WORKER_PRESEED.get(key),
        )
        _WORKER_TELEMETRY["context_builds"] += 1
        _WORKER_TELEMETRY["restore_seconds"] += (
            time.perf_counter() - build_started
        )
        _WORKER_CONTEXTS[key] = context
    writes_before = (
        _WORKER_STORE.counters()["writes"] if _WORKER_STORE is not None else 0
    )
    metrics = context.run(cell)
    _WORKER_TELEMETRY["cells"] += 1
    stage_timing.accumulate(_WORKER_TELEMETRY["stages"], metrics.stage_seconds)
    if _WORKER_STORE is not None:
        _WORKER_CELLS_SINCE_SPILL += 1
        if spill_batch and _WORKER_CELLS_SINCE_SPILL >= spill_batch:
            _sweep_worker_flush()
        metrics = dataclasses.replace(
            metrics,
            store_writes=_WORKER_STORE.counters()["writes"] - writes_before,
        )
    return metrics


class _ShardScheduler:
    """Workload-sharded work-stealing cell dispatch (parent side).

    Cells are grouped into shards by :func:`workload_signature`
    (request order preserved within a shard) and shards are assigned
    to pool slots longest-processing-time-first: sorted by descending
    size, each to the least-loaded slot.  :meth:`next_cell` serves a
    slot its own shards first (head of the deque); a slot whose own
    shards are drained *steals* from the tail of the heaviest
    remaining shard — the owner and the thief eat the same shard from
    opposite ends, so the duplicate context build a steal pays is
    taken from the workload with the most work left, where it
    amortises best.

    Pure bookkeeping, deliberately free of any pool/process concerns
    so the dispatch policy is unit-testable; scheduling order affects
    only *where* a cell runs, never its metrics (the bit-identity
    contract).
    """

    def __init__(self, cells: Sequence[SweepCell], slots: int) -> None:
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        shards: dict[tuple, deque] = {}
        for cell in cells:
            shards.setdefault(
                workload_signature(cell.workload), deque()
            ).append(cell)
        self._shards: list[deque] = list(shards.values())
        self.owners: list[list[int]] = [[] for _ in range(slots)]
        loads = [0] * slots
        heaviest_first = sorted(
            range(len(self._shards)),
            key=lambda i: (-len(self._shards[i]), i),
        )
        for index in heaviest_first:
            slot = min(range(slots), key=lambda s: (loads[s], s))
            self.owners[slot].append(index)
            loads[slot] += len(self._shards[index])

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def remaining(self) -> int:
        """Cells not yet handed out."""
        return sum(len(shard) for shard in self._shards)

    def _load(self, slot: int) -> int:
        """Cells still queued in ``slot``'s own shards."""
        return sum(len(self._shards[i]) for i in self.owners[slot])

    def reassign(self, slot: int, survivors: Sequence[int]) -> int:
        """Move ``slot``'s unfinished shards to the least-loaded
        survivors (the retired-slot escalation rung: a slot whose pool
        keeps dying hands its remaining work to slots that still
        live).  Returns the number of shards moved; with no survivors
        the shards stay put for the caller to drain serially.  The
        stealing machinery needs no change — a reassigned shard is
        simply owned by its new slot from here on."""
        survivors = [s for s in survivors if s != slot]
        if not survivors:
            return 0
        moved = 0
        for index in self.owners[slot]:
            if not self._shards[index]:
                continue
            target = min(survivors, key=lambda s: (self._load(s), s))
            self.owners[target].append(index)
            moved += 1
        self.owners[slot] = []
        return moved

    def next_cell(self, slot: int) -> tuple[SweepCell, bool] | None:
        """The next cell for ``slot``, or None when everything is out.

        Returns ``(cell, stolen)``; ``stolen`` is True when the cell
        came from another slot's shard.
        """
        for index in self.owners[slot]:
            shard = self._shards[index]
            if shard:
                return shard.popleft(), False
        victim = max(
            (i for i, shard in enumerate(self._shards) if shard),
            key=lambda i: (len(self._shards[i]), -i),
            default=None,
        )
        if victim is None:
            return None
        return self._shards[victim].pop(), True


#: Deterministic per-cell resubmit backoff: retry ``n`` (1-based)
#: sleeps ``RETRY_BACKOFF_SECONDS * 2**(n-1)``, capped at
#: ``RETRY_BACKOFF_MAX_SECONDS`` — bounded, and identical for every
#: run of the same schedule.
RETRY_BACKOFF_SECONDS = 0.05
RETRY_BACKOFF_MAX_SECONDS = 1.0


@dataclass
class _RecoveryLog:
    """One pass's mutable recovery counters (parent-side bookkeeping
    behind :class:`~repro.core.faults.FaultStats`)."""

    cell_retries: int = 0
    pool_restarts: int = 0
    shard_reassignments: int = 0
    degraded_cells: int = 0
    watchdog_kills: int = 0

    def any(self) -> bool:
        return bool(
            self.cell_retries
            or self.pool_restarts
            or self.shard_reassignments
            or self.degraded_cells
            or self.watchdog_kills
        )


class _Flight:
    """One in-flight cell: which slot runs it and when the watchdog
    may presume it hung."""

    __slots__ = ("slot", "cell", "deadline")

    def __init__(self, slot: int, cell, deadline: float | None) -> None:
        self.slot = slot
        self.cell = cell
        self.deadline = deadline


class SweepRunner:
    """Runs evaluation-grid cells with shared state and optional fan-out.

    The runner is a persistent service: per-workload contexts (and the
    worker pool, when ``workers > 1``) survive across :meth:`run`
    calls, so regenerating a campaign repeatedly — the benchmark
    trajectory use case — pays profiling, tuning, corpus sampling and
    plan solving once.  Pools are additionally guarded by
    :mod:`repro.core.pools`: a runner that is dropped without
    ``close()`` (or held until interpreter exit) cannot leak worker
    processes.

    Args:
        cells: Default cell list for :meth:`run`.
        solver_config: FlexSP solver knobs shared by all cells.
        workers: Fan-out width.  ``None`` (the default) and 1 run
            serially in-process; ``0`` uses every CPU — the same
            convention as the bench CLI's ``--workers``, so library
            callers (like the plan service) can never fan out by
            accident.  With more than one, cells are workload-sharded
            and affinity-dispatched over single-worker pool slots with
            work stealing (see :class:`_ShardScheduler`).
        vectorized: Evaluate timing kernels and tuners through the
            batched array paths (bit-identical to scalar).
        store: Persistent cross-process cache — a
            :class:`~repro.core.cache_store.CacheStore` or a directory
            path.  Contexts restore from it on construction and spill
            back per the ``spill_batch`` cadence.
        solver_workers: Width of the *one* shared
            :class:`~repro.core.solver.SolverPool` injected into every
            FlexSP solver.  ``None`` adopts ``solver_config.workers``
            when that is > 1 (so sweeps never nest per-workload
            pools); ``0`` uses every CPU; 1 plans in-process.
        spill_batch: Cells a worker (or the serial loop) measures
            before spilling dirty store state.  ``0`` (default)
            batches the whole drain: one merge-save per dirty workload
            per pass, flushed at the end of :meth:`run` and guaranteed
            at worker exit.  ``1`` restores the historical
            spill-after-every-cell behaviour (the write-amplification
            baseline); larger values flush every N cells.  Durability
            trade-off only — restored state is bit-identical at every
            cadence, a crash can just lose at most the unflushed tail.
        prewarm: Campaign-level cold batching.  Before measuring,
            every FlexSP cell is asked for the micro-batch shapes its
            solves would plan from scratch
            (:meth:`~repro.core.solver.FlexSPSolver.pending_shapes`);
            the union is deduplicated *at planner-call granularity*
            across cells — variant cells that share a planning
            context (e.g. the sort ablation) are planned once — and
            dispatched in sorted shape order, through the shared
            :class:`~repro.core.solver.SolverPool` when one is
            configured, so MILP skeleton reuse and worker locality
            trigger.  Seeded plans are bit-identical to what each
            cell would have solved itself; per-cell
            ``mean_solve_seconds`` then reflects cache replay while
            the batched planning cost is reported as
            :attr:`SweepResult.prewarm_seconds`.  Fan-out passes
            prewarm too: the probe runs in the parent
            (side-effect-free), and the seeded state reaches the
            shard workers through the store when one is configured,
            or as a shipped pre-seed snapshot when not.
        fault_schedule: Chaos testing — a
            :class:`~repro.core.faults.FaultSchedule` armed around
            every :meth:`run` pass (in the parent and, via the slot
            pool initializers, in the workers).  None (the default)
            keeps every injection point a no-op.  Results under any
            schedule stay bit-identical to the fault-free serial
            pass; realised injections and the recovery they triggered
            are reported as :attr:`SweepResult.fault_stats`.
        watchdog_seconds: Hung-flight watchdog for fan-out passes: a
            cell in flight longer than this is presumed hung, its
            slot's worker is killed (SIGKILL) and the cell resubmitted
            through the normal escalation.  None (default) disables
            the watchdog — a legitimately long MILP solve must never
            be shot mid-flight unless the caller opted in.
        max_cell_retries: Resubmissions a cell may consume across slot
            failures before degrading to serial in-process execution.
        max_slot_restarts: Consecutive failures a slot may accumulate
            (a success resets the count) before it is retired and its
            shards reassigned to surviving slots.
    """

    def __init__(
        self,
        cells: Sequence[SweepCell] = (),
        solver_config: SolverConfig | None = None,
        workers: int | None = None,
        vectorized: bool = True,
        store: CacheStore | str | os.PathLike | None = None,
        solver_workers: int | None = None,
        spill_batch: int = 0,
        prewarm: bool = True,
        fault_schedule: FaultSchedule | None = None,
        watchdog_seconds: float | None = None,
        max_cell_retries: int = 3,
        max_slot_restarts: int = 2,
    ) -> None:
        self.cells = tuple(cells)
        self.solver_config = solver_config
        if workers is None:
            workers = 1
        elif workers == 0:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        self.workers = workers
        self.vectorized = vectorized
        if store is not None and not isinstance(store, CacheStore):
            store = CacheStore(store)
        self.store = store
        if solver_workers is None:
            solver_workers = (
                solver_config.workers
                if solver_config is not None and solver_config.workers > 1
                else 1
            )
        elif solver_workers == 0:
            solver_workers = os.cpu_count() or 1
        if solver_workers < 0:
            raise ValueError(
                f"solver_workers must be non-negative, got {solver_workers}"
            )
        self.solver_workers = solver_workers
        if spill_batch < 0:
            raise ValueError(
                f"spill_batch must be non-negative, got {spill_batch}"
            )
        self.spill_batch = spill_batch
        self.prewarm = prewarm
        self.fault_schedule = fault_schedule
        if watchdog_seconds is not None and watchdog_seconds <= 0:
            raise ValueError(
                f"watchdog_seconds must be positive, got {watchdog_seconds}"
            )
        self.watchdog_seconds = watchdog_seconds
        if max_cell_retries < 0:
            raise ValueError(
                f"max_cell_retries must be non-negative, got "
                f"{max_cell_retries}"
            )
        self.max_cell_retries = max_cell_retries
        if max_slot_restarts < 0:
            raise ValueError(
                f"max_slot_restarts must be non-negative, got "
                f"{max_slot_restarts}"
            )
        self.max_slot_restarts = max_slot_restarts
        #: Ledger lines already attributed to earlier passes, so each
        #: SweepResult reports only its own realised injections.
        self._ledger_seen = 0
        self._contexts: dict[tuple, WorkloadContext] = {}
        self._solver_pool: SolverPool | None = None
        #: One single-worker ProcessPoolExecutor per fan-out slot —
        #: the affinity mechanism: a shard dispatched to slot i always
        #: lands in the same worker process.
        self._slots: list[ProcessPoolExecutor | None] = []
        self._slot_finalizers: list = []
        self._pool_lock = threading.Lock()
        #: Per-worker-pid cumulative store counters (fan-out), the
        #: counters of workers already retired by a pool teardown
        #: (folded so a reused pid can never clobber them), and the
        #: totals already attributed to earlier passes, so each
        #: SweepResult carries this pass's counter deltas.
        self._worker_counters: dict[int, dict[str, int]] = {}
        self._counters_retired: dict[str, int] = {}
        self._counters_attributed: dict[str, int] = {}
        #: Per-slot cumulative worker telemetry (latest drain) and the
        #: amounts already attributed to earlier passes.
        self._slot_telemetry: dict[int, dict] = {}
        self._slot_telemetry_attributed: dict[int, dict] = {}
        #: The serial path's (and prewarm's) parent-side context
        #: accounting, delta-attributed the same way.
        self._parent_context_builds = 0
        self._parent_restore_seconds = 0.0
        self._parent_attributed = {
            "context_builds": 0, "restore_seconds": 0.0,
        }

    def _ensure_solver_pool(self) -> SolverPool | None:
        if self.solver_workers <= 1:
            return None
        with self._pool_lock:
            if self._solver_pool is None:
                self._solver_pool = SolverPool(self.solver_workers)
            return self._solver_pool

    def context(self, workload: Workload) -> WorkloadContext:
        """The (memoised) shared context of ``workload``."""
        key = workload_signature(workload)
        context = self._contexts.get(key)
        if context is None:
            started = time.perf_counter()
            context = WorkloadContext(
                workload,
                self.solver_config,
                self.vectorized,
                store=self.store,
                solver_pool=self._ensure_solver_pool(),
            )
            self._parent_context_builds += 1
            self._parent_restore_seconds += time.perf_counter() - started
            self._contexts[key] = context
        return context

    def _ensure_slot(self, slot: int) -> ProcessPoolExecutor:
        """The (lazily started) single-worker pool of fan-out slot
        ``slot``; each slot is tracked with its own lifecycle guard."""
        with self._pool_lock:
            while len(self._slots) < self.workers:
                self._slots.append(None)
                self._slot_finalizers.append(None)
            if self._slots[slot] is None:
                store_root = (
                    str(self.store.root) if self.store is not None else None
                )
                pool = ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_sweep_worker_init,
                    initargs=(
                        self.solver_config,
                        self.vectorized,
                        store_root,
                        self.solver_workers,
                        self.spill_batch,
                        self.fault_schedule,
                    ),
                )
                self._slots[slot] = pool
                self._slot_finalizers[slot] = pools.track_pool(self, pool)
            return self._slots[slot]

    def _submit_to_slot(self, slot: int, fn, *args) -> Future:
        """Submit to one slot, normalising a concurrently-closed pool
        (``RuntimeError`` from ``submit``) to the retryable
        ``BrokenProcessPool`` signal — a genuine in-worker exception
        still propagates as itself from the future."""
        try:
            return self._ensure_slot(slot).submit(fn, *args)
        except RuntimeError as exc:
            raise BrokenProcessPool(str(exc)) from exc

    def run(self, cells: Iterable[SweepCell] | None = None) -> SweepResult:
        """Measure every cell (deduplicated) and return aligned metrics.

        Store spills follow the ``spill_batch`` cadence, with a final
        drain at the end of the pass either way, so a fresh process
        restoring from the store right after :meth:`run` returns sees
        every measured cell's state (fan-out drains are best-effort
        per worker; :meth:`close` is the hard guarantee).
        """
        cells = self.cells if cells is None else tuple(cells)
        if not cells:
            raise ValueError("a sweep needs at least one cell")
        started = time.perf_counter()
        with faults.armed(self.fault_schedule):
            return self._run_armed(cells, started)

    def _run_armed(
        self, cells: tuple[SweepCell, ...], started: float
    ) -> SweepResult:
        recovery = _RecoveryLog()
        unique: dict[SweepCell, CellMetrics | None] = dict.fromkeys(cells)
        order = list(unique)
        prewarm_planned = 0
        prewarm_seconds = 0.0
        prewarm_stages: dict[str, float] = {}
        if self.prewarm:
            faults.maybe_inject("prewarm")
            prewarm_planned, prewarm_seconds, prewarm_stages = (
                self._prewarm_cold_cells(order)
            )
        if self.workers == 1:
            touched: dict[tuple, WorkloadContext] = {}
            cells_since_spill = 0
            for cell in order:
                context = self.context(cell.workload)
                touched[workload_signature(cell.workload)] = context
                writes_before = (
                    self.store.counters()["writes"]
                    if self.store is not None
                    else 0
                )
                metrics = context.run(cell)
                if self.store is not None:
                    cells_since_spill += 1
                    if (
                        self.spill_batch
                        and cells_since_spill >= self.spill_batch
                    ):
                        for dirty in touched.values():
                            dirty.persist()
                        cells_since_spill = 0
                    metrics = dataclasses.replace(
                        metrics,
                        store_writes=(
                            self.store.counters()["writes"] - writes_before
                        ),
                    )
                unique[cell] = metrics
            if self.store is not None:
                for context in touched.values():
                    context.persist()
            telemetry = (self._serial_telemetry(unique),)
        else:
            preseed = (
                self._export_prewarm_state() if prewarm_planned else {}
            )
            outcomes, ran, steals = self._run_on_pool(
                order, preseed, recovery
            )
            for cell, metrics in zip(order, outcomes):
                unique[cell] = metrics
            self._drain_workers()
            telemetry = self._collect_worker_telemetry(ran, steals)
        metrics = tuple(unique[cell] for cell in cells)
        store_stats = self._store_stats_delta()
        return SweepResult(
            cells=tuple(cells),
            metrics=metrics,
            unique_cells=len(unique),
            wall_seconds=time.perf_counter() - started,
            store_stats=store_stats,
            prewarm_planned=prewarm_planned,
            prewarm_seconds=prewarm_seconds,
            prewarm_stage_seconds=tuple(prewarm_stages.items()),
            worker_telemetry=telemetry,
            fault_stats=self._fault_stats(recovery, store_stats),
        )

    def _prewarm_cold_cells(
        self, cells: list[SweepCell]
    ) -> tuple[int, float, dict[str, float]]:
        """The campaign-level cold-batching pass (see the ``prewarm``
        constructor doc): collect every FlexSP cell's uncached
        micro-batch shapes, dedup by planning context, plan the union
        in sorted shape order, and seed every sharing solver's cache.

        Infeasible cells are skipped here exactly as
        :meth:`WorkloadContext.run` would convert them to OOM cells;
        the real measurement still reports them.  Returns (shapes
        planned, wall seconds, stage-seconds breakdown).
        """
        started = time.perf_counter()
        by_context: dict[object, dict] = {}
        for cell in cells:
            if cell.system != "flexsp":
                continue
            context = self.context(cell.workload)
            try:
                system = context.system(cell.system, cell.variant)
                solver = system.solver
                if solver.cache is None:
                    continue
                batches = context.batches(cell.num_iterations, cell.start_step)
                for batch in batches:
                    pending = solver.pending_shapes(batch.lengths)
                    if not pending:
                        continue
                    entry = by_context.setdefault(
                        solver.context, {"solvers": [], "shapes": set()}
                    )
                    if not any(s is solver for s in entry["solvers"]):
                        entry["solvers"].append(solver)
                    entry["shapes"].update(pending)
            except (PlanInfeasibleError, InfeasibleWorkloadError):
                continue
        planned = 0
        stages: dict[str, float] = {}
        for entry in by_context.values():
            shapes = sorted(entry["shapes"], key=lambda s: (len(s), s))
            representative = entry["solvers"][0]
            with stage_timing.collect() as collected:
                outcomes = representative.plan_shapes_cold(shapes)
            # Keep the kernel-tier pseudo-stages (kernel:<name>:<tier>
            # dispatch counts) out of the seconds breakdown.
            for stage, seconds in kernels.strip_kernel_stages(
                collected
            ).items():
                stages[stage] = stages.get(stage, 0.0) + seconds
            for solver in entry["solvers"]:
                for shape, outcome in zip(shapes, outcomes):
                    solver.seed_plan(shape, outcome)
            planned += len(shapes)
        return planned, time.perf_counter() - started, stages

    def _export_prewarm_state(self) -> dict:
        """Make the parent's prewarm-seeded state visible to workers.

        With a store, each prewarmed context is persisted — shard
        workers restore it on their first cell of the workload (the
        spill is counted like any other write).  Without a store, the
        state is exported as :class:`~repro.core.cache_store.
        WorkloadState` snapshots, returned here for the dispatcher to
        ship to every slot (``_sweep_worker_preseed``) — stealing
        means any slot may end up building any workload's context, so
        every slot gets the full map.
        """
        preseed: dict = {}
        for signature, context in self._contexts.items():
            if self.store is not None:
                context.persist()
            else:
                preseed[signature] = context.export_state()
        return preseed

    def _serial_telemetry(self, unique: dict) -> WorkerTelemetry:
        """The serial pass's single telemetry row (parent process)."""
        builds = (
            self._parent_context_builds
            - self._parent_attributed["context_builds"]
        )
        restore = (
            self._parent_restore_seconds
            - self._parent_attributed["restore_seconds"]
        )
        self._sync_parent_attributed()
        stages: dict[str, float] = {}
        for metrics in unique.values():
            if metrics is not None:
                stage_timing.accumulate(stages, metrics.stage_seconds)
        return WorkerTelemetry(
            worker=0,
            pid=os.getpid(),
            cells=len(unique),
            steals=0,
            context_builds=builds,
            restore_seconds=restore,
            stage_seconds=tuple(sorted(stages.items())),
        )

    def _sync_parent_attributed(self) -> None:
        self._parent_attributed = {
            "context_builds": self._parent_context_builds,
            "restore_seconds": self._parent_restore_seconds,
        }

    def _collect_worker_telemetry(
        self, ran: dict[int, int], steals: dict[int, int]
    ) -> tuple[WorkerTelemetry, ...]:
        """Per-slot telemetry rows for the pass just finished.

        Cells and steals are parent-side ground truth (the dispatcher
        counted them); context builds, restore seconds and stage
        breakdowns come from the workers' cumulative drain reports,
        attributed as deltas against what earlier passes already
        claimed.  The parent's own prewarm context builds are synced
        into the attributed baseline so they never leak into a later
        serial pass's row.
        """
        self._sync_parent_attributed()
        rows = []
        for slot in range(self.workers):
            cells = ran.get(slot, 0)
            stolen = steals.get(slot, 0)
            cumulative = self._slot_telemetry.get(slot)
            if cumulative is None:
                # Drain could not reach this worker (broken pool):
                # report what the dispatcher knows first-hand.
                rows.append(
                    WorkerTelemetry(
                        worker=slot, pid=0, cells=cells, steals=stolen
                    )
                )
                continue
            attributed = self._slot_telemetry_attributed.get(slot) or {
                "context_builds": 0,
                "restore_seconds": 0.0,
                "stages": {},
            }
            builds = max(
                cumulative["context_builds"] - attributed["context_builds"], 0
            )
            restore = max(
                cumulative["restore_seconds"] - attributed["restore_seconds"],
                0.0,
            )
            stages = {}
            for stage, seconds in cumulative["stages"].items():
                delta = seconds - attributed["stages"].get(stage, 0.0)
                if delta > 0:
                    stages[stage] = delta
            self._slot_telemetry_attributed[slot] = {
                "context_builds": cumulative["context_builds"],
                "restore_seconds": cumulative["restore_seconds"],
                "stages": dict(cumulative["stages"]),
            }
            rows.append(
                WorkerTelemetry(
                    worker=slot,
                    pid=cumulative["pid"],
                    cells=cells,
                    steals=stolen,
                    context_builds=builds,
                    restore_seconds=restore,
                    stage_seconds=tuple(sorted(stages.items())),
                )
            )
        return tuple(rows)

    def _drain_workers(self) -> None:
        """Flush every slot worker's batched spills (best-effort).

        One flush task per slot; the tasks are idempotent, so a drain
        that misses a worker costs durability-until-exit at worst,
        never correctness — the exit flush registered in the worker
        covers the gap.  Counter and telemetry reports are cumulative
        per worker, so collecting one twice is harmless.
        """
        with self._pool_lock:
            slots = list(self._slots)
        for slot, pool in enumerate(slots):
            if pool is None:
                continue
            try:
                pid, counters, telemetry = pool.submit(
                    _sweep_worker_flush
                ).result()
            except (BrokenProcessPool, RuntimeError):  # pragma: no cover
                continue  # drain is best-effort; exit flush still runs
            if counters:
                self._worker_counters[pid] = counters
            self._slot_telemetry[slot] = {**telemetry, "pid": pid}

    def _counter_totals(self) -> dict[str, int]:
        """Cumulative store counters across the parent, every live
        worker's latest report, and workers retired by pool
        teardowns."""
        totals = dict(self.store.counters()) if self.store is not None else {}
        for counters in self._worker_counters.values():
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        for key, value in self._counters_retired.items():
            totals[key] = totals.get(key, 0) + value
        return totals

    def _retire_worker_counters(self) -> None:
        """Fold live per-pid counters into the retired totals.

        Called when pools are torn down: the next pool generation may
        reuse a pid, and replacing a dead worker's cumulative counters
        with a fresh worker's would silently drop the old work from
        every later delta.
        """
        for counters in self._worker_counters.values():
            for key, value in counters.items():
                self._counters_retired[key] = (
                    self._counters_retired.get(key, 0) + value
                )
        self._worker_counters.clear()

    def _rebaseline_counters(self) -> None:
        """Attribute everything counted so far to no pass at all.

        The broken-pool retry hook: a first attempt that died mid-pass
        may have spilled partial state (counted by workers whose
        reports the teardown collected) which the retry will recompute
        and recount — without re-baselining, the pass's
        ``store_stats`` delta would double-count those writes.
        """
        self._counters_attributed = self._counter_totals()

    def _store_stats_delta(self) -> StoreStats | None:
        """This pass's store accounting: on-disk totals plus the
        counter deltas not yet attributed to an earlier pass."""
        if self.store is None:
            return None
        totals = self._counter_totals()
        delta = {
            key: totals.get(key, 0) - self._counters_attributed.get(key, 0)
            for key in (
                "hits",
                "misses",
                "writes",
                "evictions",
                "lock_waits",
                "lock_breaks",
            )
        }
        self._counters_attributed = totals
        num_files, num_bytes, num_entries = self.store.scan()
        return StoreStats(
            files=num_files, bytes=num_bytes, entries=num_entries, **delta
        )

    def _fault_stats(
        self, recovery: _RecoveryLog, store_stats: StoreStats | None
    ) -> FaultStats | None:
        """This pass's fault report: the schedule ledger's new lines
        (injections realised anywhere — including workers that died
        before they could report) plus the parent's recovery counters
        and the store's lock-break delta.  None when no schedule was
        armed and nothing recovered (the common case stays silent)."""
        injections: dict[str, int] = {}
        if self.fault_schedule is not None:
            labels = self.fault_schedule.read_ledger()
            for label in labels[self._ledger_seen :]:
                injections[label] = injections.get(label, 0) + 1
            self._ledger_seen = len(labels)
        lock_breaks = store_stats.lock_breaks if store_stats else 0
        if self.fault_schedule is None and not recovery.any() and not lock_breaks:
            return None
        return FaultStats(
            injections=tuple(sorted(injections.items())),
            cell_retries=recovery.cell_retries,
            pool_restarts=recovery.pool_restarts,
            shard_reassignments=recovery.shard_reassignments,
            degraded_cells=recovery.degraded_cells,
            watchdog_kills=recovery.watchdog_kills,
            lock_breaks=lock_breaks,
        )

    def _run_on_pool(
        self,
        cells: list[SweepCell],
        preseed: dict,
        recovery: _RecoveryLog,
    ) -> tuple[list[CellMetrics], dict[int, int], dict[int, int]]:
        """Fan unique cells across the slot pools.

        Per-cell failures never reach here — :meth:`_run_sharded`
        absorbs them through the graduated escalation (resubmit →
        pool restart → shard reassignment → serial degradation).  The
        outer retry survives only a *catastrophic* pass failure (e.g.
        every preseed dying), and because ``results`` lives outside
        the attempt loop, the retry recomputes **only unfinished
        cells** — work the first attempt completed is kept.  Before
        the retry the counter baseline is re-anchored
        (:meth:`_rebaseline_counters`) so store writes the failed
        attempt already performed are not double-counted.
        """
        results: dict[SweepCell, CellMetrics] = {}
        ran = dict.fromkeys(range(self.workers), 0)
        steals = dict.fromkeys(range(self.workers), 0)
        for attempt in (0, 1):
            try:
                return self._run_sharded(
                    cells, preseed, results, ran, steals, recovery
                )
            except BrokenProcessPool:
                if attempt:
                    raise
                self.close()
                self._rebaseline_counters()
        raise AssertionError("unreachable: both sweep attempts returned")

    def _run_sharded(
        self,
        cells: list[SweepCell],
        preseed: dict,
        results: dict,
        ran: dict[int, int],
        steals: dict[int, int],
        recovery: _RecoveryLog,
    ) -> tuple[list[CellMetrics], dict[int, int], dict[int, int]]:
        """One work-stealing dispatch pass with graduated recovery.

        Keeps exactly one cell in flight per slot (the scheduler's
        steal decisions must see up-to-date shard sizes), counts
        per-slot cells and steals, and returns metrics in request
        order.  Cells already present in ``results`` (a previous
        attempt's completions) are not re-run.

        Failure handling is the escalation ladder: a slot whose
        flight dies gets its pool restarted and the cell goes to the
        retry queue with deterministic bounded backoff; a slot
        failing ``max_slot_restarts + 1`` times in a row is retired
        and its shards reassigned to surviving slots; a cell
        exhausting ``max_cell_retries`` — or any work left when no
        slot survives — runs serially in the parent.  A flight
        outliving ``watchdog_seconds`` is presumed hung: its worker
        is killed and the death follows the same ladder.  Recovery
        affects only *where and when* a cell runs, so results remain
        bit-identical to the fault-free serial pass.  Exceptions
        raised *inside* a worker's cell computation are genuine and
        propagate.
        """
        todo = [cell for cell in cells if cell not in results]
        scheduler = (
            _ShardScheduler(todo, self.workers) if todo else None
        )
        active = set(range(self.workers))
        failures = dict.fromkeys(range(self.workers), 0)
        retry_counts: dict[SweepCell, int] = {}
        retry_queue: list[tuple[float, SweepCell]] = []
        inflight: dict[Future, _Flight] = {}

        def _degrade(cell: SweepCell) -> None:
            results[cell] = self._run_cell_inprocess(cell)
            recovery.degraded_cells += 1

        def _retire(slot: int) -> None:
            active.discard(slot)
            if scheduler is not None and active:
                recovery.shard_reassignments += scheduler.reassign(
                    slot, sorted(active)
                )

        def _fail(slot: int, cell: SweepCell | None) -> None:
            """One slot's flight (or submit) died: restart or retire
            the slot, requeue or degrade the cell."""
            self._restart_slot(slot)
            recovery.pool_restarts += 1
            failures[slot] += 1
            if failures[slot] > self.max_slot_restarts and slot in active:
                _retire(slot)
            if cell is None:
                return
            retries = retry_counts.get(cell, 0) + 1
            retry_counts[cell] = retries
            if retries > self.max_cell_retries or not active:
                _degrade(cell)
                return
            recovery.cell_retries += 1
            backoff = min(
                RETRY_BACKOFF_SECONDS * (2 ** (retries - 1)),
                RETRY_BACKOFF_MAX_SECONDS,
            )
            retry_queue.append((time.monotonic() + backoff, cell))

        if todo and preseed:
            for slot in sorted(active):
                while slot in active and not self._preseed_slot(
                    slot, preseed
                ):
                    _fail(slot, None)

        def _next_work(slot: int) -> tuple[SweepCell, bool] | None:
            now = time.monotonic()
            for i, (eligible, queued) in enumerate(retry_queue):
                if eligible <= now:
                    del retry_queue[i]
                    return queued, False
            if scheduler is not None:
                return scheduler.next_cell(slot)
            return None

        busy: set[int] = set()
        while True:
            for slot in sorted(active - busy):
                nxt = _next_work(slot)
                if nxt is None:
                    continue
                cell, stolen = nxt
                if stolen:
                    steals[slot] += 1
                try:
                    future = self._submit_to_slot(
                        slot, _sweep_worker_run, cell
                    )
                except BrokenProcessPool:
                    _fail(slot, cell)
                    continue
                deadline = (
                    time.monotonic() + self.watchdog_seconds
                    if self.watchdog_seconds is not None
                    else None
                )
                inflight[future] = _Flight(slot, cell, deadline)
                busy.add(slot)
            if not inflight:
                pending = bool(retry_queue) or (
                    scheduler is not None and scheduler.remaining() > 0
                )
                if not pending:
                    break
                if retry_queue and active:
                    # Only backoff timers stand between us and more
                    # dispatch: sleep until the earliest is eligible.
                    soonest = min(e for e, _ in retry_queue)
                    time.sleep(max(0.0, soonest - time.monotonic()))
                    continue
                # Final escalation rung: no slot can serve the rest.
                while retry_queue:
                    __, queued = retry_queue.pop()
                    _degrade(queued)
                if scheduler is not None:
                    while True:
                        nxt = scheduler.next_cell(0)
                        if nxt is None:
                            break
                        _degrade(nxt[0])
                break
            done, __ = wait(
                inflight,
                timeout=self._wait_timeout(inflight, retry_queue),
                return_when=FIRST_COMPLETED,
            )
            if not done:
                now = time.monotonic()
                for flight in inflight.values():
                    if flight.deadline is not None and now >= flight.deadline:
                        # Hung flight: kill the worker; the future
                        # then fails as BrokenProcessPool and takes
                        # the normal escalation path.  Deadline
                        # cleared so the kill happens once.
                        if self._kill_slot_workers(flight.slot):
                            recovery.watchdog_kills += 1
                        flight.deadline = None
                continue
            for future in done:
                flight = inflight.pop(future)
                busy.discard(flight.slot)
                try:
                    metrics = future.result()
                except BrokenProcessPool:
                    _fail(flight.slot, flight.cell)
                    continue
                results[flight.cell] = metrics
                ran[flight.slot] += 1
                failures[flight.slot] = 0
        return [results[cell] for cell in cells], ran, steals

    def _wait_timeout(
        self, inflight: dict, retry_queue: list
    ) -> float | None:
        """How long the dispatch loop may block: until the nearest
        watchdog deadline or retry-eligibility, whichever is sooner
        (None blocks until a completion when neither applies)."""
        now = time.monotonic()
        bounds = [
            flight.deadline - now
            for flight in inflight.values()
            if flight.deadline is not None
        ]
        if retry_queue:
            bounds.append(min(e for e, _ in retry_queue) - now)
        if not bounds:
            return None
        return max(0.01, min(bounds))

    def _preseed_slot(self, slot: int, preseed: dict) -> bool:
        """Ship the prewarm snapshot map to one slot; False when the
        slot's pool died trying (the caller escalates)."""
        try:
            self._submit_to_slot(slot, _sweep_worker_preseed, preseed).result()
        except BrokenProcessPool:
            return False
        return True

    def _restart_slot(self, slot: int) -> None:
        """Tear one slot's (broken) pool down; the next submit lazily
        starts a fresh worker.  The dead worker's last drain report
        stays in ``_worker_counters`` under its pid — its store writes
        remain attributed — and the replacement registers under a new
        pid (same-pid reuse is folded by :meth:`close`)."""
        with self._pool_lock:
            pool = self._slots[slot] if slot < len(self._slots) else None
            finalizer = (
                self._slot_finalizers[slot]
                if slot < len(self._slot_finalizers)
                else None
            )
            if pool is not None:
                self._slots[slot] = None
                self._slot_finalizers[slot] = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if finalizer is not None:
            finalizer()

    def _kill_slot_workers(self, slot: int) -> bool:
        """SIGKILL one slot's worker process(es) — the watchdog's
        hammer for a hung flight (``shutdown`` alone would wait on the
        hung task forever).  False when the slot has no live pool."""
        with self._pool_lock:
            pool = self._slots[slot] if slot < len(self._slots) else None
        if pool is None:
            return False
        processes = getattr(pool, "_processes", None) or {}
        killed = False
        for process in list(processes.values()):
            if process.is_alive():
                process.kill()
                killed = True
        return killed

    def _run_cell_inprocess(self, cell: SweepCell) -> CellMetrics:
        """Serial degradation: run one cell in the parent, exactly as
        the ``workers == 1`` path would (same contexts, same store
        accounting) — the executor's of-last-resort rung when pools
        keep dying.  The parent-side cell computation does not visit
        the ``cell`` injection point: killing the parent is the
        campaign ending, not a fault to recover from."""
        context = self.context(cell.workload)
        writes_before = (
            self.store.counters()["writes"] if self.store is not None else 0
        )
        metrics = context.run(cell)
        if self.store is not None:
            # Persist immediately: degraded cells have no worker drain
            # to flush them, and close() only drains workers.
            context.persist()
            metrics = dataclasses.replace(
                metrics,
                store_writes=(
                    self.store.counters()["writes"] - writes_before
                ),
            )
        return metrics

    def close(self) -> None:
        """Shut the worker pools down.

        The serial path's in-process contexts survive; with
        ``workers > 1`` the warm per-workload state lives inside the
        worker processes and is discarded with them — the next
        :meth:`run` starts fresh slots whose caches are cold (or
        store-restored, when a ``store`` is configured).  Workers are
        drained first so their batched spills land (and are counted)
        before shutdown; the per-worker exit flush remains the
        backstop for anything a best-effort drain missed.  Collected
        counters are retired, not dropped — later passes' deltas stay
        correct across pool generations.
        """
        self._drain_workers()
        with self._pool_lock:
            slots, self._slots = self._slots, []
            finalizers, self._slot_finalizers = self._slot_finalizers, []
            solver_pool = self._solver_pool
        for pool in slots:
            if pool is not None:
                pool.shutdown()
        for finalizer in finalizers:
            if finalizer is not None:
                finalizer()  # retires the pool from the exit registry too
        self._retire_worker_counters()
        self._slot_telemetry.clear()
        self._slot_telemetry_attributed.clear()
        if solver_pool is not None:
            # Not discarded: live contexts hold tenant clients of this
            # pool, which restarts lazily if the runner is used again.
            solver_pool.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def grid_cells(
    systems: Iterable[str],
    workloads: Iterable[Workload],
    num_iterations: int = 1,
    start_step: int = 0,
    variant: tuple[tuple[str, object], ...] = (),
) -> list[SweepCell]:
    """The cross product of systems and workloads as sweep cells."""
    return [
        SweepCell(
            system=system,
            workload=workload,
            num_iterations=num_iterations,
            start_step=start_step,
            variant=variant,
        )
        for workload in workloads
        for system in systems
    ]
