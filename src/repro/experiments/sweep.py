"""Parallel experiment-sweep runner.

The paper's evaluation is a grid of independent cells — a (system,
workload) pair measured over a few global batches (Fig. 4's 18 cells,
Fig. 6's cluster- and context-scaling slices, Table 1).  Regenerating
the grids one benchmark at a time repeats a lot of work: every system
re-fits the same cost model, re-tunes the same baselines, re-samples
the same corpus, and re-solves the same FlexSP plans.

:class:`SweepRunner` treats the whole campaign as one sweep:

* **Shared per-workload state.**  A :class:`WorkloadContext` memoises
  (keyed by :func:`workload_signature`) the fitted cost model, the
  sampled corpus batches, the baseline tuning results and the
  constructed systems — including FlexSP's persistent solver, whose
  plan cache therefore stays warm across cells *and* across repeated
  ``run()`` calls (trajectory regeneration).
* **Cell dedup.**  Grids overlap (Fig. 6's 192K context point is a
  Fig. 4 cell); duplicate cells are measured once and fanned back out.
* **Process-pool fan-out.**  With ``workers > 1`` the unique cells are
  dispatched over a persistent ``ProcessPoolExecutor`` whose workers
  keep their own context caches alive across cells and sweeps, the
  same architecture as :class:`repro.core.solver.SolverService`.

Results are plain :class:`CellMetrics` (no plans or traces), so they
are cheap to ship across the pool and serialise into the
``BENCH_e2e.json`` trajectory.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.solver import SolverConfig
from repro.cost.model import CostModel
from repro.cost.profiler import fit_cost_model
from repro.data.dataset import GlobalBatch
from repro.experiments.runner import RunResult, run_system
from repro.experiments.systems import (
    SYSTEM_BUILDERS,
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
    MegatronLMSystem,
    TrainingSystem,
)
from repro.experiments.workloads import Workload

#: Probe batches used to tune the static baselines (the paper tunes
#: against a handful of representative batches, Appendix B.2).
DEFAULT_PROBE_BATCHES = 2


def workload_signature(workload: Workload) -> tuple:
    """Hashable identity of a workload's full configuration.

    Two workloads with equal signatures produce identical corpora,
    cost models and tuning results, so every per-workload memo in the
    sweep is keyed on this.  Fields are enumerated dynamically so a
    field added to :class:`Workload` later can never be silently left
    out of the key.
    """
    return tuple(
        getattr(workload, field.name) for field in dataclasses.fields(workload)
    )


@dataclass(frozen=True)
class SweepCell:
    """One independent measurement of the evaluation grid.

    Attributes:
        system: Short system name (a :data:`SYSTEM_BUILDERS` key).
        workload: Evaluation configuration.
        num_iterations: Consecutive global batches to measure.
        start_step: First corpus step of the measured window.
    """

    system: str
    workload: Workload
    num_iterations: int = 1
    start_step: int = 0

    def __post_init__(self) -> None:
        if self.system not in SYSTEM_BUILDERS:
            raise ValueError(
                f"unknown system {self.system!r}; options: "
                f"{sorted(SYSTEM_BUILDERS)}"
            )
        if self.num_iterations <= 0:
            raise ValueError(
                f"num_iterations must be positive, got {self.num_iterations}"
            )
        if self.start_step < 0:
            raise ValueError(
                f"start_step must be non-negative, got {self.start_step}"
            )


@dataclass(frozen=True)
class CellMetrics:
    """The paper's per-cell metrics, detached from plans and traces.

    ``mean_solve_seconds`` is host wall-clock (non-deterministic); the
    other fields are pure functions of the simulated execution and are
    bit-identical however the cell is computed (scalar or vectorized,
    in-process or on a pool worker).
    """

    system: str
    workload: str
    num_iterations: int
    mean_iteration_seconds: float
    mean_comm_fraction: float
    mean_alltoall_fraction: float
    tokens_per_second_per_gpu: float
    mean_solve_seconds: float
    plan_cache_hit_rate: float

    def deterministic(self) -> tuple[float, float, float, float]:
        """The wall-clock-free metric tuple used for exact comparisons."""
        return (
            self.mean_iteration_seconds,
            self.mean_comm_fraction,
            self.mean_alltoall_fraction,
            self.tokens_per_second_per_gpu,
        )


def cell_metrics(result: RunResult, cell: SweepCell) -> CellMetrics:
    """Condense a :class:`RunResult` into sweep metrics."""
    return CellMetrics(
        system=result.system,
        workload=result.workload,
        num_iterations=len(result.outcomes),
        mean_iteration_seconds=result.mean_iteration_seconds,
        mean_comm_fraction=result.mean_comm_fraction,
        mean_alltoall_fraction=result.mean_alltoall_fraction,
        tokens_per_second_per_gpu=result.tokens_per_second_per_gpu(
            cell.workload.cluster.num_gpus
        ),
        mean_solve_seconds=result.mean_solve_seconds,
        plan_cache_hit_rate=result.plan_cache_hit_rate,
    )


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one sweep pass.

    Attributes:
        cells: The requested cells, in request order.
        metrics: Per-cell metrics aligned with ``cells`` (duplicate
            cells share one measurement).
        unique_cells: How many distinct cells were actually measured.
        wall_seconds: Host wall-clock of the pass.
    """

    cells: tuple[SweepCell, ...]
    metrics: tuple[CellMetrics, ...]
    unique_cells: int
    wall_seconds: float

    def metric(self, system: str, workload_name: str) -> CellMetrics:
        """Look one cell's metrics up by system and workload name."""
        for cell, metrics in zip(self.cells, self.metrics):
            if cell.system == system and cell.workload.name == workload_name:
                return metrics
        raise KeyError(f"no cell for system={system!r} workload={workload_name!r}")


class WorkloadContext:
    """Memoised per-workload state shared by every cell that uses it.

    Everything derivable from the workload alone is computed lazily
    once: the corpus batches, the fitted cost model, the tuned baseline
    strategies, and the system instances themselves (whose executors
    and FlexSP solver — with its plan cache — persist for the life of
    the context).
    """

    def __init__(
        self,
        workload: Workload,
        solver_config: SolverConfig | None = None,
        vectorized: bool = True,
    ) -> None:
        self.workload = workload
        self.solver_config = solver_config
        self.vectorized = vectorized
        self._corpus = workload.corpus()
        self._batches: dict[int, GlobalBatch] = {}
        self._cost_model: CostModel | None = None
        self._static_degree: int | None = None
        self._megatron_strategy = None
        self._systems: dict[str, TrainingSystem] = {}

    @property
    def cost_model(self) -> CostModel:
        """The workload's fitted cost model (profiled once)."""
        if self._cost_model is None:
            self._cost_model = fit_cost_model(
                self.workload.model_at_context,
                self.workload.cluster,
                self.workload.checkpointing,
            )
        return self._cost_model

    def batch(self, step: int) -> GlobalBatch:
        """Corpus batch for ``step``, sampled at most once."""
        batch = self._batches.get(step)
        if batch is None:
            batch = self._corpus.batch(step)
            self._batches[step] = batch
        return batch

    def batches(self, num: int, start_step: int = 0) -> list[GlobalBatch]:
        return [self.batch(step) for step in range(start_step, start_step + num)]

    def probe_batches(
        self, num: int = DEFAULT_PROBE_BATCHES
    ) -> list[tuple[int, ...]]:
        """The tuners' probe lengths (the first corpus batches)."""
        return [self.batch(step).lengths for step in range(num)]

    def static_degree(self) -> int:
        """DeepSpeed's tuned static SP degree (tuned once)."""
        if self._static_degree is None:
            from repro.baselines.tuner import choose_static_degree

            self._static_degree = choose_static_degree(
                self.probe_batches(),
                self.cost_model,
                self.workload.max_context,
                vectorized=self.vectorized,
            )
        return self._static_degree

    def megatron_strategy(self):
        """Megatron-LM's tuned (tp, cp, dp) strategy (tuned once)."""
        if self._megatron_strategy is None:
            from repro.baselines.tuner import tune_megatron

            self._megatron_strategy = tune_megatron(
                self.probe_batches(),
                self.workload.model_at_context,
                self.workload.cluster,
                self.workload.max_context,
                self.workload.checkpointing,
                vectorized=self.vectorized,
            )
        return self._megatron_strategy

    def system(self, name: str) -> TrainingSystem:
        """The (persistent) system instance for this workload."""
        system = self._systems.get(name)
        if system is not None:
            return system
        workload = self.workload
        if name == "flexsp":
            system = FlexSPSystem(
                workload,
                self.solver_config,
                cost_model=self.cost_model,
                vectorized=self.vectorized,
            )
        elif name == "deepspeed":
            system = DeepSpeedUlyssesSystem(
                workload,
                sp_degree=self.static_degree(),
                cost_model=self.cost_model,
                vectorized=self.vectorized,
            )
        elif name == "batchada":
            system = FlexSPBatchAdaSystem(
                workload,
                cost_model=self.cost_model,
                vectorized=self.vectorized,
            )
        elif name == "megatron":
            system = MegatronLMSystem(
                workload,
                strategy=self.megatron_strategy(),
                vectorized=self.vectorized,
            )
        else:  # pragma: no cover - guarded by SweepCell validation
            raise ValueError(f"unknown system {name!r}")
        self._systems[name] = system
        return system

    def run(self, cell: SweepCell) -> CellMetrics:
        """Measure one cell against this context's shared state."""
        result = run_system(
            self.system(cell.system),
            self.workload,
            num_iterations=cell.num_iterations,
            start_step=cell.start_step,
            batches=self.batches(cell.num_iterations, cell.start_step),
        )
        return cell_metrics(result, cell)


# ---------------------------------------------------------------------------
# Worker-side state of the sweep pool.  Contexts live in the worker
# process and persist across cells and across sweeps, so each worker
# amortises profiling/tuning/corpus work exactly like the serial path.
# ---------------------------------------------------------------------------

_WORKER_SWEEP: tuple[SolverConfig | None, bool] | None = None
_WORKER_CONTEXTS: dict = {}


def _sweep_worker_init(
    solver_config: SolverConfig | None, vectorized: bool
) -> None:
    global _WORKER_SWEEP
    _WORKER_SWEEP = (solver_config, vectorized)
    _WORKER_CONTEXTS.clear()


def _sweep_worker_run(cell: SweepCell) -> CellMetrics:
    assert _WORKER_SWEEP is not None, "sweep worker used before initialization"
    solver_config, vectorized = _WORKER_SWEEP
    key = workload_signature(cell.workload)
    context = _WORKER_CONTEXTS.get(key)
    if context is None:
        context = WorkloadContext(cell.workload, solver_config, vectorized)
        _WORKER_CONTEXTS[key] = context
    return context.run(cell)


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """weakref.finalize target: non-blocking best-effort shutdown."""
    pool.shutdown(wait=False, cancel_futures=True)


class SweepRunner:
    """Runs evaluation-grid cells with shared state and optional fan-out.

    The runner is a persistent service: per-workload contexts (and the
    worker pool, when ``workers > 1``) survive across :meth:`run`
    calls, so regenerating a campaign repeatedly — the benchmark
    trajectory use case — pays profiling, tuning, corpus sampling and
    plan solving once.

    Args:
        cells: Default cell list for :meth:`run`.
        solver_config: FlexSP solver knobs shared by all cells.
        workers: Process-pool width; 1 (the default on single-core
            hosts) runs in-process.  ``None`` uses the CPU count.
        vectorized: Evaluate timing kernels and tuners through the
            batched array paths (bit-identical to scalar).
    """

    def __init__(
        self,
        cells: Sequence[SweepCell] = (),
        solver_config: SolverConfig | None = None,
        workers: int | None = None,
        vectorized: bool = True,
    ) -> None:
        self.cells = tuple(cells)
        self.solver_config = solver_config
        if workers is None:
            workers = os.cpu_count() or 1
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self.vectorized = vectorized
        self._contexts: dict[tuple, WorkloadContext] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def context(self, workload: Workload) -> WorkloadContext:
        """The (memoised) shared context of ``workload``."""
        key = workload_signature(workload)
        context = self._contexts.get(key)
        if context is None:
            context = WorkloadContext(
                workload, self.solver_config, self.vectorized
            )
            self._contexts[key] = context
        return context

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_sweep_worker_init,
                    initargs=(self.solver_config, self.vectorized),
                )
                weakref.finalize(self, _shutdown_pool, self._pool)
            return self._pool

    def run(self, cells: Iterable[SweepCell] | None = None) -> SweepResult:
        """Measure every cell (deduplicated) and return aligned metrics."""
        cells = self.cells if cells is None else tuple(cells)
        if not cells:
            raise ValueError("a sweep needs at least one cell")
        started = time.perf_counter()
        unique: dict[SweepCell, CellMetrics | None] = dict.fromkeys(cells)
        order = list(unique)
        if self.workers == 1:
            for cell in order:
                unique[cell] = self.context(cell.workload).run(cell)
        else:
            outcomes = self._run_on_pool(order)
            for cell, metrics in zip(order, outcomes):
                unique[cell] = metrics
        metrics = tuple(unique[cell] for cell in cells)
        return SweepResult(
            cells=tuple(cells),
            metrics=metrics,
            unique_cells=len(unique),
            wall_seconds=time.perf_counter() - started,
        )

    def _run_on_pool(self, cells: list[SweepCell]) -> list[CellMetrics]:
        """Fan unique cells across the persistent pool (one retry on a
        broken/concurrently-closed pool, mirroring ``SolverService``).

        The ``RuntimeError`` guard covers only the submission phase (a
        concurrent ``close()`` racing a submit); an exception raised
        *inside* a worker's cell computation is genuine and propagates
        without a wasteful retry.
        """
        for attempt in (0, 1):
            try:
                pool = self._ensure_pool()
                futures = [pool.submit(_sweep_worker_run, cell) for cell in cells]
            except (BrokenProcessPool, RuntimeError):
                if attempt:
                    raise
                self.close()
                continue
            try:
                return [f.result() for f in futures]
            except BrokenProcessPool:
                if attempt:
                    raise
                self.close()
        raise AssertionError("unreachable: both sweep attempts returned")

    def close(self) -> None:
        """Shut the worker pool down.

        The serial path's in-process contexts survive; with
        ``workers > 1`` the warm per-workload state lives inside the
        worker processes and is discarded with them — the next
        :meth:`run` starts a fresh pool with cold caches.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def grid_cells(
    systems: Iterable[str],
    workloads: Iterable[Workload],
    num_iterations: int = 1,
    start_step: int = 0,
) -> list[SweepCell]:
    """The cross product of systems and workloads as sweep cells."""
    return [
        SweepCell(
            system=system,
            workload=workload,
            num_iterations=num_iterations,
            start_step=start_step,
        )
        for workload in workloads
        for system in systems
    ]
