"""Measurement runner.

Runs a system on a workload for a number of iterations and aggregates
the paper's metrics: mean iteration seconds (Fig. 4), token throughput
per GPU (Fig. 6), communication fractions (Table 1 / Fig. 5a), and
solver overhead (Fig. 8).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.experiments.systems import IterationOutcome, TrainingSystem
from repro.experiments.workloads import Workload


@dataclass(frozen=True)
class RunResult:
    """Aggregated measurements of one (system, workload) pair.

    Attributes:
        system: System short/display name.
        workload: Workload name.
        outcomes: Per-iteration measurements in step order.
        total_tokens: Tokens trained across all measured iterations.
    """

    system: str
    workload: str
    outcomes: tuple[IterationOutcome, ...]
    total_tokens: int

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ValueError("a run needs at least one iteration")

    @property
    def mean_iteration_seconds(self) -> float:
        return statistics.fmean(o.iteration_seconds for o in self.outcomes)

    @property
    def mean_alltoall_fraction(self) -> float:
        return statistics.fmean(o.alltoall_fraction for o in self.outcomes)

    @property
    def mean_comm_fraction(self) -> float:
        return statistics.fmean(o.comm_fraction for o in self.outcomes)

    @property
    def mean_solve_seconds(self) -> float:
        return statistics.fmean(o.solve_seconds for o in self.outcomes)

    @property
    def solve_stats(self):
        """Aggregated :class:`~repro.core.types.SolveStats` across
        iterations, or None when the system records none (baselines)."""
        from repro.core.types import SolveStats

        collected = [
            o.plan.stats
            for o in self.outcomes
            if o.plan is not None and o.plan.stats is not None
        ]
        if not collected:
            return None
        total = SolveStats()
        for stats in collected:
            total = total.merged(stats)
        return total

    @property
    def plan_cache_hit_rate(self) -> float:
        """Workload-wide plan-cache hit rate (0.0 when not recorded)."""
        stats = self.solve_stats
        return stats.hit_rate if stats is not None else 0.0

    def tokens_per_second_per_gpu(self, num_gpus: int) -> float:
        """Fig. 6's metric: training throughput normalised per device."""
        if num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {num_gpus}")
        total_time = sum(o.iteration_seconds for o in self.outcomes)
        if total_time <= 0:
            raise ValueError("zero total time; cannot compute throughput")
        return self.total_tokens / total_time / num_gpus


def run_system(
    system: TrainingSystem,
    workload: Workload,
    num_iterations: int = 3,
    start_step: int = 0,
    batches=None,
) -> RunResult:
    """Measure ``system`` on ``workload`` over consecutive global batches.

    The paper warms up for 10 iterations and averages 40; the simulator
    is deterministic, so a handful of batches (covering batch-to-batch
    length variation) suffices.

    Args:
        batches: Pre-sampled :class:`~repro.data.dataset.GlobalBatch`
            iterable standing in for the corpus stream (the sweep
            runner memoises corpus generation per workload); when
            None, the batches are drawn from ``workload.corpus()``.
    """
    if num_iterations <= 0:
        raise ValueError(f"num_iterations must be positive, got {num_iterations}")
    if batches is None:
        batches = workload.corpus().batches(num_iterations, start_step=start_step)
    outcomes: list[IterationOutcome] = []
    total_tokens = 0
    for batch in batches:
        outcomes.append(system.run_iteration(batch.lengths))
        total_tokens += batch.total_tokens
    return RunResult(
        system=system.name,
        workload=workload.name,
        outcomes=tuple(outcomes),
        total_tokens=total_tokens,
    )


def speedup(baseline: RunResult, improved: RunResult) -> float:
    """Iteration-time speedup of ``improved`` over ``baseline``."""
    if improved.mean_iteration_seconds <= 0:
        raise ValueError("improved run has zero iteration time")
    return baseline.mean_iteration_seconds / improved.mean_iteration_seconds
