"""Text reporting in the paper's table formats.

Benchmarks print these tables so ``pytest benchmarks/ --benchmark-only``
regenerates every table and figure as human-readable output that can
be compared against the paper side by side.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    if not headers:
        raise ValueError("a table needs at least one column")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    return f"{seconds:.1f}"


def format_fraction(fraction: float) -> str:
    return f"{100 * fraction:.1f}%"


def format_speedup(ratio: float) -> str:
    return f"{ratio:.2f}x"


def format_histogram(histogram: Mapping[str, float], bar_width: int = 40) -> str:
    """ASCII bar chart of a length histogram (the Fig. 2 view)."""
    if not histogram:
        raise ValueError("histogram must be non-empty")
    peak = max(histogram.values())
    lines = []
    for label, fraction in histogram.items():
        bar = "#" * (round(fraction / peak * bar_width) if peak > 0 else 0)
        lines.append(f"{label:>10} {100 * fraction:6.2f}% {bar}")
    return "\n".join(lines)


def format_violin_summary(lengths_by_degree: Mapping[int, Sequence[int]]) -> str:
    """Fig. 5b as text: length quartiles per assigned SP degree."""
    import numpy as np

    rows = []
    for degree in sorted(lengths_by_degree):
        lengths = np.asarray(lengths_by_degree[degree])
        if lengths.size == 0:
            continue
        q1, median, q3 = np.percentile(lengths, [25, 50, 75])
        rows.append(
            [
                f"SP={degree}",
                len(lengths),
                f"{lengths.min() / 1024:.1f}K",
                f"{q1 / 1024:.1f}K",
                f"{median / 1024:.1f}K",
                f"{q3 / 1024:.1f}K",
                f"{lengths.max() / 1024:.1f}K",
            ]
        )
    return format_table(
        ["degree", "# seqs", "min", "p25", "median", "p75", "max"],
        rows,
        title="Sequence lengths by assigned SP degree (Fig. 5b)",
    )
