"""Experiment registry: paper artefact -> reproduction target.

Maps every table and figure in the paper's evaluation to the benchmark
that regenerates it and the modules that implement it, so `repro`
users can navigate from a paper claim to runnable code:

    >>> from repro.experiments.registry import experiment, all_experiments
    >>> experiment("table1").benchmark
    'benchmarks/test_bench_table1.py'

The registry is a *thin adapter* over the campaign engine: artefacts
with an evaluation grid name their :mod:`repro.experiments.campaign`
builder in ``campaign_artefact``, and :func:`artefact_grid` constructs
the declarative grid — so ``make bench`` and the registry regenerate a
figure from the same single definition instead of maintaining parallel
ad-hoc paths.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One paper artefact and where this repo reproduces it.

    Attributes:
        key: Short id, e.g. ``"fig4"``.
        artefact: The paper's name for it.
        claim: One-line statement of the expected shape.
        benchmark: Pytest target that regenerates it.
        modules: Dotted module paths implementing the pieces.
        campaign_artefact: Key of the campaign-engine grid builder
            reproducing this artefact (see :data:`repro.experiments.
            campaign.ARTEFACT_BUILDERS`), or None for artefacts that
            are not evaluation grids (distribution histograms, plan
            anatomy tables).
    """

    key: str
    artefact: str
    claim: str
    benchmark: str
    modules: tuple[str, ...]
    campaign_artefact: str | None = None


_EXPERIMENTS = [
    Experiment(
        key="table1",
        artefact="Table 1",
        claim="OOM frontier doubles with length; smallest feasible SP degree "
        "is fastest; All-to-All share collapses inside a node",
        benchmark="benchmarks/test_bench_table1.py",
        modules=("repro.baselines.homogeneous", "repro.simulator.executor",
                 "repro.model.memory", "repro.experiments.campaign"),
        campaign_artefact="table1",
    ),
    Experiment(
        key="fig2",
        artefact="Fig. 2",
        claim="corpora are uni-modal long-tail; GitHub heaviest tail, "
        "Wikipedia >96% below 8K",
        benchmark="benchmarks/test_bench_fig2.py",
        modules=("repro.data.distributions",),
    ),
    Experiment(
        key="fig4",
        artefact="Fig. 4",
        claim="FlexSP fastest on all 18 cells; BatchAda between DeepSpeed "
        "and FlexSP; largest speedup on the most skewed corpus",
        benchmark="benchmarks/test_bench_fig4.py",
        modules=("repro.core.solver", "repro.experiments.systems",
                 "repro.experiments.runner", "repro.experiments.sweep",
                 "repro.experiments.campaign"),
        campaign_artefact="fig4",
    ),
    Experiment(
        key="table3",
        artefact="Table 3",
        claim="FlexSP mixes SP degrees within a batch; baselines cannot",
        benchmark="benchmarks/test_bench_table3_fig5.py",
        modules=("repro.core.planner", "repro.core.types"),
    ),
    Experiment(
        key="fig5a",
        artefact="Fig. 5a",
        claim="FlexSP cuts All-to-All share from ~30-40% to ~15% and its "
        "absolute time several-fold",
        benchmark="benchmarks/test_bench_table3_fig5.py",
        modules=("repro.simulator.trace",),
    ),
    Experiment(
        key="fig5b",
        artefact="Fig. 5b",
        claim="median assigned length grows with SP degree",
        benchmark="benchmarks/test_bench_table3_fig5.py",
        modules=("repro.core.types",),
    ),
    Experiment(
        key="fig6",
        artefact="Fig. 6",
        claim="FlexSP has the best tokens/s/GPU at every cluster size and "
        "context limit, and degrades least with cluster growth",
        benchmark="benchmarks/test_bench_fig6.py",
        modules=("repro.experiments.workloads", "repro.experiments.runner",
                 "repro.experiments.sweep", "repro.experiments.campaign"),
        campaign_artefact="fig6",
    ),
    Experiment(
        key="table4",
        artefact="Table 4",
        claim="DP bucketing error ~2%; naive fixed-interval error an order "
        "of magnitude larger, worst on Wikipedia",
        benchmark="benchmarks/test_bench_table4.py",
        modules=("repro.core.bucketing",),
    ),
    Experiment(
        key="fig7",
        artefact="Fig. 7",
        claim="removing sorting hurts iteration time; removing bucketing "
        "blows up solver cost",
        benchmark="benchmarks/test_bench_fig7.py",
        modules=("repro.core.blaster", "repro.core.bucketing",
                 "repro.core.solver", "repro.experiments.campaign"),
        campaign_artefact="fig7",
    ),
    Experiment(
        key="fig8",
        artefact="Fig. 8",
        claim="amortized solve time stays far below iteration time as the "
        "cluster scales (weak scaling)",
        benchmark="benchmarks/test_bench_fig8.py",
        modules=("repro.core.solver", "repro.experiments.campaign"),
        campaign_artefact="fig8",
    ),
    Experiment(
        key="fig9",
        artefact="Fig. 9 / Appendix C",
        claim="cost-model estimation error within ~5-6% across degrees",
        benchmark="benchmarks/test_bench_fig9.py",
        modules=("repro.cost.profiler", "repro.simulator.timing"),
    ),
]


def all_experiments() -> list[Experiment]:
    """Every registered paper artefact, in paper order."""
    return list(_EXPERIMENTS)


def experiment(key: str) -> Experiment:
    """Look up one artefact by short id (``"table1"``, ``"fig4"``, ...).

    Raises:
        KeyError: Unknown id; the message lists the valid ones.
    """
    for exp in _EXPERIMENTS:
        if exp.key == key:
            return exp
    raise KeyError(
        f"unknown experiment {key!r}; known: "
        f"{[e.key for e in _EXPERIMENTS]}"
    )


def artefact_grid(key: str, **scale):
    """Build the campaign grid reproducing one registered artefact.

    A thin adapter over :data:`repro.experiments.campaign.
    ARTEFACT_BUILDERS`: scale knobs (batch size, model list, contexts)
    pass straight through to the builder, so callers get exactly the
    grid ``make bench`` runs.

    Raises:
        KeyError: Unknown id.
        ValueError: The artefact has no campaign grid (e.g. Fig. 2).
    """
    exp = experiment(key)
    if exp.campaign_artefact is None:
        raise ValueError(
            f"{exp.artefact} is not an evaluation grid; no campaign "
            "definition exists for it"
        )
    from repro.experiments.campaign import ARTEFACT_BUILDERS

    return ARTEFACT_BUILDERS[exp.campaign_artefact](**scale)
