"""Disaggregated solving/training pipeline (paper S5).

The paper overlaps plan solving (CPU) with training (GPU): a solver
service consumes upcoming batches' lengths and fills a plan store; the
trainer reads one plan per step.  :class:`TrainingPipeline` reproduces
that structure with a background thread pool standing in for the
per-node solver services, and reports how much solving was actually
hidden behind (simulated) training.

Since the campaign-engine refactor the pipeline is a thin adapter over
the same shared solving substrate as the sweeps: build it with
:meth:`TrainingPipeline.with_shared_pool` and its prefetch threads
plan on a campaign-wide :class:`~repro.core.solver.SolverPool` tenant
instead of nesting a private worker pool.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.solver import FlexSPSolver, SolverConfig, SolverPool
from repro.core.types import IterationPlan
from repro.cost.model import CostModel
from repro.data.dataset import SyntheticCorpus
from repro.simulator.executor import IterationExecutor


@dataclass(frozen=True)
class PipelineReport:
    """Outcome of a pipelined training run.

    Attributes:
        iteration_seconds: Simulated training seconds per step.
        solve_seconds: Host seconds each step's solve actually took.
        stall_seconds: Host seconds the trainer had to wait for a plan
            that was not ready (zero when solving is fully overlapped).
        plans: The executed plans, in step order.
    """

    iteration_seconds: tuple[float, ...]
    solve_seconds: tuple[float, ...]
    stall_seconds: tuple[float, ...]
    plans: tuple[IterationPlan, ...]

    @property
    def total_stall(self) -> float:
        return sum(self.stall_seconds)

    @property
    def overlap_fraction(self) -> float:
        """Share of solve time hidden behind training."""
        total_solve = sum(self.solve_seconds)
        if total_solve <= 0:
            return 1.0
        return max(0.0, 1.0 - self.total_stall / total_solve)


class TrainingPipeline:
    """Runs training with solver services prefetching future plans.

    Args:
        solver: Shared FlexSP solver (thread-safe: solve() is pure).
        executor: Simulated iteration executor.
        corpus: Batch stream.
        lookahead: How many future batches the services solve ahead;
            the paper solves "multiple data batches concurrently".
        workers: Concurrent solver threads (the paper uses one service
            per node).
    """

    def __init__(
        self,
        solver: FlexSPSolver,
        executor: IterationExecutor,
        corpus: SyntheticCorpus,
        lookahead: int = 2,
        workers: int = 2,
    ) -> None:
        if lookahead < 0:
            raise ValueError(f"lookahead must be non-negative, got {lookahead}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.solver = solver
        self.executor = executor
        self.corpus = corpus
        self.lookahead = lookahead
        self.workers = workers

    @classmethod
    def with_shared_pool(
        cls,
        model: CostModel,
        config: SolverConfig,
        executor: IterationExecutor,
        corpus: SyntheticCorpus,
        pool: SolverPool,
        **kwargs,
    ) -> "TrainingPipeline":
        """Pipeline whose solver plans on a shared :class:`SolverPool`.

        The solver is built with the pool's tenant client injected, so
        the pipeline's per-node solver services and a concurrently
        running campaign draw from one process pool instead of each
        spawning their own (the ROADMAP's shared-pool item).
        """
        solver = FlexSPSolver(model, config, service=pool.client(model, config))
        return cls(solver, executor, corpus, **kwargs)

    def _submit(self, pool: ThreadPoolExecutor, step: int) -> Future:
        lengths = self.corpus.batch(step).lengths

        def solve() -> tuple[IterationPlan, float]:
            start = time.perf_counter()
            plan = self.solver.solve(lengths)
            return plan, time.perf_counter() - start

        return pool.submit(solve)

    def run(self, num_steps: int) -> PipelineReport:
        """Train ``num_steps`` iterations with prefetched plans."""
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        iteration_seconds: list[float] = []
        solve_seconds: list[float] = []
        stall_seconds: list[float] = []
        plans: list[IterationPlan] = []

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures: dict[int, Future] = {}
            for step in range(min(1 + self.lookahead, num_steps)):
                futures[step] = self._submit(pool, step)
            for step in range(num_steps):
                wait_start = time.perf_counter()
                plan, solved_in = futures.pop(step).result()
                stall = time.perf_counter() - wait_start
                next_step = step + 1 + self.lookahead
                if next_step < num_steps and next_step not in futures:
                    futures[next_step] = self._submit(pool, next_step)
                result = self.executor.run(plan)
                iteration_seconds.append(result.iteration_seconds)
                solve_seconds.append(solved_in)
                stall_seconds.append(stall)
                plans.append(plan)

        return PipelineReport(
            iteration_seconds=tuple(iteration_seconds),
            solve_seconds=tuple(solve_seconds),
            stall_seconds=tuple(stall_seconds),
            plans=tuple(plans),
        )
