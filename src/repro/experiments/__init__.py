"""Experiment harness.

Unified training-system wrappers (:mod:`repro.experiments.systems`),
workload definitions matching the paper's evaluation grid
(:mod:`repro.experiments.workloads`), the measurement runner
(:mod:`repro.experiments.runner`), the parallel experiment-sweep
runner with shared per-workload state
(:mod:`repro.experiments.sweep`), the declarative campaign engine
expressing every paper artefact grid as one sweep
(:mod:`repro.experiments.campaign`) and text reporting in the paper's
table formats (:mod:`repro.experiments.reporting`).
"""

from repro.experiments.campaign import (
    Artefact,
    ArtefactResult,
    Campaign,
    CampaignResult,
    build_campaign,
    smoke_campaign,
    unified_campaign,
)
from repro.experiments.pipeline import PipelineReport, TrainingPipeline
from repro.experiments.registry import (
    Experiment,
    all_experiments,
    artefact_grid,
    experiment,
)
from repro.experiments.runner import RunResult, run_system
from repro.experiments.sweep import (
    CellMetrics,
    SweepCell,
    SweepResult,
    SweepRunner,
    WorkloadContext,
    grid_cells,
    workload_signature,
)
from repro.experiments.systems import (
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
    IterationOutcome,
    MegatronLMSystem,
    build_system,
)
from repro.experiments.workloads import Workload, fig4_workloads

__all__ = [
    "IterationOutcome",
    "FlexSPSystem",
    "DeepSpeedUlyssesSystem",
    "FlexSPBatchAdaSystem",
    "MegatronLMSystem",
    "build_system",
    "Workload",
    "fig4_workloads",
    "RunResult",
    "run_system",
    "SweepCell",
    "CellMetrics",
    "SweepResult",
    "SweepRunner",
    "WorkloadContext",
    "grid_cells",
    "workload_signature",
    "TrainingPipeline",
    "PipelineReport",
    "Experiment",
    "all_experiments",
    "experiment",
    "artefact_grid",
    "Artefact",
    "ArtefactResult",
    "Campaign",
    "CampaignResult",
    "build_campaign",
    "smoke_campaign",
    "unified_campaign",
]
