"""Workload definitions for the paper's evaluation grid.

A workload fixes the model, the corpus, the maximum context length,
the cluster and the batching protocol.  The end-to-end grid (Fig. 4)
is {GPT-7B, 13B, 30B} x {GitHub, CommonCrawl, Wikipedia} x
{192K, 384K} on 64 GPUs with global batch 512; the scalability study
(Fig. 6) varies cluster size and context limit on CommonCrawl.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import ClusterSpec, standard_cluster
from repro.data.dataset import DEFAULT_GLOBAL_BATCH_SIZE, SyntheticCorpus
from repro.data.distributions import (
    COMMONCRAWL,
    GITHUB,
    WIKIPEDIA,
    LogNormalMixture,
)
from repro.model.config import GPT_7B, GPT_13B, GPT_30B, ModelConfig
from repro.model.memory import ActivationCheckpointing, default_checkpointing


@dataclass(frozen=True)
class Workload:
    """One evaluation configuration.

    Attributes:
        model: Model architecture (context length taken from
            ``max_context``).
        distribution: Corpus length distribution.
        max_context: Task maximum context length, tokens.
        cluster: Simulated hardware.
        global_batch_size: Sequences per training step.
        seed: Corpus RNG seed.
    """

    model: ModelConfig
    distribution: LogNormalMixture
    max_context: int
    cluster: ClusterSpec = field(default_factory=lambda: standard_cluster(64))
    global_batch_size: int = DEFAULT_GLOBAL_BATCH_SIZE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_context <= 0:
            raise ValueError(f"max_context must be positive, got {self.max_context}")

    @property
    def name(self) -> str:
        return (
            f"{self.model.name}/{self.distribution.name}/"
            f"{self.max_context // 1024}K/{self.cluster.num_gpus}gpu"
        )

    @property
    def model_at_context(self) -> ModelConfig:
        """Model config with positional embedding sized to the task."""
        return self.model.with_max_context(self.max_context)

    @property
    def checkpointing(self) -> ActivationCheckpointing:
        """The paper's per-model policy, escalated if the cluster could
        not otherwise host a worst-case sequence (e.g. 128K on 16
        GPUs needs checkpointing that 64 GPUs do not)."""
        from repro.model.memory import feasible_checkpointing

        return feasible_checkpointing(
            self.model_at_context,
            self.max_context,
            self.cluster.num_gpus,
            self.cluster.gpu.usable_memory_bytes,
            base=default_checkpointing(self.model, self.max_context),
        )

    def corpus(self) -> SyntheticCorpus:
        return SyntheticCorpus(
            distribution=self.distribution,
            max_context=self.max_context,
            global_batch_size=self.global_batch_size,
            seed=self.seed,
        )


def fig4_workloads(
    num_gpus: int = 64, global_batch_size: int = DEFAULT_GLOBAL_BATCH_SIZE
) -> list[Workload]:
    """The 18 end-to-end configurations of Fig. 4."""
    cluster = standard_cluster(num_gpus)
    workloads = []
    for model in (GPT_7B, GPT_13B, GPT_30B):
        for max_context in (192 * 1024, 384 * 1024):
            for dist in (GITHUB, COMMONCRAWL, WIKIPEDIA):
                workloads.append(
                    Workload(
                        model=model,
                        distribution=dist,
                        max_context=max_context,
                        cluster=cluster,
                        global_batch_size=global_batch_size,
                    )
                )
    return workloads


def fig6_gpu_scaling_workloads(
    global_batch_size: int = DEFAULT_GLOBAL_BATCH_SIZE,
) -> list[Workload]:
    """Fig. 6 left panel: 16/32/64 GPUs at 128K on CommonCrawl."""
    return [
        Workload(
            model=GPT_7B,
            distribution=COMMONCRAWL,
            max_context=128 * 1024,
            cluster=standard_cluster(n),
            global_batch_size=global_batch_size,
        )
        for n in (16, 32, 64)
    ]


def fig6_context_scaling_workloads(
    global_batch_size: int = DEFAULT_GLOBAL_BATCH_SIZE,
) -> list[Workload]:
    """Fig. 6 right panel: 64K..384K context on 64 GPUs, CommonCrawl."""
    return [
        Workload(
            model=GPT_7B,
            distribution=COMMONCRAWL,
            max_context=k * 1024,
            cluster=standard_cluster(64),
            global_batch_size=global_batch_size,
        )
        for k in (64, 128, 192, 256, 384)
    ]


def case_study_workload(
    global_batch_size: int = DEFAULT_GLOBAL_BATCH_SIZE,
) -> Workload:
    """S6.3's case study: GPT-7B on CommonCrawl at 384K, 64 GPUs."""
    return Workload(
        model=GPT_7B,
        distribution=COMMONCRAWL,
        max_context=384 * 1024,
        cluster=standard_cluster(64),
        global_batch_size=global_batch_size,
    )
