"""Declarative campaign engine: every paper artefact as one sweep.

A :class:`Campaign` expresses the paper's evaluation artefacts —
Fig. 4's throughput grid, Fig. 6's cluster/context scaling slices,
Table 1's capacity frontier, Fig. 7's ablation matrix, Fig. 8's weak
scaling — as declarative :class:`~repro.experiments.sweep.SweepCell`
grids with per-artefact metric reducers, and executes *all* of them in
one :class:`~repro.experiments.sweep.SweepRunner` pass.  Cells shared
between artefacts (Fig. 6's 192K point is a Fig. 4 cell; Fig. 7's
un-ablated FlexSP column and Fig. 8's largest-cluster point likewise)
are measured exactly once and fanned back out, and every cell rides
the runner's shared per-workload state, optional persistent
:class:`~repro.core.cache_store.CacheStore` and shared
:class:`~repro.core.solver.SolverPool`.

The grid vocabulary is exactly the sweep's:

* plain (system, workload) cells for the throughput grids;
* ``variant`` cells for parameterised artefacts — Table 1 pins
  DeepSpeed's SP degree per cell, Fig. 7 selects solver ablations;
* per-artefact **reducers** condense the aligned
  :class:`~repro.experiments.sweep.CellMetrics` into the artefact's
  JSON-ready summary (frontier rows, ablation ratios, scaling curves).

Two ready-made campaigns cover the tooling entry points
(``python -m repro.bench --campaign ...`` and ``make bench`` /
``make bench-smoke``): :func:`unified_campaign` is the reduced-protocol
regeneration of all five artefacts, :func:`smoke_campaign` a
minutes-to-seconds tier for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.topology import standard_cluster
from repro.core import kernels, stage_timing
from repro.data.distributions import (
    COMMONCRAWL,
    GITHUB,
    WIKIPEDIA,
    FixedLength,
)
from repro.experiments.sweep import (
    CellMetrics,
    SweepCell,
    SweepResult,
    SweepRunner,
    find_cell_metrics,
    grid_cells,
)
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B, GPT_13B, GPT_30B, ModelConfig

__all__ = [
    "ARTEFACT_BUILDERS",
    "CAMPAIGNS",
    "Artefact",
    "ArtefactResult",
    "Campaign",
    "CampaignResult",
    "build_campaign",
    "fig4_artefact",
    "fig6_artefact",
    "fig7_artefact",
    "fig8_artefact",
    "smoke_campaign",
    "table1_artefact",
    "unified_campaign",
]

#: Every evaluated system, in the paper's ordering.
DEFAULT_SYSTEMS = ("flexsp", "deepspeed", "batchada", "megatron")

#: Fig. 7's ablation columns as sweep-cell variants.
ABLATIONS: tuple[tuple[str, tuple[tuple[str, object], ...]], ...] = (
    ("FlexSP", ()),
    ("w/o Sort", (("sort_sequences", False),)),
    ("w/ naive BKT", (("bucketing", "naive"),)),
    ("w/o BKT", (("bucketing", "none"),)),
)

Reducer = Callable[
    ["Artefact", Sequence[SweepCell], Sequence[CellMetrics]], dict
]


# ---------------------------------------------------------------------------
# Reducers: aligned cell metrics -> the artefact's JSON-ready summary.
# ---------------------------------------------------------------------------


def throughput_summary(
    artefact: "Artefact",
    cells: Sequence[SweepCell],
    metrics: Sequence[CellMetrics],
) -> dict:
    """Fig. 4/6-style reduction: per-workload system comparison.

    Rows keyed by workload name carry each system's mean iteration
    seconds and tokens/s/GPU plus the chosen checkpointing policy;
    ``flexsp_speedup`` is FlexSP's iteration-time advantage over the
    best measured baseline of that workload.
    """
    rows: dict[str, dict] = {}
    for cell, m in zip(cells, metrics):
        row = rows.setdefault(
            m.workload, {"systems": {}, "checkpointing": m.checkpointing}
        )
        row["systems"][cell.system] = {
            "status": m.status,
            "mean_iteration_seconds": m.mean_iteration_seconds,
            "tokens_per_second_per_gpu": m.tokens_per_second_per_gpu,
            "plan_cache_hit_rate": m.plan_cache_hit_rate,
        }
    for row in rows.values():
        flexsp = row["systems"].get("flexsp")
        baselines = [
            s["mean_iteration_seconds"]
            for name, s in row["systems"].items()
            if name != "flexsp" and s["status"] == "ok"
        ]
        if flexsp and flexsp["status"] == "ok" and baselines:
            row["flexsp_speedup"] = round(
                min(baselines) / flexsp["mean_iteration_seconds"], 4
            )
    return {"workloads": rows}


def frontier_summary(
    artefact: "Artefact",
    cells: Sequence[SweepCell],
    metrics: Sequence[CellMetrics],
) -> dict:
    """Table 1 reduction: iteration time / All-to-All share per
    (sequence length, SP degree), OOM corners marked, plus the minimum
    feasible degree of every row (the capacity frontier)."""
    rows: dict[str, dict] = {}
    for cell, m in zip(cells, metrics):
        seq = cell.workload.distribution.length
        bs = cell.workload.global_batch_size
        degree = dict(cell.variant)["sp_degree"]
        label = f"{seq // 1024}K x {bs}"
        row = rows.setdefault(label, {"degrees": {}})
        row["degrees"][str(degree)] = (
            "OOM"
            if m.status == "oom"
            else (
                f"{m.mean_iteration_seconds:.1f}s/"
                f"{100 * m.mean_alltoall_fraction:.0f}%"
            )
        )
    for row in rows.values():
        feasible = [
            int(d) for d, v in row["degrees"].items() if v != "OOM"
        ]
        row["min_feasible_degree"] = min(feasible) if feasible else None
    return {"rows": rows}


def ablation_summary(
    artefact: "Artefact",
    cells: Sequence[SweepCell],
    metrics: Sequence[CellMetrics],
) -> dict:
    """Fig. 7 reduction: per workload, each ablation's iteration time
    relative to the full system (and its solve seconds)."""
    label_of = {variant: label for label, variant in ABLATIONS}
    rows: dict[str, dict] = {}
    for cell, m in zip(cells, metrics):
        row = rows.setdefault(m.workload, {})
        row[label_of[cell.variant]] = {
            "mean_iteration_seconds": m.mean_iteration_seconds,
            "mean_solve_seconds": m.mean_solve_seconds,
        }
    for row in rows.values():
        base = row.get("FlexSP", {}).get("mean_iteration_seconds")
        if base:
            for entry in row.values():
                entry["relative"] = round(
                    entry["mean_iteration_seconds"] / base, 4
                )
    return {"workloads": rows}


def scaling_summary(
    artefact: "Artefact",
    cells: Sequence[SweepCell],
    metrics: Sequence[CellMetrics],
) -> dict:
    """Fig. 8 reduction: per cluster size, simulated training seconds
    vs host solve seconds and the per-node amortized solve time (the
    solver service runs on every node's CPUs)."""
    rows: dict[str, dict] = {}
    for cell, m in zip(cells, metrics):
        cluster = cell.workload.cluster
        rows[str(cluster.num_gpus)] = {
            "training_seconds": m.mean_iteration_seconds,
            "solve_seconds": m.mean_solve_seconds,
            "amortized_solve_seconds": m.mean_solve_seconds
            / max(cluster.num_nodes, 1),
            "plan_cache_hit_rate": m.plan_cache_hit_rate,
        }
    return {"clusters": rows}


# ---------------------------------------------------------------------------
# The campaign structures.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Artefact:
    """One paper artefact expressed as a declarative cell grid.

    Attributes:
        key: Short id (``"fig4"``, ``"table1"``, ...).
        title: The paper's name for the artefact.
        cells: The grid, in presentation order.
        reducer: Condenses the aligned per-cell metrics into the
            artefact's JSON-ready summary.
    """

    key: str
    title: str
    cells: tuple[SweepCell, ...]
    reducer: Reducer = field(default=throughput_summary)

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError(f"artefact {self.key!r} has no cells")


@dataclass(frozen=True)
class ArtefactResult:
    """One artefact's slice of a campaign run."""

    artefact: Artefact
    cells: tuple[SweepCell, ...]
    metrics: tuple[CellMetrics, ...]
    summary: dict

    def metric(
        self,
        system: str,
        workload_name: str,
        variant: tuple[tuple[str, object], ...] = (),
    ) -> CellMetrics:
        """Look one cell's metrics up within this artefact."""
        found = find_cell_metrics(
            self.cells, self.metrics, system, workload_name, variant
        )
        if found is None:
            raise KeyError(
                f"artefact {self.artefact.key!r} has no cell for "
                f"system={system!r} workload={workload_name!r} "
                f"variant={variant!r}"
            )
        return found


@dataclass(frozen=True)
class Campaign:
    """A named set of artefacts regenerated in one sweep pass.

    Attributes:
        name: Campaign id (``"unified"``, ``"smoke"``, ...).
        artefacts: The artefact grids, in presentation order.
    """

    name: str
    artefacts: tuple[Artefact, ...]

    def __post_init__(self) -> None:
        if not self.artefacts:
            raise ValueError("a campaign needs at least one artefact")
        keys = [a.key for a in self.artefacts]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate artefact keys: {keys}")

    @property
    def cells(self) -> tuple[SweepCell, ...]:
        """Every artefact's cells, concatenated in artefact order.

        Duplicates across artefacts are intentional — the sweep runner
        measures each distinct cell once and fans the shared metrics
        back out to every artefact that requested it.
        """
        return tuple(
            cell for artefact in self.artefacts for cell in artefact.cells
        )

    def artefact(self, key: str) -> Artefact:
        for artefact in self.artefacts:
            if artefact.key == key:
                return artefact
        raise KeyError(
            f"campaign {self.name!r} has no artefact {key!r}; known: "
            f"{[a.key for a in self.artefacts]}"
        )

    def run(self, runner: SweepRunner) -> "CampaignResult":
        """Execute every artefact grid through one sweep pass."""
        sweep = runner.run(self.cells)
        results = []
        offset = 0
        for artefact in self.artefacts:
            n = len(artefact.cells)
            cells = sweep.cells[offset : offset + n]
            metrics = sweep.metrics[offset : offset + n]
            results.append(
                ArtefactResult(
                    artefact=artefact,
                    cells=cells,
                    metrics=metrics,
                    summary=artefact.reducer(artefact, cells, metrics),
                )
            )
            offset += n
        return CampaignResult(
            campaign=self, sweep=sweep, artefacts=tuple(results)
        )


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one campaign pass (all artefacts, one sweep)."""

    campaign: Campaign
    sweep: SweepResult
    artefacts: tuple[ArtefactResult, ...]

    def artefact(self, key: str) -> ArtefactResult:
        for result in self.artefacts:
            if result.artefact.key == key:
                return result
        raise KeyError(f"no artefact result {key!r}")

    @property
    def plan_cache_hit_rate(self) -> float:
        """Mean plan-cache hit rate over the feasible FlexSP cells —
        the campaign-level warmth figure the ``BENCH_campaign.json``
        trajectory (and its >=90 % restored-store bar) tracks.
        Averaged over *unique* cells, so a measurement shared by
        several artefacts counts once."""
        rates = {
            cell: m.plan_cache_hit_rate
            for cell, m in zip(self.sweep.cells, self.sweep.metrics)
            if cell.system == "flexsp" and m.feasible
        }
        if not rates:
            return 0.0
        return sum(rates.values()) / len(rates)

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Cold-path planning stage totals (enumerate / lpt /
        milp_build / milp_solve) over the pass: every *unique* cell's
        solve-side breakdown plus the runner's cold-batching prewarm
        pass, which is where a prewarmed campaign's planning actually
        happens.  Host wall-clock (``--profile`` report)."""
        totals: dict[str, float] = {}
        unique: dict = {}
        for cell, m in zip(self.sweep.cells, self.sweep.metrics):
            unique.setdefault(cell, m)
        for m in unique.values():
            stage_timing.accumulate(totals, m.stage_seconds)
        stage_timing.accumulate(totals, self.sweep.prewarm_stage_seconds)
        return totals

    @property
    def total_steals(self) -> int:
        """Cells that ran outside their shard's home worker this pass."""
        return sum(t.steals for t in self.sweep.worker_telemetry)

    @property
    def total_context_builds(self) -> int:
        """Workload-context constructions across every worker this
        pass — with shard affinity, bounded by unique workloads plus
        :attr:`total_steals` (vs. up to workers x workloads for naive
        fan-out)."""
        return sum(t.context_builds for t in self.sweep.worker_telemetry)

    @property
    def store_write_amplification(self) -> float | None:
        """Store data-file writes per measured cell for this pass —
        the figure the batched-spill engine drives below the
        spill-per-cell baseline (None without a store)."""
        stats = self.sweep.store_stats
        if stats is None:
            return None
        return stats.writes / max(self.sweep.unique_cells, 1)

    def summary(self) -> dict:
        """JSON-ready record of the pass (the trajectory payload)."""
        payload = {
            "campaign": self.campaign.name,
            "cells": len(self.sweep.cells),
            "unique_cells": self.sweep.unique_cells,
            "wall_seconds": round(self.sweep.wall_seconds, 3),
            "plan_cache_hit_rate": round(self.plan_cache_hit_rate, 4),
            # Which hot-kernel tier this process would dispatch to —
            # makes every trajectory record self-describing (native
            # and fallback passes are bit-identical but not
            # comparable on wall-clock).
            "kernels": kernels.describe_dict(),
            "stage_seconds": {
                stage: round(seconds, 4)
                for stage, seconds in self.stage_seconds.items()
            },
            "prewarm": {
                "planned_shapes": self.sweep.prewarm_planned,
                "seconds": round(self.sweep.prewarm_seconds, 4),
            },
            "workers": {
                "count": len(self.sweep.worker_telemetry),
                "steals": self.total_steals,
                "context_builds": self.total_context_builds,
                "per_worker": [
                    {
                        "worker": t.worker,
                        "pid": t.pid,
                        "cells": t.cells,
                        "steals": t.steals,
                        "context_builds": t.context_builds,
                        "restore_seconds": round(t.restore_seconds, 4),
                        "stage_seconds": {
                            stage: round(seconds, 4)
                            for stage, seconds in t.stage_seconds
                        },
                    }
                    for t in self.sweep.worker_telemetry
                ],
            },
            "artefacts": {
                r.artefact.key: r.summary for r in self.artefacts
            },
        }
        if self.sweep.store_stats is not None:
            payload["store"] = {
                **self.sweep.store_stats.to_dict(),
                "write_amplification": round(
                    self.store_write_amplification, 4
                ),
            }
        if self.sweep.fault_stats is not None:
            # Chaos accounting: realised injections and the recovery
            # that absorbed them (absent on fault-free passes).
            payload["faults"] = self.sweep.fault_stats.to_dict()
        return payload


# ---------------------------------------------------------------------------
# Artefact builders.  Scale knobs default to the reduced protocol; the
# paper's full shapes are one argument away (e.g. the full Fig. 4 grid
# via models=(GPT_7B, GPT_13B, GPT_30B), contexts=(192K, 384K)).
# ---------------------------------------------------------------------------


def fig4_artefact(
    *,
    global_batch_size: int,
    num_iterations: int = 1,
    num_gpus: int = 64,
    models: Sequence[ModelConfig] = (GPT_7B,),
    contexts: Sequence[int] = (192 * 1024,),
    distributions=(GITHUB, COMMONCRAWL, WIKIPEDIA),
    systems: Sequence[str] = DEFAULT_SYSTEMS,
) -> Artefact:
    """Fig. 4: end-to-end iteration time, systems x corpora (x models)."""
    cluster = standard_cluster(num_gpus)
    workloads = [
        Workload(
            model=model,
            distribution=dist,
            max_context=context,
            cluster=cluster,
            global_batch_size=global_batch_size,
        )
        for model in models
        for context in contexts
        for dist in distributions
    ]
    return Artefact(
        key="fig4",
        title="Fig. 4: end-to-end iteration time",
        cells=tuple(grid_cells(systems, workloads, num_iterations)),
        reducer=throughput_summary,
    )


def fig6_artefact(
    *,
    global_batch_size: int,
    num_iterations: int = 1,
    gpu_counts: Sequence[int] = (16, 32, 64),
    gpu_scaling_context: int = 128 * 1024,
    context_points: Sequence[int] = (128 * 1024, 192 * 1024),
    context_scaling_gpus: int = 64,
    distribution=COMMONCRAWL,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
) -> Artefact:
    """Fig. 6: tokens/s/GPU under cluster scaling and context scaling.

    The 192K context point on the 64-GPU cluster deliberately
    coincides with a Fig. 4 cell (when the batch sizes match) — the
    campaign measures it once.
    """
    workloads = [
        Workload(
            model=GPT_7B,
            distribution=distribution,
            max_context=gpu_scaling_context,
            cluster=standard_cluster(n),
            global_batch_size=global_batch_size,
        )
        for n in gpu_counts
    ] + [
        Workload(
            model=GPT_7B,
            distribution=distribution,
            max_context=context,
            cluster=standard_cluster(context_scaling_gpus),
            global_batch_size=global_batch_size,
        )
        for context in context_points
    ]
    return Artefact(
        key="fig6",
        title="Fig. 6: scalability (cluster size and context length)",
        cells=tuple(grid_cells(systems, workloads, num_iterations)),
        reducer=throughput_summary,
    )


#: Table 1's (sequence length, batch size) rows: 4M tokens per row.
TABLE1_ROWS = (
    (4 * 1024, 1024),
    (8 * 1024, 512),
    (16 * 1024, 256),
    (32 * 1024, 128),
    (64 * 1024, 64),
    (128 * 1024, 32),
    (256 * 1024, 16),
)


def table1_artefact(
    *,
    rows: Sequence[tuple[int, int]] = TABLE1_ROWS,
    degrees: Sequence[int] = (64, 32, 16, 8, 4),
    num_gpus: int = 64,
    max_context: int = 384 * 1024,
    model: ModelConfig = GPT_7B,
) -> Artefact:
    """Table 1: the homogeneous-SP capacity frontier.

    Every cell pins DeepSpeed's static SP degree via a cell variant
    and trains a uniform fixed-length batch (:class:`~repro.data.
    distributions.FixedLength`); infeasible corners surface as
    ``status="oom"`` cells, reproducing the paper's OOM marks.
    """
    cluster = standard_cluster(num_gpus)
    cells = []
    for seq, bs in rows:
        workload = Workload(
            model=model,
            distribution=FixedLength(seq),
            max_context=max_context,
            cluster=cluster,
            global_batch_size=bs,
        )
        for degree in degrees:
            cells.append(
                SweepCell(
                    system="deepspeed",
                    workload=workload,
                    num_iterations=1,
                    variant=(("sp_degree", degree),),
                )
            )
    return Artefact(
        key="table1",
        title="Table 1: homogeneous-SP iteration time / All-to-All share",
        cells=tuple(cells),
        reducer=frontier_summary,
    )


def fig7_artefact(
    *,
    global_batch_size: int,
    num_iterations: int = 1,
    num_gpus: int = 64,
    contexts: Sequence[int] = (192 * 1024,),
    distribution=COMMONCRAWL,
) -> Artefact:
    """Fig. 7: FlexSP solver-component ablations as variant cells.

    The un-ablated column is a plain flexsp cell and therefore dedups
    against the Fig. 4 grid when the workloads coincide.
    """
    cluster = standard_cluster(num_gpus)
    cells = []
    for context in contexts:
        workload = Workload(
            model=GPT_7B,
            distribution=distribution,
            max_context=context,
            cluster=cluster,
            global_batch_size=global_batch_size,
        )
        for __, variant in ABLATIONS:
            cells.append(
                SweepCell(
                    system="flexsp",
                    workload=workload,
                    num_iterations=num_iterations,
                    variant=variant,
                )
            )
    return Artefact(
        key="fig7",
        title="Fig. 7: solver ablations",
        cells=tuple(cells),
        reducer=ablation_summary,
    )


def fig8_artefact(
    *,
    sequences_per_gpu: int = 2,
    num_iterations: int = 1,
    gpu_counts: Sequence[int] = (16, 32, 64),
    max_context: int = 192 * 1024,
    distribution=COMMONCRAWL,
) -> Artefact:
    """Fig. 8: weak scaling — the batch grows with the cluster.

    The largest cluster point coincides with a Fig. 4 flexsp cell when
    ``sequences_per_gpu * num_gpus`` equals the campaign batch size.
    """
    workloads = [
        Workload(
            model=GPT_7B,
            distribution=distribution,
            max_context=max_context,
            cluster=standard_cluster(n),
            global_batch_size=sequences_per_gpu * n,
        )
        for n in gpu_counts
    ]
    return Artefact(
        key="fig8",
        title="Fig. 8: solver weak scaling",
        cells=tuple(grid_cells(["flexsp"], workloads, num_iterations)),
        reducer=scaling_summary,
    )


#: Artefact-key -> builder, the registry's thin-adapter surface.
ARTEFACT_BUILDERS = {
    "fig4": fig4_artefact,
    "fig6": fig6_artefact,
    "table1": table1_artefact,
    "fig7": fig7_artefact,
    "fig8": fig8_artefact,
}


# ---------------------------------------------------------------------------
# Ready-made campaigns (the `make bench` / CLI entry points).
# ---------------------------------------------------------------------------


def unified_campaign(
    *,
    global_batch_size: int = 128,
    num_iterations: int = 1,
    num_gpus: int = 64,
) -> Campaign:
    """All five paper artefact grids as one reduced-protocol campaign.

    The default batch size of 128 makes the cross-artefact overlaps
    line up: Fig. 6's 192K point, Fig. 7's un-ablated column and
    Fig. 8's 64-GPU point (2 sequences/GPU) all collapse onto Fig. 4
    cells and are measured once.
    """
    return Campaign(
        name="unified",
        artefacts=(
            fig4_artefact(
                global_batch_size=global_batch_size,
                num_iterations=num_iterations,
                num_gpus=num_gpus,
            ),
            fig6_artefact(
                global_batch_size=global_batch_size,
                num_iterations=num_iterations,
                context_scaling_gpus=num_gpus,
            ),
            table1_artefact(num_gpus=num_gpus),
            fig7_artefact(
                global_batch_size=global_batch_size,
                num_iterations=num_iterations,
                num_gpus=num_gpus,
            ),
            fig8_artefact(
                sequences_per_gpu=max(global_batch_size // num_gpus, 1),
                num_iterations=num_iterations,
                gpu_counts=(16, 32, num_gpus),
            ),
        ),
    )


def smoke_campaign(
    *, global_batch_size: int = 16, num_gpus: int = 8
) -> Campaign:
    """A seconds-scale tier-1 campaign: same artefact structure, tiny
    grids (one node, 16-32K contexts), store disabled by convention."""
    contexts = (32 * 1024,)
    return Campaign(
        name="smoke",
        artefacts=(
            fig4_artefact(
                global_batch_size=global_batch_size,
                num_gpus=num_gpus,
                contexts=contexts,
            ),
            fig6_artefact(
                global_batch_size=global_batch_size,
                gpu_counts=(num_gpus,),
                gpu_scaling_context=16 * 1024,
                context_points=(16 * 1024, 32 * 1024),
                context_scaling_gpus=num_gpus,
            ),
            table1_artefact(
                rows=((4 * 1024, 16), (8 * 1024, 8)),
                degrees=(8, 4, 2),
                num_gpus=num_gpus,
                max_context=32 * 1024,
            ),
            fig7_artefact(
                global_batch_size=global_batch_size,
                num_gpus=num_gpus,
                contexts=contexts,
            ),
            fig8_artefact(
                sequences_per_gpu=max(global_batch_size // num_gpus, 1),
                gpu_counts=(num_gpus,),
                max_context=32 * 1024,
            ),
        ),
    )


def full_campaign(
    *,
    global_batch_size: int = 512,
    num_iterations: int = 1,
    num_gpus: int = 64,
) -> Campaign:
    """The paper's **full protocol**: GPT-13B/GPT-30B at 384K
    contexts, global batch 512, on the 64-GPU cluster.

    Same artefact structure as :func:`unified_campaign` but at the
    shapes the paper actually reports: Fig. 4 sweeps the larger
    models on the 384K grid, Fig. 6's context scaling reaches 384K,
    Fig. 7 ablates at 384K, and Fig. 8's weak scaling grows the batch
    to 8 sequences/GPU.  Table 1's capacity frontier is already
    full-shape.  First recorded by the PR 8 kernel-tier pass (see
    ``BENCH_campaign.json``); expect minutes, not seconds, of
    planning per pass on the fallback tier.
    """
    context = 384 * 1024
    return Campaign(
        name="full",
        artefacts=(
            fig4_artefact(
                global_batch_size=global_batch_size,
                num_iterations=num_iterations,
                num_gpus=num_gpus,
                models=(GPT_13B, GPT_30B),
                contexts=(context,),
            ),
            fig6_artefact(
                global_batch_size=global_batch_size,
                num_iterations=num_iterations,
                gpu_scaling_context=192 * 1024,
                context_points=(192 * 1024, context),
                context_scaling_gpus=num_gpus,
            ),
            table1_artefact(num_gpus=num_gpus),
            fig7_artefact(
                global_batch_size=global_batch_size,
                num_iterations=num_iterations,
                num_gpus=num_gpus,
                contexts=(context,),
            ),
            fig8_artefact(
                sequences_per_gpu=max(global_batch_size // num_gpus, 1),
                num_iterations=num_iterations,
                gpu_counts=(16, 32, num_gpus),
                max_context=192 * 1024,
            ),
        ),
    )


#: Campaign-name -> builder for the CLI (`python -m repro.bench
#: --campaign <name>`).
CAMPAIGNS = {
    "unified": unified_campaign,
    "smoke": smoke_campaign,
    "full": full_campaign,
}


def build_campaign(name: str, **overrides) -> Campaign:
    """Construct a named campaign (CLI surface).

    Raises:
        KeyError: Unknown name; the message lists the valid ones.
    """
    try:
        builder = CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; options: {sorted(CAMPAIGNS)}"
        ) from None
    return builder(**overrides)
