"""Ground-truth kernel and collective timing.

These functions are the simulated hardware's "truth": they charge
exact FLOP counts against a saturation-derated device throughput and
exact collective byte counts against the topology-aware link model.
The planner never sees them directly — its alpha-beta coefficients are
*fit* to observations of these functions by
:mod:`repro.cost.profiler`, reproducing the paper's profile-then-plan
workflow, and the residual between the two is what Fig. 9 (Appendix C)
measures.

Two evaluation surfaces are provided:

* the scalar functions (:func:`group_compute_time`,
  :func:`group_alltoall_time`, :func:`zero3_gather_time`) — the
  reference definitions, one SP group at a time;
* :class:`TimingTable` — the same formulas as numpy kernels that
  evaluate *every* group of an iteration plan in one shot,
  bit-identical to the scalar path (same IEEE-754 double operations in
  the same order, including sequential within-group reductions).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import lru_cache
from itertools import chain

import numpy as np

from repro.cluster.collectives import (
    all_gather_time,
    all_to_all_time,
    reduce_scatter_time,
)
from repro.cluster.network import LinkSpec
from repro.cluster.topology import ClusterSpec
from repro.model.config import ModelConfig
from repro.model.flops import batch_flops, training_flops_multiplier
from repro.model.memory import ActivationCheckpointing
from repro.parallelism.ulysses import (
    alltoall_bytes_per_gpu,
    alltoall_rounds_per_step,
)
from repro.parallelism.zero import (
    zero3_gather_bytes_per_microbatch,
    zero_gradient_sync_bytes,
)

#: Per-device token count at which matmul efficiency reaches half of
#: its asymptote; small shards underutilise the tensor cores.
SATURATION_TOKENS = 512.0

#: Fixed framework overhead per micro-batch (kernel launches, optimizer
#: of the dataloader, stream sync), seconds.
MICROBATCH_LAUNCH_OVERHEAD = 0.012

#: Fraction of ZeRO-3 parameter gathers hidden behind compute via
#: prefetching (FSDP overlaps the next layer's gather with the current
#: layer's compute).
ZERO3_OVERLAP_FRACTION = 0.85

#: Effective HBM bandwidth the optimizer update streams at, bytes/s.
#: A100-80GB HBM2e peaks at ~2 TB/s and the 40GB part at ~1.6 TB/s;
#: fused Adam sustains roughly 80% of peak, hence 1.3 TB/s effective.
HBM_BANDWIDTH_BYTES_PER_SECOND = 1.3e12


def _efficiency_derate(tokens_per_device: float) -> float:
    """Throughput fraction achieved at a given per-device shard size."""
    if tokens_per_device <= 0:
        return 0.0
    return tokens_per_device / (tokens_per_device + SATURATION_TOKENS)


def group_compute_time(
    config: ModelConfig,
    cluster: ClusterSpec,
    lengths: Iterable[int],
    degree: int,
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
) -> float:
    """Per-device compute seconds for an SP group's packed micro-batch.

    SP scatters both the linear and the attention work evenly across
    the group's ``degree`` devices (Ulysses re-shards heads for the
    attention, so the quadratic work is also divided by ``degree``).
    """
    if degree <= 0:
        raise ValueError(f"degree must be positive, got {degree}")
    lengths = list(lengths)
    if not lengths:
        return 0.0
    forward = batch_flops(config, lengths)
    flops = forward * training_flops_multiplier(checkpointing)
    per_device = flops / degree
    tokens_per_device = sum(lengths) / degree
    throughput = cluster.gpu.effective_flops * _efficiency_derate(tokens_per_device)
    if throughput <= 0:
        raise ValueError("device throughput underflow; check workload size")
    return per_device / throughput + MICROBATCH_LAUNCH_OVERHEAD


def group_alltoall_time(
    config: ModelConfig,
    cluster: ClusterSpec,
    group_tokens: float,
    degree: int,
    link: LinkSpec | None = None,
) -> float:
    """All-to-All seconds for one SP group's full micro-batch step.

    Charges every one of the ``4 * layers * 2`` All-to-All rounds
    individually so that per-round latency is reflected, using the
    group's topology-determined link.
    """
    if degree <= 0:
        raise ValueError(f"degree must be positive, got {degree}")
    if degree == 1 or group_tokens <= 0:
        return 0.0
    if link is None:
        link = cluster.link_for_degree(degree)
    per_round_bytes = alltoall_bytes_per_gpu(config, group_tokens / degree)
    rounds = alltoall_rounds_per_step(config)
    per_round = all_to_all_time(per_round_bytes, degree, link)
    return rounds * per_round


def zero3_gather_time(
    config: ModelConfig,
    cluster: ClusterSpec,
    compute_time: float,
    zero_stage: int = 3,
) -> float:
    """*Exposed* parameter-gather seconds for one micro-batch.

    ZeRO-3 All-Gathers each layer's parameters over the full cluster;
    prefetching hides most of it behind compute.  Stages below 3 gather
    nothing.
    """
    if zero_stage < 3:
        return 0.0
    link = cluster.hierarchical_link()
    raw = all_gather_time(
        zero3_gather_bytes_per_microbatch(config), cluster.num_gpus, link
    )
    hidden = min(raw * ZERO3_OVERLAP_FRACTION, compute_time)
    return raw - hidden


def gradient_sync_time(config: ModelConfig, cluster: ClusterSpec) -> float:
    """Gradient Reduce-Scatter seconds, charged once per training step.

    Gradients reduce hierarchically (intra-node first), so the node
    uplink is the effective per-GPU bandwidth.
    """
    link = cluster.hierarchical_link()
    return reduce_scatter_time(
        zero_gradient_sync_bytes(config), cluster.num_gpus, link
    )


def optimizer_step_time(config: ModelConfig, cluster: ClusterSpec) -> float:
    """Adam update seconds; memory-bandwidth bound, per-device sharded.

    Each device updates its parameter shard: reads/writes roughly
    16 bytes of state plus the bf16 gradient per owned parameter at
    :data:`HBM_BANDWIDTH_BYTES_PER_SECOND` (~1.3 TB/s effective on
    A100).
    """
    shard_params = config.parameter_count() / cluster.num_gpus
    traffic = shard_params * (16 + 2) * 2  # read + write
    return traffic / HBM_BANDWIDTH_BYTES_PER_SECOND


# ---------------------------------------------------------------------------
# Vectorized ground truth: every SP group of an iteration in one shot.
# ---------------------------------------------------------------------------


def segment_sequential_sums(
    values: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Per-segment left-to-right float sums, bit-identical to Python.

    ``values`` is the concatenation of the segments; ``counts`` their
    lengths.  Each segment is accumulated strictly left to right —
    exactly like ``total = 0.0; for v in seg: total += v`` — which is
    what makes the batched kernels reproduce the scalar functions
    bit-for-bit.  (``np.add.reduce``/``reduceat`` use pairwise
    summation above ~8 elements and round differently.)

    The trick: lay the segments out as rows of a zero-padded matrix and
    add the columns up one by one.  Adding the 0.0 padding is an exact
    no-op for the non-negative addends used here, so short rows finish
    early without perturbing their accumulator.  One vectorized add per
    column replaces a Python-level loop over every element.

    Args:
        values: Concatenated segment values; must be non-negative (or
            at least never ``-0.0``/NaN) for padding to be exact.
        counts: Segment lengths, all positive.
    """
    counts = np.asarray(counts, dtype=np.int64)
    num_segments = counts.shape[0]
    if num_segments == 0:
        return np.zeros(0, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    width = int(counts.max())
    padded = np.zeros((num_segments, width), dtype=np.float64)
    rows = np.repeat(np.arange(num_segments), counts)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    cols = np.arange(values.shape[0]) - np.repeat(starts, counts)
    padded[rows, cols] = values
    acc = padded[:, 0].copy()
    for column in range(1, width):
        acc += padded[:, column]
    return acc


def _segment_token_sums(flat_lengths: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Exact per-segment integer token sums (order-independent)."""
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.add.reduceat(flat_lengths, starts)


class TimingTable:
    """Vectorized view of the ground-truth timing for one policy triple.

    The scalar functions re-derive every constant (dense FLOPs/token,
    All-to-All round count, the raw ZeRO-3 gather) on each call and
    walk each group's sequences in interpreted Python.  This table
    precomputes the constants once per ``(config, cluster,
    checkpointing)`` and evaluates *all* SP groups of an iteration plan
    as array expressions.

    Exactness: every elementwise expression replicates the scalar
    formula operation-for-operation, and within-group reductions use
    :func:`segment_sequential_sums` (left-to-right accumulation), so
    results equal :func:`group_compute_time` /
    :func:`group_alltoall_time` / :func:`zero3_gather_time` bit-for-bit
    (property-tested by ``tests/test_property_timing_batch.py``).
    """

    def __init__(
        self,
        config: ModelConfig,
        cluster: ClusterSpec,
        checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
    ) -> None:
        self.config = config
        self.cluster = cluster
        self.checkpointing = checkpointing
        from repro.model.flops import dense_flops_per_token

        self._dense = dense_flops_per_token(config)
        self._multiplier = training_flops_multiplier(checkpointing)
        self._effective_flops = cluster.gpu.effective_flops
        self._hidden = config.hidden_size
        self._bytes_per_element = config.bytes_per_element
        self._num_layers = config.num_layers
        self._rounds = alltoall_rounds_per_step(config)
        self._zero3_raw = all_gather_time(
            zero3_gather_bytes_per_microbatch(config),
            cluster.num_gpus,
            cluster.hierarchical_link(),
        )

    def sequence_flop_terms(self, lengths: np.ndarray) -> np.ndarray:
        """Forward FLOPs per sequence (``sequence_flops``, elementwise)."""
        s = np.asarray(lengths, dtype=np.float64)
        attention = self._num_layers * (4.0 * s * s * self._hidden / 2.0)
        return s * self._dense + attention

    def group_compute_times(
        self,
        flat_lengths: np.ndarray,
        counts: np.ndarray,
        degrees: np.ndarray,
    ) -> np.ndarray:
        """:func:`group_compute_time` for many groups at once.

        Args:
            flat_lengths: All groups' sequence lengths, concatenated.
            counts: Sequences per group.
            degrees: SP degree per group.
        """
        forward = segment_sequential_sums(
            self.sequence_flop_terms(flat_lengths), counts
        )
        flops = forward * self._multiplier
        per_device = flops / degrees
        tokens_per_device = _segment_token_sums(flat_lengths, counts) / degrees
        derate = tokens_per_device / (tokens_per_device + SATURATION_TOKENS)
        throughput = self._effective_flops * derate
        return per_device / throughput + MICROBATCH_LAUNCH_OVERHEAD

    def group_alltoall_times(
        self,
        tokens: np.ndarray,
        degrees: np.ndarray,
        latencies: np.ndarray,
        bandwidths: np.ndarray,
    ) -> np.ndarray:
        """:func:`group_alltoall_time` for many groups at once.

        Args:
            tokens: Integer token count per group.
            degrees: SP degree per group.
            latencies: Per-group link latency (each group's
                topology-determined link, as the executor charges it).
            bandwidths: Per-group link bandwidth.
        """
        degrees = np.asarray(degrees, dtype=np.int64)
        resident = np.asarray(tokens, dtype=np.int64) / degrees
        per_round_bytes = resident * self._hidden * self._bytes_per_element
        wire = per_round_bytes * (degrees - 1) / degrees
        per_round = latencies + wire / bandwidths
        out = self._rounds * per_round
        np.copyto(out, 0.0, where=(degrees == 1) | (np.asarray(tokens) <= 0))
        return out

    def zero3_exposed_times(self, compute_times: np.ndarray) -> np.ndarray:
        """:func:`zero3_gather_time` (stage 3) for many groups at once."""
        raw = self._zero3_raw
        hidden = np.minimum(raw * ZERO3_OVERLAP_FRACTION, compute_times)
        return raw - hidden

    def group_times(
        self, groups: Sequence, links: Sequence[LinkSpec]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(compute, alltoall, exposed gather) arrays for plan groups.

        Args:
            groups: :class:`~repro.core.types.GroupAssignment` objects
                in execution order.
            links: The topology link of each group, aligned.
        """
        counts = np.fromiter(
            (len(g.lengths) for g in groups), dtype=np.int64, count=len(groups)
        )
        flat_lengths = np.fromiter(
            chain.from_iterable(g.lengths for g in groups),
            dtype=np.int64,
            count=int(counts.sum()),
        )
        degrees = np.fromiter(
            (g.degree for g in groups), dtype=np.int64, count=len(groups)
        )
        latencies = np.fromiter(
            (link.latency for link in links), dtype=np.float64, count=len(links)
        )
        bandwidths = np.fromiter(
            (link.bandwidth for link in links), dtype=np.float64, count=len(links)
        )
        compute = self.group_compute_times(flat_lengths, counts, degrees)
        tokens = _segment_token_sums(flat_lengths, counts)
        alltoall = self.group_alltoall_times(tokens, degrees, latencies, bandwidths)
        gather = self.zero3_exposed_times(compute)
        return compute, alltoall, gather


@lru_cache(maxsize=128)
def timing_table(
    config: ModelConfig,
    cluster: ClusterSpec,
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
) -> TimingTable:
    """Memoised :class:`TimingTable` for a (config, cluster, policy).

    Executors for the same evaluation cell (one per system in a sweep)
    share one table, so the precomputation runs once per process.
    """
    return TimingTable(config, cluster, checkpointing)
