"""Ground-truth kernel and collective timing.

These functions are the simulated hardware's "truth": they charge
exact FLOP counts against a saturation-derated device throughput and
exact collective byte counts against the topology-aware link model.
The planner never sees them directly — its alpha-beta coefficients are
*fit* to observations of these functions by
:mod:`repro.cost.profiler`, reproducing the paper's profile-then-plan
workflow, and the residual between the two is what Fig. 9 (Appendix C)
measures.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cluster.collectives import (
    all_gather_time,
    all_to_all_time,
    reduce_scatter_time,
)
from repro.cluster.network import LinkSpec
from repro.cluster.topology import ClusterSpec
from repro.model.config import ModelConfig
from repro.model.flops import batch_flops, training_flops_multiplier
from repro.model.memory import ActivationCheckpointing
from repro.parallelism.ulysses import (
    alltoall_bytes_per_gpu,
    alltoall_rounds_per_step,
)
from repro.parallelism.zero import (
    zero3_gather_bytes_per_microbatch,
    zero_gradient_sync_bytes,
)

#: Per-device token count at which matmul efficiency reaches half of
#: its asymptote; small shards underutilise the tensor cores.
SATURATION_TOKENS = 512.0

#: Fixed framework overhead per micro-batch (kernel launches, optimizer
#: of the dataloader, stream sync), seconds.
MICROBATCH_LAUNCH_OVERHEAD = 0.012

#: Fraction of ZeRO-3 parameter gathers hidden behind compute via
#: prefetching (FSDP overlaps the next layer's gather with the current
#: layer's compute).
ZERO3_OVERLAP_FRACTION = 0.85


def _efficiency_derate(tokens_per_device: float) -> float:
    """Throughput fraction achieved at a given per-device shard size."""
    if tokens_per_device <= 0:
        return 0.0
    return tokens_per_device / (tokens_per_device + SATURATION_TOKENS)


def group_compute_time(
    config: ModelConfig,
    cluster: ClusterSpec,
    lengths: Iterable[int],
    degree: int,
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE,
) -> float:
    """Per-device compute seconds for an SP group's packed micro-batch.

    SP scatters both the linear and the attention work evenly across
    the group's ``degree`` devices (Ulysses re-shards heads for the
    attention, so the quadratic work is also divided by ``degree``).
    """
    if degree <= 0:
        raise ValueError(f"degree must be positive, got {degree}")
    lengths = list(lengths)
    if not lengths:
        return 0.0
    forward = batch_flops(config, lengths)
    flops = forward * training_flops_multiplier(checkpointing)
    per_device = flops / degree
    tokens_per_device = sum(lengths) / degree
    throughput = cluster.gpu.effective_flops * _efficiency_derate(tokens_per_device)
    if throughput <= 0:
        raise ValueError("device throughput underflow; check workload size")
    return per_device / throughput + MICROBATCH_LAUNCH_OVERHEAD


def group_alltoall_time(
    config: ModelConfig,
    cluster: ClusterSpec,
    group_tokens: float,
    degree: int,
    link: LinkSpec | None = None,
) -> float:
    """All-to-All seconds for one SP group's full micro-batch step.

    Charges every one of the ``4 * layers * 2`` All-to-All rounds
    individually so that per-round latency is reflected, using the
    group's topology-determined link.
    """
    if degree <= 0:
        raise ValueError(f"degree must be positive, got {degree}")
    if degree == 1 or group_tokens <= 0:
        return 0.0
    if link is None:
        link = cluster.link_for_degree(degree)
    per_round_bytes = alltoall_bytes_per_gpu(config, group_tokens / degree)
    rounds = alltoall_rounds_per_step(config)
    per_round = all_to_all_time(per_round_bytes, degree, link)
    return rounds * per_round


def zero3_gather_time(
    config: ModelConfig,
    cluster: ClusterSpec,
    compute_time: float,
    zero_stage: int = 3,
) -> float:
    """*Exposed* parameter-gather seconds for one micro-batch.

    ZeRO-3 All-Gathers each layer's parameters over the full cluster;
    prefetching hides most of it behind compute.  Stages below 3 gather
    nothing.
    """
    if zero_stage < 3:
        return 0.0
    link = cluster.hierarchical_link()
    raw = all_gather_time(
        zero3_gather_bytes_per_microbatch(config), cluster.num_gpus, link
    )
    hidden = min(raw * ZERO3_OVERLAP_FRACTION, compute_time)
    return raw - hidden


def gradient_sync_time(config: ModelConfig, cluster: ClusterSpec) -> float:
    """Gradient Reduce-Scatter seconds, charged once per training step.

    Gradients reduce hierarchically (intra-node first), so the node
    uplink is the effective per-GPU bandwidth.
    """
    link = cluster.hierarchical_link()
    return reduce_scatter_time(
        zero_gradient_sync_bytes(config), cluster.num_gpus, link
    )


def optimizer_step_time(config: ModelConfig, cluster: ClusterSpec) -> float:
    """Adam update seconds; memory-bandwidth bound, per-device sharded.

    Each device updates its parameter shard: reads/writes roughly
    16 bytes of state plus the bf16 gradient per owned parameter at
    HBM bandwidth (~1.5 TB/s effective on A100).
    """
    hbm_bandwidth = 1.3e12
    shard_params = config.parameter_count() / cluster.num_gpus
    traffic = shard_params * (16 + 2) * 2  # read + write
    return traffic / hbm_bandwidth
