"""Minimal discrete-event simulation engine.

The executor lays out an iteration as events on a virtual clock:
micro-batches execute sequentially, the SP groups inside one
micro-batch run concurrently, and step-level phases (gradient sync,
optimizer) follow the last micro-batch.  The engine is a plain
time-ordered priority queue with deterministic tie-breaking, so traces
are reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback on the simulation clock.

    Ordering is (time, sequence-number) so that simultaneous events
    fire in scheduling order.
    """

    time: float
    seq: int
    action: Callable[["DiscreteEventEngine"], None] = field(compare=False)


class DiscreteEventEngine:
    """Time-ordered event loop.

    Usage::

        engine = DiscreteEventEngine()
        engine.schedule(0.0, lambda eng: eng.schedule(1.5, done))
        engine.run()
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(
        self, time: float, action: Callable[["DiscreteEventEngine"], None]
    ) -> Event:
        """Schedule ``action`` at absolute simulation ``time``.

        Scheduling in the past is an error: the engine never rewinds.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time:.6f}s; clock is at {self._now:.6f}s"
            )
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self, delay: float, action: Callable[["DiscreteEventEngine"], None]
    ) -> Event:
        """Schedule ``action`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, action)

    def run(self, until: float | None = None) -> float:
        """Process events in time order.

        Args:
            until: Stop once the clock would pass this time (the
                triggering event stays queued).  None runs to quiescence.

        Returns:
            The final simulation time.
        """
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            event = heapq.heappop(self._queue)
            self._now = event.time
            self._events_processed += 1
            event.action(self)
        return self._now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
