"""ASCII timeline rendering of execution traces.

Turns a :class:`repro.simulator.trace.TraceRecorder` into a Gantt-style
text chart — one row per SP group (or cluster-wide phase), time on the
horizontal axis — so heterogeneous plans can be inspected at a glance:

    mb0 SP=32 [CCCCCCCCCCAAAA.....]
    mb0 SP=8  [CCCCCCCAA..........]

``C`` compute, ``A`` All-to-All, ``Z`` exposed ZeRO gather, ``G``
gradient sync, ``O`` optimizer, ``.`` idle.
"""

from __future__ import annotations

from repro.simulator.trace import PhaseKind, TracePhase, TraceRecorder

#: One-character glyph per phase kind.
GLYPHS = {
    PhaseKind.COMPUTE: "C",
    PhaseKind.ALLTOALL: "A",
    PhaseKind.ZERO_GATHER: "Z",
    PhaseKind.GRAD_SYNC: "G",
    PhaseKind.OPTIMIZER: "O",
    PhaseKind.GROUP_CREATE: "N",
    PhaseKind.IDLE: ".",
}


def _row_key(phase: TracePhase) -> tuple:
    if phase.group_degree > 0:
        return (phase.microbatch, -phase.group_degree, phase.devices)
    return (phase.microbatch, 0, phase.devices)


def _row_label(phase: TracePhase) -> str:
    if phase.group_degree > 0:
        return f"mb{phase.microbatch} SP={phase.group_degree}"
    if phase.microbatch >= 0:
        return f"mb{phase.microbatch} spare"
    return "cluster"


def render_timeline(trace: TraceRecorder, width: int = 72) -> str:
    """Render the trace as an aligned ASCII Gantt chart.

    Args:
        trace: A recorder filled by the executor.
        width: Character columns representing the full iteration.

    Returns:
        Multi-line chart; rows ordered by (micro-batch, degree desc).
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if not trace.phases:
        return "(empty trace)"
    end = trace.end_time()
    if end <= 0:
        return "(zero-length trace)"

    rows: dict[tuple, list[TracePhase]] = {}
    labels: dict[tuple, str] = {}
    for phase in trace.phases:
        key = _row_key(phase)
        rows.setdefault(key, []).append(phase)
        labels.setdefault(key, _row_label(phase))

    label_width = max(len(label) for label in labels.values())
    lines = []
    for key in sorted(rows):
        cells = ["."] * width
        for phase in sorted(rows[key], key=lambda p: p.start):
            start_col = int(phase.start / end * width)
            end_col = max(start_col + 1, int(phase.end / end * width))
            glyph = GLYPHS[phase.kind]
            for col in range(start_col, min(end_col, width)):
                cells[col] = glyph
        lines.append(f"{labels[key]:<{label_width}} [{''.join(cells)}]")
    legend = "  ".join(f"{g}={k.value}" for k, g in GLYPHS.items())
    lines.append(legend)
    return "\n".join(lines)
