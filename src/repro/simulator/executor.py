"""Iteration executor: runs plans on the simulated cluster.

The executor is the stand-in for the paper's PyTorch/NCCL runtime
engine.  It takes an :class:`repro.core.types.IterationPlan`, lays the
micro-batches out on the discrete-event clock (sequential
micro-batches, concurrent SP groups, per-group compute then All-to-All
then exposed ZeRO gathers; step-level gradient sync and optimizer at
the end), charges ground-truth timings from
:mod:`repro.simulator.timing`, manages communication groups through
the hot-switching pool, and returns the wall-clock result plus a full
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.groups import CommGroupPool
from repro.cluster.topology import ClusterSpec
from repro.core.types import IterationPlan, MicroBatchPlan
from repro.model.config import ModelConfig
from repro.model.memory import ActivationCheckpointing
from repro.simulator.engine import DiscreteEventEngine
from repro.simulator.timing import (
    gradient_sync_time,
    group_alltoall_time,
    group_compute_time,
    optimizer_step_time,
    timing_table,
    zero3_gather_time,
)
from repro.simulator.trace import PhaseKind, TracePhase, TraceRecorder


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one training iteration.

    Attributes:
        iteration_seconds: Wall-clock of the step (excluding one-time
            communicator creation, which is amortised across training).
        microbatch_seconds: Per-micro-batch makespans, in order.
        group_creation_seconds: One-time communicator setup incurred by
            this iteration (zero once the pool is warm).
        trace: Full phase trace for breakdowns.
    """

    iteration_seconds: float
    microbatch_seconds: tuple[float, ...]
    group_creation_seconds: float
    trace: TraceRecorder

    @property
    def alltoall_fraction(self) -> float:
        return self.trace.alltoall_fraction()

    @property
    def alltoall_seconds(self) -> float:
        return self.trace.alltoall_seconds()

    def tokens_per_second(self, tokens: int) -> float:
        if self.iteration_seconds <= 0:
            raise ValueError("iteration took no time; cannot compute throughput")
        return tokens / self.iteration_seconds


@dataclass
class IterationExecutor:
    """Executes iteration plans for one (model, cluster, policy) triple.

    Attributes:
        config: Model architecture being trained.
        cluster: Simulated hardware.
        checkpointing: Activation checkpointing policy in force.
        pool: Communicator pool; persists across iterations so group
            creation is only charged on first use (hot switching).
        vectorized: Charge timings through the batched
            :class:`~repro.simulator.timing.TimingTable` kernels (all
            groups of a plan in one shot) instead of the scalar
            per-group functions.  Both paths are bit-identical; False
            keeps the scalar reference path for benchmarks and tests.
    """

    config: ModelConfig
    cluster: ClusterSpec
    checkpointing: ActivationCheckpointing = ActivationCheckpointing.NONE
    pool: CommGroupPool = field(default=None)  # type: ignore[assignment]
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.pool is None:
            self.pool = CommGroupPool(cluster=self.cluster)
        self._link_cache: dict[tuple[int, ...], object] = {}

    def _microbatch_group_times(
        self, mb: MicroBatchPlan
    ) -> list[tuple[float, float, float, float]]:
        """(compute, alltoall, exposed zero-gather, creation) per group."""
        times = []
        for g in mb.groups:
            __, creation = self.pool.get(g.device_ranks)
            compute = group_compute_time(
                self.config, self.cluster, g.lengths, g.degree, self.checkpointing
            )
            link = self.cluster.group_link(g.device_ranks)
            alltoall = group_alltoall_time(
                self.config, self.cluster, g.tokens, g.degree, link
            )
            gather = zero3_gather_time(self.config, self.cluster, compute)
            times.append((compute, alltoall, gather, creation))
        return times

    def _group_link(self, ranks: tuple[int, ...]):
        """Memoised topology link lookup (plans revisit the same groups)."""
        link = self._link_cache.get(ranks)
        if link is None:
            link = self.cluster.group_link(ranks)
            self._link_cache[ranks] = link
        return link

    def _plan_group_times(
        self, plan: IterationPlan
    ) -> list[list[tuple[float, float, float, float]]]:
        """Per-micro-batch group timing tuples for the whole plan.

        The vectorized path charges every group of every micro-batch
        through the :class:`TimingTable` kernels in one shot; the
        scalar path evaluates micro-batch by micro-batch.  Results are
        bit-identical.
        """
        if not self.vectorized:
            return [self._microbatch_group_times(mb) for mb in plan.microbatches]
        groups = []
        creations = []
        for mb in plan.microbatches:
            for g in mb.groups:
                __, creation = self.pool.get(g.device_ranks)
                groups.append(g)
                creations.append(creation)
        links = [self._group_link(g.device_ranks) for g in groups]
        table = timing_table(self.config, self.cluster, self.checkpointing)
        compute, alltoall, gather = table.group_times(groups, links)
        times: list[list[tuple[float, float, float, float]]] = []
        cursor = 0
        for mb in plan.microbatches:
            row = []
            for __ in mb.groups:
                row.append(
                    (
                        float(compute[cursor]),
                        float(alltoall[cursor]),
                        float(gather[cursor]),
                        creations[cursor],
                    )
                )
                cursor += 1
            times.append(row)
        return times

    def run(self, plan: IterationPlan) -> ExecutionResult:
        """Execute ``plan`` and return timing plus trace."""
        engine = DiscreteEventEngine()
        trace = TraceRecorder(total_devices=self.cluster.num_gpus)
        microbatch_seconds: list[float] = []
        creation_total = 0.0

        plan_times = self._plan_group_times(plan)
        clock = 0.0
        for index, (mb, group_times) in enumerate(
            zip(plan.microbatches, plan_times)
        ):
            makespan = 0.0
            for g, (compute, alltoall, gather, creation) in zip(
                mb.groups, group_times
            ):
                creation_total += creation
                start = clock

                def _noop(eng: DiscreteEventEngine) -> None:
                    return None

                engine.schedule(start, _noop)
                trace.record(
                    TracePhase(
                        kind=PhaseKind.COMPUTE,
                        start=start,
                        duration=compute,
                        devices=g.degree,
                        microbatch=index,
                        group_degree=g.degree,
                    )
                )
                trace.record(
                    TracePhase(
                        kind=PhaseKind.ALLTOALL,
                        start=start + compute,
                        duration=alltoall,
                        devices=g.degree,
                        microbatch=index,
                        group_degree=g.degree,
                    )
                )
                if gather > 0:
                    trace.record(
                        TracePhase(
                            kind=PhaseKind.ZERO_GATHER,
                            start=start + compute + alltoall,
                            duration=gather,
                            devices=g.degree,
                            microbatch=index,
                            group_degree=g.degree,
                        )
                    )
                makespan = max(makespan, compute + alltoall + gather)

            # Stragglers leave faster groups and unassigned devices idle
            # until the micro-batch barrier.
            busy_by_group = {
                g.device_ranks: sum(t[:3])
                for g, t in zip(mb.groups, group_times)
            }
            used_devices = sum(g.degree for g in mb.groups)
            for g in mb.groups:
                idle = makespan - busy_by_group[g.device_ranks]
                if idle > 1e-12:
                    trace.record(
                        TracePhase(
                            kind=PhaseKind.IDLE,
                            start=clock + busy_by_group[g.device_ranks],
                            duration=idle,
                            devices=g.degree,
                            microbatch=index,
                            group_degree=g.degree,
                        )
                    )
            spare = self.cluster.num_gpus - used_devices
            if spare > 0 and makespan > 0:
                trace.record(
                    TracePhase(
                        kind=PhaseKind.IDLE,
                        start=clock,
                        duration=makespan,
                        devices=spare,
                        microbatch=index,
                    )
                )

            engine.schedule(clock + makespan, lambda eng: None)
            clock += makespan
            microbatch_seconds.append(makespan)

        grad_sync = gradient_sync_time(self.config, self.cluster)
        trace.record(
            TracePhase(
                kind=PhaseKind.GRAD_SYNC,
                start=clock,
                duration=grad_sync,
                devices=self.cluster.num_gpus,
            )
        )
        clock += grad_sync
        optim = optimizer_step_time(self.config, self.cluster)
        trace.record(
            TracePhase(
                kind=PhaseKind.OPTIMIZER,
                start=clock,
                duration=optim,
                devices=self.cluster.num_gpus,
            )
        )
        clock += optim
        if creation_total > 0:
            trace.record(
                TracePhase(
                    kind=PhaseKind.GROUP_CREATE,
                    start=clock,
                    duration=creation_total,
                    devices=self.cluster.num_gpus,
                )
            )
        engine.schedule(clock, lambda eng: None)
        engine.run()

        return ExecutionResult(
            iteration_seconds=clock,
            microbatch_seconds=tuple(microbatch_seconds),
            group_creation_seconds=creation_total,
            trace=trace,
        )
