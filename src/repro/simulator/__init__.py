"""Discrete-event execution substrate.

Replaces the paper's PyTorch/NCCL runtime: ground-truth kernel and
collective timing (:mod:`repro.simulator.timing`), a discrete-event
engine (:mod:`repro.simulator.engine`), the iteration executor that
runs plans on a simulated cluster (:mod:`repro.simulator.executor`)
and the execution trace used for time breakdowns
(:mod:`repro.simulator.trace`).
"""

from repro.simulator.engine import DiscreteEventEngine, Event
from repro.simulator.executor import ExecutionResult, IterationExecutor
from repro.simulator.timing import (
    TimingTable,
    group_alltoall_time,
    group_compute_time,
    gradient_sync_time,
    timing_table,
    zero3_gather_time,
)
from repro.simulator.trace import PhaseKind, TracePhase, TraceRecorder

__all__ = [
    "DiscreteEventEngine",
    "Event",
    "IterationExecutor",
    "ExecutionResult",
    "group_compute_time",
    "group_alltoall_time",
    "zero3_gather_time",
    "gradient_sync_time",
    "TimingTable",
    "timing_table",
    "PhaseKind",
    "TracePhase",
    "TraceRecorder",
]
