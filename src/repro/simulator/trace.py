"""Execution traces and time breakdowns.

The executor records one :class:`TracePhase` per (micro-batch, group,
phase kind).  Breakdowns weight each group phase by its device count so
that, summed with idle time, the phases tile the cluster's device-time
exactly — this is the accounting behind the paper's Fig. 5a
"All-to-All vs Others" split and Table 1's communication ratios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PhaseKind(enum.Enum):
    """What a span of group/cluster time was spent on."""

    COMPUTE = "compute"
    ALLTOALL = "alltoall"
    ZERO_GATHER = "zero_gather"
    GRAD_SYNC = "grad_sync"
    OPTIMIZER = "optimizer"
    GROUP_CREATE = "group_create"
    IDLE = "idle"


#: Phases that count as "Others" in the Fig. 5a breakdown.
OTHER_KINDS = frozenset(
    {
        PhaseKind.COMPUTE,
        PhaseKind.ZERO_GATHER,
        PhaseKind.GRAD_SYNC,
        PhaseKind.OPTIMIZER,
        PhaseKind.IDLE,
    }
)


@dataclass(frozen=True)
class TracePhase:
    """One recorded span.

    Attributes:
        kind: Phase category.
        start: Start time on the simulation clock, seconds.
        duration: Span length, seconds.
        devices: Devices occupied for the span.
        microbatch: Micro-batch index, or -1 for step-level phases.
        group_degree: SP degree of the owning group, or 0 for
            cluster-wide phases.
    """

    kind: PhaseKind
    start: float
    duration: float
    devices: int
    microbatch: int = -1
    group_degree: int = 0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"duration must be non-negative, got {self.duration}")
        if self.devices <= 0:
            raise ValueError(f"devices must be positive, got {self.devices}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def device_seconds(self) -> float:
        return self.duration * self.devices


@dataclass
class TraceRecorder:
    """Accumulates phases and derives breakdowns.

    Attributes:
        total_devices: Cluster size N; used to normalise device-time
            into wall-clock-equivalent seconds.
    """

    total_devices: int
    phases: list[TracePhase] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_devices <= 0:
            raise ValueError(
                f"total_devices must be positive, got {self.total_devices}"
            )

    def record(self, phase: TracePhase) -> None:
        if phase.devices > self.total_devices:
            raise ValueError(
                f"phase uses {phase.devices} devices; cluster has "
                f"{self.total_devices}"
            )
        self.phases.append(phase)

    def wall_seconds(self, kind: PhaseKind) -> float:
        """Device-weighted wall-clock-equivalent seconds spent in ``kind``.

        A phase occupying d of N devices for t seconds contributes
        ``t * d / N``: if every device did it simultaneously this is
        exactly t, matching a per-device profiler's view.
        """
        return sum(
            p.device_seconds for p in self.phases if p.kind is kind
        ) / self.total_devices

    def alltoall_seconds(self) -> float:
        return self.wall_seconds(PhaseKind.ALLTOALL)

    def others_seconds(self) -> float:
        return sum(self.wall_seconds(k) for k in OTHER_KINDS)

    def breakdown(self) -> dict[str, float]:
        """Wall-equivalent seconds per phase kind (zero entries kept)."""
        return {kind.value: self.wall_seconds(kind) for kind in PhaseKind}

    def alltoall_fraction(self) -> float:
        """All-to-All share of the iteration (Table 1 / Fig. 5a metric)."""
        alltoall = self.alltoall_seconds()
        total = alltoall + self.others_seconds()
        if total <= 0:
            return 0.0
        return alltoall / total

    def phases_of_microbatch(self, index: int) -> list[TracePhase]:
        return [p for p in self.phases if p.microbatch == index]

    def end_time(self) -> float:
        """Last recorded phase end, seconds."""
        if not self.phases:
            return 0.0
        return max(p.end for p in self.phases)
