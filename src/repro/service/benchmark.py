"""The service latency benchmark routine.

One measurement shared by ``benchmarks/test_bench_service.py`` and the
``python -m repro.bench --service`` CLI verb, so the pytest tier and
the Makefile verbs append records of identical shape to
``BENCH_service.json``.

The measurement replays one seeded Gamma-arrival trace twice:

1. **Burst (cold) phase** — the whole trace is submitted against a
   *paused* service, so in-flight coalescing and per-tenant admission
   shedding are pure functions of submission order (deterministic for
   a given trace), then the service starts and the backlog drains.
   This yields cold p50/p99 latency (queueing included — it is a
   burst), sustained plans/sec, the coalesced count and the shed rate.
2. **Warm (churn) phase** — the same trace replayed against the now
   live service: previously solved shapes answer from the plan cache
   at submit time, shapes shed in phase 1 now solve, giving the warm
   hit rate and warm-path latencies under churn.

Optionally every unique served plan is then re-solved on a cold
:class:`~repro.core.solver.FlexSPSolver` (fresh fit, fresh cache, no
service) and asserted bit-identical — the service contract.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.solver import FlexSPSolver, SolverConfig
from repro.cost.profiler import fit_cost_model
from repro.service.service import PlanService, RequestShed
from repro.service.traffic import service_jobs, synthesize_trace

#: Generous per-ticket wait; a solve that exceeds this is a hang.
RESULT_TIMEOUT = 600.0


def _percentiles(latencies: list[float]) -> dict:
    if not latencies:
        return {"p50_ms": None, "p99_ms": None, "mean_ms": None}
    array = np.asarray(latencies) * 1000.0
    return {
        "p50_ms": round(float(np.percentile(array, 50)), 3),
        "p99_ms": round(float(np.percentile(array, 99)), 3),
        "mean_ms": round(float(array.mean()), 3),
    }


def _gather(tickets) -> tuple[list, int]:
    """Resolve every ticket; returns (served plans, shed count)."""
    served, shed = [], 0
    for ticket in tickets:
        try:
            served.append(ticket.result(timeout=RESULT_TIMEOUT))
        except RequestShed:
            shed += 1
    return served, shed


def run_service_benchmark(
    *,
    jobs=None,
    duration: float = 5.0,
    rate: float = 0.8,
    cv: float = 2.0,
    seed: int = 23,
    step_window: int = 2,
    max_pending_per_tenant: int = 1,
    worker_threads: int = 2,
    solver_workers: int = 1,
    solver_config: SolverConfig | None = None,
    store=None,
    verify: bool = True,
) -> dict:
    """Run the two-phase trace benchmark; returns the record dict.

    The defaults are the CI smoke shape: three heterogeneous tenants,
    a duplicate-heavy trace (``step_window=2``) and a tight pending
    bound, so coalescing *and* shedding are both observed in seconds.
    """
    jobs = jobs if jobs is not None else service_jobs()
    trace = synthesize_trace(
        jobs,
        duration=duration,
        rate=rate,
        cv=cv,
        seed=seed,
        step_window=step_window,
    )
    service = PlanService(
        solver_config=solver_config,
        store=store,
        solver_workers=solver_workers,
        worker_threads=worker_threads,
        max_pending_per_tenant=max_pending_per_tenant,
        autostart=False,
    )
    with service:
        for workload in jobs.values():
            service.register(workload)

        # Phase 1: burst the whole trace at the paused service, then
        # drain.  Coalescing/shed accounting is deterministic here.
        burst_started = time.perf_counter()
        cold_tickets = service.replay(trace)
        service.start()
        cold_served, cold_shed = _gather(cold_tickets)
        cold_wall = time.perf_counter() - burst_started

        # Phase 2: same trace against the live service — churn.
        warm_started = time.perf_counter()
        warm_served, warm_shed = _gather(service.replay(trace))
        warm_wall = time.perf_counter() - warm_started
        stats = service.stats()

        served = cold_served + warm_served
        # Plan-cache effectiveness across every actual solve (warm
        # serves replay the cache; solved flights fill it).
        hits = misses = 0
        for plan in served:
            if plan.source == "coalesced":
                continue
            hits += plan.plan.stats.cache_hits + plan.plan.stats.dedup_hits
            misses += plan.plan.stats.cache_misses
        unique = {(p.tenant, p.lengths): p.plan for p in served}

        verified = 0
        if verify:
            models = {
                name: fit_cost_model(
                    w.model_at_context, w.cluster, w.checkpointing
                )
                for name, w in jobs.items()
            }
            config = solver_config or SolverConfig()
            for (tenant, lengths), plan in sorted(unique.items()):
                cold = FlexSPSolver(models[tenant], config)
                reference = cold.solve(lengths)
                if (
                    reference.microbatches != plan.microbatches
                    or reference.predicted_time != plan.predicted_time
                ):
                    raise AssertionError(
                        f"served plan for {tenant} diverged from the "
                        f"cold solve of the same {len(lengths)}-sequence "
                        "batch"
                    )
                cold.close()
                verified += 1

    submitted = stats["submitted"]
    return {
        "mode": "service",
        "jobs": sorted(jobs),
        "trace": {
            "duration_seconds": duration,
            "rate_per_tenant": rate,
            "cv": cv,
            "seed": seed,
            "step_window": step_window,
            "requests": len(trace),
        },
        "service": {
            "worker_threads": worker_threads,
            "solver_workers": solver_workers,
            "max_pending_per_tenant": max_pending_per_tenant,
            "store": store is not None,
        },
        "submitted": submitted,
        "served": stats["served"],
        "solved": stats["solved"],
        "warm_hits": stats["warm_hits"],
        "coalesced": stats["coalesced"],
        "shed": stats["shed"],
        "shed_rate": round(stats["shed"] / submitted, 4) if submitted else 0.0,
        "plan_cache_hit_rate": (
            round(hits / (hits + misses), 4) if hits + misses else None
        ),
        "cold_phase": {
            "wall_seconds": round(cold_wall, 3),
            "served": len(cold_served),
            "shed": cold_shed,
            "plans_per_second": (
                round(len(cold_served) / cold_wall, 3) if cold_wall else None
            ),
            **_percentiles([p.latency_seconds for p in cold_served]),
        },
        "warm_phase": {
            "wall_seconds": round(warm_wall, 3),
            "served": len(warm_served),
            "shed": warm_shed,
            "plans_per_second": (
                round(len(warm_served) / warm_wall, 3) if warm_wall else None
            ),
            **_percentiles([p.latency_seconds for p in warm_served]),
        },
        "unique_shapes": len(unique),
        "bit_identical_verified": verified if verify else None,
    }
