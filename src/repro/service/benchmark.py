"""The service latency benchmark routines.

Two measurements, each shared by a pytest benchmark suite and a
``python -m repro.bench`` CLI verb so both append records of identical
shape to ``BENCH_service.json``:

* :func:`run_service_benchmark` — the in-process two-phase trace
  replay (``benchmarks/test_bench_service.py`` / ``--service``).
* :func:`run_transport_benchmark` — the same trace replayed through
  the TCP transport (:mod:`repro.service.transport`), loopback by
  default with optional deterministic network-fault injection, or
  against a remote ``--serve`` process via ``--service --connect``
  (``benchmarks/test_bench_service_net.py`` / ``make
  bench-service-net``).  Its record carries a ``transport`` block:
  p50/p99 over TCP, retries, reconnects, degraded count and the
  server-side frame counters.

The measurement replays one seeded Gamma-arrival trace twice:

1. **Burst (cold) phase** — the whole trace is submitted against a
   *paused* service, so in-flight coalescing and per-tenant admission
   shedding are pure functions of submission order (deterministic for
   a given trace), then the service starts and the backlog drains.
   This yields cold p50/p99 latency (queueing included — it is a
   burst), sustained plans/sec, the coalesced count and the shed rate.
2. **Warm (churn) phase** — the same trace replayed against the now
   live service: previously solved shapes answer from the plan cache
   at submit time, shapes shed in phase 1 now solve, giving the warm
   hit rate and warm-path latencies under churn.

Optionally every unique served plan is then re-solved on a cold
:class:`~repro.core.solver.FlexSPSolver` (fresh fit, fresh cache, no
service) and asserted bit-identical — the service contract.
"""

from __future__ import annotations

import contextlib
import time

import numpy as np

from repro.core import faults
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.cost.profiler import fit_cost_model
from repro.service.service import PlanService, RequestShed
from repro.service.traffic import service_jobs, synthesize_trace
from repro.service.transport import PlanClient, PlanServer

#: Generous per-ticket wait; a solve that exceeds this is a hang.
RESULT_TIMEOUT = 600.0


def _percentiles(latencies: list[float]) -> dict:
    if not latencies:
        return {"p50_ms": None, "p99_ms": None, "mean_ms": None}
    array = np.asarray(latencies) * 1000.0
    return {
        "p50_ms": round(float(np.percentile(array, 50)), 3),
        "p99_ms": round(float(np.percentile(array, 99)), 3),
        "mean_ms": round(float(array.mean()), 3),
    }


def _verify_unique_plans(jobs, solver_config, unique) -> int:
    """Re-solve every unique served shape on a cold engine (fresh fit,
    fresh cache, no service, no network) and assert bit-identity —
    the contract every front-end must preserve.  Returns the count."""
    models = {
        name: fit_cost_model(w.model_at_context, w.cluster, w.checkpointing)
        for name, w in jobs.items()
    }
    config = solver_config or SolverConfig()
    verified = 0
    for (tenant, lengths), plan in sorted(unique.items()):
        cold = FlexSPSolver(models[tenant], config)
        reference = cold.solve(lengths)
        if (
            reference.microbatches != plan.microbatches
            or reference.predicted_time != plan.predicted_time
        ):
            raise AssertionError(
                f"served plan for {tenant} diverged from the cold solve "
                f"of the same {len(lengths)}-sequence batch"
            )
        cold.close()
        verified += 1
    return verified


def _gather(tickets) -> tuple[list, int]:
    """Resolve every ticket; returns (served plans, shed count)."""
    served, shed = [], 0
    for ticket in tickets:
        try:
            served.append(ticket.result(timeout=RESULT_TIMEOUT))
        except RequestShed:
            shed += 1
    return served, shed


def run_service_benchmark(
    *,
    jobs=None,
    duration: float = 5.0,
    rate: float = 0.8,
    cv: float = 2.0,
    seed: int = 23,
    step_window: int = 2,
    max_pending_per_tenant: int = 1,
    worker_threads: int = 2,
    solver_workers: int = 1,
    solver_config: SolverConfig | None = None,
    store=None,
    verify: bool = True,
) -> dict:
    """Run the two-phase trace benchmark; returns the record dict.

    The defaults are the CI smoke shape: three heterogeneous tenants,
    a duplicate-heavy trace (``step_window=2``) and a tight pending
    bound, so coalescing *and* shedding are both observed in seconds.
    """
    jobs = jobs if jobs is not None else service_jobs()
    trace = synthesize_trace(
        jobs,
        duration=duration,
        rate=rate,
        cv=cv,
        seed=seed,
        step_window=step_window,
    )
    service = PlanService(
        solver_config=solver_config,
        store=store,
        solver_workers=solver_workers,
        worker_threads=worker_threads,
        max_pending_per_tenant=max_pending_per_tenant,
        autostart=False,
    )
    with service:
        for workload in jobs.values():
            service.register(workload)

        # Phase 1: burst the whole trace at the paused service, then
        # drain.  Coalescing/shed accounting is deterministic here.
        burst_started = time.perf_counter()
        cold_tickets = service.replay(trace)
        service.start()
        cold_served, cold_shed = _gather(cold_tickets)
        cold_wall = time.perf_counter() - burst_started

        # Phase 2: same trace against the live service — churn.
        warm_started = time.perf_counter()
        warm_served, warm_shed = _gather(service.replay(trace))
        warm_wall = time.perf_counter() - warm_started
        stats = service.stats()

        served = cold_served + warm_served
        # Plan-cache effectiveness across every actual solve (warm
        # serves replay the cache; solved flights fill it).
        hits = misses = 0
        for plan in served:
            if plan.source == "coalesced":
                continue
            hits += plan.plan.stats.cache_hits + plan.plan.stats.dedup_hits
            misses += plan.plan.stats.cache_misses
        unique = {(p.tenant, p.lengths): p.plan for p in served}

        verified = 0
        if verify:
            verified = _verify_unique_plans(jobs, solver_config, unique)

    submitted = stats["submitted"]
    return {
        "mode": "service",
        "jobs": sorted(jobs),
        "trace": {
            "duration_seconds": duration,
            "rate_per_tenant": rate,
            "cv": cv,
            "seed": seed,
            "step_window": step_window,
            "requests": len(trace),
        },
        "service": {
            "worker_threads": worker_threads,
            "solver_workers": solver_workers,
            "max_pending_per_tenant": max_pending_per_tenant,
            "store": store is not None,
        },
        "submitted": submitted,
        "served": stats["served"],
        "solved": stats["solved"],
        "warm_hits": stats["warm_hits"],
        "coalesced": stats["coalesced"],
        "shed": stats["shed"],
        "shed_rate": round(stats["shed"] / submitted, 4) if submitted else 0.0,
        "plan_cache_hit_rate": (
            round(hits / (hits + misses), 4) if hits + misses else None
        ),
        "cold_phase": {
            "wall_seconds": round(cold_wall, 3),
            "served": len(cold_served),
            "shed": cold_shed,
            "plans_per_second": (
                round(len(cold_served) / cold_wall, 3) if cold_wall else None
            ),
            **_percentiles([p.latency_seconds for p in cold_served]),
        },
        "warm_phase": {
            "wall_seconds": round(warm_wall, 3),
            "served": len(warm_served),
            "shed": warm_shed,
            "plans_per_second": (
                round(len(warm_served) / warm_wall, 3) if warm_wall else None
            ),
            **_percentiles([p.latency_seconds for p in warm_served]),
        },
        "unique_shapes": len(unique),
        "bit_identical_verified": verified if verify else None,
    }


def run_transport_benchmark(
    *,
    jobs=None,
    duration: float = 3.0,
    rate: float = 0.8,
    cv: float = 2.0,
    seed: int = 23,
    step_window: int = 2,
    max_pending_per_tenant: int = 8,
    worker_threads: int = 2,
    solver_workers: int = 1,
    solver_config: SolverConfig | None = None,
    store=None,
    connect: tuple[str, int] | None = None,
    fault_specs: str | None = None,
    fault_seed: int = 0,
    crash_after: int | None = None,
    client_deadline: float = 60.0,
    client_io_timeout: float = 2.0,
    client_retries: int = 3,
    client_backoff_base: float = 0.02,
    verify: bool = True,
) -> dict:
    """Replay one seeded trace through the TCP transport.

    With ``connect=None`` (the default) a loopback
    :class:`~repro.service.transport.PlanServer` is booted on an
    ephemeral port, optionally chaos-tested: ``fault_specs`` arms a
    deterministic :class:`~repro.core.faults.FaultSchedule` over the
    network sites for the duration of the replay, and
    ``crash_after=N`` aborts the server (no drain) after the Nth
    request so the remaining requests exercise the client's
    degradation to an in-process service.  With ``connect=(host,
    port)`` the trace is replayed against a remote ``--serve``
    process instead (no injection, no crash — the remote owns its own
    fault plane).

    The client replays the trace closed-loop (one request at a time),
    so the transport — not queueing — dominates the measured
    latencies, and every retry/degradation decision is a deterministic
    function of the trace, the schedule and the client seed.
    """
    if connect is not None and (fault_specs or crash_after is not None):
        raise ValueError(
            "fault injection and crash simulation are loopback-only "
            "(a remote server owns its own fault plane)"
        )
    jobs = jobs if jobs is not None else service_jobs()
    trace = synthesize_trace(
        jobs,
        duration=duration,
        rate=rate,
        cv=cv,
        seed=seed,
        step_window=step_window,
    )
    schedule = None
    if fault_specs:
        schedule = faults.FaultSchedule.parse(fault_specs, seed=fault_seed)

    server = None
    service = None
    if connect is None:
        service = PlanService(
            solver_config=solver_config,
            store=store,
            solver_workers=solver_workers,
            worker_threads=worker_threads,
            max_pending_per_tenant=max_pending_per_tenant,
        )
        for workload in jobs.values():
            service.register(workload)
        server = PlanServer(
            service, owns_service=True, result_timeout=RESULT_TIMEOUT
        )
        host, port = server.address
    else:
        host, port = connect

    client = PlanClient(
        host,
        port,
        jobs=jobs,
        solver_config=solver_config,
        deadline=client_deadline,
        io_timeout=client_io_timeout,
        retries=client_retries,
        backoff_base=client_backoff_base,
        seed=seed,
    )
    served, shed = [], 0
    crashed = False
    try:
        with faults.armed(schedule) if schedule else contextlib.nullcontext():
            replay_started = time.perf_counter()
            for index, request in enumerate(trace):
                if (
                    crash_after is not None
                    and index == crash_after
                    and server is not None
                    and not crashed
                ):
                    server.close(drain=False)
                    crashed = True
                try:
                    served.append(client.plan(request.tenant, request.lengths))
                except RequestShed:
                    shed += 1
            wall = time.perf_counter() - replay_started
        client_stats = client.stats()
        server_stats = server.stats() if server is not None else None
        service_stats = service.stats() if service is not None else None
    finally:
        client.close()
        if server is not None:
            server.close()

    unique = {(p.tenant, p.lengths): p.plan for p in served}
    verified = _verify_unique_plans(jobs, solver_config, unique) if verify else None

    latencies = [p.latency_seconds for p in served]
    record = {
        "mode": "service-transport",
        "jobs": sorted(jobs),
        "trace": {
            "duration_seconds": duration,
            "rate_per_tenant": rate,
            "cv": cv,
            "seed": seed,
            "step_window": step_window,
            "requests": len(trace),
        },
        "loopback": connect is None,
        "endpoint": f"{host}:{port}",
        "service": (
            {
                "worker_threads": worker_threads,
                "solver_workers": solver_workers,
                "max_pending_per_tenant": max_pending_per_tenant,
                "store": store is not None,
            }
            if connect is None
            else None
        ),
        "faults": (
            {
                "schedule": str(schedule),
                "seed": schedule.seed,
                "injections": schedule.injection_counts(),
            }
            if schedule is not None
            else None
        ),
        "crash_after": crash_after,
        "transport": {
            "requests": client_stats["requests"],
            "served": len(served),
            "shed": shed,
            "retries": client_stats["retries"],
            "reconnects": client_stats["reconnects"],
            "degraded": client_stats["degraded"],
            "wall_seconds": round(wall, 3),
            "plans_per_second": (
                round(len(served) / wall, 3) if wall and served else None
            ),
            **_percentiles(latencies),
            "server": server_stats,
        },
        "service_stats": (
            {
                key: service_stats[key]
                for key in (
                    "submitted",
                    "served",
                    "solved",
                    "warm_hits",
                    "coalesced",
                    "shed",
                )
            }
            if service_stats is not None
            else None
        ),
        "unique_shapes": len(unique),
        "bit_identical_verified": verified,
    }
    return record
