"""Planning-as-a-service: a resident multi-tenant front-end.

:class:`PlanService` promotes the engine stack of PRs 1-8 — per-tenant
:class:`~repro.core.solver.FlexSPSolver` with its plan cache, one
shared :class:`~repro.core.solver.SolverPool`, the persistent
:class:`~repro.core.cache_store.CacheStore` — into a long-lived
front-end that serves plan requests from concurrent callers:

* **Queue + worker threads.**  Requests arrive on a thread-safe queue
  (:meth:`PlanService.submit` returns a :class:`PlanTicket`) and are
  solved by resident service threads; the solvers, their caches and
  the worker pool persist across requests, so a deployment amortises
  process startup, cost-model fitting and re-planning exactly as the
  paper's overlapped solver does (S5).
* **In-flight coalescing.**  Identical ``(tenant, lengths)`` requests
  in flight share one solve: the first becomes the flight's primary,
  later ones attach as waiters, and every ticket resolves with the
  same (bit-equal) plan.  One solve, N answers.
* **Warm fast path.**  A request whose solve would be answered
  entirely from the plan cache (:meth:`FlexSPSolver.is_warm`) is
  served synchronously in the submitting thread — straight from the
  shared plan cache (seeded from the :class:`CacheStore` at tenant
  registration) — and never consumes queue budget.
* **Per-tenant admission control.**  Cold requests beyond
  ``max_pending_per_tenant`` outstanding for one tenant are *shed* at
  submit time with deterministic accounting: the decision depends only
  on the tenant's outstanding count at that submit, so a seeded trace
  sheds the same requests on every run (with the service paused; live
  runs shed by the same rule against live queue state).
* **Bit-identity.**  Every served plan — warm, solved or coalesced —
  equals a cold :meth:`FlexSPSolver.solve` of the same shape bit for
  bit: the service only ever *routes* requests to the same pure
  engine, it never alters planning.  ``benchmarks/test_bench_service``
  asserts this per request.

Tenant state reuses the campaign's
:class:`~repro.experiments.sweep.WorkloadContext` wholesale: cost
models restore from (or fit into) the store, plan caches preload from
spilled entries, and :meth:`PlanService.close` spills the state back —
a service restart is warm the same way a campaign rerun is.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

from repro.core.solver import FlexSPSolver, SolverConfig, SolverPool
from repro.core.types import IterationPlan
from repro.experiments.sweep import WorkloadContext
from repro.experiments.workloads import Workload

__all__ = [
    "PlanService",
    "PlanTicket",
    "ServedPlan",
    "RequestShed",
    "ServiceClosed",
]


class RequestShed(RuntimeError):
    """The tenant's pending-queue bound rejected this request."""


class ServiceClosed(RuntimeError):
    """The service shut down before (or while) handling the request."""


@dataclass(frozen=True)
class ServedPlan:
    """One answered request.

    Attributes:
        tenant: Registered tenant name.
        lengths: The requested global batch.
        plan: The iteration plan — bit-identical to a cold solve.
        source: ``"warm"`` (answered from the plan cache at submit),
            ``"solved"`` (a flight's primary), or ``"coalesced"``
            (attached to another request's flight).
        latency_seconds: Submit-to-resolve wall time for this ticket.
    """

    tenant: str
    lengths: tuple[int, ...]
    plan: IterationPlan
    source: str
    latency_seconds: float


class PlanTicket:
    """Future-style handle for one submitted request."""

    def __init__(self, tenant: str, lengths: tuple[int, ...]) -> None:
        self.tenant = tenant
        self.lengths = lengths
        self.submitted_at = time.perf_counter()
        self._done = threading.Event()
        self._served: ServedPlan | None = None
        self._error: BaseException | None = None

    def _resolve(self, plan: IterationPlan, source: str) -> None:
        self._served = ServedPlan(
            tenant=self.tenant,
            lengths=self.lengths,
            plan=plan,
            source=source,
            latency_seconds=time.perf_counter() - self.submitted_at,
        )
        self._done.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    @property
    def shed(self) -> bool:
        """Whether admission control rejected this request."""
        return isinstance(self._error, RequestShed)

    def result(self, timeout: float | None = None) -> ServedPlan:
        """Block for the answer; raises :class:`RequestShed` /
        :class:`ServiceClosed` (or the solve's own error) on failure."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"plan for {self.tenant} not ready within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._served is not None
        return self._served


class _Flight:
    """One in-flight solve: a primary ticket plus coalesced waiters."""

    __slots__ = ("key", "primary", "waiters", "started", "cancelled")

    def __init__(self, key: tuple, primary: PlanTicket) -> None:
        self.key = key
        self.primary = primary
        self.waiters: list[PlanTicket] = []
        self.started = False
        self.cancelled = False


#: Queue sentinel that stops one service thread.
_STOP = object()


class PlanService:
    """A resident planning front-end over the FlexSP engine.

    Args:
        solver_config: Default solver knobs for registered tenants.
        store: Optional persistent :class:`CacheStore` (or directory
            path) — tenants restore cost models and plan caches from
            it at registration and spill back on :meth:`close`.
        solver_workers: Width of the one shared
            :class:`~repro.core.solver.SolverPool` every tenant's
            solver plans on; 1 (default) plans in-process.
        worker_threads: Resident service threads consuming the
            request queue.
        max_pending_per_tenant: Cold requests a tenant may have
            outstanding (queued or solving) before new cold requests
            are shed.  Warm and coalesced requests are exempt — they
            consume no planner budget.
        autostart: Start the service threads immediately.  Pass False
            and call :meth:`start` later to make coalescing/shed
            accounting a pure function of submission order (the
            deterministic-trace tests and the duplicate-heavy
            benchmark assertion rely on this).
    """

    def __init__(
        self,
        *,
        solver_config: SolverConfig | None = None,
        store=None,
        solver_workers: int = 1,
        worker_threads: int = 2,
        max_pending_per_tenant: int = 8,
        autostart: bool = True,
    ) -> None:
        if worker_threads < 1:
            raise ValueError(
                f"worker_threads must be positive, got {worker_threads}"
            )
        if max_pending_per_tenant < 1:
            raise ValueError(
                "max_pending_per_tenant must be positive, got "
                f"{max_pending_per_tenant}"
            )
        self.solver_config = solver_config or SolverConfig()
        if store is not None:
            from repro.core.cache_store import CacheStore

            if not isinstance(store, CacheStore):
                store = CacheStore(store)
        self.store = store
        self.max_pending_per_tenant = max_pending_per_tenant
        self.worker_threads = worker_threads
        self._pool = SolverPool(solver_workers) if solver_workers > 1 else None
        self._lock = threading.Lock()
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._contexts: dict[str, WorkloadContext] = {}
        self._solvers: dict[str, FlexSPSolver] = {}
        self._inflight: dict[tuple, _Flight] = {}
        self._pending: dict[str, int] = {}
        self._threads: list[threading.Thread] = []
        self._closed = False
        self._stats = {
            "submitted": 0,
            "served": 0,
            "warm_hits": 0,
            "solved": 0,
            "coalesced": 0,
            "shed": 0,
            "cancelled": 0,
            "errors": 0,
        }
        self._shed_by_tenant: dict[str, int] = {}
        if autostart:
            self.start()

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Start the service threads (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            missing = self.worker_threads - len(self._threads)
            for index in range(missing):
                thread = threading.Thread(
                    target=self._serve_loop,
                    name=f"plan-service-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def close(self) -> None:
        """Shut down: cancel queued work, stop threads, release pools.

        Requests still queued (never started) resolve with
        :class:`ServiceClosed`; a request already being solved is
        allowed to finish and resolves normally.  Tenant state spills
        to the store (when one is configured), per-tenant solvers
        release any solver-owned pools, and the shared
        :class:`SolverPool` shuts down — ``live_pool_count`` returns
        to its pre-service baseline.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for flight in list(self._inflight.values()):
                if flight.started:
                    continue
                flight.cancelled = True
                del self._inflight[flight.key]
                self._pending[flight.primary.tenant] -= 1
                error = ServiceClosed(
                    "service closed with the request still queued"
                )
                for ticket in (flight.primary, *flight.waiters):
                    self._stats["cancelled"] += 1
                    ticket._reject(error)
            threads = list(self._threads)
        for __ in threads:
            self._queue.put(_STOP)
        for thread in threads:
            thread.join()
        for name, context in self._contexts.items():
            self._solvers[name].close()
            context.persist()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- tenants ------------------------------------------------------

    def register(
        self,
        workload: Workload,
        name: str | None = None,
        solver_config: SolverConfig | None = None,
    ) -> str:
        """Register one tenant; returns its name (``workload.name``).

        Builds the tenant's :class:`WorkloadContext` — cost model
        fitted or restored from the store, FlexSP solver planning on
        the shared pool, plan cache preloaded from spilled entries —
        outside the lock (fits can be slow), then publishes it.
        """
        name = name or workload.name
        context = WorkloadContext(
            workload,
            solver_config=solver_config or self.solver_config,
            store=self.store,
            solver_pool=self._pool,
        )
        solver = context.system("flexsp").solver
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            if name in self._contexts:
                raise ValueError(f"tenant {name!r} already registered")
            self._contexts[name] = context
            self._solvers[name] = solver
            self._pending[name] = 0
            self._shed_by_tenant[name] = 0
        return name

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._contexts)

    def workload_signatures(self) -> dict[str, str]:
        """Per-tenant workload-signature digests.

        The handshake currency of the TCP transport
        (:mod:`repro.service.transport`): a remote client planning for
        the same :class:`Workload` derives the same digest, so a
        client pointed at a server configured for *different*
        workloads fails fast at connect instead of planning against
        the wrong cost model.  Digests match the
        :class:`~repro.core.cache_store.CacheStore` file-naming
        digests for the same workload.
        """
        from repro.core.cache_store import signature_digest
        from repro.experiments.sweep import workload_signature

        with self._lock:
            return {
                name: signature_digest(workload_signature(ctx.workload))
                for name, ctx in self._contexts.items()
            }

    # -- requests -----------------------------------------------------

    def submit(
        self, tenant: str, lengths: tuple[int, ...]
    ) -> PlanTicket:
        """Submit one plan request; returns immediately with a ticket.

        Routing, in order: coalesce onto an identical in-flight
        request; answer warm requests synchronously from the plan
        cache; shed cold requests over the tenant's pending bound;
        otherwise enqueue for the service threads.
        """
        lengths = tuple(lengths)
        ticket = PlanTicket(tenant, lengths)
        key = (tenant, lengths)
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            solver = self._solvers.get(tenant)
            if solver is None:
                raise ValueError(f"unknown tenant {tenant!r}")
            self._stats["submitted"] += 1
            flight = self._inflight.get(key)
            if flight is not None:
                flight.waiters.append(ticket)
                self._stats["coalesced"] += 1
                return ticket
            warm = solver.is_warm(lengths)
            if warm:
                flight = _Flight(key, ticket)
                flight.started = True
                self._inflight[key] = flight
            else:
                if self._pending[tenant] >= self.max_pending_per_tenant:
                    self._stats["shed"] += 1
                    self._shed_by_tenant[tenant] += 1
                    ticket._reject(
                        RequestShed(
                            f"tenant {tenant!r} has "
                            f"{self._pending[tenant]} requests pending "
                            f"(bound {self.max_pending_per_tenant})"
                        )
                    )
                    return ticket
                flight = _Flight(key, ticket)
                self._pending[tenant] += 1
                self._inflight[key] = flight
        if warm:
            # Serve straight from the plan cache in the submitting
            # thread; duplicates arriving meanwhile coalesce onto this
            # flight and resolve right here.
            self._finish_flight(flight, solver, source="warm")
        else:
            self._queue.put(flight)
        return ticket

    def replay(self, trace, *, realtime: bool = False) -> list[PlanTicket]:
        """Submit every :class:`~repro.service.traffic.TraceRequest`.

        With ``realtime`` the submission honours each request's arrival
        offset (an open-loop load generator); without it the trace is
        submitted back-to-back (a closed-loop throughput probe).

        If the service closes mid-trace, the replay stops cleanly and
        returns the tickets submitted so far (every one of them still
        resolves — answered, shed, or cancelled) instead of raising
        with earlier tickets unawaited.
        """
        started = time.perf_counter()
        tickets: list[PlanTicket] = []
        for request in trace:
            if realtime:
                delay = request.time - (time.perf_counter() - started)
                if delay > 0:
                    time.sleep(delay)
            try:
                tickets.append(self.submit(request.tenant, request.lengths))
            except ServiceClosed:
                break
        return tickets

    def stats(self) -> dict:
        """Copy of the service counters (plus per-tenant shed counts)."""
        with self._lock:
            stats = dict(self._stats)
            stats["shed_by_tenant"] = dict(self._shed_by_tenant)
            stats["pending"] = dict(self._pending)
            return stats

    # -- service threads ----------------------------------------------

    def _serve_loop(self) -> None:
        while True:
            flight = self._queue.get()
            if flight is _STOP:
                return
            with self._lock:
                if flight.cancelled:
                    continue
                flight.started = True
                solver = self._solvers[flight.primary.tenant]
            self._finish_flight(flight, solver, source="solved")

    def _finish_flight(
        self, flight: _Flight, solver: FlexSPSolver, source: str
    ) -> None:
        """Solve one flight and resolve its primary plus all waiters.

        The solve runs outside the lock (FlexSPSolver is thread-safe;
        its cache locks internally).  The flight is unpublished under
        the lock *before* tickets resolve, so a new identical request
        can never attach to a completed flight.
        """
        error: BaseException | None = None
        plan = None
        try:
            plan = solver.solve(flight.primary.lengths)
        except BaseException as exc:
            error = exc
        with self._lock:
            self._inflight.pop(flight.key, None)
            if source != "warm":
                self._pending[flight.primary.tenant] -= 1
            if error is None:
                self._stats["served"] += 1 + len(flight.waiters)
                self._stats["warm_hits" if source == "warm" else "solved"] += 1
            else:
                self._stats["errors"] += 1 + len(flight.waiters)
            waiters = list(flight.waiters)
        if error is None:
            flight.primary._resolve(plan, source)
            for ticket in waiters:
                ticket._resolve(plan, "coalesced")
        else:
            flight.primary._reject(error)
            for ticket in waiters:
                ticket._reject(error)
