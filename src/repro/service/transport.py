"""Hardened TCP transport for the planning service.

:class:`PlanServer` puts a registered :class:`PlanService` on the
network; :class:`PlanClient` is the trainer-side stub.  Together they
extend the planning-as-a-service front-end of PR 9 across a machine
boundary without weakening any of its contracts — every plan served
over a socket is still bit-identical to a cold
:class:`~repro.core.solver.FlexSPSolver` solve, and shed/coalesce
accounting stays deterministic even when the network misbehaves.

Wire protocol (version :data:`PROTOCOL_VERSION`):

* **Frames** are a 4-byte big-endian length prefix followed by one
  UTF-8 JSON object, at most :data:`MAX_FRAME_BYTES` long.  A frame
  that decodes but is not valid JSON gets a typed ``bad-frame`` error
  response and the connection survives; a frame whose *length prefix*
  is garbage is unrecoverable (the stream has lost sync) and the
  connection is closed after a final ``bad-frame`` error.
* **Handshake**: the client opens with ``{"type": "hello",
  "protocol": 1}``; the server answers ``{"type": "welcome",
  "protocol": 1, "tenants": {name: digest}}`` where each digest is
  the tenant's workload-signature digest
  (:meth:`PlanService.workload_signatures`).  A protocol or signature
  mismatch raises :class:`HandshakeError` client-side — fail fast,
  never plan against the wrong cost model.
* **Requests**: ``{"type": "plan", "id": rid, "tenant": t,
  "lengths": [...], "deadline_ms": n}``.  Responses are either
  ``{"type": "plan", "id": rid, "source": ..., "plan": ...}`` (the
  plan serialised via :mod:`repro.core.serialization`) or
  ``{"type": "error", "id": rid, "error": code, "message": ...}``
  with codes ``shed`` / ``unknown-tenant`` / ``bad-request`` /
  ``bad-frame`` / ``protocol`` / ``deadline`` / ``closed`` /
  ``closing``.  ``{"type": "ping"}`` / ``{"type": "pong"}`` are the
  heartbeat.

Failure semantics — the reason this module exists:

* **Idempotent retries.**  Every request carries a client-unique id.
  The server records each completed response *before* sending it;  a
  retry after a lost response (``drop_response``, torn frame, reset)
  replays the recorded answer — one solve, never a double-solve, and
  a shed verdict replayed, never double-counted.  A retry that lands
  while the original flight is still solving coalesces onto it via
  the service's in-flight map.  Server-side ``deadline`` expiries are
  deliberately *not* recorded: the flight may still finish, and the
  retry then answers warm from the plan cache.
* **Deadline / retry / backoff ladder.**  Each client request has an
  absolute deadline; transport failures are retried under a bounded
  budget with seeded exponential backoff (deterministic jitter — a
  seeded client backs off identically on every run).  A client that
  exhausts its budget (or is told the server is closing) *degrades*:
  it builds an in-process :class:`PlanService` from its configured
  jobs and answers locally, counting the degradation — the PR 7
  recovery-ladder philosophy applied to the network.
* **Graceful drain.**  :meth:`PlanServer.close` stops accepting, lets
  every in-flight request finish and be answered, tells idle
  connections ``closing``, then releases the service, its pools and
  every socket and thread (``live_pool_count`` returns to baseline).
* **Chaos.**  The server visits the :mod:`repro.core.faults` network
  sites (``accept`` / ``handshake`` / ``recv`` / ``send``) and
  realises the fired kinds — ``conn_reset`` aborts the socket with an
  RST, ``torn_frame`` writes half a frame then aborts, ``delay``
  stalls the site, ``drop_response`` solves and records but never
  sends.  ``make bench-service-net`` sweeps the menu and asserts the
  bit-identity contract under every survivable fault.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import threading
import time
import uuid
from collections import OrderedDict

from repro.core import faults
from repro.core.serialization import plan_from_dict, plan_to_dict
from repro.core.solver import SolverConfig
from repro.service.service import (
    PlanService,
    RequestShed,
    ServedPlan,
    ServiceClosed,
)

__all__ = [
    "HandshakeError",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "PlanClient",
    "PlanDeadlineExceeded",
    "PlanServer",
    "TransportError",
    "encode_frame",
]

#: Wire-protocol version; bumped on any incompatible frame change.
PROTOCOL_VERSION = 1

#: Hard cap on one frame's JSON payload (a plan for a 512-sequence
#: batch serialises to a few hundred KiB; 16 MiB is generous).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Poll granularity for interruptible socket reads — how quickly a
#: blocked handler notices a drain.
_POLL_SECONDS = 0.2


class TransportError(RuntimeError):
    """A transport-level failure (reset, torn frame, timeout, refused
    connection) — retryable by the client's backoff ladder."""


class HandshakeError(RuntimeError):
    """Protocol-version or workload-signature mismatch — *not*
    retryable; the client and server disagree about the world."""


class PlanDeadlineExceeded(RuntimeError):
    """The request's deadline/retry budget ran out and no fallback
    jobs were configured for in-process degradation."""


def encode_frame(payload: dict) -> bytes:
    """Serialise one frame: 4-byte big-endian length + UTF-8 JSON."""
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(data) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return struct.pack(">I", len(data)) + data


def _error(rid, code: str, message: str) -> dict:
    return {"type": "error", "id": rid, "error": code, "message": message}


def _abort_socket(sock: socket.socket) -> None:
    """Close with an RST (SO_LINGER 0) — how ``conn_reset`` is felt."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _injected_delay_seconds() -> float:
    schedule = faults.active_schedule()
    return schedule.delay_seconds if schedule is not None else 0.25


class PlanServer:
    """A TCP front-end over one :class:`PlanService`.

    Args:
        service: The (already registered) service to expose.
        host / port: Bind address; port 0 binds an ephemeral port
            (read it back from :attr:`address`).
        backlog: Listen backlog — the bounded accept queue.
        max_connections: Concurrent connections admitted; excess
            connects are refused (aborted) rather than queued forever.
        io_timeout: Per-connection budget for finishing one read or
            write once started (mid-frame reads, response sends).
        idle_timeout: How long a connection may sit idle between
            requests before the server hangs up.
        result_timeout: Upper bound on waiting for one solve (each
            request's own ``deadline_ms`` can only shorten it).
        max_remembered: Idempotency window — completed responses
            remembered (LRU) for replay to retrying clients.
        owns_service: Close the service when the server closes.
        autostart: Start the accept loop immediately.
    """

    def __init__(
        self,
        service: PlanService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backlog: int = 16,
        max_connections: int = 32,
        io_timeout: float = 30.0,
        idle_timeout: float = 300.0,
        result_timeout: float = 600.0,
        max_remembered: int = 1024,
        owns_service: bool = False,
        autostart: bool = True,
    ) -> None:
        for label, value in (
            ("backlog", backlog),
            ("max_connections", max_connections),
            ("io_timeout", io_timeout),
            ("idle_timeout", idle_timeout),
            ("result_timeout", result_timeout),
            ("max_remembered", max_remembered),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        self.service = service
        self.io_timeout = io_timeout
        self.idle_timeout = idle_timeout
        self.result_timeout = result_timeout
        self.max_connections = max_connections
        self.max_remembered = max_remembered
        self._owns_service = owns_service
        self._listener = socket.create_server((host, port), backlog=backlog)
        self._listener.settimeout(_POLL_SECONDS)
        self._host, self._port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._conns: dict[int, socket.socket] = {}
        self._handlers: dict[int, threading.Thread] = {}
        self._completed: OrderedDict[str, dict] = OrderedDict()
        self._next_token = 0
        self._accept_thread: threading.Thread | None = None
        self._draining = False
        self._closed = False
        self._stats = {
            "accepted": 0,
            "refused": 0,
            "handshakes": 0,
            "requests": 0,
            "replayed": 0,
            "dropped_responses": 0,
            "aborted": 0,
        }
        if autostart:
            self.start()

    # -- lifecycle ----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — what clients connect to."""
        return (self._host, self._port)

    def start(self) -> None:
        """Start the accept loop (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServiceClosed("plan server is closed")
            if self._accept_thread is None:
                self._accept_thread = threading.Thread(
                    target=self._accept_loop,
                    name="plan-server-accept",
                    daemon=True,
                )
                self._accept_thread.start()

    def close(self, *, drain: bool = True) -> None:
        """Shut down the listener, the handlers and (when owned) the
        service.

        With ``drain`` (the default) in-flight requests are answered
        before their connections close and idle connections get a
        ``closing`` error; with ``drain=False`` every connection is
        aborted on the spot — the crash the chaos benchmark simulates.
        Idempotent; joins every thread it started.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            handlers = list(self._handlers.values())
            conns = list(self._conns.values())
        try:
            self._listener.close()
        except OSError:
            pass
        if not drain:
            for conn in conns:
                _abort_socket(conn)
        if self._accept_thread is not None:
            self._accept_thread.join()
        if not drain and self._owns_service:
            # Crash-style: kill the engine first so handlers blocked
            # on tickets fail fast instead of finishing politely.
            self.service.close()
        for thread in handlers:
            thread.join()
        if drain and self._owns_service:
            self.service.close()

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def live_connections(self) -> int:
        """Connections currently admitted (leak probe for tests)."""
        with self._lock:
            return len(self._conns)

    def stats(self) -> dict:
        """Copy of the transport counters."""
        with self._lock:
            return dict(self._stats)

    # -- accept loop --------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                if self._draining:
                    return
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            fired = faults.maybe_inject("accept")
            if fired == "delay":
                time.sleep(_injected_delay_seconds())
                fired = None
            if fired is not None:
                # conn_reset (and any other kind at this site)
                # degenerates to aborting the fresh connection.
                with self._lock:
                    self._stats["aborted"] += 1
                _abort_socket(conn)
                continue
            with self._lock:
                if self._draining or len(self._conns) >= self.max_connections:
                    self._stats["refused"] += 1
                    admitted = False
                else:
                    admitted = True
                    self._stats["accepted"] += 1
                    token = self._next_token
                    self._next_token += 1
                    thread = threading.Thread(
                        target=self._handle_connection,
                        args=(conn, token),
                        name=f"plan-server-conn-{token}",
                        daemon=True,
                    )
                    self._conns[token] = conn
                    self._handlers[token] = thread
            if not admitted:
                _abort_socket(conn)
                continue
            thread.start()

    # -- per-connection handler ---------------------------------------

    def _handle_connection(self, conn: socket.socket, token: int) -> None:
        try:
            conn.settimeout(_POLL_SECONDS)
            if not self._do_handshake(conn):
                return
            while True:
                fired = faults.maybe_inject("recv")
                if fired == "delay":
                    time.sleep(_injected_delay_seconds())
                    fired = None
                if fired is not None:
                    with self._lock:
                        self._stats["aborted"] += 1
                    _abort_socket(conn)
                    return
                status, value = self._recv_payload(
                    conn, timeout=self.idle_timeout, drain_exits=True
                )
                if status == "eof":
                    return
                if status == "drain":
                    self._send_frame(
                        conn,
                        _error(None, "closing", "server is draining"),
                        inject=False,
                    )
                    return
                if status == "fatal-frame":
                    self._send_frame(
                        conn, _error(None, "bad-frame", value), inject=False
                    )
                    return
                if status == "soft-frame":
                    if not self._send_frame(
                        conn, _error(None, "bad-frame", value), inject=False
                    ):
                        return
                    continue
                if not self._dispatch(conn, value):
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._conns.pop(token, None)
                self._handlers.pop(token, None)

    def _do_handshake(self, conn: socket.socket) -> bool:
        status, hello = self._recv_payload(
            conn, timeout=self.io_timeout, drain_exits=True
        )
        if status != "ok":
            if status in ("fatal-frame", "soft-frame"):
                self._send_frame(
                    conn, _error(None, "bad-frame", hello), inject=False
                )
            return False
        fired = faults.maybe_inject("handshake")
        if fired == "delay":
            time.sleep(_injected_delay_seconds())
            fired = None
        if fired == "conn_reset":
            with self._lock:
                self._stats["aborted"] += 1
            _abort_socket(conn)
            return False
        if (
            hello.get("type") != "hello"
            or hello.get("protocol") != PROTOCOL_VERSION
        ):
            self._send_frame(
                conn,
                _error(
                    None,
                    "protocol",
                    f"expected hello with protocol {PROTOCOL_VERSION}, "
                    f"got {hello!r}",
                ),
                inject=False,
            )
            return False
        welcome = {
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "tenants": self.service.workload_signatures(),
        }
        if fired == "drop_response":
            with self._lock:
                self._stats["dropped_responses"] += 1
            return False
        try:
            data = encode_frame(welcome)
            conn.settimeout(self.io_timeout)
            if fired == "torn_frame":
                conn.sendall(data[: max(1, len(data) // 2)])
                with self._lock:
                    self._stats["aborted"] += 1
                _abort_socket(conn)
                return False
            conn.sendall(data)
            conn.settimeout(_POLL_SECONDS)
        except OSError:
            return False
        with self._lock:
            self._stats["handshakes"] += 1
        return True

    def _dispatch(self, conn: socket.socket, msg: dict) -> bool:
        mtype = msg.get("type")
        if mtype == "ping":
            return self._send_frame(conn, {"type": "pong", "id": msg.get("id")})
        if mtype == "plan":
            return self._handle_plan(conn, msg)
        return self._send_frame(
            conn,
            _error(
                msg.get("id"), "bad-request", f"unknown frame type {mtype!r}"
            ),
        )

    def _handle_plan(self, conn: socket.socket, msg: dict) -> bool:
        rid = msg.get("id")
        tenant = msg.get("tenant")
        lengths = msg.get("lengths")
        if (
            not isinstance(rid, str)
            or not isinstance(tenant, str)
            or not isinstance(lengths, list)
            or not lengths
            or not all(
                isinstance(v, int) and not isinstance(v, bool) and v > 0
                for v in lengths
            )
        ):
            return self._send_frame(
                conn,
                _error(
                    rid if isinstance(rid, str) else None,
                    "bad-request",
                    "plan frame needs a string id, a string tenant and a "
                    "non-empty list of positive integer lengths",
                ),
            )
        with self._lock:
            cached = self._completed.get(rid)
            if cached is not None:
                self._completed.move_to_end(rid)
                self._stats["replayed"] += 1
        if cached is not None:
            return self._send_frame(conn, cached)
        deadline_ms = msg.get("deadline_ms")
        timeout = self.result_timeout
        if (
            isinstance(deadline_ms, (int, float))
            and not isinstance(deadline_ms, bool)
            and deadline_ms > 0
        ):
            timeout = min(timeout, deadline_ms / 1000.0)
        try:
            ticket = self.service.submit(tenant, tuple(lengths))
        except ServiceClosed:
            return self._send_frame(
                conn, _error(rid, "closed", "plan service is closed")
            )
        except ValueError as error:
            code = (
                "unknown-tenant"
                if "unknown tenant" in str(error)
                else "bad-request"
            )
            return self._send_frame(conn, _error(rid, code, str(error)))
        with self._lock:
            self._stats["requests"] += 1
        try:
            served = ticket.result(timeout=timeout)
            response = {
                "type": "plan",
                "id": rid,
                "source": served.source,
                "plan": plan_to_dict(served.plan),
            }
            self._remember(rid, response)
        except RequestShed as error:
            # A shed verdict is final for this request id: remember it
            # so a retry after a lost response replays the verdict
            # instead of re-submitting (which could double-count or,
            # worse, flip the deterministic shed accounting).
            response = _error(rid, "shed", str(error))
            self._remember(rid, response)
        except ServiceClosed as error:
            response = _error(rid, "closed", str(error))
        except TimeoutError:
            # NOT remembered: the flight may still finish, and a retry
            # then answers warm from the plan cache.
            response = _error(
                rid, "deadline", f"plan not ready within {timeout:.3f}s"
            )
        return self._send_frame(conn, response)

    def _remember(self, rid: str, response: dict) -> None:
        with self._lock:
            self._completed[rid] = response
            self._completed.move_to_end(rid)
            while len(self._completed) > self.max_remembered:
                self._completed.popitem(last=False)

    # -- framed I/O ---------------------------------------------------

    def _send_frame(
        self, conn: socket.socket, payload: dict, *, inject: bool = True
    ) -> bool:
        """Write one response frame, realising any ``send``-site fault;
        returns whether the connection is still usable."""
        fired = faults.maybe_inject("send") if inject else None
        if fired == "delay":
            time.sleep(_injected_delay_seconds())
            fired = None
        if fired == "drop_response":
            with self._lock:
                self._stats["dropped_responses"] += 1
            return True
        if fired == "conn_reset":
            with self._lock:
                self._stats["aborted"] += 1
            _abort_socket(conn)
            return False
        try:
            data = encode_frame(payload)
            conn.settimeout(self.io_timeout)
            if fired == "torn_frame":
                conn.sendall(data[: max(1, len(data) // 2)])
                with self._lock:
                    self._stats["aborted"] += 1
                _abort_socket(conn)
                return False
            conn.sendall(data)
            conn.settimeout(_POLL_SECONDS)
        except OSError:
            return False
        return True

    def _recv_payload(
        self, conn: socket.socket, *, timeout: float, drain_exits: bool
    ):
        """Read one frame.  Returns ``(status, value)`` where status is
        ``ok`` (value: payload dict), ``eof`` (peer gone / timed out),
        ``drain`` (server draining while the connection was idle),
        ``fatal-frame`` (framing lost sync; value: message) or
        ``soft-frame`` (intact framing, bad JSON; value: message)."""
        header = self._read_exact(
            conn, 4, timeout=timeout, drain_exits=drain_exits
        )
        if header is None:
            with self._lock:
                draining = self._draining
            return ("drain" if drain_exits and draining else "eof", None)
        (size,) = struct.unpack(">I", header)
        if size == 0 or size > MAX_FRAME_BYTES:
            return (
                "fatal-frame",
                f"frame length {size} outside (0, {MAX_FRAME_BYTES}]",
            )
        body = self._read_exact(
            conn, size, timeout=self.io_timeout, drain_exits=False
        )
        if body is None:
            return ("eof", None)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return ("soft-frame", "frame payload is not valid JSON")
        if not isinstance(payload, dict):
            return ("soft-frame", "frame payload is not a JSON object")
        return ("ok", payload)

    def _read_exact(
        self,
        conn: socket.socket,
        size: int,
        *,
        timeout: float,
        drain_exits: bool,
    ) -> bytes | None:
        """Read exactly ``size`` bytes in ``_POLL_SECONDS`` slices so a
        blocked handler notices drains; None means stop serving this
        connection (EOF, reset, or the read budget ran out)."""
        buffer = bytearray()
        deadline = time.monotonic() + timeout
        while len(buffer) < size:
            if drain_exits and not buffer:
                with self._lock:
                    if self._draining:
                        return None
            try:
                chunk = conn.recv(min(65536, size - len(buffer)))
            except socket.timeout:
                if time.monotonic() >= deadline:
                    return None
                continue
            except OSError:
                return None
            if not chunk:
                return None
            buffer.extend(chunk)
        return bytes(buffer)


class PlanClient:
    """Trainer-side stub for a remote :class:`PlanServer`.

    Not thread-safe: one client per requesting thread (clients are
    cheap; the expensive state is server-side).

    Args:
        host / port: The server's address.
        jobs: Optional ``{name: Workload}`` map.  Enables (a) the
            handshake signature check — the client derives each
            workload's digest and refuses a server whose registered
            tenant differs — and (b) graceful degradation: when the
            deadline/retry budget is exhausted, a private in-process
            :class:`PlanService` is built lazily from these jobs and
            the request is answered locally (counted in
            ``stats()["degraded"]``).
        solver_config: Solver knobs for the degraded service.
        store: Optional cache-store path for the degraded service.
        deadline: Default per-request wall-clock budget (seconds).
        io_timeout: Budget for one socket operation / response wait.
        retries: Transport-failure retry budget per request.
        backoff_base / backoff_cap: Exponential backoff envelope.
        seed: Seeds the backoff jitter — a seeded client backs off
            identically on every run.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        jobs: dict | None = None,
        solver_config: SolverConfig | None = None,
        store=None,
        deadline: float = 30.0,
        io_timeout: float = 10.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        seed: int = 0,
        fallback_timeout: float = 600.0,
    ) -> None:
        if deadline <= 0 or io_timeout <= 0 or fallback_timeout <= 0:
            raise ValueError("deadline and timeouts must be positive")
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ValueError(
                "need 0 < backoff_base <= backoff_cap, got "
                f"base={backoff_base}, cap={backoff_cap}"
            )
        self.host = host
        self.port = int(port)
        self.deadline = deadline
        self.io_timeout = io_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.fallback_timeout = fallback_timeout
        self.solver_config = solver_config
        self._jobs = dict(jobs) if jobs else {}
        self._store = store
        self._rng = random.Random(seed)
        self._session = uuid.uuid4().hex[:8]
        self._request_counter = 0
        self._sock: socket.socket | None = None
        self._fallback: PlanService | None = None
        self._stats = {
            "requests": 0,
            "served": 0,
            "retries": 0,
            "connects": 0,
            "shed": 0,
            "degraded": 0,
            "failed": 0,
        }

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "PlanClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Drop the connection and close the fallback service
        (idempotent)."""
        self._drop_connection()
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None

    def stats(self) -> dict:
        """Copy of the client counters (``reconnects`` derived)."""
        stats = dict(self._stats)
        stats["reconnects"] = max(0, stats["connects"] - 1)
        return stats

    # -- requests -----------------------------------------------------

    def plan(
        self,
        tenant: str,
        lengths,
        *,
        deadline: float | None = None,
    ) -> ServedPlan:
        """Request one plan; blocks until answered, shed, or failed.

        Raises :class:`RequestShed` on an admission-control shed,
        ``ValueError`` on an unknown tenant, :class:`HandshakeError`
        on a protocol/signature mismatch, :class:`TransportError` if
        the server rejected the request as malformed, and
        :class:`PlanDeadlineExceeded` when the deadline/retry budget
        is exhausted with no fallback jobs configured.
        """
        lengths = tuple(int(value) for value in lengths)
        budget = self.deadline if deadline is None else float(deadline)
        if budget <= 0:
            raise ValueError(f"deadline must be positive, got {budget}")
        deadline_at = time.monotonic() + budget
        started = time.perf_counter()
        rid = f"{self._session}-{self._request_counter}"
        self._request_counter += 1
        self._stats["requests"] += 1
        attempt = 0
        while True:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                return self._degrade(
                    tenant, lengths, started, reason="deadline exhausted"
                )
            try:
                self._ensure_connected(remaining)
                self._send_frame(
                    {
                        "type": "plan",
                        "id": rid,
                        "tenant": tenant,
                        "lengths": list(lengths),
                        "deadline_ms": max(1, int(remaining * 1000)),
                    }
                )
                response = self._await_response(
                    rid,
                    min(deadline_at, time.monotonic() + self.io_timeout),
                )
            except HandshakeError:
                self._drop_connection()
                raise
            except TransportError:
                self._drop_connection()
                attempt += 1
                self._stats["retries"] += 1
                if attempt > self.retries:
                    return self._degrade(
                        tenant,
                        lengths,
                        started,
                        reason="retry budget exhausted",
                    )
                self._backoff(attempt, deadline_at)
                continue
            if response.get("type") == "plan":
                plan = plan_from_dict(response["plan"])
                self._stats["served"] += 1
                return ServedPlan(
                    tenant=tenant,
                    lengths=lengths,
                    plan=plan,
                    source=str(response.get("source", "solved")),
                    latency_seconds=time.perf_counter() - started,
                )
            code = (
                response.get("error")
                if response.get("type") == "error"
                else None
            )
            message = str(response.get("message", response))
            if code == "shed":
                self._stats["shed"] += 1
                raise RequestShed(message)
            if code == "unknown-tenant":
                raise ValueError(message)
            if code in ("bad-request", "bad-frame", "protocol"):
                raise TransportError(
                    f"server rejected request ({code}): {message}"
                )
            if code in ("closed", "closing"):
                self._drop_connection()
                return self._degrade(
                    tenant, lengths, started, reason=f"server {code}"
                )
            # "deadline" (server-side expiry) or an unexpected frame:
            # retry — the flight may now be warm in the plan cache.
            attempt += 1
            self._stats["retries"] += 1
            if attempt > self.retries:
                return self._degrade(
                    tenant, lengths, started, reason="retry budget exhausted"
                )
            self._backoff(attempt, deadline_at)

    def ping(self, timeout: float = 5.0) -> float:
        """Round-trip one heartbeat; returns the RTT in seconds."""
        deadline_at = time.monotonic() + timeout
        try:
            self._ensure_connected(timeout)
            started = time.perf_counter()
            self._send_frame({"type": "ping", "id": None})
            while True:
                frame = self._recv_frame(deadline_at)
                if frame.get("type") == "pong":
                    return time.perf_counter() - started
        except TransportError:
            self._drop_connection()
            raise

    # -- connection management ----------------------------------------

    def _ensure_connected(self, timeout: float) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(
                (self.host, self.port),
                timeout=max(0.1, min(timeout, self.io_timeout)),
            )
        except OSError as exc:
            raise TransportError(f"connect failed: {exc}") from exc
        try:
            sock.settimeout(self.io_timeout)
            sock.sendall(
                encode_frame({"type": "hello", "protocol": PROTOCOL_VERSION})
            )
            self._sock = sock
            try:
                welcome = self._recv_frame(
                    time.monotonic() + min(timeout, self.io_timeout)
                )
            except BaseException:
                self._sock = None
                raise
            if welcome.get("type") == "error":
                raise HandshakeError(str(welcome.get("message", welcome)))
            if (
                welcome.get("type") != "welcome"
                or welcome.get("protocol") != PROTOCOL_VERSION
            ):
                raise HandshakeError(
                    f"unexpected handshake reply: {welcome!r}"
                )
            self._verify_signatures(welcome.get("tenants") or {})
        except OSError as exc:
            self._sock = None
            sock.close()
            raise TransportError(f"handshake failed: {exc}") from exc
        except BaseException:
            self._sock = None
            sock.close()
            raise
        self._stats["connects"] += 1

    def _verify_signatures(self, tenants: dict) -> None:
        if not self._jobs:
            return
        from repro.core.cache_store import signature_digest
        from repro.experiments.sweep import workload_signature

        for name, workload in self._jobs.items():
            remote = tenants.get(name)
            if remote is None:
                continue
            digest = signature_digest(workload_signature(workload))
            if remote != digest:
                raise HandshakeError(
                    f"tenant {name!r} workload-signature mismatch: server "
                    f"registered {remote}, client derived {digest}"
                )

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _backoff(self, attempt: int, deadline_at: float) -> None:
        delay = min(
            self.backoff_cap, self.backoff_base * (2 ** (attempt - 1))
        )
        delay *= 0.5 + self._rng.random()
        delay = min(delay, max(0.0, deadline_at - time.monotonic()))
        if delay > 0:
            time.sleep(delay)

    # -- framed I/O ---------------------------------------------------

    def _send_frame(self, payload: dict) -> None:
        assert self._sock is not None
        try:
            self._sock.settimeout(self.io_timeout)
            self._sock.sendall(encode_frame(payload))
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    def _await_response(self, rid: str, deadline_at: float) -> dict:
        while True:
            frame = self._recv_frame(deadline_at)
            if frame.get("type") == "pong":
                continue
            fid = frame.get("id")
            if fid is not None and fid != rid:
                continue  # stale answer from an abandoned request
            return frame

    def _recv_frame(self, deadline_at: float) -> dict:
        header = self._recv_exact(4, deadline_at)
        (size,) = struct.unpack(">I", header)
        if size == 0 or size > MAX_FRAME_BYTES:
            raise TransportError(f"bad frame length {size}")
        body = self._recv_exact(size, deadline_at)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise TransportError("server sent malformed JSON") from exc
        if not isinstance(payload, dict):
            raise TransportError("server frame is not a JSON object")
        return payload

    def _recv_exact(self, size: int, deadline_at: float) -> bytes:
        assert self._sock is not None
        buffer = bytearray()
        while len(buffer) < size:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise TransportError("timed out waiting for the server")
            self._sock.settimeout(min(self.io_timeout, remaining))
            try:
                chunk = self._sock.recv(min(65536, size - len(buffer)))
            except OSError as exc:
                raise TransportError(f"receive failed: {exc}") from exc
            if not chunk:
                raise TransportError("server closed the connection")
            buffer.extend(chunk)
        return bytes(buffer)

    # -- degradation --------------------------------------------------

    def _fallback_service(self) -> PlanService | None:
        if self._fallback is not None:
            return self._fallback
        if not self._jobs:
            return None
        service = PlanService(
            solver_config=self.solver_config,
            store=self._store,
            worker_threads=1,
        )
        try:
            for name, workload in self._jobs.items():
                service.register(workload, name=name)
        except BaseException:
            service.close()
            raise
        self._fallback = service
        return service

    def _degrade(
        self,
        tenant: str,
        lengths: tuple[int, ...],
        started: float,
        reason: str,
    ) -> ServedPlan:
        """Last rung of the ladder: answer from a private in-process
        service built from the configured jobs."""
        service = self._fallback_service()
        if service is None:
            self._stats["failed"] += 1
            raise PlanDeadlineExceeded(
                f"plan for tenant {tenant!r} failed over TCP ({reason}) and "
                "no fallback jobs were configured for in-process degradation"
            )
        self._stats["degraded"] += 1
        ticket = service.submit(tenant, lengths)
        served = ticket.result(timeout=self.fallback_timeout)
        return ServedPlan(
            tenant=tenant,
            lengths=lengths,
            plan=served.plan,
            source=served.source,
            latency_seconds=time.perf_counter() - started,
        )
