"""Trace-style workload generation for the planning service.

The service benchmark drives :class:`~repro.service.PlanService` the
way alpa_serve drives its placement policies: a seeded arrival process
per job coupled to a population of heterogeneous training jobs, so
requests-per-second curves are measured against reproducible traffic
rather than a closed loop of back-to-back calls.

* :class:`GammaProcess` — gamma-distributed inter-arrival times with a
  target ``rate`` (arrivals/sec) and coefficient of variation ``cv``
  (``cv=1`` is a Poisson process; ``cv>1`` is burstier).  Seeded via a
  ``numpy`` Generator, so a trace is a pure function of its inputs.
* :func:`synthesize_trace` — one arrival process per tenant over the
  tenant's own corpus (the existing campaign
  :class:`~repro.experiments.workloads.Workload` definitions), merged
  into one time-sorted request stream.  ``step_window`` bounds which
  corpus steps a tenant draws from: a small window produces the
  duplicate-heavy traffic that exercises in-flight coalescing and the
  warm plan-cache path; a large window produces churn.
* :func:`service_jobs` — the default heterogeneous population (≥ 3
  tenants: the three corpus distributions at smoke-tier scale).

Every batch in a trace comes from ``workload.corpus().batch(step)``,
so a trace request is exactly the batch a campaign cell at that step
would plan — the service's bit-identity check against cold
:class:`~repro.core.solver.FlexSPSolver` solves closes the loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import standard_cluster
from repro.data.distributions import COMMONCRAWL, GITHUB, WIKIPEDIA
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B


class GammaProcess:
    """Seeded gamma inter-arrival process (alpa_serve style).

    Args:
        rate: Mean arrival rate, requests/second.
        cv: Coefficient of variation of the inter-arrival time.
            ``1.0`` recovers a Poisson process; larger is burstier.
    """

    def __init__(self, rate: float, cv: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if cv <= 0:
            raise ValueError(f"cv must be positive, got {cv}")
        self.rate = float(rate)
        self.cv = float(cv)
        #: Gamma shape/scale with mean ``1/rate`` and the requested CV.
        self.shape = 1.0 / (cv * cv)
        self.scale = cv * cv / rate

    def arrivals(
        self, duration: float, rng: np.random.Generator
    ) -> list[float]:
        """Arrival offsets in ``[0, duration)``, strictly increasing."""
        times: list[float] = []
        t = float(rng.gamma(self.shape, self.scale))
        while t < duration:
            times.append(t)
            t += float(rng.gamma(self.shape, self.scale))
        return times


def poisson_process(rate: float) -> GammaProcess:
    """A Poisson arrival process (``GammaProcess`` with ``cv=1``)."""
    return GammaProcess(rate, cv=1.0)


@dataclass(frozen=True)
class TraceRequest:
    """One planned arrival: ``tenant`` asks for a plan of ``lengths``.

    Attributes:
        time: Arrival offset from trace start, seconds.
        tenant: Registered tenant name (the workload's ``name``).
        step: Corpus step the batch was drawn from (for reporting).
        lengths: The global batch to plan — exactly
            ``workload.corpus().batch(step).lengths``.
    """

    time: float
    tenant: str
    step: int
    lengths: tuple[int, ...]


def service_jobs(
    *,
    num_gpus: int = 8,
    global_batch_size: int = 16,
    max_context: int = 32 * 1024,
) -> dict[str, Workload]:
    """The default heterogeneous job population (3 tenants).

    GPT-7B over the three corpus distributions at smoke-campaign
    scale — heterogeneous in sequence-length statistics (the axis the
    planner actually adapts to) while staying seconds-scale to plan.
    """
    cluster = standard_cluster(num_gpus)
    jobs = {}
    for dist in (GITHUB, COMMONCRAWL, WIKIPEDIA):
        workload = Workload(
            model=GPT_7B,
            distribution=dist,
            max_context=max_context,
            cluster=cluster,
            global_batch_size=global_batch_size,
        )
        jobs[workload.name] = workload
    return jobs


def synthesize_trace(
    jobs: dict[str, Workload],
    *,
    duration: float,
    rate: float,
    cv: float = 1.0,
    seed: int = 0,
    step_window: int = 8,
) -> tuple[TraceRequest, ...]:
    """One seeded arrival trace over a population of jobs.

    Each tenant gets its own :class:`GammaProcess` at ``rate``
    arrivals/sec (so total traffic scales with the population) and its
    own substream of the seed; each arrival draws a corpus step
    uniformly from ``[0, step_window)``.  Requests are merged and
    sorted by ``(time, tenant)``, so the trace — arrival times, batch
    contents, interleaving — is a pure function of
    ``(jobs, duration, rate, cv, seed, step_window)``.

    A ``step_window`` smaller than the expected per-tenant arrival
    count makes repeats certain: back-to-back duplicates land while
    the first solve is still in flight (coalescing) and later ones hit
    the warm plan cache.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if step_window <= 0:
        raise ValueError(f"step_window must be positive, got {step_window}")
    requests: list[TraceRequest] = []
    for index, name in enumerate(sorted(jobs)):
        workload = jobs[name]
        rng = np.random.default_rng([seed, index])
        corpus = workload.corpus()
        batches: dict[int, tuple[int, ...]] = {}
        for t in GammaProcess(rate, cv).arrivals(duration, rng):
            step = int(rng.integers(step_window))
            lengths = batches.get(step)
            if lengths is None:
                lengths = corpus.batch(step).lengths
                batches[step] = lengths
            requests.append(
                TraceRequest(time=t, tenant=name, step=step, lengths=lengths)
            )
    requests.sort(key=lambda r: (r.time, r.tenant))
    return tuple(requests)
