"""Planning-as-a-service front-end (see :mod:`repro.service.service`).

The resident multi-tenant :class:`PlanService`, the hardened TCP
transport that puts it on the network
(:mod:`repro.service.transport`), plus the seeded trace-style load
generation (:mod:`repro.service.traffic`) that the service benchmarks
drive it with.
"""

from repro.service.service import (
    PlanService,
    PlanTicket,
    RequestShed,
    ServedPlan,
    ServiceClosed,
)
from repro.service.traffic import (
    GammaProcess,
    TraceRequest,
    poisson_process,
    service_jobs,
    synthesize_trace,
)
from repro.service.transport import (
    HandshakeError,
    PlanClient,
    PlanDeadlineExceeded,
    PlanServer,
    TransportError,
)

__all__ = [
    "PlanService",
    "PlanTicket",
    "RequestShed",
    "ServedPlan",
    "ServiceClosed",
    "GammaProcess",
    "TraceRequest",
    "poisson_process",
    "service_jobs",
    "synthesize_trace",
    "HandshakeError",
    "PlanClient",
    "PlanDeadlineExceeded",
    "PlanServer",
    "TransportError",
]
