"""Planning-as-a-service front-end (see :mod:`repro.service.service`).

The resident multi-tenant :class:`PlanService` plus the seeded
trace-style load generation (:mod:`repro.service.traffic`) that the
service benchmark drives it with.
"""

from repro.service.service import (
    PlanService,
    PlanTicket,
    RequestShed,
    ServedPlan,
    ServiceClosed,
)
from repro.service.traffic import (
    GammaProcess,
    TraceRequest,
    poisson_process,
    service_jobs,
    synthesize_trace,
)

__all__ = [
    "PlanService",
    "PlanTicket",
    "RequestShed",
    "ServedPlan",
    "ServiceClosed",
    "GammaProcess",
    "TraceRequest",
    "poisson_process",
    "service_jobs",
    "synthesize_trace",
]
