"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires PEP 660 editable-wheel support; offline
boxes that lack the `wheel` distribution can fall back to
``python setup.py develop`` which this shim enables.
"""

from setuptools import setup

setup()
