"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires PEP 660 editable-wheel support; offline
boxes that lack the `wheel` distribution can fall back to
``python setup.py develop`` which this shim enables.

The package has no hard dependencies beyond numpy/scipy; the compiled
hot-kernel tier (:mod:`repro.core.kernels`) is an *optional* extra::

    pip install -e .[native]   # adds numba; REPRO_NATIVE=0 opts out

Without the extra every kernel dispatches to its numpy/scalar
fallback — bit-identical results, slower cold path.
"""

from setuptools import find_packages, setup

setup(
    name="flexsp-repro",
    version="0.8.0",
    description=(
        "Reproduction of FlexSP: heterogeneous sequence-parallel "
        "training planner (ASPLOS'25)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        # The compiled hot-kernel tier; auto-detected at import,
        # disabled with REPRO_NATIVE=0 / --no-native.
        "native": ["numba"],
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
