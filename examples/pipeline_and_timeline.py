"""Disaggregated solving + execution-timeline inspection (paper S5).

Runs a few training steps with the solver services prefetching plans
ahead of the trainer (as the paper's deployment does), reports how
much of the solving was hidden behind training, and renders one
iteration's heterogeneous execution as an ASCII Gantt chart.

Run:
    python examples/pipeline_and_timeline.py
"""

from repro import (
    COMMONCRAWL,
    GPT_7B,
    FlexSPSolver,
    IterationExecutor,
    PlannerConfig,
    SolverConfig,
    fit_cost_model,
    standard_cluster,
)
from repro.data.dataset import SyntheticCorpus
from repro.experiments.pipeline import TrainingPipeline
from repro.simulator.timeline import render_timeline


def main() -> None:
    cluster = standard_cluster(16)
    config = GPT_7B.with_max_context(64 * 1024)
    model = fit_cost_model(config, cluster)
    solver = FlexSPSolver(
        model,
        SolverConfig(num_trials=2, planner=PlannerConfig(time_limit=0.5)),
    )
    executor = IterationExecutor(config=config, cluster=cluster)
    corpus = SyntheticCorpus(
        COMMONCRAWL, max_context=64 * 1024, global_batch_size=48
    )

    pipeline = TrainingPipeline(
        solver, executor, corpus, lookahead=2, workers=2
    )
    report = pipeline.run(4)

    print("Disaggregated solving/training over 4 steps:")
    for step, (it, solve, stall) in enumerate(
        zip(report.iteration_seconds, report.solve_seconds,
            report.stall_seconds)
    ):
        print(
            f"  step {step}: train {it:5.2f}s (simulated)  "
            f"solve {solve:5.2f}s (host)  stalled {stall:5.2f}s"
        )
    print(f"Solve overlap achieved: {100 * report.overlap_fraction:.0f}%\n")

    print("Execution timeline of step 0 (heterogeneous SP groups):")
    result = executor.run(report.plans[0])
    print(render_timeline(result.trace, width=64))


if __name__ == "__main__":
    main()
