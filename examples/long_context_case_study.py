"""Case study (paper S6.3): where FlexSP's gains come from.

Reproduces the structure of the paper's case study at reduced batch
size: GPT-7B on CommonCrawl with a 384K maximum context on 64 GPUs.
Shows, per system, the SP-group layouts (Table 3), the All-to-All vs
Others breakdown (Fig. 5a), and the distribution of sequence lengths
routed to each SP degree (Fig. 5b).

Run:
    python examples/long_context_case_study.py
"""

from repro import (
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
    PlannerConfig,
    SolverConfig,
)
from repro.experiments.reporting import format_table, format_violin_summary
from repro.experiments.workloads import case_study_workload


def main() -> None:
    workload = case_study_workload(global_batch_size=192)
    print(f"Case study workload: {workload.name}\n")

    solver_config = SolverConfig(
        num_trials=2, planner=PlannerConfig(time_limit=1.0)
    )
    systems = [
        DeepSpeedUlyssesSystem(workload),
        FlexSPBatchAdaSystem(workload),
        FlexSPSystem(workload, solver_config),
    ]

    batch = workload.corpus().batch(0).lengths
    outcomes = {s.name: s.run_iteration(batch) for s in systems}

    rows = []
    for name, outcome in outcomes.items():
        rows.append([name, "  ".join(outcome.plan.layouts())])
    print(format_table(["system", "SP layout per micro-batch"], rows,
                       title="Table 3 view: group layouts"))

    rows = []
    for name, outcome in outcomes.items():
        rows.append(
            [
                name,
                f"{outcome.iteration_seconds:.1f}",
                f"{outcome.alltoall_seconds:.1f}",
                f"{100 * outcome.alltoall_fraction:.1f}%",
            ]
        )
    print()
    print(format_table(
        ["system", "total (s)", "All-to-All (s)", "share"],
        rows,
        title="Fig. 5a view: time breakdown",
    ))

    print()
    by_degree = outcomes["FlexSP"].plan.assignment_by_degree()
    print(format_violin_summary(by_degree))

    flexsp = outcomes["FlexSP"]
    deepspeed = outcomes["DeepSpeed"]
    print(
        f"\nFlexSP cuts All-to-All time "
        f"{deepspeed.alltoall_seconds / max(flexsp.alltoall_seconds, 1e-9):.1f}x "
        f"and end-to-end time "
        f"{deepspeed.iteration_seconds / flexsp.iteration_seconds:.2f}x."
    )


if __name__ == "__main__":
    main()
