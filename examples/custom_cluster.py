"""Bring your own hardware: planning on a custom cluster.

The planner adapts its SP-group choices to the memory capacity and
interconnect of the cluster you describe.  This example plans the same
micro-batch on (a) the paper's A100-40GB nodes and (b) A100-80GB nodes
with a slower inter-node fabric, and shows how the chosen layouts and
the memory frontier shift.

Run:
    python examples/custom_cluster.py
"""

from repro import GPT_7B, PlannerConfig, fit_cost_model
from repro.cluster.device import A100_40GB, A100_80GB
from repro.cluster.network import LinkSpec, NetworkSpec
from repro.cluster.topology import ClusterSpec
from repro.core.planner import plan_microbatch

#: The Fig. 1 micro-batch: one 100K-token sequence plus four 48K ones.
MICROBATCH = (100 * 1024,) + (48 * 1024,) * 4


def describe(name: str, cluster: ClusterSpec) -> None:
    config = GPT_7B.with_max_context(384 * 1024)
    model = fit_cost_model(config, cluster)
    print(f"--- {name} ---")
    print(f"  usable memory/GPU: {cluster.gpu.usable_memory_bytes / 2**30:.0f} GiB")
    print(f"  tokens/GPU capacity: {model.max_tokens_per_device():,.0f}")
    for seq in (32, 64, 128, 256):
        degree = model.min_degree_for_sequence(seq * 1024)
        print(f"  min SP degree for a {seq}K sequence: {degree}")
    plan, predicted = plan_microbatch(
        MICROBATCH, model, PlannerConfig(time_limit=1.0)
    )
    print(f"  Fig. 1 micro-batch plan: {plan.layout()} "
          f"(predicted {predicted:.1f}s)\n")


def main() -> None:
    paper_cluster = ClusterSpec(num_nodes=8, gpus_per_node=8, gpu=A100_40GB)
    describe("Paper testbed: 8 nodes x 8 A100-40GB, 400G IB", paper_cluster)

    # Double the memory, but a slower (100 Gbps-class) inter-node
    # fabric: bigger groups become feasible at lower degrees, while
    # crossing nodes gets even more expensive.
    slow_fabric = NetworkSpec(
        inter_node=LinkSpec(name="infiniband-100g", bandwidth=16e9, latency=25e-6)
    )
    big_memory = ClusterSpec(
        num_nodes=8, gpus_per_node=8, gpu=A100_80GB, network=slow_fabric
    )
    describe("8 nodes x 8 A100-80GB, 100G-class IB", big_memory)

    print(
        "With 80GB parts the 100K sequence no longer needs to span\n"
        "nodes, and with the slow fabric the planner avoids cross-node\n"
        "groups even more aggressively."
    )


if __name__ == "__main__":
    main()
