"""Corpus analysis: long-tail length distributions and bucketing.

Reproduces the Fig. 2 view of the three training corpora and
demonstrates the planner's DP sequence bucketing against the naive
fixed-interval method (the Table 4 comparison) on a real global batch.

Run:
    python examples/corpus_analysis.py
"""

import numpy as np

from repro import COMMONCRAWL, GITHUB, WIKIPEDIA
from repro.core.blaster import blast
from repro.core.bucketing import (
    bucketing_error,
    fixed_interval_buckets,
    optimal_buckets,
)
from repro.core.types import SequenceBatch
from repro.data.distributions import length_histogram
from repro.experiments.reporting import format_histogram, format_table


def main() -> None:
    rng = np.random.default_rng(0)
    print("Fig. 2 view: sequence-length distributions (50k samples)\n")
    for dist in (GITHUB, COMMONCRAWL, WIKIPEDIA):
        hist = length_histogram(dist.sample(50_000, rng))
        print(f"--- {dist.name} ---")
        print(format_histogram(hist))
        print(
            f"    P(len > 8K)  = {dist.tail_fraction(8192):.1%}   "
            f"P(len > 32K) = {dist.tail_fraction(32 * 1024):.2%}\n"
        )

    print("Table 4 view: bucketing error on one 512-sequence batch\n")
    rows = []
    for dist in (GITHUB, COMMONCRAWL, WIKIPEDIA):
        lengths = dist.sample(512, np.random.default_rng(7))
        batch = SequenceBatch(lengths=tuple(int(s) for s in lengths))
        dp_error = 0
        naive_error = 0
        for microbatch in blast(batch, 5):
            dp_error += bucketing_error(optimal_buckets(microbatch.lengths, 16))
            naive_error += bucketing_error(
                fixed_interval_buckets(microbatch.lengths)
            )
        rows.append(
            [
                dist.name,
                f"{100 * dp_error / batch.total_tokens:.1f}%",
                f"{100 * naive_error / batch.total_tokens:.1f}%",
            ]
        )
    print(format_table(["corpus", "DP bucketing", "naive (fixed 2K)"], rows))

    print("\nExample DP buckets for a CommonCrawl micro-batch:")
    lengths = COMMONCRAWL.sample(128, np.random.default_rng(3))
    for bucket in optimal_buckets([int(s) for s in lengths], 8):
        print(
            f"  upper {bucket.upper:>7,} tokens: {bucket.count:>4} sequences, "
            f"deviation {bucket.deviation:,}"
        )


if __name__ == "__main__":
    main()
