"""Quickstart: plan and execute one FlexSP training iteration.

Builds the paper's testbed shape in simulation (here 16 GPUs for
speed), samples a global batch of varied-length sequences from the
CommonCrawl-shaped corpus, lets the FlexSP solver pick heterogeneous
SP groups, executes the plan on the simulated cluster, and compares
against the tuned static DeepSpeed-style baseline.

Run:
    python examples/quickstart.py
"""

from repro import (
    COMMONCRAWL,
    GPT_7B,
    DeepSpeedUlyssesSystem,
    FlexSPSystem,
    PlannerConfig,
    SolverConfig,
    Workload,
    standard_cluster,
)


def main() -> None:
    workload = Workload(
        model=GPT_7B,
        distribution=COMMONCRAWL,
        max_context=64 * 1024,
        cluster=standard_cluster(16),
        global_batch_size=64,
    )
    print(f"Workload: {workload.name}")
    print(f"Checkpointing policy: {workload.checkpointing.value}")

    batch = workload.corpus().batch(0)
    print(
        f"\nGlobal batch: {batch.num_sequences} sequences, "
        f"{batch.total_tokens:,} tokens, longest {batch.max_length:,}"
    )

    # FlexSP: profile the cluster, solve the MILP, execute the plan.
    solver_config = SolverConfig(
        num_trials=2, planner=PlannerConfig(time_limit=1.0)
    )
    flexsp = FlexSPSystem(workload, solver_config)
    plan, solve_seconds = flexsp.plan(batch.lengths)
    print(f"\nFlexSP solved in {solve_seconds:.1f}s host time")
    print(f"Micro-batches and their heterogeneous SP-group layouts:")
    for i, layout in enumerate(plan.layouts()):
        print(f"  micro-batch {i}: {layout}")

    outcome = flexsp.run_iteration(batch.lengths)
    print(
        f"\nFlexSP iteration: {outcome.iteration_seconds:.2f}s simulated "
        f"({100 * outcome.alltoall_fraction:.1f}% All-to-All)"
    )

    # The static baseline must survive the worst case the task allows,
    # so it is stuck with one large SP degree for every batch.
    deepspeed = DeepSpeedUlyssesSystem(workload)
    baseline = deepspeed.run_iteration(batch.lengths)
    print(
        f"DeepSpeed (static SP={deepspeed.sp_degree}): "
        f"{baseline.iteration_seconds:.2f}s simulated "
        f"({100 * baseline.alltoall_fraction:.1f}% All-to-All)"
    )
    print(
        f"\nSpeedup: {baseline.iteration_seconds / outcome.iteration_seconds:.2f}x"
    )


if __name__ == "__main__":
    main()
