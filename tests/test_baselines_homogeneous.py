"""Tests for repro.baselines.homogeneous: the DeepSpeed-style baseline."""

import pytest

from repro.baselines.homogeneous import (
    estimate_homogeneous_iteration,
    feasible_static_degrees,
    group_token_capacity,
    homogeneous_plan,
)


class TestCapacityAndFeasibility:
    def test_capacity_scales_with_degree(self, cost_model16):
        c8 = group_token_capacity(cost_model16, 8)
        c16 = group_token_capacity(cost_model16, 16)
        assert c16 == pytest.approx(2 * c8, abs=2)

    def test_feasible_degrees_exclude_too_small(self, cost_model16):
        """A 64K worst case cannot fit on few devices."""
        max_context = 64 * 1024
        degrees = feasible_static_degrees(cost_model16, max_context)
        assert degrees
        for d in degrees:
            assert group_token_capacity(cost_model16, d) >= max_context

    def test_short_context_allows_degree_one(self, cost_model16):
        degrees = feasible_static_degrees(cost_model16, 1024)
        assert 1 in degrees

    def test_rejects_nonpositive_degree(self, cost_model16):
        with pytest.raises(ValueError, match="sp_degree"):
            group_token_capacity(cost_model16, 0)


class TestHomogeneousPlan:
    def test_all_groups_same_degree(self, cost_model16):
        plan = homogeneous_plan((4096, 8192, 2048, 1024), cost_model16, 8)
        for mb in plan.microbatches:
            assert all(g.degree == 8 for g in mb.groups)

    def test_all_sequences_scheduled(self, cost_model16):
        lengths = (4096, 8192, 2048, 1024, 512, 16384)
        plan = homogeneous_plan(lengths, cost_model16, 8)
        scheduled = sorted(
            s for mb in plan.microbatches for g in mb.groups for s in g.lengths
        )
        assert scheduled == sorted(lengths)

    def test_gradient_accumulation_when_packs_exceed_groups(self, cost_model16):
        capacity = group_token_capacity(cost_model16, 8)
        seq = capacity // 2 + 1  # one sequence per pack
        lengths = (seq,) * 6  # 6 packs on 2 groups -> 3 rounds
        plan = homogeneous_plan(lengths, cost_model16, 8)
        assert plan.num_microbatches == 3

    def test_groups_respect_memory(self, cost_model16):
        lengths = (16384,) * 5 + (2048,) * 10
        plan = homogeneous_plan(lengths, cost_model16, 8)
        for mb in plan.microbatches:
            for g in mb.groups:
                assert cost_model16.fits(g.lengths, g.degree)

    def test_rejects_over_capacity_sequence(self, cost_model16):
        too_long = group_token_capacity(cost_model16, 2) + 1
        with pytest.raises(ValueError, match="exceed"):
            homogeneous_plan((too_long,), cost_model16, 2)

    def test_rejects_degree_exceeding_cluster(self, cost_model16):
        with pytest.raises(ValueError, match="exceeds cluster"):
            homogeneous_plan((1024,), cost_model16, 32)

    def test_solver_name_tags_degree(self, cost_model16):
        plan = homogeneous_plan((1024,), cost_model16, 4)
        assert plan.solver_name == "homogeneous-sp4"


class TestEstimate:
    def test_positive(self, cost_model16):
        assert estimate_homogeneous_iteration((4096, 2048), cost_model16, 8) > 0

    def test_matches_plan_structure(self, cost_model16):
        """Estimate equals the sum of per-round makespans under Eq. 14."""
        lengths = (8192, 4096, 2048, 1024)
        est = estimate_homogeneous_iteration(lengths, cost_model16, 8)
        plan = homogeneous_plan(lengths, cost_model16, 8)
        recomputed = sum(
            max(
                cost_model16.time_with_overheads(g.lengths, g.degree)
                for g in mb.groups
            )
            for mb in plan.microbatches
        )
        assert est == pytest.approx(recomputed)

    def test_small_degree_wins_for_short_sequences(self, cost_model16):
        """Short sequences: SP=8 (intra-node) must beat SP=16 (cross-
        node), the crux of Observation 1."""
        lengths = (4096,) * 16
        t8 = estimate_homogeneous_iteration(lengths, cost_model16, 8)
        t16 = estimate_homogeneous_iteration(lengths, cost_model16, 16)
        assert t8 < t16
