"""Property-based tests for the sequence blaster (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.blaster import balanced_cut_points, blast, max_microbatch_tokens
from repro.core.types import SequenceBatch

lengths_strategy = st.lists(
    st.integers(min_value=1, max_value=100_000), min_size=1, max_size=80
)


@given(lengths=lengths_strategy, data=st.data())
@settings(max_examples=80, deadline=None)
def test_blast_is_a_partition(lengths, data):
    m = data.draw(st.integers(min_value=1, max_value=len(lengths)))
    batch = SequenceBatch(lengths=tuple(lengths))
    parts = blast(batch, m)
    assert len(parts) == m
    combined = sorted(s for p in parts for s in p.lengths)
    assert combined == sorted(lengths)


@given(lengths=lengths_strategy, data=st.data())
@settings(max_examples=80, deadline=None)
def test_sorted_blast_produces_contiguous_ranges(lengths, data):
    """Takeaway 2: micro-batch length ranges must not interleave."""
    m = data.draw(st.integers(min_value=1, max_value=len(lengths)))
    parts = blast(SequenceBatch(lengths=tuple(lengths)), m, sort=True)
    for prev, cur in zip(parts, parts[1:]):
        assert max(prev.lengths) <= min(cur.lengths)


@given(lengths=lengths_strategy, data=st.data())
@settings(max_examples=80, deadline=None)
def test_max_segment_lower_bound(lengths, data):
    """The DP optimum can never beat the trivial bounds:
    max(avg, longest) <= makespan <= total."""
    m = data.draw(st.integers(min_value=1, max_value=len(lengths)))
    parts = blast(SequenceBatch(lengths=tuple(lengths)), m)
    worst = max_microbatch_tokens(parts)
    total = sum(lengths)
    assert worst >= max(total / m, max(lengths)) - 1e-9
    assert worst <= total


@given(lengths=lengths_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_dp_beats_even_count_split(lengths, data):
    """The DP must never be worse than splitting the sorted list into
    equal-count chunks."""
    m = data.draw(st.integers(min_value=1, max_value=len(lengths)))
    ordered = sorted(lengths)
    dp_worst = max_microbatch_tokens(blast(SequenceBatch(tuple(lengths)), m))
    chunk = -(-len(ordered) // m)
    naive_worst = max(
        sum(ordered[i : i + chunk]) for i in range(0, len(ordered), chunk)
    )
    assert dp_worst <= naive_worst


@given(lengths=lengths_strategy)
@settings(max_examples=60, deadline=None)
def test_cut_points_strictly_increasing(lengths):
    m = max(1, len(lengths) // 2)
    cuts = balanced_cut_points(sorted(lengths), m)
    assert cuts == sorted(set(cuts))
    assert cuts[-1] == len(lengths)
