"""Tests for repro.model.config: architectures and parameter counts."""

import pytest

from repro.model.config import (
    GPT_7B,
    GPT_13B,
    GPT_30B,
    GPT_TINY,
    ModelConfig,
    model_registry,
)


class TestModelConfigValidation:
    def test_rejects_nonpositive_layers(self):
        with pytest.raises(ValueError, match="num_layers"):
            ModelConfig(name="bad", num_layers=0, hidden_size=64, num_heads=4)

    def test_rejects_nonpositive_hidden(self):
        with pytest.raises(ValueError, match="hidden_size"):
            ModelConfig(name="bad", num_layers=2, hidden_size=-1, num_heads=4)

    def test_rejects_heads_not_dividing_hidden(self):
        with pytest.raises(ValueError, match="num_heads"):
            ModelConfig(name="bad", num_layers=2, hidden_size=100, num_heads=3)

    def test_rejects_zero_heads(self):
        with pytest.raises(ValueError, match="num_heads"):
            ModelConfig(name="bad", num_layers=2, hidden_size=64, num_heads=0)

    def test_rejects_nonpositive_context(self):
        with pytest.raises(ValueError, match="max_context"):
            ModelConfig(
                name="bad", num_layers=2, hidden_size=64, num_heads=4, max_context=0
            )


class TestDerivedDimensions:
    def test_head_dim(self):
        assert GPT_7B.head_dim == 4096 // 32

    def test_ffn_hidden_size(self):
        assert GPT_7B.ffn_hidden_size == 4 * 4096

    def test_layer_params_dominated_by_12_h_squared(self):
        h = GPT_7B.hidden_size
        assert GPT_7B.layer_parameter_count() == pytest.approx(12 * h * h, rel=0.01)


class TestPaperParameterCounts:
    """Appendix B.1 quotes parameter counts at 384K max context."""

    def test_gpt7b_total_near_paper(self):
        assert GPT_7B.parameter_count() == pytest.approx(7.85e9, rel=0.08)

    def test_gpt13b_total_near_paper(self):
        assert GPT_13B.parameter_count() == pytest.approx(14.03e9, rel=0.08)

    def test_gpt30b_total_near_paper(self):
        assert GPT_30B.parameter_count() == pytest.approx(32.72e9, rel=0.08)

    def test_positional_embedding_is_one_to_two_billion(self):
        """The paper notes 1-2B positional parameters at 384K."""
        for cfg in (GPT_7B, GPT_13B, GPT_30B):
            pos = cfg.max_context * cfg.hidden_size
            assert 1e9 <= pos <= 2.7e9

    def test_ordering_by_size(self):
        assert (
            GPT_7B.parameter_count()
            < GPT_13B.parameter_count()
            < GPT_30B.parameter_count()
        )


class TestWithMaxContext:
    def test_returns_new_config(self):
        shorter = GPT_7B.with_max_context(64 * 1024)
        assert shorter.max_context == 64 * 1024
        assert GPT_7B.max_context == 384 * 1024

    def test_shrinks_parameter_count(self):
        shorter = GPT_7B.with_max_context(64 * 1024)
        assert shorter.parameter_count() < GPT_7B.parameter_count()

    def test_preserves_other_fields(self):
        shorter = GPT_7B.with_max_context(1024)
        assert shorter.num_layers == GPT_7B.num_layers
        assert shorter.hidden_size == GPT_7B.hidden_size
        assert shorter.name == GPT_7B.name


class TestRegistry:
    def test_contains_paper_models(self):
        registry = model_registry()
        for name in ("gpt-7b", "gpt-13b", "gpt-30b"):
            assert name in registry

    def test_keys_match_names(self):
        for name, cfg in model_registry().items():
            assert cfg.name == name

    def test_tiny_model_valid(self):
        assert GPT_TINY.parameter_count() > 0
