"""Tests for repro.experiments.pipeline: disaggregated solve/train."""

import pytest

from repro.core.planner import PlannerConfig
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.data.dataset import SyntheticCorpus
from repro.data.distributions import COMMONCRAWL
from repro.experiments.pipeline import TrainingPipeline
from repro.model.config import GPT_7B
from repro.simulator.executor import IterationExecutor


@pytest.fixture(scope="module")
def parts(cost_model16, cluster16, gpt7b_64k):
    solver = FlexSPSolver(
        cost_model16,
        SolverConfig(
            num_trials=1,
            backend="greedy",
            planner=PlannerConfig(time_limit=0.3),
        ),
    )
    executor = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
    corpus = SyntheticCorpus(
        COMMONCRAWL, max_context=32 * 1024, global_batch_size=16
    )
    return solver, executor, corpus


class TestPipeline:
    def test_runs_requested_steps(self, parts):
        pipeline = TrainingPipeline(*parts, lookahead=2, workers=2)
        report = pipeline.run(4)
        assert len(report.plans) == 4
        assert len(report.iteration_seconds) == 4

    def test_plans_match_direct_solving(self, parts):
        solver, executor, corpus = parts
        pipeline = TrainingPipeline(solver, executor, corpus, lookahead=1)
        report = pipeline.run(2)
        direct = solver.solve(corpus.batch(0).lengths)
        assert report.plans[0].predicted_time == pytest.approx(
            direct.predicted_time
        )

    def test_prefetch_overlaps_solving(self, parts):
        """With lookahead, later steps' stalls shrink: their solves ran
        while earlier steps trained."""
        pipeline = TrainingPipeline(*parts, lookahead=3, workers=3)
        report = pipeline.run(5)
        # Solving happened (positive solve time) but stalls after the
        # first step are a small fraction of it.
        assert sum(report.solve_seconds) > 0
        later_stall = sum(report.stall_seconds[1:])
        assert later_stall <= sum(report.solve_seconds)
        assert 0.0 <= report.overlap_fraction <= 1.0

    def test_zero_lookahead_still_correct(self, parts):
        pipeline = TrainingPipeline(*parts, lookahead=0, workers=1)
        report = pipeline.run(2)
        assert len(report.plans) == 2

    def test_rejects_bad_args(self, parts):
        solver, executor, corpus = parts
        with pytest.raises(ValueError, match="lookahead"):
            TrainingPipeline(solver, executor, corpus, lookahead=-1)
        with pytest.raises(ValueError, match="workers"):
            TrainingPipeline(solver, executor, corpus, workers=0)
        pipeline = TrainingPipeline(solver, executor, corpus)
        with pytest.raises(ValueError, match="num_steps"):
            pipeline.run(0)
