"""Property-based tests for the planners (hypothesis).

Uses the greedy planner (sub-millisecond) for broad input coverage and
the MILP planner on a narrower budget; both must uphold the plan
invariants: partition of the input, device budget, power-of-two
degrees, memory feasibility.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.planner import PlanInfeasibleError, PlannerConfig, plan_microbatch
from repro.core.planner_greedy import plan_microbatch_greedy


@pytest.fixture(scope="module")
def model(cost_model16):
    return cost_model16


def _check_invariants(plan, lengths, model):
    assigned = sorted(s for g in plan.groups for s in g.lengths)
    assert assigned == sorted(lengths)
    assert plan.devices_used <= model.cluster.num_gpus
    seen = set()
    for g in plan.groups:
        assert g.degree & (g.degree - 1) == 0
        assert model.fits(g.lengths, g.degree)
        for r in g.device_ranks:
            assert r not in seen
            seen.add(r)


# Keep totals below the 16-GPU cluster capacity (~105K tokens) so the
# planner is exercised on feasible inputs.
feasible_lengths = st.lists(
    st.integers(min_value=16, max_value=20_000), min_size=1, max_size=12
).filter(lambda ls: sum(ls) < 90_000)


class TestGreedyProperties:
    @given(lengths=feasible_lengths)
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, model, lengths):
        plan, predicted = plan_microbatch_greedy(tuple(lengths), model)
        _check_invariants(plan, lengths, model)
        assert predicted > 0

    @given(lengths=feasible_lengths)
    @settings(max_examples=40, deadline=None)
    def test_makespan_lower_bound(self, model, lengths):
        """No plan can beat the all-devices-on-everything bound."""
        plan, predicted = plan_microbatch_greedy(tuple(lengths), model)
        ideal = model.compute_time(lengths, model.cluster.num_gpus)
        assert predicted >= ideal - 1e-9

    @given(
        lengths=feasible_lengths,
        scale=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_workload(self, model, lengths, scale):
        """Duplicating the workload cannot make the makespan smaller."""
        __, base = plan_microbatch_greedy(tuple(lengths), model)
        bigger = tuple(lengths) * scale
        if sum(bigger) < model.cluster_token_capacity():
            __, larger = plan_microbatch_greedy(bigger, model)
            assert larger >= base * 0.999


class TestMilpProperties:
    @given(lengths=feasible_lengths)
    @settings(max_examples=15, deadline=None)
    def test_invariants(self, model, lengths):
        cfg = PlannerConfig(time_limit=0.3, mip_rel_gap=0.10)
        plan, predicted = plan_microbatch(tuple(lengths), model, cfg)
        _check_invariants(plan, lengths, model)
        assert predicted > 0

    @given(lengths=feasible_lengths)
    @settings(max_examples=15, deadline=None)
    def test_never_worse_than_greedy(self, model, lengths):
        cfg = PlannerConfig(time_limit=0.3, mip_rel_gap=0.10)
        __, milp_pred = plan_microbatch(tuple(lengths), model, cfg)
        __, greedy_pred = plan_microbatch_greedy(tuple(lengths), model)
        assert milp_pred <= greedy_pred * 1.001


class TestInfeasibleInputs:
    @given(extra=st.integers(min_value=1, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_overlong_sequence_always_rejected(self, model, extra):
        too_long = int(model.max_tokens_per_device() * model.cluster.num_gpus)
        with pytest.raises(PlanInfeasibleError):
            plan_microbatch_greedy((too_long + extra * 1000,), model)
