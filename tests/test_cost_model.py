"""Tests for repro.cost.model: the extended alpha-beta cost model."""

import pytest

from repro.cost.model import CostCoefficients, CostModel


@pytest.fixture()
def coeffs():
    return CostCoefficients(
        alpha1=1e-12,
        alpha2=1e-6,
        beta1=0.01,
        alpha3=1e4,
        beta2=0.005,
        memory_per_token=4e6,
        model_state_bytes=2e9,
    )


@pytest.fixture()
def model(coeffs, cluster16):
    return CostModel(coeffs=coeffs, cluster=cluster16)


class TestCoefficients:
    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError, match="alpha1"):
            CostCoefficients(
                alpha1=-1, alpha2=0, beta1=0, alpha3=0, beta2=0,
                memory_per_token=1, model_state_bytes=0,
            )


class TestComputeTime:
    def test_quadratic_term_dominates_long_sequences(self, model):
        short = model.compute_time([1024], 1) - model.coeffs.beta1
        long = model.compute_time([65536], 1) - model.coeffs.beta1
        assert long > 32 * short

    def test_inverse_in_degree(self, model):
        t1 = model.compute_time([8192], 1) - model.coeffs.beta1
        t8 = model.compute_time([8192], 8) - model.coeffs.beta1
        assert t1 == pytest.approx(8 * t8)

    def test_additive_over_sequences(self, model):
        combined = model.compute_time([1000, 2000], 4)
        parts = (
            model.compute_time([1000], 4)
            + model.compute_time([2000], 4)
            - model.coeffs.beta1
        )
        assert combined == pytest.approx(parts)

    def test_rejects_nonpositive_degree(self, model):
        with pytest.raises(ValueError, match="degree"):
            model.compute_time([100], 0)


class TestCommTime:
    def test_degree_one_is_free(self, model):
        assert model.comm_time([100_000], 1) == 0.0

    def test_beta2_floor(self, model):
        assert model.comm_time([1], 2) >= model.coeffs.beta2

    def test_intra_node_cheaper_than_cross_node(self, model):
        """SP=8 stays on NVLink; SP=16 pays the InfiniBand cliff —
        per-token comm cost *increases* despite more devices sharing."""
        intra = model.comm_time([64 * 1024], 8) - model.coeffs.beta2
        cross = model.comm_time([64 * 1024], 16) - model.coeffs.beta2
        assert cross > intra

    def test_time_is_sum(self, model):
        lengths = [4096, 8192]
        assert model.time(lengths, 8) == pytest.approx(
            model.compute_time(lengths, 8) + model.comm_time(lengths, 8)
        )


class TestMemory:
    def test_eq11_form(self, model):
        usage = model.memory([1000, 3000], 4)
        expected = 4000 / 4 * model.coeffs.memory_per_token + 2e9
        assert usage == pytest.approx(expected)

    def test_fits_respects_budget(self, model):
        cap = int(model.max_tokens_per_device())
        assert model.fits([cap], 1)
        assert not model.fits([cap + 1000], 1)

    def test_cluster_capacity(self, model, cluster16):
        assert model.cluster_token_capacity() == pytest.approx(
            model.max_tokens_per_device() * cluster16.num_gpus
        )

    def test_min_degree_monotone_in_length(self, model):
        degrees = [
            model.min_degree_for_sequence(s)
            for s in (1024, 16 * 1024, 64 * 1024, 128 * 1024)
        ]
        numeric = [d for d in degrees if d is not None]
        assert numeric == sorted(numeric)

    def test_min_degree_none_when_impossible(self, model):
        assert model.min_degree_for_sequence(100_000_000) is None

    def test_min_degree_rejects_nonpositive(self, model):
        with pytest.raises(ValueError, match="seq_len"):
            model.min_degree_for_sequence(0)


class TestBandwidthLookup:
    def test_degree_one_infinite(self, model):
        assert model.bandwidth(1) == float("inf")

    def test_absorbs_wire_fraction(self, model, cluster16):
        """v_d is the effective All-to-All bandwidth: physical rate
        over the (d-1)/d wire fraction."""
        physical = cluster16.link_for_degree(8).bandwidth
        assert model.bandwidth(8) == pytest.approx(physical * 8 / 7)

    def test_cached_consistent(self, model):
        assert model.bandwidth(8) == model.bandwidth(8)
