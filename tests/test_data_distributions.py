"""Tests for repro.data.distributions: long-tail length distributions."""

import numpy as np
import pytest

from repro.data.distributions import (
    COMMONCRAWL,
    GITHUB,
    MIN_SEQUENCE_LENGTH,
    WIKIPEDIA,
    LogNormalMixture,
    dataset_registry,
    histogram_buckets,
    length_histogram,
)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


class TestLogNormalMixture:
    def test_sample_count_and_floor(self, rng):
        lengths = GITHUB.sample(10_000, rng)
        assert len(lengths) == 10_000
        assert lengths.min() >= MIN_SEQUENCE_LENGTH

    def test_sample_zero(self, rng):
        assert len(GITHUB.sample(0, rng)) == 0

    def test_sample_rejects_negative(self, rng):
        with pytest.raises(ValueError, match="n must be"):
            GITHUB.sample(-1, rng)

    def test_rejects_bad_tail_weight(self):
        with pytest.raises(ValueError, match="tail_weight"):
            LogNormalMixture(
                name="bad",
                body_median=100,
                body_sigma=1,
                tail_median=1000,
                tail_sigma=1,
                tail_weight=1.0,
            )

    def test_rejects_nonpositive_median(self):
        with pytest.raises(ValueError, match="body_median"):
            LogNormalMixture(
                name="bad",
                body_median=0,
                body_sigma=1,
                tail_median=1000,
                tail_sigma=1,
                tail_weight=0.1,
            )

    def test_tail_fraction_monotone(self):
        fractions = [GITHUB.tail_fraction(t) for t in (1024, 8192, 32768, 131072)]
        assert fractions == sorted(fractions, reverse=True)

    def test_tail_fraction_matches_samples(self, rng):
        lengths = COMMONCRAWL.sample(200_000, rng)
        empirical = float(np.mean(lengths > 8192))
        analytic = COMMONCRAWL.tail_fraction(8192)
        assert empirical == pytest.approx(analytic, abs=0.01)


class TestPaperShapes:
    """Fig. 2's qualitative marks must hold."""

    def test_majority_below_8k_everywhere(self):
        for dist in (GITHUB, COMMONCRAWL, WIKIPEDIA):
            assert dist.tail_fraction(8192) < 0.25, dist.name

    def test_wikipedia_over_96_percent_below_8k(self):
        assert WIKIPEDIA.tail_fraction(8192) < 0.04

    def test_tail_ordering_github_heaviest(self):
        """GitHub has the most long sequences, Wikipedia the fewest."""
        for threshold in (32 * 1024, 64 * 1024):
            assert (
                GITHUB.tail_fraction(threshold)
                > COMMONCRAWL.tail_fraction(threshold)
                > WIKIPEDIA.tail_fraction(threshold)
            )

    def test_only_small_fraction_exceeds_32k(self):
        for dist in (GITHUB, COMMONCRAWL, WIKIPEDIA):
            assert dist.tail_fraction(32 * 1024) < 0.05, dist.name

    def test_long_tail_exists(self):
        """Some mass must exceed 32K or the problem is trivial."""
        for dist in (GITHUB, COMMONCRAWL):
            assert dist.tail_fraction(32 * 1024) > 1e-3, dist.name


class TestRegistryAndHistogram:
    def test_registry_names(self):
        assert set(dataset_registry()) == {"github", "commoncrawl", "wikipedia"}

    def test_histogram_buckets_cover_everything(self):
        bands = histogram_buckets()
        assert bands[0][0] == 0
        for (____, hi), (lo, ____) in zip(bands, bands[1:]):
            assert hi == lo

    def test_length_histogram_sums_to_one(self, rng):
        lengths = GITHUB.sample(5000, rng)
        hist = length_histogram(lengths)
        assert sum(hist.values()) == pytest.approx(1.0)

    def test_length_histogram_labels(self, rng):
        hist = length_histogram(WIKIPEDIA.sample(1000, rng))
        assert "<=1K" in hist
        assert ">256K" in hist

    def test_length_histogram_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            length_histogram(np.asarray([]))
