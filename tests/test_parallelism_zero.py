"""Tests for repro.parallelism.zero: ZeRO accounting."""

import pytest

from repro.model.config import GPT_7B, GPT_TINY
from repro.parallelism.zero import (
    zero3_gather_bytes_per_microbatch,
    zero_gradient_sync_bytes,
    zero_state_bytes_per_device,
)


class TestStateSharding:
    def test_matches_model_memory_module(self):
        from repro.model.memory import model_state_bytes_per_device

        assert zero_state_bytes_per_device(GPT_7B, 64, 3) == pytest.approx(
            model_state_bytes_per_device(GPT_7B, 64, 3)
        )

    def test_independent_of_sp_layout(self):
        """M_ms depends only on (model, N, stage) — the property that
        keeps the planner's memory constraint linear (S4.1.2)."""
        assert zero_state_bytes_per_device(GPT_7B, 64, 3) == pytest.approx(
            zero_state_bytes_per_device(GPT_7B, 64, 3)
        )


class TestGatherVolume:
    def test_two_gathers_per_microbatch(self):
        per_mb = zero3_gather_bytes_per_microbatch(GPT_7B)
        layer_bytes = 2 * GPT_7B.num_layers * GPT_7B.layer_parameter_count()
        assert per_mb == pytest.approx(2 * layer_bytes)

    def test_scales_with_model(self):
        assert zero3_gather_bytes_per_microbatch(
            GPT_7B
        ) > zero3_gather_bytes_per_microbatch(GPT_TINY)


class TestGradientSync:
    def test_bf16_gradient_bytes(self):
        assert zero_gradient_sync_bytes(GPT_7B) == 2 * GPT_7B.parameter_count()

    def test_charged_once_per_step_not_per_microbatch(self):
        """The value carries no micro-batch dependence by construction;
        the executor charges it exactly once (gradient accumulation)."""
        assert zero_gradient_sync_bytes(GPT_7B) == zero_gradient_sync_bytes(GPT_7B)
