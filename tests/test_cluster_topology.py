"""Tests for repro.cluster.topology: placement and group links."""

import pytest

from repro.cluster.topology import ClusterSpec, standard_cluster


class TestClusterSpec:
    def test_num_gpus(self):
        assert ClusterSpec(num_nodes=8, gpus_per_node=8).num_gpus == 64

    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            ClusterSpec(num_nodes=0)

    def test_node_of(self):
        cluster = ClusterSpec(num_nodes=2, gpus_per_node=8)
        assert cluster.node_of(0) == 0
        assert cluster.node_of(7) == 0
        assert cluster.node_of(8) == 1
        assert cluster.node_of(15) == 1

    def test_node_of_rejects_out_of_range(self):
        cluster = ClusterSpec(num_nodes=1, gpus_per_node=8)
        with pytest.raises(ValueError, match="rank"):
            cluster.node_of(8)

    def test_contiguous_group(self):
        cluster = ClusterSpec(num_nodes=2, gpus_per_node=8)
        assert cluster.contiguous_group(4, 4) == (4, 5, 6, 7)

    def test_contiguous_group_rejects_overflow(self):
        cluster = ClusterSpec(num_nodes=1, gpus_per_node=8)
        with pytest.raises(ValueError, match="out of range"):
            cluster.contiguous_group(6, 4)

    def test_nodes_spanned(self):
        cluster = ClusterSpec(num_nodes=2, gpus_per_node=8)
        assert cluster.nodes_spanned((0, 1, 2, 3)) == 1
        assert cluster.nodes_spanned((6, 7, 8, 9)) == 2


class TestGroupLinks:
    def test_intra_node_degree_gets_nvlink(self):
        cluster = standard_cluster(64)
        link = cluster.link_for_degree(8)
        assert link.bandwidth == cluster.network.intra_node.bandwidth

    def test_cross_node_degree_gets_shared_ib(self):
        cluster = standard_cluster(64)
        link = cluster.link_for_degree(16)
        assert link.bandwidth < cluster.network.intra_node.bandwidth / 4

    def test_degree_bandwidth_monotone_nonincreasing(self):
        cluster = standard_cluster(64)
        degrees = [1, 2, 4, 8, 16, 32, 64]
        bandwidths = [cluster.link_for_degree(d).bandwidth for d in degrees]
        for earlier, later in zip(bandwidths, bandwidths[1:]):
            assert later <= earlier + 1e-9

    def test_rejects_degree_exceeding_cluster(self):
        with pytest.raises(ValueError, match="exceeds cluster size"):
            standard_cluster(8).link_for_degree(16)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="at least one rank"):
            standard_cluster(8).group_link(())


class TestStandardCluster:
    def test_paper_shape(self):
        cluster = standard_cluster(64)
        assert cluster.num_nodes == 8
        assert cluster.gpus_per_node == 8

    def test_single_partial_node(self):
        cluster = standard_cluster(4)
        assert cluster.num_nodes == 1
        assert cluster.gpus_per_node == 4

    def test_rejects_non_multiple_of_eight(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            standard_cluster(12)

    def test_total_memory_budget(self):
        cluster = standard_cluster(8)
        assert cluster.total_memory_budget() == pytest.approx(
            8 * cluster.gpu.usable_memory_bytes
        )
