"""Tests for the Appendix E extension: flexible context parallelism.

The same planner drives ring-attention CP groups when the cost model
is fit with ``comm_model="ring"``: alpha3 then measures KV-rotation
volume, and the per-token communication time scales as ``(d-1)/d``
instead of ``1/d``.
"""

import pytest

from repro.core.planner import PlannerConfig, plan_microbatch
from repro.cost.profiler import fit_cost_model
from repro.cluster.topology import standard_cluster
from repro.model.config import GPT_7B

FAST = PlannerConfig(time_limit=0.5, mip_rel_gap=0.05)


@pytest.fixture(scope="module")
def ring_model(cluster16, gpt7b_64k):
    return fit_cost_model(gpt7b_64k, cluster16, comm_model="ring")


class TestRingCostModel:
    def test_comm_model_recorded(self, ring_model):
        assert ring_model.comm_model == "ring"

    def test_rejects_unknown_comm_model(self, cost_model16):
        from dataclasses import replace

        with pytest.raises(ValueError, match="comm_model"):
            replace(cost_model16, comm_model="smoke-signals")

    def test_ring_comm_does_not_shrink_with_degree(self, ring_model):
        """KV rotation volume per GPU is ~degree-independent: doubling
        the intra-node group barely reduces per-token comm time."""
        t2 = ring_model.comm_seconds_per_token(2)
        t8 = ring_model.comm_seconds_per_token(8)
        assert t8 > t2 * 0.5  # nowhere near the 4x drop All-to-All gets

    def test_alltoall_comm_shrinks_with_degree(self, cost_model16):
        t2 = cost_model16.comm_seconds_per_token(2)
        t8 = cost_model16.comm_seconds_per_token(8)
        assert t8 < t2 / 2

    def test_ring_costlier_than_alltoall(self, ring_model, cost_model16):
        """Appendix D: for equal groups, the ring moves more bytes."""
        lengths = [8192] * 4
        assert ring_model.comm_time(lengths, 8) > cost_model16.comm_time(
            lengths, 8
        )

    def test_degree_one_free(self, ring_model):
        assert ring_model.comm_seconds_per_token(1) == 0.0


class TestFlexibleCPPlanning:
    def test_planner_accepts_ring_model(self, ring_model):
        lengths = (8192, 4096, 2048, 1024)
        plan, predicted = plan_microbatch(lengths, ring_model, FAST)
        assigned = sorted(s for g in plan.groups for s in g.lengths)
        assert assigned == sorted(lengths)
        assert predicted > 0

    def test_ring_planner_respects_memory(self, ring_model):
        lengths = (20_000, 10_000, 4096)
        plan, __ = plan_microbatch(lengths, ring_model, FAST)
        for g in plan.groups:
            assert ring_model.fits(g.lengths, g.degree)

    def test_ring_prefers_even_smaller_groups(self, ring_model, cost_model16):
        """Because ring comm does not amortise with degree, the
        flexible-CP planner's predicted time for short sequences is
        minimised at degrees no larger than the Ulysses planner's."""
        lengths = (2048,) * 16
        ring_plan, __ = plan_microbatch(lengths, ring_model, FAST)
        sp_plan, __ = plan_microbatch(lengths, cost_model16, FAST)
        assert max(g.degree for g in ring_plan.groups) <= max(
            g.degree for g in sp_plan.groups
        )
