"""Tests for repro.cost.profiler: coefficient fitting (Appendix C)."""

import pytest

from repro.cost.profiler import estimation_errors, fit_cost_model, run_probes
from repro.model.memory import (
    ActivationCheckpointing,
    activation_bytes_per_token,
    model_state_bytes_per_device,
)


class TestProbes:
    def test_probe_grid_covers_all_degrees(self, gpt7b_64k, cluster16):
        observations = run_probes(gpt7b_64k, cluster16)
        degrees = {o.degree for o in observations}
        assert degrees == {1, 2, 4, 8, 16}

    def test_probe_times_positive(self, gpt7b_64k, cluster16):
        for obs in run_probes(gpt7b_64k, cluster16):
            assert obs.compute_seconds > 0
            assert obs.comm_seconds >= 0


class TestFit:
    def test_coefficients_positive(self, cost_model16):
        c = cost_model16.coeffs
        assert c.alpha1 > 0
        assert c.alpha2 > 0
        assert c.alpha3 > 0

    def test_memory_coefficients_exact(self, cost_model16, gpt7b_64k, cluster16):
        """M_token and M_ms are analytic, not fit."""
        c = cost_model16.coeffs
        assert c.memory_per_token == pytest.approx(
            activation_bytes_per_token(gpt7b_64k, ActivationCheckpointing.NONE)
        )
        assert c.model_state_bytes == pytest.approx(
            model_state_bytes_per_device(gpt7b_64k, 16, zero_stage=3)
        )

    def test_quadratic_dominates_for_long_sequences(self, cost_model16):
        """alpha1 * s^2 must overtake alpha2 * s well below 384K."""
        c = cost_model16.coeffs
        crossover = c.alpha2 / c.alpha1
        assert crossover < 384 * 1024


class TestEstimationError:
    """Appendix C / Fig. 9: planner-vs-truth error stays small."""

    def test_errors_below_paper_bound(self, cost_model16, gpt7b_64k, cluster16):
        errors = estimation_errors(cost_model16, gpt7b_64k, cluster16)
        worst = max(abs(e) for ____, ____, e in errors)
        assert worst < 0.10, f"worst relative error {worst:.1%} exceeds 10%"

    def test_errors_mostly_within_five_percent(
        self, cost_model16, gpt7b_64k, cluster16
    ):
        errors = [e for ____, ____, e in estimation_errors(
            cost_model16, gpt7b_64k, cluster16)]
        within = sum(1 for e in errors if abs(e) < 0.05) / len(errors)
        assert within > 0.8

    def test_errors_not_identically_zero(self, cost_model16, gpt7b_64k, cluster16):
        """The truth has non-linearities the alpha-beta model cannot
        express; a perfectly zero residual would mean the profiler is
        fitting itself."""
        errors = [e for ____, ____, e in estimation_errors(
            cost_model16, gpt7b_64k, cluster16)]
        assert any(abs(e) > 1e-6 for e in errors)
