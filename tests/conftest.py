"""Shared fixtures: small, fast configurations used across the suite.

Most tests run on an 8- or 16-GPU simulated cluster with GPT-7B (or the
tiny test model) so that MILP solves stay sub-second; the paper-scale
64-GPU runs live in the integration tests and benchmarks.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterSpec, standard_cluster
from repro.cost.model import CostModel
from repro.cost.profiler import fit_cost_model
from repro.model.config import GPT_7B, GPT_TINY, ModelConfig
from repro.model.memory import ActivationCheckpointing


def pytest_configure(config):
    # Registered here as well as in benchmarks/conftest.py so `make
    # test-fast` (`pytest tests/ -m "not slow"`) selects cleanly under
    # --strict-markers.
    config.addinivalue_line(
        "markers",
        "slow: long-running tests excluded from `make test-fast`",
    )


@pytest.fixture(scope="session")
def cluster8() -> ClusterSpec:
    """One node of 8 A100-40GBs."""
    return standard_cluster(8)


@pytest.fixture(scope="session")
def cluster16() -> ClusterSpec:
    """Two nodes of 8 A100-40GBs (exercises the inter-node cliff)."""
    return standard_cluster(16)


@pytest.fixture(scope="session")
def cluster64() -> ClusterSpec:
    """The paper's testbed shape: 8 nodes x 8 GPUs."""
    return standard_cluster(64)


@pytest.fixture(scope="session")
def gpt7b_64k() -> ModelConfig:
    """GPT-7B with a 64K-token positional embedding (small tests)."""
    return GPT_7B.with_max_context(64 * 1024)


@pytest.fixture(scope="session")
def tiny_model() -> ModelConfig:
    return GPT_TINY


@pytest.fixture(scope="session")
def cost_model16(cluster16, gpt7b_64k) -> CostModel:
    """Fitted cost model: GPT-7B on 16 GPUs, no checkpointing."""
    return fit_cost_model(gpt7b_64k, cluster16, ActivationCheckpointing.NONE)


@pytest.fixture(scope="session")
def cost_model8(cluster8, gpt7b_64k) -> CostModel:
    """Fitted cost model: GPT-7B on 8 GPUs, no checkpointing."""
    return fit_cost_model(gpt7b_64k, cluster8, ActivationCheckpointing.NONE)


@pytest.fixture(scope="session")
def cost_model64(cluster64) -> CostModel:
    """Fitted cost model: GPT-7B at 384K context on 64 GPUs."""
    return fit_cost_model(
        GPT_7B.with_max_context(384 * 1024), cluster64, ActivationCheckpointing.NONE
    )
