"""Property tests: batched timing kernels == scalar ground truth.

The batched :class:`~repro.simulator.timing.TimingTable` kernels must
reproduce the scalar ``group_compute_time`` / ``group_alltoall_time`` /
``zero3_gather_time`` paths bit-for-bit across randomized plans —
that is the contract that lets the vectorized executor stand in for
the scalar reference in every benchmark.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cluster.topology import standard_cluster
from repro.core.types import GroupAssignment, IterationPlan, MicroBatchPlan
from repro.model.config import GPT_7B, GPT_13B
from repro.model.memory import ActivationCheckpointing
from repro.simulator.executor import IterationExecutor
from repro.simulator.timing import (
    TimingTable,
    group_alltoall_time,
    group_compute_time,
    segment_sequential_sums,
    zero3_gather_time,
)


def _random_microbatch(rng: random.Random, num_gpus: int) -> MicroBatchPlan:
    """A valid micro-batch: disjoint aligned power-of-two groups."""
    groups = []
    start = 0
    while start < num_gpus:
        degree = 2 ** rng.randint(0, 3)
        degree = min(degree, num_gpus - start)
        if degree & (degree - 1):  # clamp to a power of two
            degree = 1
        if rng.random() < 0.2:  # leave some devices idle
            start += degree
            continue
        lengths = tuple(
            rng.randint(1, 48 * 1024) for __ in range(rng.randint(1, 24))
        )
        groups.append(
            GroupAssignment(
                degree=degree,
                device_ranks=tuple(range(start, start + degree)),
                lengths=lengths,
            )
        )
        start += degree
    if not groups:
        groups.append(
            GroupAssignment(degree=1, device_ranks=(0,), lengths=(rng.randint(1, 8192),))
        )
    return MicroBatchPlan(groups=tuple(groups))


def _random_plan(rng: random.Random, num_gpus: int) -> IterationPlan:
    return IterationPlan(
        microbatches=tuple(
            _random_microbatch(rng, num_gpus) for __ in range(rng.randint(1, 5))
        )
    )


class TestSegmentSequentialSums:
    def test_matches_python_accumulation(self):
        rng = np.random.default_rng(11)
        for __ in range(50):
            counts = rng.integers(1, 40, size=rng.integers(1, 30))
            values = rng.uniform(1e6, 1e15, size=int(counts.sum()))
            sums = segment_sequential_sums(values, counts)
            cursor = 0
            for count, vectorized in zip(counts, sums):
                total = 0.0
                for v in values[cursor : cursor + count]:
                    total += float(v)
                cursor += count
                assert total == vectorized  # bit-for-bit

    def test_empty(self):
        assert segment_sequential_sums(np.zeros(0), np.zeros(0, dtype=int)).size == 0


@pytest.mark.parametrize("config", [GPT_7B, GPT_13B], ids=["7b", "13b"])
@pytest.mark.parametrize("num_gpus", [8, 16, 64])
@pytest.mark.parametrize(
    "checkpointing",
    [ActivationCheckpointing.NONE, ActivationCheckpointing.SELECTIVE],
    ids=["none", "selective"],
)
class TestBatchedKernelsBitIdentical:
    def test_kernels_match_scalar(self, config, num_gpus, checkpointing):
        cluster = standard_cluster(num_gpus)
        model = config.with_max_context(64 * 1024)
        table = TimingTable(model, cluster, checkpointing)
        rng = random.Random(hash((config.name, num_gpus, checkpointing.name)) & 0xFFFF)
        plan = _random_plan(rng, num_gpus)
        groups = [g for mb in plan.microbatches for g in mb.groups]
        links = [cluster.group_link(g.device_ranks) for g in groups]
        compute, alltoall, gather = table.group_times(groups, links)
        for i, (group, link) in enumerate(zip(groups, links)):
            scalar_compute = group_compute_time(
                model, cluster, group.lengths, group.degree, checkpointing
            )
            scalar_alltoall = group_alltoall_time(
                model, cluster, group.tokens, group.degree, link
            )
            scalar_gather = zero3_gather_time(model, cluster, scalar_compute)
            assert compute[i] == scalar_compute  # bit-for-bit
            assert alltoall[i] == scalar_alltoall
            assert gather[i] == scalar_gather

    def test_executor_paths_identical(self, config, num_gpus, checkpointing):
        cluster = standard_cluster(num_gpus)
        model = config.with_max_context(64 * 1024)
        rng = random.Random(hash((config.name, num_gpus)) & 0xFFFF)
        plan = _random_plan(rng, num_gpus)
        scalar = IterationExecutor(
            config=model, cluster=cluster, checkpointing=checkpointing,
            vectorized=False,
        ).run(plan)
        batched = IterationExecutor(
            config=model, cluster=cluster, checkpointing=checkpointing,
            vectorized=True,
        ).run(plan)
        assert batched.iteration_seconds == scalar.iteration_seconds
        assert batched.microbatch_seconds == scalar.microbatch_seconds
        assert batched.group_creation_seconds == scalar.group_creation_seconds
        assert batched.trace.alltoall_seconds() == scalar.trace.alltoall_seconds()
        assert batched.trace.alltoall_fraction() == scalar.trace.alltoall_fraction()


class TestBatchedBaselinesBitIdentical:
    @pytest.fixture(scope="class")
    def probe_batches(self):
        rng = random.Random(23)
        return [
            tuple(rng.randint(256, 32 * 1024) for __ in range(32))
            for __ in range(2)
        ]

    def test_homogeneous_estimates(self, cost_model16, probe_batches):
        from repro.baselines.homogeneous import (
            estimate_homogeneous_iteration,
            feasible_static_degrees,
        )

        for degree in feasible_static_degrees(cost_model16, 32 * 1024):
            for batch in probe_batches:
                scalar = estimate_homogeneous_iteration(
                    batch, cost_model16, degree, vectorized=False
                )
                fast = estimate_homogeneous_iteration(
                    batch, cost_model16, degree, vectorized=True
                )
                assert fast == scalar  # bit-for-bit

    def test_megatron_iterations(self, cluster16, gpt7b_64k, probe_batches):
        from repro.baselines.megatron import (
            megatron_iteration,
            megatron_strategy_space,
            megatron_token_capacity,
        )

        checkpointing = ActivationCheckpointing.NONE
        for strategy in megatron_strategy_space(cluster16):
            capacity = megatron_token_capacity(
                gpt7b_64k, cluster16, strategy, checkpointing
            )
            if capacity < 32 * 1024:
                continue
            for batch in probe_batches:
                scalar = megatron_iteration(
                    batch, gpt7b_64k, cluster16, strategy, checkpointing,
                    pack_target=32 * 1024, vectorized=False,
                )
                fast = megatron_iteration(
                    batch, gpt7b_64k, cluster16, strategy, checkpointing,
                    pack_target=32 * 1024, vectorized=True,
                )
                assert fast.iteration_seconds == scalar.iteration_seconds
                assert fast.comm_seconds == scalar.comm_seconds
                assert fast.num_microbatches == scalar.num_microbatches

    def test_tuner_choices(self, cost_model16, cluster16, gpt7b_64k, probe_batches):
        from repro.baselines.batch_adaptive import choose_degree_for_batch
        from repro.baselines.tuner import choose_static_degree, tune_megatron

        assert choose_static_degree(
            probe_batches, cost_model16, 32 * 1024, vectorized=True
        ) == choose_static_degree(
            probe_batches, cost_model16, 32 * 1024, vectorized=False
        )
        assert tune_megatron(
            probe_batches, gpt7b_64k, cluster16, 32 * 1024, vectorized=True
        ) == tune_megatron(
            probe_batches, gpt7b_64k, cluster16, 32 * 1024, vectorized=False
        )
        for batch in probe_batches:
            assert choose_degree_for_batch(
                batch, cost_model16, vectorized=True
            ) == choose_degree_for_batch(batch, cost_model16, vectorized=False)
