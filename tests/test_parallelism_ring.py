"""Tests for repro.parallelism.ring: CP ring-attention accounting."""

import pytest

from repro.cluster.network import LinkSpec
from repro.model.config import GPT_7B
from repro.parallelism.ring import (
    cp_exposed_comm_time,
    cp_kv_ring_bytes_per_step,
    cp_ring_time,
    cp_step_comm_bytes_per_gpu,
)

LINK = LinkSpec(name="test", bandwidth=50e9, latency=10e-6)


class TestRingVolume:
    def test_cp1_is_free(self):
        assert cp_kv_ring_bytes_per_step(GPT_7B, 8192, 1) == 0.0

    def test_rotation_steps(self):
        v2 = cp_kv_ring_bytes_per_step(GPT_7B, 8192, 2)
        v4 = cp_kv_ring_bytes_per_step(GPT_7B, 8192, 4)
        # shard shrinks 2x but steps grow 3x: ratio 3/2.
        assert v4 == pytest.approx(v2 * 3 / 2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="cp_degree"):
            cp_kv_ring_bytes_per_step(GPT_7B, 100, 0)
        with pytest.raises(ValueError, match="seq_len"):
            cp_kv_ring_bytes_per_step(GPT_7B, -1, 2)

    def test_step_volume_scales_with_layers(self):
        """Two rotation schedules (fwd + bwd), causal-halved."""
        per_layer = cp_kv_ring_bytes_per_step(GPT_7B, 8192, 4)
        total = cp_step_comm_bytes_per_gpu(GPT_7B, 8192, 4)
        assert total == pytest.approx(per_layer * GPT_7B.num_layers * 2 / 2)

    def test_causal_halves_volume(self):
        causal = cp_step_comm_bytes_per_gpu(GPT_7B, 8192, 4, causal=True)
        full = cp_step_comm_bytes_per_gpu(GPT_7B, 8192, 4, causal=False)
        assert causal == pytest.approx(full / 2)

    def test_cp_volume_exceeds_ulysses(self):
        """Appendix D: CP ring volume is substantially larger than
        Ulysses All-to-All for the same workload."""
        from repro.parallelism.ulysses import sp_step_comm_bytes_per_gpu

        tokens = 32 * 1024
        cp = cp_step_comm_bytes_per_gpu(GPT_7B, tokens, 8)
        sp = sp_step_comm_bytes_per_gpu(GPT_7B, tokens, 8)
        assert cp > 1.5 * sp


class TestOverlap:
    def test_fully_hidden_when_compute_dominates(self):
        assert cp_exposed_comm_time(10.0, 1.0) == 0.0

    def test_exposed_when_comm_dominates(self):
        exposed = cp_exposed_comm_time(1.0, 10.0, overlap_efficiency=1.0)
        assert exposed == pytest.approx(9.0)

    def test_overlap_efficiency_limits_hiding(self):
        exposed = cp_exposed_comm_time(10.0, 5.0, overlap_efficiency=0.4)
        assert exposed == pytest.approx(1.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError, match="overlap_efficiency"):
            cp_exposed_comm_time(1.0, 1.0, overlap_efficiency=1.5)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError, match="non-negative"):
            cp_exposed_comm_time(-1.0, 1.0)


class TestRingTime:
    def test_cp1_free(self):
        assert cp_ring_time(GPT_7B, 8192, 1, LINK) == 0.0

    def test_grows_with_tokens(self):
        t1 = cp_ring_time(GPT_7B, 8192, 4, LINK)
        t2 = cp_ring_time(GPT_7B, 16384, 4, LINK)
        assert t2 > t1
