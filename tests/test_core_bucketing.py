"""Tests for repro.core.bucketing: DP-optimal and naive bucketing."""

import pytest

from repro.core.bucketing import (
    fixed_interval_buckets,
    Bucket,
    bucket_sequences,
    bucketing_error,
    naive_buckets,
    optimal_buckets,
    token_error_ratio,
)


class TestBucket:
    def test_deviation(self):
        bucket = Bucket(upper=10, lengths=(7, 9, 10))
        assert bucket.deviation == (10 - 7) + (10 - 9) + 0

    def test_rejects_member_above_upper(self):
        with pytest.raises(ValueError, match="exceed"):
            Bucket(upper=5, lengths=(6,))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            Bucket(upper=5, lengths=())


class TestOptimalBuckets:
    def test_partitions_all_sequences(self):
        lengths = [5, 1, 9, 3, 7, 7, 2, 8]
        buckets = optimal_buckets(lengths, num_buckets=3)
        members = sorted(s for b in buckets for s in b.lengths)
        assert members == sorted(lengths)

    def test_buckets_ordered_and_disjoint(self):
        buckets = optimal_buckets([1, 2, 3, 10, 11, 100], num_buckets=3)
        uppers = [b.upper for b in buckets]
        assert uppers == sorted(uppers)
        for prev, cur in zip(buckets, buckets[1:]):
            assert max(prev.lengths) <= prev.upper < min(cur.lengths)

    def test_zero_error_when_buckets_cover_uniques(self):
        lengths = [4, 4, 8, 8, 8, 15]
        buckets = optimal_buckets(lengths, num_buckets=3)
        assert bucketing_error(buckets) == 0

    def test_one_bucket_uses_maximum(self):
        buckets = optimal_buckets([3, 9, 27], num_buckets=1)
        assert len(buckets) == 1
        assert buckets[0].upper == 27
        assert bucketing_error(buckets) == (27 - 3) + (27 - 9)

    def test_finds_obvious_cluster_split(self):
        """Two tight clusters with a huge gap: the optimal 2-bucketing
        must split at the gap."""
        lengths = [100, 101, 102, 9_000, 9_001]
        buckets = optimal_buckets(lengths, num_buckets=2)
        assert [b.upper for b in buckets] == [102, 9_001]

    def test_optimal_beats_or_matches_naive(self):
        import numpy as np

        rng = np.random.default_rng(11)
        lengths = rng.lognormal(7, 1.2, 300).astype(int) + 16
        for q in (4, 8, 16):
            optimal = bucketing_error(optimal_buckets(lengths, q))
            naive = bucketing_error(naive_buckets(lengths, q))
            assert optimal <= naive

    def test_more_buckets_never_hurts(self):
        import numpy as np

        rng = np.random.default_rng(3)
        lengths = rng.lognormal(7, 1.3, 200).astype(int) + 16
        errors = [
            bucketing_error(optimal_buckets(lengths, q)) for q in (2, 4, 8, 16, 32)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            optimal_buckets([], num_buckets=4)

    def test_rejects_nonpositive_q(self):
        with pytest.raises(ValueError, match="num_buckets"):
            optimal_buckets([1, 2], num_buckets=0)


class TestNaiveBuckets:
    def test_partitions_all_sequences(self):
        lengths = [5, 1, 9, 3, 7, 7, 2, 8, 1000]
        buckets = naive_buckets(lengths, num_buckets=4)
        members = sorted(s for b in buckets for s in b.lengths)
        assert members == sorted(lengths)

    def test_fixed_width_uppers(self):
        buckets = naive_buckets([1, 50, 99, 149, 200], num_buckets=4)
        # width = ceil(200/4) = 50 -> edges at 50, 100, 150, 200.
        assert [b.upper for b in buckets] == [50, 100, 150, 200]

    def test_long_tail_wastes_buckets(self):
        """On skewed data, naive intervals leave most mass in one
        coarse bucket — the failure mode Table 4 quantifies."""
        lengths = [100] * 95 + [100_000] * 5
        buckets = naive_buckets(lengths, num_buckets=16)
        biggest = max(b.count for b in buckets)
        assert biggest >= 95


class TestDispatcherAndMetrics:
    def test_dispatch(self):
        lengths = [1, 2, 3, 400]
        assert bucket_sequences(lengths, 2, "optimal") == optimal_buckets(lengths, 2)
        assert bucket_sequences(lengths, 2, "naive") == naive_buckets(lengths, 2)

    def test_dispatch_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown bucketing"):
            bucket_sequences([1], 1, "fancy")

    def test_token_error_ratio(self):
        buckets = [Bucket(upper=10, lengths=(5, 10))]
        assert token_error_ratio(buckets) == pytest.approx(5 / 15)

    def test_paper_table4_gap(self):
        """DP bucketing error must be far below the paper's fixed-2K
        naive method on long-tail data, measured in the pipeline
        context (bucketing per sorted micro-batch)."""
        import numpy as np

        from repro.core.blaster import blast
        from repro.core.types import SequenceBatch
        from repro.data.distributions import WIKIPEDIA

        lengths = WIKIPEDIA.sample(512, np.random.default_rng(5))
        batch = SequenceBatch(lengths=tuple(int(s) for s in lengths))
        dp_error = 0
        fixed_error = 0
        for mb in blast(batch, 5):
            dp_error += bucketing_error(optimal_buckets(mb.lengths, 16))
            fixed_error += bucketing_error(fixed_interval_buckets(mb.lengths))
        assert dp_error / batch.total_tokens < 0.03
        assert fixed_error > 5 * dp_error


class TestFixedIntervalBuckets:
    def test_uppers_are_multiples_of_width(self):
        buckets = fixed_interval_buckets([100, 3000, 5000], width=2048)
        assert [b.upper for b in buckets] == [2048, 4096, 6144]

    def test_partitions_all(self):
        lengths = [10, 2049, 4097, 100_000]
        buckets = fixed_interval_buckets(lengths)
        members = sorted(s for b in buckets for s in b.lengths)
        assert members == sorted(lengths)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="width"):
            fixed_interval_buckets([10], width=0)

    def test_dispatcher_fixed(self):
        assert bucket_sequences([10, 3000], 16, "fixed") == fixed_interval_buckets(
            [10, 3000]
        )
