"""Tests for repro.simulator.trace: phase traces and breakdowns."""

import pytest

from repro.simulator.trace import PhaseKind, TracePhase, TraceRecorder


def phase(kind, start, duration, devices, microbatch=-1, degree=0):
    return TracePhase(
        kind=kind,
        start=start,
        duration=duration,
        devices=devices,
        microbatch=microbatch,
        group_degree=degree,
    )


class TestTracePhase:
    def test_end_and_device_seconds(self):
        p = phase(PhaseKind.COMPUTE, 1.0, 2.0, 4)
        assert p.end == 3.0
        assert p.device_seconds == 8.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="duration"):
            phase(PhaseKind.COMPUTE, 0, -1, 4)

    def test_rejects_nonpositive_devices(self):
        with pytest.raises(ValueError, match="devices"):
            phase(PhaseKind.COMPUTE, 0, 1, 0)


class TestRecorder:
    def test_rejects_phase_exceeding_cluster(self):
        rec = TraceRecorder(total_devices=8)
        with pytest.raises(ValueError, match="cluster has"):
            rec.record(phase(PhaseKind.COMPUTE, 0, 1, 16))

    def test_wall_seconds_device_weighted(self):
        rec = TraceRecorder(total_devices=8)
        rec.record(phase(PhaseKind.COMPUTE, 0, 4.0, 4))
        assert rec.wall_seconds(PhaseKind.COMPUTE) == pytest.approx(2.0)

    def test_full_cluster_phase_counts_fully(self):
        rec = TraceRecorder(total_devices=8)
        rec.record(phase(PhaseKind.GRAD_SYNC, 0, 3.0, 8))
        assert rec.wall_seconds(PhaseKind.GRAD_SYNC) == pytest.approx(3.0)

    def test_alltoall_fraction(self):
        rec = TraceRecorder(total_devices=4)
        rec.record(phase(PhaseKind.COMPUTE, 0, 6.0, 4))
        rec.record(phase(PhaseKind.ALLTOALL, 6.0, 2.0, 4))
        assert rec.alltoall_fraction() == pytest.approx(0.25)

    def test_idle_counts_as_others(self):
        rec = TraceRecorder(total_devices=4)
        rec.record(phase(PhaseKind.ALLTOALL, 0, 1.0, 4))
        rec.record(phase(PhaseKind.IDLE, 0, 1.0, 4))
        assert rec.alltoall_fraction() == pytest.approx(0.5)

    def test_breakdown_has_all_kinds(self):
        rec = TraceRecorder(total_devices=2)
        rec.record(phase(PhaseKind.COMPUTE, 0, 1.0, 2))
        breakdown = rec.breakdown()
        assert set(breakdown) == {k.value for k in PhaseKind}
        assert breakdown["compute"] == 1.0
        assert breakdown["optimizer"] == 0.0

    def test_phases_of_microbatch(self):
        rec = TraceRecorder(total_devices=4)
        rec.record(phase(PhaseKind.COMPUTE, 0, 1.0, 4, microbatch=0))
        rec.record(phase(PhaseKind.COMPUTE, 1, 1.0, 4, microbatch=1))
        assert len(rec.phases_of_microbatch(0)) == 1

    def test_end_time(self):
        rec = TraceRecorder(total_devices=4)
        assert rec.end_time() == 0.0
        rec.record(phase(PhaseKind.COMPUTE, 1.0, 2.5, 4))
        assert rec.end_time() == 3.5

    def test_empty_fraction_zero(self):
        assert TraceRecorder(total_devices=4).alltoall_fraction() == 0.0
