"""Tests for repro.simulator.timing: ground-truth kernel timing."""

import pytest

from repro.model.config import GPT_7B
from repro.model.memory import ActivationCheckpointing
from repro.simulator.timing import (
    gradient_sync_time,
    group_alltoall_time,
    group_compute_time,
    optimizer_step_time,
    zero3_gather_time,
)


class TestComputeTime:
    def test_empty_workload_free(self, cluster16, gpt7b_64k):
        assert group_compute_time(gpt7b_64k, cluster16, [], 8) == 0.0

    def test_degree_speeds_up_compute(self, cluster16, gpt7b_64k):
        t4 = group_compute_time(gpt7b_64k, cluster16, [16384], 4)
        t8 = group_compute_time(gpt7b_64k, cluster16, [16384], 8)
        assert t8 < t4

    def test_checkpointing_slows_compute(self, cluster16, gpt7b_64k):
        plain = group_compute_time(gpt7b_64k, cluster16, [16384], 8)
        ckpt = group_compute_time(
            gpt7b_64k, cluster16, [16384], 8, ActivationCheckpointing.FULL
        )
        assert ckpt > plain

    def test_small_shards_lose_efficiency(self, cluster16, gpt7b_64k):
        """Sub-linear speedup at tiny per-device shards: the saturation
        non-linearity the planner's linear model cannot express."""
        t1 = group_compute_time(gpt7b_64k, cluster16, [2048], 1)
        t16 = group_compute_time(gpt7b_64k, cluster16, [2048], 16)
        assert t16 > t1 / 16

    def test_rejects_nonpositive_degree(self, cluster16, gpt7b_64k):
        with pytest.raises(ValueError, match="degree"):
            group_compute_time(gpt7b_64k, cluster16, [100], 0)

    def test_table1_computation_scale(self, cluster64):
        """Table 1, 8K x 512 @ SP=8: ~19-21s iteration dominated by
        compute.  Our per-group compute for the same 4M tokens should
        land in the right ballpark (order of 15-25s)."""
        cfg = GPT_7B.with_max_context(384 * 1024)
        per_group_tokens = 4_194_304 // 8  # 8 SP=8 groups
        lengths = [8192] * (per_group_tokens // 8192)
        t = group_compute_time(cfg, cluster64, lengths, 8)
        assert 10.0 < t < 30.0


class TestAllToAllTime:
    def test_degree_one_free(self, cluster16, gpt7b_64k):
        assert group_alltoall_time(gpt7b_64k, cluster16, 100_000, 1) == 0.0

    def test_inter_node_cliff(self, cluster16, gpt7b_64k):
        """SP=16 spans two nodes: per-token All-to-All time jumps even
        though twice the devices share the work (Observation 1)."""
        intra = group_alltoall_time(gpt7b_64k, cluster16, 65536, 8)
        cross = group_alltoall_time(gpt7b_64k, cluster16, 65536, 16)
        assert cross > 2 * intra

    def test_linear_in_tokens(self, cluster16, gpt7b_64k):
        t1 = group_alltoall_time(gpt7b_64k, cluster16, 10_000, 8)
        t2 = group_alltoall_time(gpt7b_64k, cluster16, 20_000, 8)
        assert t2 > t1

    def test_table1_comm_scale(self, cluster64):
        """Table 1, 4K x 1024 @ SP=64: ~20s of All-to-All (54% of 37s).
        The simulated volume over 8 nodes of IB should land within a
        factor of ~1.5 of that."""
        cfg = GPT_7B.with_max_context(384 * 1024)
        t = group_alltoall_time(cfg, cluster64, 4_194_304, 64)
        assert 13.0 < t < 30.0


class TestStepLevelPhases:
    def test_zero3_gather_mostly_hidden(self, cluster16, gpt7b_64k):
        exposed = zero3_gather_time(gpt7b_64k, cluster16, compute_time=10.0)
        link = cluster16.link_for_degree(16)
        from repro.cluster.collectives import all_gather_time
        from repro.parallelism.zero import zero3_gather_bytes_per_microbatch

        raw = all_gather_time(
            zero3_gather_bytes_per_microbatch(gpt7b_64k), 16, link
        )
        assert 0 <= exposed < raw

    def test_zero_below_stage3_gathers_nothing(self, cluster16, gpt7b_64k):
        assert zero3_gather_time(gpt7b_64k, cluster16, 1.0, zero_stage=1) == 0.0

    def test_gradient_sync_positive(self, cluster16, gpt7b_64k):
        assert gradient_sync_time(gpt7b_64k, cluster16) > 0

    def test_optimizer_step_scales_inverse_devices(self, gpt7b_64k):
        from repro.cluster.topology import standard_cluster

        t16 = optimizer_step_time(gpt7b_64k, standard_cluster(16))
        t64 = optimizer_step_time(gpt7b_64k, standard_cluster(64))
        assert t64 == pytest.approx(t16 / 4)
