"""Tests for repro.cluster.groups: the hot-switching communicator pool."""

import math

import pytest

from repro.cluster.groups import CommGroup, CommGroupPool
from repro.cluster.topology import standard_cluster


class TestCommGroup:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one rank"):
            CommGroup(ranks=())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            CommGroup(ranks=(0, 0))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            CommGroup(ranks=(2, 1))

    def test_size(self):
        assert CommGroup(ranks=(0, 1, 2, 3)).size == 4


class TestPoolCaching:
    def test_first_use_charges_creation(self):
        pool = CommGroupPool(cluster=standard_cluster(8))
        __, cost = pool.get((0, 1, 2, 3))
        assert cost == pool.creation_seconds

    def test_second_use_is_free_hot_switch(self):
        pool = CommGroupPool(cluster=standard_cluster(8))
        pool.get((0, 1, 2, 3))
        __, cost = pool.get((0, 1, 2, 3))
        assert cost == 0.0

    def test_singleton_groups_are_free(self):
        pool = CommGroupPool(cluster=standard_cluster(8))
        __, cost = pool.get((3,))
        assert cost == 0.0

    def test_creation_time_accumulates(self):
        pool = CommGroupPool(cluster=standard_cluster(8))
        pool.get((0, 1))
        pool.get((2, 3))
        pool.get((0, 1))
        assert pool.creation_time_total == pytest.approx(2 * pool.creation_seconds)

    def test_cache_counts_distinct_groups(self):
        pool = CommGroupPool(cluster=standard_cluster(8))
        pool.get((0, 1))
        pool.get((0, 1))
        pool.get((2, 3))
        assert pool.cached_group_count == 2


class TestAlignment:
    def test_aligned_group_ranks(self):
        pool = CommGroupPool(cluster=standard_cluster(16))
        assert pool.aligned_group(8, 8) == tuple(range(8, 16))

    def test_rejects_non_power_of_two(self):
        pool = CommGroupPool(cluster=standard_cluster(16))
        with pytest.raises(ValueError, match="powers of two"):
            pool.aligned_group(0, 3)

    def test_rejects_misaligned_start(self):
        pool = CommGroupPool(cluster=standard_cluster(16))
        with pytest.raises(ValueError, match="multiple"):
            pool.aligned_group(2, 4)


class TestPaperBounds:
    """S5 footnote 4: at most log2(N) groups per GPU after warming."""

    @pytest.mark.parametrize("num_gpus", [8, 16, 64])
    def test_groups_per_gpu_bounded_by_log(self, num_gpus):
        pool = CommGroupPool(cluster=standard_cluster(num_gpus))
        pool.warm_standard_groups()
        bound = int(math.log2(num_gpus))
        for __, count in pool.groups_per_gpu().items():
            assert count == bound

    def test_total_groups_bounded(self):
        """The full pool is the binary tree over ranks: N - 1 multi-GPU
        groups for N a power of two."""
        pool = CommGroupPool(cluster=standard_cluster(64))
        pool.warm_standard_groups()
        assert pool.cached_group_count == 64 - 1

    def test_warm_cost_matches_paper_scale(self):
        """The paper reports <10s to create one GPU's 6 groups on 64
        GPUs; warming the full tree costs its 63 groups' worth."""
        pool = CommGroupPool(cluster=standard_cluster(64))
        total = pool.warm_standard_groups()
        assert total == pytest.approx(63 * pool.creation_seconds)
